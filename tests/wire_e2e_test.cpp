// End-to-end tests for the BGP-4 wire subsystem over real loopback
// sockets: session establishment with capability negotiation, the
// malformed-input NOTIFICATION path, graceful-restart ghost retention,
// and the flagship equivalence claim — replaying the longlived2024
// archive over wire sessions through BgpFeedSource must produce the
// EXACT (prefix, peer) zombie set the batch detector computes from the
// same archive. The socket hop must be semantically invisible.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "live/bgp_feed.hpp"
#include "live/service.hpp"
#include "scenarios/longlived2024.hpp"
#include "wire/bridge.hpp"
#include "wire/message.hpp"
#include "wire/speaker.hpp"
#include "zombie/longlived.hpp"

namespace zombiescope::wire {
namespace {

using netbase::IpAddress;
using netbase::Prefix;
using zombie::PeerKey;

/// Runs a BgpSpeaker's poll loop on its own thread; stops and joins on
/// destruction. Handlers must be installed before start().
struct SpeakerThread {
  BgpSpeaker speaker;
  std::thread thread;

  explicit SpeakerThread(SpeakerConfig config)
      : speaker(config, /*listen=*/true, /*port=*/0) {}

  void start() {
    thread = std::thread([this] { speaker.run(); });
  }

  ~SpeakerThread() {
    speaker.stop();
    if (thread.joinable()) thread.join();
  }
};

/// Waits until `pred` holds, polling; false on timeout.
bool wait_for(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

void send_all(int fd, const std::vector<std::uint8_t>& wire) {
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    ASSERT_GT(n, 0) << "send failed";
    off += static_cast<std::size_t>(n);
  }
}

TEST(WireE2E, LoopbackSessionEstablishesAndDeliversUpdates) {
  SpeakerConfig config;
  config.local_asn = 64999;
  SpeakerThread harness(config);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<SessionRef, bgp::UpdateMessage>> updates;
  harness.speaker.on_update([&](const SessionRef& ref, bgp::UpdateMessage&& update,
                                std::chrono::steady_clock::time_point) {
    std::lock_guard<std::mutex> lock(mutex);
    updates.emplace_back(ref, std::move(update));
    cv.notify_all();
  });
  harness.start();

  // A bridged client: capability 240 carries the logical peer address
  // of the monitor this loopback session re-enacts.
  const auto logical = IpAddress::parse("2001:7f8:4::8447:1");
  const int fd = wire_connect("127.0.0.1", harness.speaker.port());
  wire_handshake(fd, 65001, 0xc0000301, 90, logical);

  bgp::UpdateMessage update;
  update.announced.push_back(Prefix::parse("2a0d:3dc1:1851::/48"));
  update.attributes.as_path = bgp::AsPath{65001, 64511, 210312};
  send_all(fd, encode_update(update));

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !updates.empty(); }));
    const auto& [ref, received] = updates.front();
    EXPECT_EQ(ref.peer_asn, 65001u);
    EXPECT_TRUE(ref.bridged);
    EXPECT_EQ(ref.peer_address, logical)
        << "PeerKey identity must be the logical address, not 127.0.0.1";
    EXPECT_EQ(received.announced, update.announced);
    EXPECT_EQ(received.attributes.as_path, update.attributes.as_path);
  }

  ASSERT_TRUE(wait_for([&] { return harness.speaker.established_count() == 1; }));
  const auto rows = harness.speaker.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].state, "Established");
  EXPECT_TRUE(rows[0].bridged);
  EXPECT_EQ(rows[0].peer_asn, 65001u);
  EXPECT_EQ(rows[0].peer_address, logical.to_string());
  EXPECT_EQ(rows[0].routes, 1u);
  EXPECT_EQ(rows[0].negotiated_hold, 90);

  const std::string json = harness.speaker.sessions_json();
  EXPECT_NE(json.find("\"established\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"asn\":65001"), std::string::npos) << json;

  ::close(fd);
  EXPECT_TRUE(wait_for([&] { return harness.speaker.snapshot().empty(); }))
      << "EOF must tear the session down";
}

TEST(WireE2E, MalformedInputDrawsTheExactNotification) {
  SpeakerConfig config;
  SpeakerThread harness(config);
  harness.start();

  const int fd = wire_connect("127.0.0.1", harness.speaker.port());
  wire_handshake(fd, 65002, 0xc0000302, 90, std::nullopt);

  // 19 bytes of zeros: a complete header with a corrupt marker. The
  // speaker owes us NOTIFICATION Message Header Error / Connection Not
  // Synchronized, then the close.
  send_all(fd, std::vector<std::uint8_t>(kHeaderSize, 0x00));

  FrameReader reader;
  std::optional<NotificationMessage> notification;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF: speaker closed after notifying
    reader.append(reinterpret_cast<const std::uint8_t*>(buf),
                  static_cast<std::size_t>(n));
    while (auto frame = reader.next()) {
      if (decode_header(*frame).type == bgp::MessageType::kNotification)
        notification = NotificationMessage::decode(*frame);
    }
    if (notification.has_value()) break;
  }
  ASSERT_TRUE(notification.has_value());
  EXPECT_EQ(notification->code, NotifyCode::kMessageHeaderError);
  EXPECT_EQ(notification->subcode, kHdrConnectionNotSynchronized);
  ::close(fd);
  EXPECT_TRUE(wait_for([&] { return harness.speaker.snapshot().empty(); }));
}

TEST(WireE2E, GrRetentionMakesAGhostThenFlushesAtRestartExpiry) {
  SpeakerConfig config;
  config.retention.gr_enabled = true;
  SpeakerThread harness(config);

  std::mutex mutex;
  std::condition_variable cv;
  bool retained_drop = false;
  std::vector<Prefix> flushed;
  FlushReason flush_reason = FlushReason::kSessionLoss;
  harness.speaker.on_state([&](const SessionRef&, bgp::SessionState,
                               bgp::SessionState new_state, bool retained) {
    if (new_state != bgp::SessionState::kIdle) return;
    std::lock_guard<std::mutex> lock(mutex);
    retained_drop = retained;
    cv.notify_all();
  });
  harness.speaker.on_flush([&](const SessionRef&, std::vector<Prefix>&& prefixes,
                               FlushReason reason) {
    std::lock_guard<std::mutex> lock(mutex);
    flushed = std::move(prefixes);
    flush_reason = reason;
    cv.notify_all();
  });
  harness.start();

  // Hand-rolled handshake so the OPEN advertises graceful restart with
  // a 1-second window — the shortest flush the test can wait for.
  const int fd = wire_connect("127.0.0.1", harness.speaker.port());
  OpenMessage open;
  open.asn = 65003;
  open.bgp_id = 0xc0000303;
  open.hold_time = 90;
  open.graceful_restart = GracefulRestart{false, 1, {{1, 1, true}}};
  send_all(fd, open.encode());
  send_all(fd, encode_keepalive());
  ASSERT_TRUE(wait_for([&] { return harness.speaker.established_count() == 1; }));

  const Prefix prefix = Prefix::parse("198.51.100.0/24");
  bgp::UpdateMessage update;
  update.announced.push_back(prefix);
  update.attributes.as_path = bgp::AsPath{65003};
  update.attributes.next_hop = IpAddress::parse("192.0.2.9");
  send_all(fd, encode_update(update));
  ASSERT_TRUE(wait_for([&] {
    const auto rows = harness.speaker.snapshot();
    return rows.size() == 1 && rows[0].routes == 1;
  }));

  // The peer dies without a word: GR retains instead of flushing.
  ::close(fd);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return retained_drop; }))
        << "the drop must be reported retained=true";
  }
  // While retained, the session lives on as a ghost row.
  ASSERT_TRUE(wait_for([&] {
    const auto rows = harness.speaker.snapshot();
    return rows.size() == 1 && rows[0].state == "GrStale" &&
           rows[0].stale_routes == 1;
  })) << "expected a GrStale ghost holding the route";

  // ...until the 1-second restart window expires and the route comes
  // back out through the flush callback.
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !flushed.empty(); }));
    EXPECT_EQ(flushed, std::vector<Prefix>{prefix});
    EXPECT_EQ(flush_reason, FlushReason::kRestartExpired);
  }
  EXPECT_TRUE(wait_for([&] { return harness.speaker.snapshot().empty(); }));
}

// ------------------------------------------------- the equivalence run

using PairSet = std::vector<std::pair<Prefix, PeerKey>>;

PairSet batch_pairs(const scenarios::LongLived2024Output& out,
                    netbase::Duration threshold) {
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(out.updates, out.events, threshold);
  std::set<std::pair<Prefix, PeerKey>> merged;
  for (const auto& outbreak : result.outbreaks) {
    for (const auto& route : outbreak.routes) {
      merged.insert({outbreak.prefix, route.peer});
    }
  }
  return {merged.begin(), merged.end()};
}

class WireE2EReplay : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenarios::LongLived2024Spec spec;
    output_ = new scenarios::LongLived2024Output(
        scenarios::run_longlived2024(spec));
  }
  static void TearDownTestSuite() {
    delete output_;
    output_ = nullptr;
  }

  static scenarios::LongLived2024Output* output_;
};

scenarios::LongLived2024Output* WireE2EReplay::output_ = nullptr;

TEST_F(WireE2EReplay, WireReplayMatchesBatchDetectorExactly) {
  const netbase::Duration threshold = 90 * netbase::kMinute;
  const auto batch = batch_pairs(*output_, threshold);
  ASSERT_FALSE(batch.empty()) << "scenario produced no zombies to compare";

  live::LiveConfig live_config;
  live_config.shards = 4;
  live_config.block_on_full = true;  // equivalence demands zero drops
  live_config.detector.threshold = threshold;
  live::LiveService service(live_config);
  service.start();
  for (const auto& event : output_->events) service.expect(event);

  // Generous hold: a flat-out replay must never lose a session to the
  // hold timer while the kernel schedules other sockets.
  SpeakerConfig speaker_config;
  speaker_config.local_asn = 64999;
  speaker_config.hold_time = 3600;
  speaker_config.keepalive_interval = 1200;
  live::BgpFeedSource feed(speaker_config, /*port=*/0);
  ASSERT_GT(feed.port(), 0);

  live::FeedSource::RunStats stats;
  std::thread feeder([&] { stats = feed.run(service); });

  BridgeOptions options;
  options.hold_time = 3600;
  const BridgeStats bridge =
      replay_over_wire(output_->updates, "127.0.0.1", feed.port(), options);
  EXPECT_GT(bridge.sessions, 0u);
  EXPECT_GT(bridge.updates_sent, 0u);

  // Every session said Cease; once the speaker has digested them all
  // the snapshot drains to empty and the feed can stop.
  EXPECT_TRUE(wait_for([&] { return feed.speaker().snapshot().empty(); },
                       /*timeout_ms=*/120000))
      << "sessions still open after replay finished";
  feed.stop();
  feeder.join();

  // Every wire message the bridge sent became exactly one submitted
  // record: nothing lost, nothing reordered out of existence.
  EXPECT_EQ(stats.records, bridge.updates_sent + bridge.state_changes_sent);

  service.finalize();
  EXPECT_EQ(service.drops(), 0u);
  EXPECT_EQ(service.processed(), service.submitted());
  const auto live_pairs = service.emerged_pairs();
  service.stop();

  EXPECT_EQ(live_pairs, batch)
      << "the socket hop changed the zombie set: wire replay is not "
         "equivalent to archive replay";
}

}  // namespace
}  // namespace zombiescope::wire

#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace zombiescope::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      // +Inf bucket: the best estimate is the highest finite bound.
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double within = (rank - static_cast<double>(cumulative)) /
                            static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::uint64_t* Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

const std::int64_t* Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return &v;
  return nullptr;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Registry& Registry::global() {
  // Leaked on purpose, like Tracer/Journal/Profiler: at-exit snapshot
  // handlers (e.g. bench_common's std::atexit hook) may construct a
  // lazy observer that registers counters after this registry's
  // destructor would have run, turning exit into a use-after-free.
  static Registry* instance = new Registry();
  return *instance;
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name),
                           std::make_unique<std::atomic<std::uint64_t>>(0)).first;
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name),
                         std::make_unique<std::atomic<std::int64_t>>(0)).first;
  return Gauge(it->second.get());
}

Histogram Registry::histogram(std::string_view name, std::vector<double> bounds) {
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
    throw std::invalid_argument("histogram bounds must be strictly increasing");
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto cells = std::make_unique<HistogramCells>();
    cells->bounds = std::move(bounds);
    cells->counts = std::make_unique<std::atomic<std::uint64_t>[]>(cells->bounds.size() + 1);
    for (std::size_t i = 0; i <= cells->bounds.size(); ++i) cells->counts[i] = 0;
    it = histograms_.emplace(std::string(name), std::move(cells)).first;
  }
  return Histogram(it->second.get());
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, cell] : counters_)
    snap.counters.emplace_back(name, cell->load(std::memory_order_relaxed));
  for (const auto& [name, cell] : gauges_)
    snap.gauges.emplace_back(name, cell->load(std::memory_order_relaxed));
  for (const auto& [name, cells] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = cells->bounds;
    h.counts.resize(cells->bounds.size() + 1);
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      h.counts[i] = cells->counts[i].load(std::memory_order_relaxed);
    h.sum = cells->sum.load(std::memory_order_relaxed);
    h.count = cells->count.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, cell] : counters_) cell->store(0, std::memory_order_relaxed);
  for (auto& [name, cell] : gauges_) cell->store(0, std::memory_order_relaxed);
  for (auto& [name, cells] : histograms_) {
    for (std::size_t i = 0; i <= cells->bounds.size(); ++i)
      cells->counts[i].store(0, std::memory_order_relaxed);
    cells->count.store(0, std::memory_order_relaxed);
    cells->sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> duration_buckets() {
  return {0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0, 300.0};
}

std::vector<double> byte_buckets() {
  return {32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0, 65536.0};
}

}  // namespace zombiescope::obs

// zombie/lookingglass.hpp — an emulation of the previous study's
// pipeline (Fontugne et al., PAM'19) for the Table 2/3 comparisons.
//
// The previous study identified stale prefixes in *real time* via the
// RIPEstat looking-glass service — a black box whose internal update
// delay is unknown and which went through several revisions during
// the measurement period (§3.1 of the paper). This detector models
// that class of pipeline: the visible state at the 90-minute check is
// the state as of `check - lag`, and with probability
// `stale_snapshot_probability` a peer's snapshot is even older
// (service refresh glitch). Both directions of disagreement with the
// raw-data methodology emerge from the lag:
//  * a withdrawal inside the lag window => looking-glass-only zombie
//    (false positive the raw method does not report);
//  * a late re-announcement inside the lag window => raw-only zombie
//    (the looking glass missed it).
// It also never applies the Aggregator dedup — the previous study did
// not have it.

#pragma once

#include <set>
#include <span>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "netbase/rng.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

struct LookingGlassConfig {
  /// Stuck threshold, as in the raw methodology (90 minutes).
  netbase::Duration threshold = 90 * netbase::kMinute;
  /// Ordinary looking-glass state delay.
  netbase::Duration lag = 8 * netbase::kMinute;
  /// Probability that a peer's snapshot missed a whole refresh cycle.
  double stale_snapshot_probability = 0.02;
  /// The glitched snapshot age.
  netbase::Duration stale_lag = 45 * netbase::kMinute;
  /// Deterministic seed for glitch draws.
  std::uint64_t seed = 20180719;
};

struct LookingGlassResult {
  std::vector<ZombieRoute> routes;          // no duplicate flagging
  std::vector<ZombieOutbreak> outbreaks;    // per (beacon, interval)
};

class LookingGlassDetector {
 public:
  explicit LookingGlassDetector(LookingGlassConfig config) : config_(config) {}

  LookingGlassResult detect(std::span<const mrt::MrtRecord> records,
                            std::span<const beacon::BeaconEvent> events) const;

 private:
  LookingGlassConfig config_;
};

/// Set-difference bookkeeping for Table 3: how many zombie routes /
/// outbreaks appear in `ours` but not `theirs`, per address family.
struct MissingCounts {
  int routes_v4 = 0;
  int routes_v6 = 0;
  int outbreaks_v4 = 0;
  int outbreaks_v6 = 0;
};

MissingCounts count_missing(std::span<const ZombieRoute> ours,
                            std::span<const ZombieOutbreak> our_outbreaks,
                            std::span<const ZombieRoute> theirs,
                            std::span<const ZombieOutbreak> their_outbreaks);

}  // namespace zombiescope::zombie

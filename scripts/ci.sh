#!/usr/bin/env bash
# The full CI pipeline, in the order a reviewer wants failures
# reported:
#
#   1. tier-1: plain build + all tests, then the obs subsystem under
#      TSan and ASan+UBSan (scripts/run_tier1.sh);
#   2. optionally, the benchmark regression gate against a baseline
#      ref (scripts/check_bench_regression.sh) — enabled by setting
#      ZS_CI_BENCH_BASELINE to a git ref (e.g. origin/main).
#
# Usage: scripts/ci.sh [build-dir]
#   ZS_CI_BENCH_BASELINE=origin/main scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

scripts/run_tier1.sh "${BUILD_DIR}"

if [ -n "${ZS_CI_BENCH_BASELINE:-}" ]; then
  echo "== ci: bench regression gate vs ${ZS_CI_BENCH_BASELINE}"
  scripts/check_bench_regression.sh "${ZS_CI_BENCH_BASELINE}"
else
  echo "== ci: bench gate skipped (set ZS_CI_BENCH_BASELINE=<ref> to enable)"
fi

echo "== ci: OK"

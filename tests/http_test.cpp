// Tests for the embedded introspection HTTP server: endpoint routing,
// Prometheus exposition validity, journal tailing, and scraping while a
// simulation is actively running on another thread.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "netbase/rng.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::obs {
namespace {

struct Response {
  int status = 0;
  std::string head;
  std::string body;
};

/// Minimal blocking HTTP/1.0-style client: one request, read to EOF
/// (the server always sends Connection: close).
Response http_get(std::uint16_t port, const std::string& target,
                  const std::string& method = "GET") {
  Response res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return res;
  }
  const std::string request =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return res;
  res.head = raw.substr(0, split);
  res.body = raw.substr(split + 4);
  if (res.head.rfind("HTTP/1.1 ", 0) == 0)
    res.status = std::atoi(res.head.c_str() + std::strlen("HTTP/1.1 "));
  return res;
}

class ObsHttp : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.start(0));  // ephemeral port
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }
  void TearDown() override { server_.stop(); }

  HttpServer server_;
};

TEST_F(ObsHttp, MetricsEndpointServesValidPrometheus) {
  Registry::global().counter("zs_http_test_probe_total").inc(3);
  Registry::global().histogram("zs_http_test_seconds", duration_buckets()).observe(0.5);
  const Response res = http_get(server_.port(), "/metrics");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.head.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(res.body.find("zs_http_test_probe_total 3"), std::string::npos);
  EXPECT_NE(res.body.find("zs_http_test_seconds_quantile{q=\"0.95\"}"), std::string::npos);
  EXPECT_TRUE(prometheus_format_ok(res.body)) << res.body;
}

TEST_F(ObsHttp, HealthzReportsOk) {
  const Response res = http_get(server_.port(), "/healthz");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.head.find("application/json"), std::string::npos);
  EXPECT_NE(res.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(res.body.find("\"journal_emitted\""), std::string::npos);
}

TEST_F(ObsHttp, SpansEndpointServesJson) {
  { ScopedSpan span("http_test.span"); }
  const Response res = http_get(server_.port(), "/spans");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"spans\""), std::string::npos);
}

TEST_F(ObsHttp, JournalTailServesRecentEvents) {
  Journal& journal = Journal::global();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(kCatAll);
  JournalEvent ev;
  ev.type = JournalEventType::kSimSessionDown;
  ev.time = 1234;
  ev.a = 11;
  ev.b = 12;
  journal.emit<kCatFault>(ev);
  const Response res = http_get(server_.port(), "/journal/tail?n=8");
  journal.set_enabled_categories(saved);
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"ev\":\"sim_session_down\""), std::string::npos);
  // Every line must parse back as a journal event.
  std::size_t start = 0;
  while (start < res.body.size()) {
    auto end = res.body.find('\n', start);
    if (end == std::string::npos) end = res.body.size();
    const std::string line = res.body.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_TRUE(parse_ndjson(line).has_value()) << line;
    }
    start = end + 1;
  }
}

TEST_F(ObsHttp, JournalTailCategoryFilter) {
  Journal& journal = Journal::global();
  journal.reset();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(kCatAll);
  JournalEvent fault;
  fault.type = JournalEventType::kFaultReceiveStall;
  fault.a = 65001;
  journal.emit<kCatFault>(fault);
  JournalEvent detect;
  detect.type = JournalEventType::kZombieDeclared;
  journal.emit<kCatDetector>(detect);

  const Response faults = http_get(server_.port(), "/journal/tail?category=fault");
  EXPECT_EQ(faults.status, 200);
  EXPECT_NE(faults.body.find("fault_receive_stall"), std::string::npos);
  EXPECT_EQ(faults.body.find("zombie_declared"), std::string::npos);

  // Comma lists compose; unknown names are a client error, not an
  // empty 200 (a typo must not read as "no events").
  const Response both =
      http_get(server_.port(), "/journal/tail?category=fault,detector");
  EXPECT_NE(both.body.find("fault_receive_stall"), std::string::npos);
  EXPECT_NE(both.body.find("zombie_declared"), std::string::npos);
  EXPECT_EQ(http_get(server_.port(), "/journal/tail?category=bogus").status, 400);

  journal.set_enabled_categories(saved);
  journal.reset();
}

TEST_F(ObsHttp, CausalEndpointServesPropagationTree) {
  CausalTracer& tracer = CausalTracer::global();
  tracer.reset();
  HopRecord root;
  root.trace_id = 21;
  root.prefix = netbase::Prefix::parse("203.0.113.0/24");
  root.from_asn = 0;
  root.to_asn = 65000;
  root.time = 1000;
  root.hop = 0;
  root.kind = TraceKind::kWithdrawal;
  root.decision = HopDecision::kOriginated;
  tracer.record(root);
  HopRecord dead = root;
  dead.from_asn = 65000;
  dead.to_asn = 65001;
  dead.hop = 1;
  dead.decision = HopDecision::kSuppressedByFault;
  tracer.record(dead);

  // Index view lists the traced prefix.
  const Response index = http_get(server_.port(), "/causal");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("203.0.113.0/24"), std::string::npos);

  // Percent-encoded prefix query renders the tree.
  const Response tree =
      http_get(server_.port(), "/causal?prefix=203.0.113.0%2F24");
  EXPECT_EQ(tree.status, 200);
  EXPECT_NE(tree.body.find("trace 21"), std::string::npos);
  EXPECT_NE(tree.body.find("rooted at AS65000"), std::string::npos);
  EXPECT_NE(tree.body.find("suppressed_by_fault"), std::string::npos);

  EXPECT_EQ(http_get(server_.port(), "/causal?prefix=nonsense").status, 400);
  tracer.reset();
}

TEST_F(ObsHttp, UnknownPathIs404AndPostIs405) {
  EXPECT_EQ(http_get(server_.port(), "/nope").status, 404);
  EXPECT_EQ(http_get(server_.port(), "/metrics", "POST").status, 405);
  EXPECT_EQ(http_get(server_.port(), "/nope", "PUT").status, 405);
  EXPECT_EQ(http_get(server_.port(), "/metrics", "DELETE").status, 405);
}

TEST_F(ObsHttp, IndexListsBuiltinEndpoints) {
  const Response res = http_get(server_.port(), "/");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.head.find("application/json"), std::string::npos);
  for (const char* path : {"\"path\":\"/metrics\"", "\"path\":\"/healthz\"",
                           "\"path\":\"/spans\"", "\"path\":\"/journal/tail\""}) {
    EXPECT_NE(res.body.find(path), std::string::npos) << path << " missing in " << res.body;
  }
  EXPECT_NE(res.body.find("\"stream\":false"), std::string::npos);
}

TEST_F(ObsHttp, HeadIsGetWithoutBody) {
  const Response get = http_get(server_.port(), "/healthz");
  const Response head = http_get(server_.port(), "/healthz", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty()) << head.body;
  // The headers still advertise the GET body's length.
  const std::string want =
      "Content-Length: " + std::to_string(get.body.size());
  EXPECT_NE(head.head.find(want), std::string::npos) << head.head;
}

TEST(ObsHttpIndex, RegisteredEndpointsAppearWithStreamFlag) {
  HttpServer server;
  SseChannel channel;
  server.add_endpoint("/custom", [](std::string_view) {
    return HttpResponse{200, "text/plain", "hi", ""};
  });
  server.add_stream("/events", &channel);
  ASSERT_TRUE(server.start(0));
  const Response res = http_get(server.port(), "/");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("{\"path\":\"/custom\",\"stream\":false}"),
            std::string::npos)
      << res.body;
  EXPECT_NE(res.body.find("{\"path\":\"/events\",\"stream\":true}"),
            std::string::npos)
      << res.body;
  server.stop();
}

TEST_F(ObsHttp, CountsRequestsServed) {
  const std::uint64_t before = server_.requests_served();
  http_get(server_.port(), "/healthz");
  http_get(server_.port(), "/healthz");
  EXPECT_EQ(server_.requests_served(), before + 2);
}

TEST(ObsHttpLifecycle, StopIsIdempotentAndPortRebindable) {
  HttpServer a;
  ASSERT_TRUE(a.start(0));
  const std::uint16_t port = a.port();
  a.stop();
  a.stop();
  EXPECT_FALSE(a.running());
  HttpServer b;
  EXPECT_TRUE(b.start(port));  // freed by SO_REUSEADDR + close
  b.stop();
}

// The acceptance-criterion test: scraping /metrics while a simulation
// is actively journaling and bumping counters on another thread must
// return valid Prometheus text.
TEST(ObsHttpLive, ScrapeDuringActiveSim) {
  using netbase::kHour;
  using netbase::kMinute;
  using netbase::Prefix;
  using netbase::Rng;
  using netbase::utc;
  using topology::Relationship;
  using topology::Topology;

  Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({11, 2, "M1"});
  topo.add_as({12, 2, "M2"});
  topo.add_as({13, 2, "M3"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 11, Relationship::kCustomer);
  topo.add_link(1, 12, Relationship::kCustomer);
  topo.add_link(2, 13, Relationship::kCustomer);
  topo.add_link(11, 100, Relationship::kCustomer);
  topo.add_link(12, 100, Relationship::kCustomer);
  topo.add_link(13, 100, Relationship::kCustomer);

  Journal& journal = Journal::global();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(kCatAll);

  HttpServer server;
  ASSERT_TRUE(server.start(0));

  const Prefix beacon = Prefix::parse("2a0d:3dc1:1145::/48");
  std::atomic<bool> stop{false};
  std::thread driver([&] {
    simnet::SimConfig config;
    config.min_link_delay = 2;
    config.max_link_delay = 10;
    simnet::Simulation sim(topo, config, Rng(7));
    auto t = utc(2024, 6, 4, 12, 0, 0);
    while (!stop.load(std::memory_order_acquire)) {
      sim.announce(t, 100, beacon);
      sim.withdraw(t + 15 * kMinute, 100, beacon);
      sim.run_until(t + kHour);
      t += 2 * kHour;
    }
  });

  bool sane = true;
  for (int i = 0; i < 5; ++i) {
    const Response res = http_get(server.port(), "/metrics");
    EXPECT_EQ(res.status, 200);
    if (!prometheus_format_ok(res.body)) {
      sane = false;
      ADD_FAILURE() << "invalid exposition on scrape " << i << ":\n" << res.body;
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  driver.join();
  server.stop();
  journal.set_enabled_categories(saved);
  journal.pump();
  EXPECT_TRUE(sane);
}

}  // namespace
}  // namespace zombiescope::obs

// simnet/dataplane.hpp — data-plane forwarding over the simulated
// control plane.
//
// The paper's Fig. 1 shows how a zombie route breaks actual traffic: a
// stale more-specific at a dominant AS pulls packets toward a router
// that no longer has the route, which bounces them back — a forwarding
// loop that drops traffic when TTL expires. The prior work this paper
// revises (Fontugne et al.) validated zombies with traceroutes; this
// module provides the equivalent instrument: hop-by-hop forwarding
// with longest-prefix match over each router's Loc-RIB, classifying
// the journey as delivered, looped, or blackholed.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "netbase/trie.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::simnet {

/// One simulated traceroute/forwarding outcome.
struct ForwardingResult {
  enum class Outcome {
    kDelivered,  // reached an AS that originates a covering prefix
    kLoop,       // revisited an AS (TTL would expire)
    kBlackhole,  // an AS had no route toward the destination
  };
  Outcome outcome = Outcome::kBlackhole;
  /// ASes traversed, starting with the source.
  std::vector<bgp::Asn> hops;
  /// For loops: the AS where the loop closed.
  bgp::Asn loop_at = 0;

  std::string to_string() const;
};

/// An immutable forwarding snapshot of the whole simulation: per-AS
/// FIBs (longest-prefix-match tries over the Loc-RIB best routes).
/// Build it after run_until(); forwarding queries are then O(prefix
/// bits) per hop.
class DataPlane {
 public:
  explicit DataPlane(const Simulation& sim);

  /// Forwards a packet from `source` toward `destination` hop by hop.
  ForwardingResult forward(bgp::Asn source, const netbase::IpAddress& destination) const;

  /// The next hop AS `asn` would use for `destination` (0 = no route;
  /// == asn means locally originated / delivered).
  bgp::Asn next_hop(bgp::Asn asn, const netbase::IpAddress& destination) const;

 private:
  struct FibEntry {
    bgp::Asn next_hop = 0;  // 0 = local origination
  };
  std::map<bgp::Asn, netbase::PrefixTrie<FibEntry>> fibs_;
};

}  // namespace zombiescope::simnet

# Empty dependencies file for fig6_pathlen_cdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table5_noisy_peers_beacons.dir/table5_noisy_peers_beacons.cpp.o"
  "CMakeFiles/table5_noisy_peers_beacons.dir/table5_noisy_peers_beacons.cpp.o.d"
  "table5_noisy_peers_beacons"
  "table5_noisy_peers_beacons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_noisy_peers_beacons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

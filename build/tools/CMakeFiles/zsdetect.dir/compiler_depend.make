# Empty compiler generated dependencies file for zsdetect.
# This may be replaced when dependencies are built.

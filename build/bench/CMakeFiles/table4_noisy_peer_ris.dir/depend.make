# Empty dependencies file for table4_noisy_peer_ris.
# This may be replaced when dependencies are built.

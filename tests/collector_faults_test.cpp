// Tests for the collector session fault knobs: per-family withdrawal
// loss, probabilistic and forced withdrawal delays, and phantom
// re-announcements — the mechanisms behind Tables 3/5 and Fig. 2.

#include <gtest/gtest.h>

#include "collector/collector.hpp"
#include "netbase/rng.hpp"

namespace zombiescope::collector {
namespace {

using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;
using topology::Relationship;
using topology::Topology;

const Prefix kV6 = Prefix::parse("2a0d:3dc1:1145::/48");
const Prefix kV4 = Prefix::parse("84.205.64.0/24");

Topology chain() {
  Topology topo;
  topo.add_as({10, 2, "transit"});
  topo.add_as({20, 2, "peerAS"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(10, 100, Relationship::kCustomer);
  topo.add_link(10, 20, Relationship::kCustomer);
  return topo;
}

struct Harness {
  Topology topo = chain();
  simnet::Simulation sim;
  Collector collector;

  Harness() : sim(topo, simnet::SimConfig{2, 8, 60}, Rng(1)),
              collector("rrc25", 12654, IpAddress::parse("193.0.29.28")) {}
};

SessionConfig base_session() {
  SessionConfig config;
  config.peer_asn = 20;
  config.peer_address = IpAddress::parse("2001:678:3f4:5::1");
  return config;
}

TEST(CollectorFaults, PerFamilyLossOverride) {
  Harness h;
  SessionConfig config = base_session();
  config.withdrawal_loss_probability_v4 = 0.0;
  config.withdrawal_loss_probability_v6 = 1.0;
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.announce(t0, 100, kV4);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV4);
  h.sim.run_until(t0 + kHour);
  EXPECT_TRUE(session.view().contains(kV6));    // v6 withdrawal lost
  EXPECT_FALSE(session.view().contains(kV4));   // v4 withdrawn cleanly
}

TEST(CollectorFaults, LossProbabilityForHelper) {
  SessionConfig config;
  config.withdrawal_loss_probability = 0.25;
  EXPECT_EQ(config.loss_probability_for(netbase::AddressFamily::kIpv4), 0.25);
  config.withdrawal_loss_probability_v4 = 0.5;
  EXPECT_EQ(config.loss_probability_for(netbase::AddressFamily::kIpv4), 0.5);
  EXPECT_EQ(config.loss_probability_for(netbase::AddressFamily::kIpv6), 0.25);
}

TEST(CollectorFaults, DelayedWithdrawalRecordsLate) {
  Harness h;
  SessionConfig config = base_session();
  config.withdrawal_delay_probability = 1.0;
  config.withdrawal_delay_min = 100 * kMinute;
  config.withdrawal_delay_max = 100 * kMinute;
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  h.sim.run_until(t0 + 15 * kMinute + 99 * kMinute);
  EXPECT_TRUE(session.view().contains(kV6)) << "cleared before the delay elapsed";
  h.sim.run_until(t0 + 15 * kMinute + 102 * kMinute);
  EXPECT_FALSE(session.view().contains(kV6));
  // The withdrawal record carries the late timestamp.
  const auto* last = std::get_if<mrt::Bgp4mpMessage>(&h.collector.updates().back());
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->update.is_withdrawal_only());
  EXPECT_GE(last->timestamp, t0 + 15 * kMinute + 100 * kMinute);
}

TEST(CollectorFaults, DelayedWithdrawalCancelledByNewAnnouncement) {
  Harness h;
  SessionConfig config = base_session();
  config.withdrawal_delay_probability = 1.0;
  config.withdrawal_delay_min = 100 * kMinute;
  config.withdrawal_delay_max = 100 * kMinute;
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  // Re-announced before the delayed clear fires: the route must stay.
  h.sim.announce(t0 + kHour, 100, kV6);
  h.sim.run_until(t0 + 4 * kHour);
  EXPECT_TRUE(session.view().contains(kV6));
}

TEST(CollectorFaults, ForcedDelayAppliesToSpecificPrefix) {
  Harness h;
  SessionConfig config = base_session();
  config.forced_delays.push_back({kV6, 145 * kMinute});
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.announce(t0, 100, kV4);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV4);
  h.sim.run_until(t0 + 15 * kMinute + 60 * kMinute);
  EXPECT_TRUE(session.view().contains(kV6));   // forced delay pending
  EXPECT_FALSE(session.view().contains(kV4));  // other prefix unaffected
  h.sim.run_until(t0 + 15 * kMinute + 150 * kMinute);
  EXPECT_FALSE(session.view().contains(kV6));
}

TEST(CollectorFaults, PhantomReannounceRestoresStaleRoute) {
  Harness h;
  SessionConfig config = base_session();
  config.phantom_reannounce_probability = 1.0;
  config.phantom_reannounce_min = 85 * kMinute;
  config.phantom_reannounce_max = 85 * kMinute;
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  h.sim.run_until(t0 + 15 * kMinute + 60 * kMinute);
  EXPECT_FALSE(session.view().contains(kV6)) << "withdrawal must be recorded on time";
  h.sim.run_until(t0 + 15 * kMinute + 95 * kMinute);
  EXPECT_TRUE(session.view().contains(kV6)) << "phantom re-announcement missing";
  // The archive ends with an announcement of the stale path.
  const auto* last = std::get_if<mrt::Bgp4mpMessage>(&h.collector.updates().back());
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->update.is_announcement());
  EXPECT_EQ(last->update.attributes.as_path.origin_asn(), 100u);
}

TEST(CollectorFaults, PhantomCancelledByRealAnnouncement) {
  Harness h;
  SessionConfig config = base_session();
  config.phantom_reannounce_probability = 1.0;
  config.phantom_reannounce_min = 85 * kMinute;
  config.phantom_reannounce_max = 85 * kMinute;
  auto& session = h.collector.add_peer(h.sim, config, Rng(7));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.sim.announce(t0, 100, kV6);
  h.sim.withdraw(t0 + 15 * kMinute, 100, kV6);
  // A real announcement (and its own withdrawal) happen before the
  // phantom fires; the phantom must not clobber the real state.
  h.sim.announce(t0 + 30 * kMinute, 100, kV6);
  h.sim.withdraw(t0 + 45 * kMinute, 100, kV6);
  h.sim.run_until(t0 + 15 * kMinute + 90 * kMinute);
  // The second withdrawal's own phantom is still pending (85 min after
  // ~46 min); only the *first* phantom was cancelled.
  h.sim.run_until(t0 + 46 * kMinute + 90 * kMinute);
  EXPECT_TRUE(session.view().contains(kV6));
}

}  // namespace
}  // namespace zombiescope::collector

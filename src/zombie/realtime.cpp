#include "zombie/realtime.hpp"

#include "obs/journal.hpp"

namespace zombiescope::zombie {

namespace {

void journal_transition(obs::JournalEventType type, const netbase::Prefix& prefix,
                        const PeerKey& peer, netbase::TimePoint at,
                        netbase::Duration threshold, netbase::TimePoint withdrawn_at) {
  obs::Journal& journal = obs::Journal::global();
  if (!journal.enabled(obs::kCatDetector)) return;
  obs::JournalEvent ev;
  ev.type = type;
  ev.time = at;
  ev.has_prefix = true;
  ev.prefix = prefix;
  ev.has_peer = true;
  ev.peer_asn = peer.asn;
  ev.peer_address = peer.address;
  ev.a = threshold;
  ev.b = withdrawn_at;
  journal.emit<obs::kCatDetector>(ev);
}

}  // namespace

void RealTimeZombieDetector::expect(const beacon::BeaconEvent& event) {
  if (event.superseded) return;
  // A recycled prefix supersedes the previous watch. Any zombie the old
  // watch had raised is resolved at the recycle instant: the fresh
  // announcement replaces the stuck route, so the route is no longer
  // stale even though no withdrawal ever cleared it.
  auto it = watches_.find(event.prefix);
  if (it != watches_.end()) {
    for (auto& [peer, state] : it->second.peers) {
      (void)state;
      resolve(it->second, peer, event.announce_time);
    }
  }
  Watch watch;
  watch.event = event;
  watches_[event.prefix] = std::move(watch);
}

void RealTimeZombieDetector::resolve(Watch& watch, const PeerKey& peer,
                                     netbase::TimePoint at) {
  auto it = watch.peers.find(peer);
  if (it == watch.peers.end()) return;
  if (it->second.alerted && resolution_fn_) {
    ZombieResolution resolution;
    resolution.prefix = watch.event.prefix;
    resolution.peer = peer;
    resolution.withdrawn_at = watch.event.withdraw_time;
    resolution.resolved_at = at;
    resolution_fn_(resolution);
  }
  if (it->second.alerted) {
    ++resolutions_;
    journal_transition(obs::JournalEventType::kZombieCleared, watch.event.prefix,
                       peer, at, config_.threshold, watch.event.withdraw_time);
  }
  it->second.announced = false;
  it->second.alerted = false;
}

void RealTimeZombieDetector::fire_deadline(Watch& watch) {
  if (watch.deadline_fired) return;
  watch.deadline_fired = true;
  for (auto& [peer, state] : watch.peers) {
    if (!state.announced || state.alerted) continue;
    state.alerted = true;
    ++alerts_raised_;
    journal_transition(obs::JournalEventType::kZombieDeclared, watch.event.prefix,
                       peer, watch.event.withdraw_time + config_.threshold,
                       config_.threshold, watch.event.withdraw_time);
    if (alert_fn_) {
      ZombieAlert alert;
      alert.prefix = watch.event.prefix;
      alert.peer = peer;
      alert.withdrawn_at = watch.event.withdraw_time;
      alert.raised_at = watch.event.withdraw_time + config_.threshold;
      alert.stuck_path = state.path;
      alert_fn_(alert);
    }
  }
}

void RealTimeZombieDetector::advance(netbase::TimePoint now) {
  now_ = std::max(now_, now);
  for (auto& [prefix, watch] : watches_) {
    (void)prefix;
    if (!watch.deadline_fired && now_ >= watch.event.withdraw_time + config_.threshold)
      fire_deadline(watch);
  }
}

void RealTimeZombieDetector::ingest(const mrt::MrtRecord& record) {
  advance(mrt::record_timestamp(record));

  if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
    const PeerKey peer{msg->peer_asn, msg->peer_address};
    if (excluded(peer)) return;
    const netbase::TimePoint t = msg->timestamp;
    for (const auto& prefix : msg->update.withdrawn) {
      auto it = watches_.find(prefix);
      if (it == watches_.end() || t < it->second.event.announce_time) continue;
      resolve(it->second, peer, t);
    }
    for (const auto& prefix : msg->update.announced) {
      auto it = watches_.find(prefix);
      if (it == watches_.end() || t < it->second.event.announce_time) continue;
      Watch& watch = it->second;
      auto& state = watch.peers[peer];
      state.announced = true;
      state.path = msg->update.attributes.as_path;
      // A (re)announcement after the deadline: the route is stuck or
      // resurrected — alert immediately.
      if (watch.deadline_fired && !state.alerted) {
        state.alerted = true;
        ++alerts_raised_;
        journal_transition(obs::JournalEventType::kZombieDeclared, prefix, peer, t,
                           config_.threshold, watch.event.withdraw_time);
        if (alert_fn_) {
          ZombieAlert alert;
          alert.prefix = prefix;
          alert.peer = peer;
          alert.withdrawn_at = watch.event.withdraw_time;
          alert.raised_at = t;
          alert.stuck_path = state.path;
          alert_fn_(alert);
        }
      }
    }
    return;
  }
  if (const auto* state_msg = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
    if (state_msg->old_state == bgp::SessionState::kEstablished &&
        state_msg->new_state != bgp::SessionState::kEstablished) {
      const PeerKey peer{state_msg->peer_asn, state_msg->peer_address};
      for (auto& [prefix, watch] : watches_) {
        (void)prefix;
        resolve(watch, peer, state_msg->timestamp);
      }
    }
  }
}

std::vector<ZombieAlert> RealTimeZombieDetector::active_zombies() const {
  std::vector<ZombieAlert> out;
  for (const auto& [prefix, watch] : watches_) {
    for (const auto& [peer, state] : watch.peers) {
      if (!state.alerted) continue;
      ZombieAlert alert;
      alert.prefix = prefix;
      alert.peer = peer;
      alert.withdrawn_at = watch.event.withdraw_time;
      alert.stuck_path = state.path;
      out.push_back(std::move(alert));
    }
  }
  return out;
}

}  // namespace zombiescope::zombie

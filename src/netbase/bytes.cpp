#include "netbase/bytes.hpp"

namespace zombiescope::netbase {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::size_t ByteWriter::reserve(std::size_t n) {
  const std::size_t offset = buf_.size();
  buf_.resize(buf_.size() + n, 0);
  return offset;
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 24);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v >> 16);
  buf_.at(offset + 2) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 3) = static_cast<std::uint8_t>(v);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n)
    throw DecodeError("truncated message: need " + std::to_string(n) + " bytes, have " +
                      std::to_string(remaining()));
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::expect_done(std::string_view context) const {
  if (!done())
    throw DecodeError(std::string(context) + ": " + std::to_string(remaining()) +
                      " trailing bytes");
}

}  // namespace zombiescope::netbase

// scenarios/longlived2024.hpp — the paper's own experiment (§4–§5):
// the AS210312 beacon deployment of June 2024 plus ~11 months of RIB
// monitoring, with every documented anecdote injected through the
// mechanism the paper attributes it to:
//
//  * three noisy RRC25 peer routers — two sessions of AS211509 (one
//    v4-transport, one v6) with perfectly correlated noise, and one of
//    AS211380 (Table 5, Fig. 2 "all peers" vs "noisy excluded");
//  * background slow-convergence withdrawals (the declining Fig. 2
//    curve between 90 and 180 minutes);
//  * the Telstra-style resurrection at ~170 minutes: peers withdraw at
//    ~145 min when their session to the infected AS4637 drops, and are
//    re-infected when it re-establishes (the Fig. 2 uptick, common
//    subpath "4637 1299 25091 8298 210312");
//  * the impactful outbreak 2a0d:3dc1:2233::/48 — AS33891
//    (Core-Backbone analogue) suppresses withdrawals to its customer
//    cone; cleaned up 4 days later (§5.2);
//  * the extremely long-lived outbreak 2a0d:3dc1:163::/48 via AS9304
//    (HGC analogue), stuck in AS9304/AS17639 for ~4.5 months and in
//    AS142271 (infected 5 days late through a session re-establish)
//    for ~4 months (§5.2);
//  * the 8.5-month resurrected prefix 2a0d:3dc1:1851::/48 stuck in
//    AS28598, appearing at peer AS61573 on 06-29, vanishing 10-04,
//    reappearing 11-29 and surviving until 2025-03-11 (Fig. 4);
//  * a cluster of ~35–37-day outbreaks visible only from the AS207301
//    peer behind noisy AS211509 (Fig. 3's 35/37 knee);
//  * the ROA registration and its removal on 2024-06-22 19:49 UTC —
//    compliant-ROV ASes evict the now-Invalid zombies, import-only
//    and no-ROV ASes keep them (Fig. 3's RPKI observation).

#pragma once

#include "rpki/rov.hpp"
#include "scenarios/common.hpp"

namespace zombiescope::scenarios {

struct LongLived2024Spec {
  int monitor_sessions = 30;

  /// Background slow convergence on normal sessions: most delayed
  /// withdrawals clear within 30–160 minutes (the declining part of
  /// Fig. 2)...
  double delayed_withdrawal_probability = 0.0026;
  /// ...while a few sessions exhibit hours-long convergence tails
  /// (zombies still present at the 3-hour mark but gone within a day —
  /// the paper's 31.4 % survival at 3 h with few day-scale outbreaks).
  int long_tail_sessions = 6;
  double long_tail_probability = 0.0027;

  /// Noisy RRC25 peers (calibrated against Table 5).
  double noisy_211509_loss = 0.0887;
  double noisy_211509_delay_probability = 0.0161;
  double noisy_211380_loss = 0.0685;
  double noisy_211380_delay_probability = 0.0023;

  /// Share of generated ASes per ROV policy.
  double rov_compliant_fraction = 0.20;
  double rov_import_only_fraction = 0.10;

  /// End of the RIB monitoring window (paper: 2025-05-09).
  netbase::TimePoint monitor_until = netbase::utc(2025, 5, 9);

  /// Extra peer sessions on a RouteViews-style collector. The paper
  /// uses RIS only and acknowledges "the potential omission of zombie
  /// routes" (§5); setting this nonzero quantifies that omission
  /// (bench/ablation_routeviews). Zero reproduces the paper setup.
  int routeviews_sessions = 0;

  std::uint64_t seed = 20240604;
};

/// The grafted "real" ASNs (the paper's anecdotes).
struct Cast {
  static constexpr bgp::Asn kOrigin = 210312;
  static constexpr bgp::Asn kUpstream = 8298;
  static constexpr bgp::Asn kTransit = 25091;
  static constexpr bgp::Asn kTier1 = 1299;
  static constexpr bgp::Asn kTelstra = 4637;
  static constexpr bgp::Asn kCoreBackbone = 33891;
  static constexpr bgp::Asn kHgc = 9304;
  static constexpr bgp::Asn kHgcPeer2 = 17639;
  static constexpr bgp::Asn kHgcPeer3 = 142271;
  static constexpr bgp::Asn kHgcUp1 = 43100;
  static constexpr bgp::Asn kHgcUp2 = 6939;
  static constexpr bgp::Asn kNoisy1 = 211509;
  static constexpr bgp::Asn kNoisy2 = 211380;
  static constexpr bgp::Asn kClusterPeer = 207301;
  // The 1851 chain: 61573 28598 10429 12956 3356 34549 8298 210312.
  static constexpr bgp::Asn kResPeer = 61573;
  static constexpr bgp::Asn kResHolder = 28598;
  static constexpr bgp::Asn kResUp1 = 10429;
  static constexpr bgp::Asn kResUp2 = 12956;
  static constexpr bgp::Asn kResUp3 = 3356;
  static constexpr bgp::Asn kResUp4 = 34549;
};

struct LongLived2024Output : ScenarioOutput {
  /// Anecdote prefixes (derived from the beacon schedule).
  netbase::Prefix resurrected_prefix;  // 2a0d:3dc1:1851::/48
  netbase::Prefix impactful_prefix;    // 2a0d:3dc1:2233::/48
  netbase::Prefix longest_prefix;      // 2a0d:3dc1:163::/48
  netbase::TimePoint roa_removed_at = 0;
  netbase::Duration rib_dump_interval = 8 * netbase::kHour;
  /// Peers of the documented noisy routers (Table 5 rows).
  std::vector<zombie::PeerKey> rrc25_noisy_routers;
  /// Peers attached to the RouteViews-style collector (empty unless
  /// spec.routeviews_sessions > 0).
  std::vector<zombie::PeerKey> routeviews_peers;
};

LongLived2024Output run_longlived2024(const LongLived2024Spec& spec);

}  // namespace zombiescope::scenarios

#include "obs/http.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <thread>

#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/journal.hpp"
#include "obs/lathist.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace zombiescope::obs {

namespace {

constexpr int kPollIntervalMs = 100;
constexpr int kRequestTimeoutMs = 2000;
// A queued (non-streaming) response must drain within this bound; a
// client that stops reading is closed when it expires.
constexpr int kFlushTimeoutMs = 30'000;
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kMaxConnections = 64;

using Clock = std::chrono::steady_clock;

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Bad Request";
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// One HTTP/1.1 chunk (streams use chunked transfer coding).
std::string chunk(std::string_view payload) {
  char head[16];
  std::snprintf(head, sizeof(head), "%zx\r\n", payload.size());
  std::string out = head;
  out += payload;
  out += "\r\n";
  return out;
}

HttpResponse route(std::string_view method, std::string_view target) {
  const std::string_view path = target.substr(0, target.find('?'));
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n", {}};
  }
  if (path == "/metrics") {
    // Refresh the zs_heap_* gauges so scrapes see current allocation
    // counters even mid-session (no-op when zsheap never ran).
    heap_publish_metrics();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus(Registry::global().snapshot()), {}};
  }
  if (path == "/healthz") {
    std::string body = "{\"status\":\"ok\",\"spans_recorded\":" +
                       std::to_string(Tracer::global().total_recorded()) +
                       ",\"journal_emitted\":" +
                       std::to_string(Journal::global().emitted()) +
                       ",\"journal_dropped\":" +
                       std::to_string(Journal::global().dropped()) + "}\n";
    return {200, "application/json", std::move(body), {}};
  }
  if (path == "/latency") {
    // The zslat latency histograms (obs/lathist.hpp): every registered
    // pipeline-stage histogram as JSON with p50/p95/p99, or folded
    // per-bucket text with ?format=folded. With ZS_LATHIST_ENABLED=0
    // the registry is an empty stub and this renders "{}".
    if (query_string(target, "format") == "folded") {
      return {200, "text/plain; charset=utf-8",
              LatRegistry::global().to_folded(), {}};
    }
    return {200, "application/json", LatRegistry::global().to_json(), {}};
  }
  if (path == "/spans") {
    return {200, "application/json", trace_to_json(Tracer::global().snapshot()),
            {}};
  }
  if (path == "/journal/tail") {
    const std::size_t n = query_uint(target, "n", 256);
    std::uint32_t category_mask = kCatAll;
    if (const std::string categories = query_string(target, "category");
        !categories.empty()) {
      const auto parsed = parse_categories(categories);
      if (!parsed.has_value()) {
        return {400, "text/plain; charset=utf-8",
                "unknown category in ?category=" + categories + "\n", {}};
      }
      category_mask = *parsed;
    }
    std::string body;
    for (const JournalEvent& event : Journal::global().tail(n)) {
      if ((category_of(event.type) & category_mask) == 0) continue;
      body += to_ndjson(event);
      body += '\n';
    }
    return {200, "application/x-ndjson", std::move(body), {}};
  }
  if (path == "/causal") {
    // Preprocessor guard (not if constexpr): the CausalTracer type
    // itself only exists when the tracer is compiled in.
#if !ZS_CAUSAL_ENABLED
    return {501, "text/plain; charset=utf-8",
            "causal tracer compiled out (ZS_CAUSAL_ENABLED=0)\n", {}};
#else
    {
      const std::string prefix_text = query_string(target, "prefix");
      CausalTracer& tracer = CausalTracer::global();
      tracer.drain();
      if (prefix_text.empty()) {
        // Index: which prefixes have traces buffered.
        std::string body;
        for (const netbase::Prefix& prefix : tracer.traced_prefixes()) {
          body += prefix.to_string();
          body += '\n';
        }
        if (body.empty()) body = "no traced prefixes\n";
        return {200, "text/plain; charset=utf-8", std::move(body), {}};
      }
      const auto prefix = netbase::Prefix::try_parse(prefix_text);
      if (!prefix.has_value()) {
        return {400, "text/plain; charset=utf-8",
                "bad ?prefix=" + prefix_text + "\n", {}};
      }
      const std::size_t max_traces = query_uint(target, "max_traces", 8);
      return {200, "text/plain; charset=utf-8",
              render_propagation_tree(*prefix, tracer.records_for(*prefix),
                                      max_traces),
              {}};
    }
#endif
  }
  if (path == "/profile") {
    if constexpr (!kProfCompiledIn) {
      return {501, "text/plain; charset=utf-8",
              "profiler compiled out (ZS_PROF_ENABLED=0)\n", {}};
    }
    // On-demand CPU profile: sample for ?seconds=N (default 5, cap 60)
    // and reply with the folded-stack text. Blocking the serving thread
    // is acceptable — /profile is an operator action, not a scrape
    // target — but it does stall other clients for the window.
    const std::size_t seconds =
        std::min<std::size_t>(query_uint(target, "seconds", 5), 60);
    Profiler& profiler = Profiler::global();
    if (!profiler.start()) {
      return {409, "text/plain; charset=utf-8",
              "profiler already running (another /profile or --profile-out "
              "session is active)\n",
              {}};
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    const ProfileReport report = profiler.stop();
    std::string body = "# zsprof folded stacks; rate " +
                       std::to_string(report.rate_hz) + " Hz, " +
                       std::to_string(report.samples) + " samples over " +
                       std::to_string(seconds) + "s\n" + report.to_folded();
    return {200, "text/plain; charset=utf-8", std::move(body), {}};
  }
  if (path == "/heap") {
    if constexpr (!kHeapCompiledIn) {
      return {501, "text/plain; charset=utf-8",
              "allocation profiler compiled out (ZS_HEAP_ENABLED=0)\n", {}};
    }
    if (!HeapProfiler::interposition_available()) {
      return {501, "text/plain; charset=utf-8",
              "allocator interposition unavailable (sanitizer build)\n", {}};
    }
    // On-demand allocation profile, same contract as /profile: observe
    // allocations for ?seconds=N (default 5, cap 60), blocking the
    // serving thread, then reply with per-span shares + top sites.
    const std::size_t seconds =
        std::min<std::size_t>(query_uint(target, "seconds", 5), 60);
    HeapProfiler& profiler = HeapProfiler::global();
    if (!profiler.start()) {
      return {409, "text/plain; charset=utf-8",
              "heap profiler already running (another /heap or --heap-out "
              "session is active)\n",
              {}};
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    const HeapReport report = profiler.stop();
    return {200, "text/plain; charset=utf-8", report.top_report(20), {}};
  }
  return {404, "text/plain; charset=utf-8", "not found\n", {}};
}

}  // namespace

std::size_t query_uint(std::string_view target, std::string_view key,
                       std::size_t fallback) {
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return fallback;
  std::string_view query = target.substr(q + 1);
  const std::string prefix = std::string(key) + "=";
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind(prefix, 0) != 0) continue;
    std::size_t value = 0;
    for (char c : pair.substr(prefix.size())) {
      if (c < '0' || c > '9') return fallback;
      value = value * 10 + static_cast<std::size_t>(c - '0');
      if (value > 1'000'000) return fallback;
    }
    return value == 0 ? fallback : value;
  }
  return fallback;
}

std::string query_string(std::string_view target, std::string_view key) {
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view query = target.substr(q + 1);
  const std::string prefix = std::string(key) + "=";
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.rfind(prefix, 0) != 0) continue;
    std::string_view raw = pair.substr(prefix.size());
    std::string value;
    value.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '%' && i + 2 < raw.size()) {
        const auto hex = [](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        const int hi = hex(raw[i + 1]);
        const int lo = hex(raw[i + 2]);
        if (hi >= 0 && lo >= 0) {
          value.push_back(static_cast<char>(hi * 16 + lo));
          i += 2;
          continue;
        }
      }
      value.push_back(raw[i] == '+' ? ' ' : raw[i]);
    }
    return value;
  }
  return {};
}

// --- SseChannel ------------------------------------------------------

SseChannel::SseChannel(std::size_t max_frames)
    : max_frames_(max_frames == 0 ? 1 : max_frames) {}

std::string SseChannel::frame(std::string_view event, std::string_view data,
                              std::uint64_t id) {
  std::string f;
  f.reserve(event.size() + data.size() + 48);
  f += "event: ";
  f += event;
  f += '\n';
  std::size_t pos = 0;
  for (;;) {
    const std::size_t nl = data.find('\n', pos);
    f += "data: ";
    f += data.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                       : nl - pos);
    f += '\n';
    if (nl == std::string_view::npos || nl + 1 >= data.size()) break;
    pos = nl + 1;
  }
  f += "id: ";
  f += std::to_string(id);
  f += "\n\n";
  return f;
}

void SseChannel::publish(std::string_view event, std::string_view data) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_.push_back(
      {frame(event, data, next_seq_), std::chrono::steady_clock::now()});
  ++next_seq_;
  if (frames_.size() > max_frames_) {
    frames_.pop_front();
    ++first_seq_;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    // Wake the serving loop's poll() immediately; a failed write means
    // the pipe already holds a pending wakeup (or the server is gone),
    // both fine.
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &byte, 1);
  }
}

void SseChannel::set_wakeup_fd(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  wake_fd_ = fd;
}

void SseChannel::set_latency_sink(std::function<void(std::uint64_t)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_sink_ = std::move(sink);
}

std::uint64_t SseChannel::head() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t SseChannel::collect(std::uint64_t cursor, std::string& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cursor == 0) {
    cursor = first_seq_;  // ?since=0 style "replay everything retained"
  } else if (cursor < first_seq_) {
    out += ": missed " + std::to_string(first_seq_ - cursor) + " events\n\n";
    cursor = first_seq_;
  }
  const auto now = std::chrono::steady_clock::now();
  for (std::uint64_t seq = cursor; seq < next_seq_; ++seq) {
    const Frame& f = frames_[static_cast<std::size_t>(seq - first_seq_)];
    out += f.text;
    if (latency_sink_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          now - f.published_at)
                          .count();
      latency_sink_(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
  }
  return next_seq_;
}

// --- HttpServer ------------------------------------------------------

struct HttpServer::Conn {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool responded = false;  // request routed, response or stream head queued
  bool streaming = false;
  SseChannel* channel = nullptr;
  std::uint64_t cursor = 0;
  Clock::time_point read_deadline{};
  Clock::time_point flush_deadline{};  // non-streaming responses only
  Clock::time_point last_beat{};
  bool dead = false;
};

void HttpServer::add_endpoint(std::string path, Handler handler) {
  if (running()) return;  // registration is a startup-time operation
  routes_.push_back({std::move(path), Route{std::move(handler), nullptr}});
}

void HttpServer::add_stream(std::string path, SseChannel* channel) {
  if (running() || channel == nullptr) return;
  routes_.push_back({std::move(path), Route{nullptr, channel}});
}

bool HttpServer::start(std::uint16_t port) {
  if (listen_fd_ >= 0) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  // Self-pipe: every SSE channel writes a byte on publish() so the
  // serving loop's poll() returns immediately instead of waiting out
  // its pump interval — frame delivery is event-driven.
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) == 0 && set_nonblocking(pipe_fds[0]) &&
      set_nonblocking(pipe_fds[1])) {
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
    for (auto& [path, route] : routes_) {
      if (route.channel != nullptr) route.channel->set_wakeup_fd(wake_wr_);
    }
  } else if (pipe_fds[0] >= 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
  }

  stop_.store(false, std::memory_order_relaxed);
  Registry& reg = Registry::global();
  m_requests_ = reg.counter("zs_http_requests_total");
  m_evictions_ = reg.counter("zs_http_slow_clients_evicted_total");
  m_open_conns_ = reg.gauge("zs_http_open_connections");
  m_sse_clients_ = reg.gauge("zs_http_sse_clients");
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (wake_wr_ >= 0) {
    // Kick the poll() so shutdown is not delayed by a full interval.
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (auto& [path, route] : routes_) {
    if (route.channel != nullptr) route.channel->set_wakeup_fd(-1);
  }
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  std::vector<pollfd> pfds;
  const std::size_t fixed = wake_rd_ >= 0 ? 2 : 1;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    if (wake_rd_ >= 0) pfds.push_back({wake_rd_, POLLIN, 0});
    bool any_stream = false;
    for (const Conn* c : conns_) {
      short events = POLLIN;  // always watch for data / orderly close
      if (c->out_off < c->out.size()) events |= POLLOUT;
      if (c->streaming) any_stream = true;
      pfds.push_back({c->fd, events, 0});
    }
    // With the publish self-pipe in the set, the stream interval is
    // only a heartbeat/eviction bound, not the frame-delivery floor.
    ::poll(pfds.data(), pfds.size(),
           any_stream ? stream_poll_ms_ : kPollIntervalMs);
    if (stop_.load(std::memory_order_relaxed)) break;

    if (wake_rd_ >= 0 && (pfds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
      }
    }

    // Process the connections that were polled (accept afterwards, so
    // pfds and conns_ stay index-aligned here).
    const std::size_t polled = pfds.size() - fixed;
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = *conns_[i];
      const short re = pfds[i + fixed].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) c.dead = true;
      if (!c.dead && (re & (POLLIN | POLLHUP)) != 0) read_ready(c);
      if (!c.dead && c.streaming) pump_stream(c);
      if (!c.dead && c.out_off < c.out.size()) flush_out(c);
      if (!c.dead && !c.responded && now > c.read_deadline) c.dead = true;
      if (!c.dead && c.responded && !c.streaming &&
          c.out_off < c.out.size() && now > c.flush_deadline) {
        c.dead = true;
      }
    }

    // Reap closed connections.
    for (std::size_t i = conns_.size(); i-- > 0;) {
      Conn* c = conns_[i];
      if (!c->dead) continue;
      if (c->streaming) m_sse_clients_.add(-1);
      m_open_conns_.add(-1);
      ::close(c->fd);
      delete c;
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    }

    if ((pfds[0].revents & POLLIN) != 0) accept_ready();
  }

  for (Conn* c : conns_) {
    if (c->streaming) m_sse_clients_.add(-1);
    m_open_conns_.add(-1);
    ::close(c->fd);
    delete c;
  }
  conns_.clear();
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    if (conns_.size() >= kMaxConnections || !set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    auto* c = new Conn;
    c->fd = fd;
    c->read_deadline =
        Clock::now() + std::chrono::milliseconds(kRequestTimeoutMs);
    conns_.push_back(c);
    m_open_conns_.add(1);
  }
}

void HttpServer::read_ready(Conn& c) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!c.responded) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > kMaxRequestBytes) {
          c.dead = true;
          return;
        }
      }
      // Bytes after the routed request are ignored (Connection: close).
      continue;
    }
    if (n == 0) {
      // Orderly close from the client. A streaming subscriber is gone;
      // a plain response still in flight may finish draining (bounded
      // by the flush deadline).
      if (!c.responded || c.streaming || c.out_off >= c.out.size()) {
        c.dead = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.dead = true;
    return;
  }
  if (c.responded) return;

  const std::size_t head_end = c.in.find("\r\n\r\n");
  if (head_end == std::string::npos) return;

  // Request line: METHOD SP TARGET SP VERSION
  const std::size_t line_end = c.in.find("\r\n");
  std::string_view line(c.in.data(), line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    c.dead = true;
    return;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    c.dead = true;
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  dispatch(c, method, target);
  c.in.clear();
}

void HttpServer::dispatch(Conn& c, std::string_view method,
                          std::string_view target) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests_.inc();
  c.responded = true;

  // HEAD is GET without the body: route identically, keep the
  // Content-Length the GET would have had, send no payload.
  const bool is_head = method == "HEAD";
  const std::string_view eff_method = is_head ? std::string_view("GET")
                                              : method;

  const std::string_view path = target.substr(0, target.find('?'));
  const Route* matched = nullptr;
  for (const auto& [route_path, route] : routes_) {
    if (route_path == path) {
      matched = &route;
      break;
    }
  }

  if (matched != nullptr && matched->channel != nullptr &&
      eff_method == "GET") {
    if (is_head) {
      // Headers only; no subscription is created.
      c.out +=
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/event-stream\r\n"
          "Cache-Control: no-cache\r\n"
          "Connection: close\r\n\r\n";
      flush_out(c);
      return;
    }
    // SSE subscription: chunked stream, one chunk per frame/heartbeat.
    c.out +=
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Transfer-Encoding: chunked\r\n"
        "Connection: close\r\n\r\n";
    c.streaming = true;
    c.channel = matched->channel;
    // ?since=SEQ replays retained frames from SEQ (0 = everything
    // retained); without the parameter a subscriber starts at head —
    // only events published after subscription.
    c.cursor = query_string(target, "since").empty()
                   ? c.channel->head()
                   : query_uint(target, "since", 0);
    c.last_beat = Clock::now();
    m_sse_clients_.add(1);
    pump_stream(c);
    flush_out(c);
    return;
  }

  HttpResponse response;
  if (matched != nullptr && matched->handler != nullptr) {
    response = eff_method == "GET"
                   ? matched->handler(target)
                   : HttpResponse{405, "text/plain; charset=utf-8",
                                  "method not allowed\n", {}};
  } else if (path == "/" && eff_method == "GET") {
    // Endpoint index: what this daemon actually serves, so clients
    // (zstop) can detect capabilities instead of probing paths.
    response = {200, "application/json", index_json(), {}};
  } else {
    response = route(eff_method, target);
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(status_text(response.status)) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!response.etag.empty()) head += "ETag: \"" + response.etag + "\"\r\n";
  head += "Connection: close\r\n\r\n";
  c.out += head;
  if (!is_head) c.out += response.body;
  c.flush_deadline = Clock::now() + std::chrono::milliseconds(kFlushTimeoutMs);
  flush_out(c);
}

void HttpServer::pump_stream(Conn& c) {
  std::string fresh;
  c.cursor = c.channel->collect(c.cursor, fresh);
  const Clock::time_point now = Clock::now();
  if (!fresh.empty()) {
    c.out += chunk(fresh);
    c.last_beat = now;
  } else if (now - c.last_beat >=
             std::chrono::milliseconds(heartbeat_ms_)) {
    c.out += chunk(": hb\n\n");
    c.last_beat = now;
  }
  const std::size_t backlog = c.out.size() - c.out_off;
  if (backlog > max_client_buffer_) {
    // Slow-client eviction: the subscriber is not draining its socket
    // and its backlog passed the bound; drop it rather than grow.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    m_evictions_.inc();
    Journal& journal = Journal::global();
    if (journal.enabled(kCatLive)) {
      JournalEvent ev;
      ev.type = JournalEventType::kLiveClientEvicted;
      ev.time = static_cast<netbase::TimePoint>(std::time(nullptr));
      ev.a = static_cast<std::int64_t>(backlog);
      journal.emit_runtime(kCatLive, ev);
    }
    c.dead = true;
  }
}

std::string HttpServer::index_json() const {
  // Built-ins first, then whatever the daemon registered; a registered
  // path that shadows a built-in (zslive's /healthz) appears once with
  // its registered shape.
  std::vector<std::pair<std::string, bool>> endpoints = {
      {"/", false},          {"/metrics", false},      {"/healthz", false},
      {"/latency", false},   {"/spans", false},        {"/journal/tail", false},
      {"/profile", false},   {"/heap", false},         {"/causal", false},
  };
  for (const auto& [path, route] : routes_) {
    bool seen = false;
    for (auto& [known, stream] : endpoints) {
      if (known == path) {
        stream = route.channel != nullptr;
        seen = true;
        break;
      }
    }
    if (!seen) endpoints.emplace_back(path, route.channel != nullptr);
  }
  std::sort(endpoints.begin(), endpoints.end());
  std::string body = "{\"service\":\"" + std::string("zsobs") +
                     "\",\"endpoints\":[";
  bool first = true;
  for (const auto& [path, stream] : endpoints) {
    if (!first) body += ',';
    first = false;
    body += "{\"path\":\"" + path + "\",\"stream\":" +
            (stream ? "true" : "false") + "}";
  }
  body += "]}\n";
  return body;
}

void HttpServer::flush_out(Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c.dead = true;
    return;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    if (c.responded && !c.streaming) {
      // Response fully flushed: half-close so the client sees EOF.
      ::shutdown(c.fd, SHUT_WR);
      c.dead = true;
    }
  } else if (c.out_off > 65536) {
    c.out.erase(0, c.out_off);
    c.out_off = 0;
  }
}

}  // namespace zombiescope::obs

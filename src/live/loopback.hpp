// live/loopback.hpp — the end-to-end delivery-latency self-subscriber.
//
// Stage histograms (live/service.hpp) time each pipeline hop in
// isolation; this closes the loop. A LoopbackLatencyClient opens a
// real TCP connection to the service's own HTTP port, subscribes to
// /live/events like any external consumer, and scans the SSE byte
// stream for the `"ingest_ns":<steady-ns>` field the shard workers
// embed in every transition. The difference between *now* and that
// stamp is the true end-to-end delivery latency — feed read, queueing,
// detection, SSE framing, kernel socket round-trip, client read —
// recorded into the "live.e2e" LatRegistry histogram (and the
// zs_live_stage_seconds_e2e registry histogram), surfaced through
// /latency, /live/stats "stages", and BENCH_live_latency.json.
//
// The comparison is only valid because subscriber and publisher share
// one process (steady_clock stamps are process-comparable, wall clock
// skew is not involved). zslived starts one automatically when it
// serves HTTP; the delivery-latency bench starts several to model
// fanout load. With ZS_LATHIST_ENABLED=0 the client still subscribes
// (it is also load) but records into a no-op histogram.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/lathist.hpp"
#include "obs/metrics.hpp"

namespace zombiescope::live {

class LoopbackLatencyClient {
 public:
  /// Prepares a subscriber for 127.0.0.1:`port``target` (the target
  /// must be an SSE endpoint emitting ingest_ns fields, normally
  /// "/live/events"). Call start() after the HTTP server is serving.
  explicit LoopbackLatencyClient(std::uint16_t port,
                                 std::string target = "/live/events");
  ~LoopbackLatencyClient();
  LoopbackLatencyClient(const LoopbackLatencyClient&) = delete;
  LoopbackLatencyClient& operator=(const LoopbackLatencyClient&) = delete;

  /// Connects and spawns the reader thread. Returns false if the
  /// connection could not be established (no thread started).
  bool start();
  /// Shuts the socket down and joins the reader. Idempotent.
  void stop();

  /// Transition events whose ingest_ns was parsed and recorded.
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  /// Total bytes of SSE stream consumed (headers included).
  std::uint64_t bytes_read() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  void reader_loop();
  void scan(const char* data, std::size_t len);

  std::uint16_t port_;
  std::string target_;
  int fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> bytes_{0};

  // Incremental `"ingest_ns":<digits>` scanner state: a chunk (or TCP
  // segment) boundary can split the key or the number anywhere, so the
  // matcher carries how far into the key it is and any digits already
  // seen across scan() calls.
  std::size_t key_matched_ = 0;
  bool in_number_ = false;
  std::uint64_t number_ = 0;

  obs::LatHist* e2e_ = nullptr;  // "live.e2e" (null when compiled out)
  obs::Histogram m_e2e_seconds_;
};

}  // namespace zombiescope::live

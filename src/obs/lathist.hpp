// obs/lathist.hpp — zslat, mergeable log-bucketed latency histograms.
//
// An HDR-style histogram for nanosecond latencies: values are bucketed
// by (octave, sub-bucket) where each octave [2^k, 2^(k+1)) is split
// into kSubBuckets linear sub-buckets, so the relative quantization
// error is bounded by 1/kSubBuckets (3.125% with the default 32)
// across the whole 64-bit range — no a-priori bound configuration, no
// clipping, unlike obs::Histogram's fixed bucket edges. Values below
// kSubBuckets get exact unit-width buckets.
//
// Concurrency model: record() is three relaxed fetch_adds plus two
// bounded CAS loops (min/max) — lock-free, wait-free in practice, safe
// from any thread. The intended discipline is owner-mostly: each stage
// of a pipeline records from the one thread that executes that stage,
// so the atomics never contend; readers take a snapshot() (a plain
// relaxed copy of the bucket array) and do all quantile math on the
// immutable LatSnapshot. Snapshots merge bucket-wise, which is what
// makes per-shard histograms aggregate into service-wide quantiles
// without a sort, and diff_since() turns two cumulative snapshots into
// an interval view (how per-config bench sections are produced).
//
// LatRegistry::global() names histograms the way obs::Registry names
// metrics: one leaked instance per name, so handles never dangle even
// when the component that registered them is torn down. The registry
// renders everything as JSON (`/latency`, the BENCH_*.json `latency`
// section) or folded text (`/latency?format=folded`).
//
// Compiling with ZS_LATHIST_ENABLED=0 (cmake -DZS_LATHIST=OFF) turns
// every member into an empty inline body — like ZS_PROF_ENABLED /
// ZS_HEAP_ENABLED, disabled means zero code and zero bytes executed
// (enforced by lathist_compileout_test).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZS_LATHIST_ENABLED
#define ZS_LATHIST_ENABLED 1
#endif

namespace zombiescope::obs {

/// True when the latency-histogram facility is compiled in. Call sites
/// guard with `if constexpr (kLatHistCompiledIn)` when they want a
/// ZS_LATHIST_ENABLED=0 build to execute exactly zero code.
inline constexpr bool kLatHistCompiledIn = ZS_LATHIST_ENABLED != 0;

/// Bucket geometry, shared by the live histogram and its snapshots.
/// 2^kSubBits sub-buckets per octave bounds the relative quantization
/// error of any reported quantile by 2^-kSubBits.
inline constexpr unsigned kLatSubBits = 5;
inline constexpr std::uint64_t kLatSubBuckets = 1ull << kLatSubBits;
/// Octaves above the exact range: values in [kLatSubBuckets, 2^63).
/// 64 - kSubBits octaves of kSubBuckets buckets each, plus the exact
/// unit buckets for values < kLatSubBuckets at the front.
inline constexpr std::size_t kLatBucketCount =
    kLatSubBuckets + (64 - kLatSubBits) * kLatSubBuckets;

/// Index of the bucket holding `v`. Exact for v < kLatSubBuckets;
/// above that, octave = msb(v), sub = next kSubBits bits.
constexpr std::size_t lat_bucket_index(std::uint64_t v) noexcept {
  if (v < kLatSubBuckets) return static_cast<std::size_t>(v);
  unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(v));
  std::uint64_t sub = (v >> (msb - kLatSubBits)) & (kLatSubBuckets - 1);
  // Octave kLatSubBits is the first log-spaced one; it lands right
  // after the kLatSubBuckets exact buckets.
  return static_cast<std::size_t>((msb - kLatSubBits + 1) * kLatSubBuckets +
                                  sub);
}

/// Inclusive upper edge of bucket `i` (the largest value that maps to
/// it). Used for quantile interpolation and folded output.
constexpr std::uint64_t lat_bucket_upper(std::size_t i) noexcept {
  if (i < kLatSubBuckets) return static_cast<std::uint64_t>(i);
  std::size_t octave = i / kLatSubBuckets - 1;  // 0-based log octave
  std::uint64_t sub = i % kLatSubBuckets;
  unsigned msb = static_cast<unsigned>(octave) + kLatSubBits;
  std::uint64_t base = 1ull << msb;
  std::uint64_t width = 1ull << (msb - kLatSubBits);
  return base + (sub + 1) * width - 1;
}

/// Inclusive lower edge of bucket `i`.
constexpr std::uint64_t lat_bucket_lower(std::size_t i) noexcept {
  return i == 0 ? 0 : lat_bucket_upper(i - 1) + 1;
}

#if ZS_LATHIST_ENABLED

/// Immutable copy of a histogram's state. All quantile / merge / diff
/// math happens here, on plain (non-atomic) data.
struct LatSnapshot {
  std::vector<std::uint64_t> counts;  // kLatBucketCount entries (or empty)
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;  // 0 when count == 0
  std::uint64_t max_ns = 0;

  bool empty() const noexcept { return count == 0; }
  double mean_ns() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) /
                                  static_cast<double>(count);
  }

  /// Quantile in nanoseconds, q in [0,1]; linear interpolation within
  /// the target bucket, clamped to the observed [min,max].
  double quantile_ns(double q) const noexcept;

  /// Bucket-wise sum; merging disjoint recorder snapshots is exact.
  void merge(const LatSnapshot& other);

  /// This snapshot minus an earlier snapshot of the *same* histogram:
  /// the interval view between the two capture points.
  LatSnapshot diff_since(const LatSnapshot& earlier) const;

  /// {"count":N,"sum_ns":N,"min_ns":N,"max_ns":N,"mean_ns":F,
  ///  "p50_ns":F,"p95_ns":F,"p99_ns":F}
  std::string to_json() const;
};

/// The live, recordable histogram. Fixed-size atomic bucket array
/// (~15 KB); record() never allocates, never locks.
class LatHist {
 public:
  LatHist() = default;
  LatHist(const LatHist&) = delete;
  LatHist& operator=(const LatHist&) = delete;

  /// Record one latency observation. Lock-free; relaxed atomics.
  void record(std::uint64_t ns) noexcept {
    counts_[lat_bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    update_min(ns);
    update_max(ns);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Relaxed copy of the full state. Concurrent record()s may be
  /// partially visible (count vs buckets off by in-flight writes) —
  /// fine for monitoring; tests quiesce writers first.
  LatSnapshot snapshot() const;

  /// Zero every cell. Only safe when no recorder is active.
  void reset() noexcept;

 private:
  void update_min(std::uint64_t ns) noexcept {
    std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (ns < cur && !min_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t ns) noexcept {
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !max_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> counts_[kLatBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Process-wide name → histogram map, mirroring obs::Registry: get()
/// returns the same leaked instance for the same name forever, so a
/// LatHist* captured by a pipeline stage outlives any service
/// restart.
class LatRegistry {
 public:
  static LatRegistry& global();

  /// Find-or-create. The returned reference is valid for the process
  /// lifetime.
  LatHist& get(std::string_view name);

  /// Names in sorted order with their snapshots.
  std::vector<std::pair<std::string, LatSnapshot>> snapshot_all() const;

  /// {"<name>":{...LatSnapshot.to_json()...},...} — empty histograms
  /// are skipped; "{}" when nothing recorded.
  std::string to_json() const;

  /// Folded text: one `name;le_<upper>ns count` line per non-empty
  /// bucket, plus a `name;count total` summary line.
  std::string to_folded() const;

  /// Zero every registered histogram (bench/test isolation).
  void reset_all();

 private:
  LatRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

#else  // !ZS_LATHIST_ENABLED — every body inline and empty.

struct LatSnapshot {
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  bool empty() const noexcept { return true; }
  double mean_ns() const noexcept { return 0.0; }
  double quantile_ns(double) const noexcept { return 0.0; }
  void merge(const LatSnapshot&) {}
  LatSnapshot diff_since(const LatSnapshot&) const { return {}; }
  std::string to_json() const { return "{}"; }
};

class LatHist {
 public:
  LatHist() = default;
  LatHist(const LatHist&) = delete;
  LatHist& operator=(const LatHist&) = delete;
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  LatSnapshot snapshot() const { return {}; }
  void reset() noexcept {}
};

class LatRegistry {
 public:
  static LatRegistry& global() {
    static LatRegistry reg;
    return reg;
  }
  LatHist& get(std::string_view) { return hist_; }
  std::vector<std::pair<std::string, LatSnapshot>> snapshot_all() const {
    return {};
  }
  std::string to_json() const { return "{}"; }
  std::string to_folded() const { return {}; }
  void reset_all() {}

 private:
  LatRegistry() = default;
  LatHist hist_;
};

#endif  // ZS_LATHIST_ENABLED

}  // namespace zombiescope::obs

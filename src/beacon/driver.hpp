// beacon/driver.hpp — wires a beacon schedule into the simulator.

#pragma once

#include <vector>

#include "beacon/clock.hpp"
#include "beacon/schedule.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::beacon {

/// Injects the announce/withdraw actions of a beacon schedule into a
/// simulation, stamping RIS-style announcements with the Aggregator
/// clock, and keeps the ground-truth event list for the analysis.
class BeaconDriver {
 public:
  /// `origin` must exist in the simulation topology. When
  /// `with_aggregator_clock` is set, each announcement carries
  /// AGGREGATOR(origin, 10.x.y.z clock) — RIS beacon behaviour.
  BeaconDriver(simnet::Simulation& sim, bgp::Asn origin, bool with_aggregator_clock)
      : sim_(sim), origin_(origin), with_aggregator_clock_(with_aggregator_clock) {}

  /// Schedules every event (including superseded ones — they happen on
  /// the wire) and records the ground truth.
  void drive(const std::vector<BeaconEvent>& events);

  bgp::Asn origin() const { return origin_; }
  const std::vector<BeaconEvent>& ground_truth() const { return events_; }

 private:
  simnet::Simulation& sim_;
  bgp::Asn origin_;
  bool with_aggregator_clock_;
  std::vector<BeaconEvent> events_;
};

}  // namespace zombiescope::beacon

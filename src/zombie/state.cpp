#include "zombie/state.hpp"

#include <algorithm>

#include "obs/journal.hpp"

namespace zombiescope::zombie {

namespace {

// The message-granularity journal layer (kCatState). Chatty — one
// event per prefix per update — so call sites are all guarded by the
// enabled() check their caller performs once per record.
void journal_message(obs::JournalEventType type, const PeerKey& peer,
                     const netbase::Prefix& prefix, netbase::TimePoint at) {
  obs::JournalEvent ev;
  ev.type = type;
  ev.time = at;
  ev.has_prefix = true;
  ev.prefix = prefix;
  ev.has_peer = true;
  ev.peer_asn = peer.asn;
  ev.peer_address = peer.address;
  obs::Journal::global().emit<obs::kCatState>(ev);
}

}  // namespace

std::string to_string(const PeerKey& peer) {
  return peer.address.to_string() + " (AS" + std::to_string(peer.asn) + ")";
}

int ZombieOutbreak::peer_as_count() const {
  std::vector<bgp::Asn> asns;
  for (const auto& route : routes) asns.push_back(route.peer.asn);
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  return static_cast<int>(asns.size());
}

void StateTracker::apply(const mrt::MrtRecord& record) {
  const bool journal_on = obs::Journal::global().enabled(obs::kCatState);
  if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
    const PeerKey peer{msg->peer_asn, msg->peer_address};
    auto& table = state_[peer];
    for (const auto& prefix : msg->update.withdrawn) {
      RouteStatus& status = table[prefix];
      status.present = false;
      status.last_change = msg->timestamp;
      if (journal_on)
        journal_message(obs::JournalEventType::kWithdrawSeen, peer, prefix,
                        msg->timestamp);
    }
    for (const auto& prefix : msg->update.announced) {
      RouteStatus& status = table[prefix];
      status.present = true;
      status.path = msg->update.attributes.as_path;
      status.attributes = msg->update.attributes;
      status.last_change = msg->timestamp;
      if (journal_on)
        journal_message(obs::JournalEventType::kAnnounceSeen, peer, prefix,
                        msg->timestamp);
    }
    return;
  }
  if (const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
    if (state->old_state == bgp::SessionState::kEstablished &&
        state->new_state != bgp::SessionState::kEstablished) {
      const PeerKey peer{state->peer_asn, state->peer_address};
      auto it = state_.find(peer);
      if (it != state_.end()) {
        for (auto& [prefix, status] : it->second) {
          (void)prefix;
          if (status.present) {
            status.present = false;
            status.last_change = state->timestamp;
          }
        }
      }
      if (journal_on) {
        obs::JournalEvent ev;
        ev.type = obs::JournalEventType::kSessionFlush;
        ev.time = state->timestamp;
        ev.has_peer = true;
        ev.peer_asn = peer.asn;
        ev.peer_address = peer.address;
        obs::Journal::global().emit<obs::kCatState>(ev);
      }
    }
    return;
  }
  if (const auto* rib = std::get_if<mrt::RibEntryRecord>(&record)) {
    // RIB dumps assert presence; the peer index table must have been
    // applied... RIB records in this library carry no peer directory,
    // so dump-based tracking is handled by the lifespan analyzer which
    // pairs PeerIndexTable + RibEntryRecord itself. Here we ignore the
    // record unless a directory was seen.
    if (!last_index_.peers.empty()) {
      for (const auto& entry : rib->entries) {
        if (entry.peer_index >= last_index_.peers.size()) continue;
        const auto& dir = last_index_.peers[entry.peer_index];
        RouteStatus& status = state_[PeerKey{dir.asn, dir.address}][rib->prefix];
        status.present = true;
        status.path = entry.attributes.as_path;
        status.attributes = entry.attributes;
        status.last_change = rib->timestamp;
      }
    }
    return;
  }
  if (const auto* index = std::get_if<mrt::PeerIndexTable>(&record)) {
    last_index_ = *index;
    return;
  }
}

const RouteStatus* StateTracker::status(const PeerKey& peer,
                                        const netbase::Prefix& prefix) const {
  auto it = state_.find(peer);
  if (it == state_.end()) return nullptr;
  auto jt = it->second.find(prefix);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::vector<PeerKey> StateTracker::holders(const netbase::Prefix& prefix) const {
  std::vector<PeerKey> out;
  for (const auto& [peer, table] : state_) {
    auto it = table.find(prefix);
    if (it != table.end() && it->second.present) out.push_back(peer);
  }
  return out;
}

std::vector<PeerKey> StateTracker::peers() const {
  std::vector<PeerKey> out;
  out.reserve(state_.size());
  for (const auto& [peer, table] : state_) {
    (void)table;
    out.push_back(peer);
  }
  return out;
}

std::vector<mrt::MrtRecord> merge_archives(
    std::span<const std::vector<mrt::MrtRecord>* const> archives) {
  std::vector<mrt::MrtRecord> merged;
  std::size_t total = 0;
  for (const auto* archive : archives) total += archive->size();
  merged.reserve(total);
  for (const auto* archive : archives)
    merged.insert(merged.end(), archive->begin(), archive->end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const mrt::MrtRecord& a, const mrt::MrtRecord& b) {
                     return mrt::record_timestamp(a) < mrt::record_timestamp(b);
                   });
  return merged;
}

}  // namespace zombiescope::zombie

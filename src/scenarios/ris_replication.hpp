// scenarios/ris_replication.hpp — the §3 replication scenarios: the
// three measurement periods of Fontugne et al. re-created on the
// simulator with the fault mix that produces the paper's Table 1/2/3
// phenomenology:
//
//  * long receive stalls at transit ASes spanning many 4-hour beacon
//    intervals — downstream peers re-surface the stale route (with its
//    ORIGINAL Aggregator clock) every interval, which is exactly what
//    the revised methodology deduplicates;
//  * session-wide one-interval stalls at monitored ASes — outbreaks
//    that hit every beacon of a family simultaneously (Fig. 7's
//    concurrency mass);
//  * low-probability per-withdrawal session losses — the background
//    of single-interval zombies;
//  * one pathologically noisy peer (AS16347 @ rrc21, IPv6-heavy) —
//    Table 4.

#pragma once

#include <string>

#include "scenarios/common.hpp"

namespace zombiescope::scenarios {

struct RisPeriodSpec {
  std::string label;
  netbase::TimePoint start = 0;
  netbase::TimePoint end = 0;
  int monitor_sessions = 15;

  // Calibration knobs (defaults set per period).
  int longlived_v4 = 2;        // stalls spanning many intervals
  int longlived_v6 = 2;
  int span_min_intervals = 8;
  int span_max_intervals = 15;
  int sessionwide_v4 = 4;      // one-interval whole-family stalls
  int sessionwide_v6 = 5;
  double single_loss_v4 = 0.003;  // per-session withdrawal loss
  double single_loss_v6 = 0.008;
  /// Withdrawals that land just inside the looking-glass lag before
  /// the 90-minute check (Table 3's "our results miss" side).
  double boundary_delay_probability = 0.0006;
  /// Late re-announcements of just-withdrawn routes near the check
  /// (Table 3's "Study misses" side).
  double phantom_reannounce_probability = 0.0015;

  // The noisy peer (Table 4).
  double noisy_loss_v4 = 0.002;
  double noisy_loss_v6 = 0.43;

  std::uint64_t seed = 1;
};

/// The three periods of the paper, §3.2 / Appendix B.
RisPeriodSpec period_2018jul();
RisPeriodSpec period_2017oct();
RisPeriodSpec period_2017mar();

/// AS number of the injected noisy RIS peer.
inline constexpr bgp::Asn kNoisyRisPeerAsn = 16347;

/// Runs the scenario: builds topology + collectors, drives the classic
/// RIS beacon schedule across the period, and returns the archives.
ScenarioOutput run_ris_period(const RisPeriodSpec& spec);

}  // namespace zombiescope::scenarios

// live_throughput — streaming ingest throughput of the zslive sharded
// detection service: the longlived2024 update archive replayed at
// maximum speed through 1/2/4/8 shard workers.
//
// Two rates are reported per shard count:
//
//   wall updates/s      records / wall-clock seconds of the replay —
//                       honest end-to-end, but on a box with fewer
//                       cores than shards the workers time-slice one
//                       CPU and the wall rate cannot scale;
//   capacity updates/s  records / max per-shard worker CPU seconds
//                       (CLOCK_THREAD_CPUTIME_ID; blocked waits do not
//                       accrue). This is the rate the slowest shard
//                       could sustain given a core of its own, so it
//                       is the scaling headline: partitioning the
//                       prefix space must cut the busiest worker's CPU
//                       share roughly linearly.
//
// Drops must be zero (the bench replays with block_on_full, the
// lossless backpressure mode), and every shard count must produce the
// same emerged zombie count — throughput that changed the answer would
// be meaningless.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "live/feed.hpp"
#include "live/service.hpp"
#include "obs/metrics.hpp"

using namespace zombiescope;

namespace {

struct RunResult {
  double wall_ups = 0.0;
  double capacity_ups = 0.0;
  double p99_lag_us = 0.0;
  std::uint64_t drops = 0;
  std::uint64_t emerged = 0;
};

RunResult replay_once(const scenarios::LongLived2024Output& data,
                      std::size_t shards) {
  live::LiveConfig config;
  config.shards = shards;
  config.block_on_full = true;
  live::LiveService service(config);
  service.start();
  const auto start = std::chrono::steady_clock::now();
  for (const auto& event : data.events) service.expect(event);
  live::ReplayFeedSource feed(data.updates, /*speed=*/0.0);
  feed.run(service);
  service.finalize();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  const auto records = static_cast<double>(data.updates.size());
  r.wall_ups = wall > 0 ? records / wall : 0.0;
  const double busy = service.max_worker_busy_seconds();
  r.capacity_ups = busy > 0 ? records / busy : 0.0;
  r.p99_lag_us = service.lag_quantile(0.99) * 1e6;
  r.drops = service.drops();
  r.emerged = static_cast<std::uint64_t>(service.emerged_pairs().size());
  service.stop();
  return r;
}

void print_table() {
  bench::print_header(
      "zslive ingest throughput — longlived2024 replayed at max speed",
      "live detection service (§6 real-time detection at scale)");
  const auto data = bench::load_longlived2024();
  std::printf("  %zu update records, %zu beacon events\n\n",
              data.updates.size(), data.events.size());
  std::printf("  %-7s %14s %18s %12s %8s %9s\n", "shards", "wall upd/s",
              "capacity upd/s", "p99 lag us", "drops", "emerged");

  auto& registry = obs::Registry::global();
  double capacity_1 = 0.0;
  double capacity_4 = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = replay_once(data, shards);
    std::printf("  %-7zu %14.0f %18.0f %12.1f %8llu %9llu\n", shards,
                r.wall_ups, r.capacity_ups, r.p99_lag_us,
                static_cast<unsigned long long>(r.drops),
                static_cast<unsigned long long>(r.emerged));
    const std::string suffix = "_shards" + std::to_string(shards);
    registry.gauge("zs_bench_live_wall_ups" + suffix)
        .set(static_cast<std::int64_t>(r.wall_ups));
    registry.gauge("zs_bench_live_capacity_ups" + suffix)
        .set(static_cast<std::int64_t>(r.capacity_ups));
    registry.gauge("zs_bench_live_p99_lag_us" + suffix)
        .set(static_cast<std::int64_t>(r.p99_lag_us));
    registry.gauge("zs_bench_live_drops" + suffix)
        .set(static_cast<std::int64_t>(r.drops));
    registry.gauge("zs_bench_live_emerged" + suffix)
        .set(static_cast<std::int64_t>(r.emerged));
    if (shards == 1) capacity_1 = r.capacity_ups;
    if (shards == 4) capacity_4 = r.capacity_ups;
  }
  const double scaling = capacity_1 > 0 ? capacity_4 / capacity_1 : 0.0;
  registry.gauge("zs_bench_live_capacity_scaling_1to4_x100")
      .set(static_cast<std::int64_t>(scaling * 100));
  std::printf("\n  capacity scaling 1 -> 4 shards: %.2fx (target >= 1.50x)\n",
              scaling);
}

void BM_LiveReplayShards4(benchmark::State& state) {
  const auto data = bench::load_longlived2024();
  for (auto _ : state) {
    const RunResult r = replay_once(data, 4);
    benchmark::DoNotOptimize(r.emerged);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.updates.size()));
}
BENCHMARK(BM_LiveReplayShards4)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

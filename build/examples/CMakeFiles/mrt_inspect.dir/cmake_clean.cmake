file(REMOVE_RECURSE
  "CMakeFiles/mrt_inspect.dir/mrt_inspect.cpp.o"
  "CMakeFiles/mrt_inspect.dir/mrt_inspect.cpp.o.d"
  "mrt_inspect"
  "mrt_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrt_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// ablation_sendhold — quantifies the fix the paper points to for the
// zero-TCP-window zombie mechanism (§6: "previous work identified a
// software bug in the handling of a BGP peer with a 0 sized TCP
// window" — Cartwright-Cox 2021; RFC 9687 Send Hold Timer): how long
// a withdrawal stays undeliverable to a wedged peer, as a function of
// the sender's send-hold-timer setting.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "bgp/session_fsm.hpp"

using namespace zombiescope;

namespace {

// Runs the wedged-peer scenario: B stops reading at t=60s; A queues a
// withdrawal at t=120s. Returns the time until A tears the session
// down (teardown ≈ the zombie's end: the peer flushes on session
// loss), or `horizon` if the session survives the whole run.
netbase::Duration time_to_teardown(netbase::Duration send_hold, netbase::Duration horizon) {
  bgp::SessionFsm a(bgp::FsmConfig{90, 30, send_hold});
  // The wedged box: generates KEEPALIVEs, never reads, and (the bug)
  // never enforces its own hold timer.
  bgp::SessionFsm b(bgp::FsmConfig{0, 30, 0});
  netbase::TimePoint now = 0;
  a.start(now);
  b.start(now);
  a.connected(now);
  b.connected(now);
  bool b_reads = true;
  netbase::TimePoint queued_at = 0;
  for (now = 1; now <= horizon; ++now) {
    a.tick(now);
    b.tick(now);
    if (now == 60) b_reads = false;  // B wedges (zero receive window)
    if (now == 120) {
      bgp::UpdateMessage withdrawal;
      withdrawal.withdrawn.push_back(netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
      a.send_update(now, withdrawal);
      queued_at = now;
    }
    if (b_reads)
      for (const auto& message : a.drain(now, 16)) b.receive(now, message);
    for (const auto& message : b.drain(now, 16)) a.receive(now, message);
    if (queued_at != 0 && a.state() == bgp::FsmState::kIdle) return now - queued_at;
  }
  return horizon;
}

void print_ablation() {
  bench::print_header("Ablation — RFC 9687 send hold timer vs zombie persistence",
                      "IMC'25 paper §6 zero-window mechanism (RFC 9687 remedy)");
  const netbase::Duration horizon = 7 * netbase::kDay;
  std::vector<std::vector<std::string>> rows;
  struct Case {
    const char* label;
    netbase::Duration send_hold;
  };
  const Case cases[] = {
      {"disabled (pre-RFC 9687)", 0},
      {"30 minutes", 30 * netbase::kMinute},
      {"8 minutes (RFC 9687 default)", 8 * netbase::kMinute},
      {"2 minutes", 2 * netbase::kMinute},
  };
  for (const auto& c : cases) {
    const auto t = time_to_teardown(c.send_hold, horizon);
    rows.push_back({c.label, t >= horizon ? std::string("> 7 days (never)")
                                          : netbase::format_duration(t)});
  }
  std::fputs(
      analysis::render_table({"Sender send-hold timer", "withdrawal undeliverable for"}, rows)
          .c_str(),
      stdout);
  std::printf("A peer wedges with a zero TCP receive window while still sending its\n"
              "own KEEPALIVEs: the classic hold timer never fires, and without\n"
              "RFC 9687 the queued withdrawal — and thus the zombie — persists\n"
              "indefinitely. The send hold timer bounds the zombie's lifetime by the\n"
              "configured value (session teardown makes the wedged peer's routes\n"
              "flushable on reconnect).\n");
}

void BM_WedgedSessionRun(benchmark::State& state) {
  for (auto _ : state) {
    auto t = time_to_teardown(8 * netbase::kMinute, netbase::kDay);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_WedgedSessionRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Tests for the BGP propagation simulator: convergence, valley-free
// export, decision process, path hunting, fault injection (the zombie
// mechanisms), session resets (resurrection), and ROV interaction.

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::simnet {
namespace {

using netbase::kDay;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;
using topology::GeneratorParams;
using topology::Relationship;
using topology::Topology;

const Prefix kBeacon = Prefix::parse("2a0d:3dc1:1145::/48");

// A small fixed topology:
//
//        T1a ---- T1b          (peer)
//        /  \      |
//      M1    M2   M3           (customers of T1s)
//       \    /     |
//        ORIGIN----+           (customer of M1, M2, M3)
//
Topology diamond() {
  Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({11, 2, "M1"});
  topo.add_as({12, 2, "M2"});
  topo.add_as({13, 2, "M3"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 11, Relationship::kCustomer);
  topo.add_link(1, 12, Relationship::kCustomer);
  topo.add_link(2, 13, Relationship::kCustomer);
  topo.add_link(11, 100, Relationship::kCustomer);
  topo.add_link(12, 100, Relationship::kCustomer);
  topo.add_link(13, 100, Relationship::kCustomer);
  return topo;
}

Simulation make_sim(const Topology& topo, std::uint64_t seed = 1) {
  SimConfig config;
  config.min_link_delay = 2;
  config.max_link_delay = 10;
  return Simulation(topo, config, Rng(seed));
}

TEST(Simulation, AnnouncementReachesEveryAs) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  for (bgp::Asn asn : topo.all_asns()) {
    if (asn == 100) continue;
    const RouteEntry* best = sim.router(asn).best(kBeacon);
    ASSERT_NE(best, nullptr) << "AS" << asn;
    EXPECT_EQ(best->path.origin_asn(), 100u) << "AS" << asn;
    EXPECT_FALSE(best->path.contains(asn)) << "AS" << asn;
  }
}

TEST(Simulation, WithdrawalClearsEveryAsWithoutFaults) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 2 * kHour);
  for (bgp::Asn asn : topo.all_asns())
    EXPECT_EQ(sim.router(asn).best(kBeacon), nullptr) << "AS" << asn;
}

TEST(Simulation, NoFaultsNoZombiesOnGeneratedTopology) {
  // The fundamental soundness invariant: with no fault injection, a
  // withdrawal leaves no route behind anywhere, for any seed.
  GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 16;
  params.tier3_count = 60;
  for (std::uint64_t seed : {3u, 14u, 159u}) {
    Rng rng(seed);
    Topology topo = topology::generate_hierarchical(params, rng);
    Simulation sim = make_sim(topo, seed);
    const bgp::Asn origin = topo.all_asns().back();
    const auto t0 = utc(2024, 6, 4, 12, 0, 0);
    sim.announce(t0, origin, kBeacon);
    sim.withdraw(t0 + 15 * kMinute, origin, kBeacon);
    sim.run_until(t0 + 6 * kHour);
    for (bgp::Asn asn : topo.all_asns())
      ASSERT_EQ(sim.router(asn).best(kBeacon), nullptr) << "seed " << seed << " AS" << asn;
  }
}

TEST(Simulation, ValleyFreeExport) {
  // M3 must not give T1b's route to another provider, and a route
  // learned from the T1 peer link must not be re-exported to a peer.
  Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({3, 1, "T1c"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(2, 3, Relationship::kPeer);
  topo.add_link(1, 100, Relationship::kCustomer);
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  // T1b learns it from its peer T1a (customer route of T1a: exported
  // to peers). T1c must NOT have it: T1b may not export a peer route
  // to another peer.
  EXPECT_NE(sim.router(2).best(kBeacon), nullptr);
  EXPECT_EQ(sim.router(3).best(kBeacon), nullptr);
}

TEST(Simulation, PrefersCustomerRouteOverPeerRoute) {
  // T1a hears the prefix from its customer M1 and from its peer T1b;
  // it must pick the customer route even if longer.
  Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({11, 2, "M1"});
  topo.add_as({12, 2, "M1b"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 11, Relationship::kCustomer);
  topo.add_link(11, 12, Relationship::kCustomer);
  topo.add_link(12, 100, Relationship::kCustomer);
  topo.add_link(2, 100, Relationship::kCustomer);
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  const RouteEntry* best = sim.router(1).best(kBeacon);
  ASSERT_NE(best, nullptr);
  // Customer chain 11-12-100 (3 hops) preferred over peer 2-100 (2 hops).
  EXPECT_EQ(best->path.to_string(), "11 12 100");
}

TEST(Simulation, WithdrawalSuppressionCreatesZombie) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  // M3 fails to propagate withdrawals to T1b (paper Fig. 1, step 2-3).
  WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 3 * kHour);

  // T1b holds the seed zombie. Because T1b learned the stale route
  // from its *customer* M3, it (re)exports it to its peer T1a and
  // onward to T1a's customers — the outbreak spreads through the
  // region that lost its own routes (the paper's palm-tree pattern).
  EXPECT_GT(sim.stats().messages_suppressed, 0u);
  const RouteEntry* seed = sim.router(2).best(kBeacon);
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->path.to_string(), "13 100");
  for (bgp::Asn asn : {1u, 11u, 12u}) {
    const RouteEntry* infected = sim.router(asn).best(kBeacon);
    ASSERT_NE(infected, nullptr) << "AS" << asn;
    // Every zombie route goes through the infected T1b (AS2): the
    // common subpath ends "2 13 100".
    EXPECT_TRUE(infected->path.ends_with({2, 13, 100})) << infected->path.to_string();
  }
  // The culprit's upstream M3 and the origin itself are clean (loop
  // detection stops the zombie from flowing back).
  EXPECT_EQ(sim.router(13).best(kBeacon), nullptr);
  EXPECT_EQ(sim.router(100).best(kBeacon), nullptr);
}

TEST(Simulation, SuppressionPrefixFilterLimitsBlastRadius) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const Prefix other = Prefix::parse("2a0d:3dc1:2233::/48");
  WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.prefix_filter = kBeacon;  // only this beacon gets stuck
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  sim.announce(t0, 100, kBeacon);
  sim.announce(t0, 100, other);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, other);
  sim.run_until(t0 + 3 * kHour);
  EXPECT_NE(sim.router(2).best(kBeacon), nullptr);
  EXPECT_EQ(sim.router(2).best(other), nullptr);
}

TEST(Simulation, ReceiveStallCreatesZombie) {
  // The zero-window bug: T1b stops processing updates for a while;
  // the withdrawal arrives during the stall and is lost forever.
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  ReceiveStall stall;
  stall.asn = 2;
  stall.window = {t0 + 10 * kMinute, t0 + kHour};
  sim.add_receive_stall(stall);

  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 3 * kHour);
  EXPECT_NE(sim.router(2).best(kBeacon), nullptr);
  EXPECT_GT(sim.stats().messages_stalled, 0u);
}

TEST(Simulation, SessionOutageResurrectsZombie) {
  // T1b holds a zombie (suppressed withdrawal from M3). Its peering
  // session with T1a is down across the withdrawal window, so T1a
  // flushes T1b's routes and converges to "no route" (its customer
  // routes are withdrawn cleanly). A week later the session
  // re-establishes: T1b re-advertises its full table — including the
  // zombie. T1a, clean for a week, is newly infected: the paper's
  // "zombie resurrection" ("if a downstream session of an infected
  // router is reset, new announcements are generated for these stuck
  // prefixes").
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  sim.announce(t0, 100, kBeacon);
  sim.schedule_session_outage(t0 + 10 * kMinute, t0 + 7 * kDay, 1, 2);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 3 * kHour);
  ASSERT_NE(sim.router(2).best(kBeacon), nullptr);  // zombie in T1b
  ASSERT_EQ(sim.router(1).best(kBeacon), nullptr);  // T1a clean
  ASSERT_EQ(sim.router(11).best(kBeacon), nullptr);

  // A week later the T1a-T1b session comes back.
  sim.run_until(t0 + 7 * kDay + kHour);
  const RouteEntry* resurrected = sim.router(1).best(kBeacon);
  ASSERT_NE(resurrected, nullptr) << "T1a should have been re-infected";
  EXPECT_EQ(resurrected->path.to_string(), "2 13 100");
  // And the resurrection propagates to T1a's customers — "affecting
  // new ASes even months after the initial withdrawal".
  const RouteEntry* downstream = sim.router(11).best(kBeacon);
  ASSERT_NE(downstream, nullptr);
  EXPECT_TRUE(downstream->path.ends_with({2, 13, 100}));
}

TEST(Simulation, SessionResetWithoutZombieIsClean) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.schedule_session_reset(t0 + kDay, 1, 2);
  sim.run_until(t0 + kDay + kHour);
  for (bgp::Asn asn : topo.all_asns())
    EXPECT_EQ(sim.router(asn).best(kBeacon), nullptr) << "AS" << asn;
}

TEST(Simulation, SessionResetDuringAnnouncementReconverges) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  ASSERT_NE(sim.router(2).best(kBeacon), nullptr);
  // Reset the only link T1b has toward the origin's region mid-flight.
  sim.schedule_session_reset(t0 + kHour, 2, 13);
  sim.run_until(t0 + 2 * kHour);
  // After re-establishment T1b must have the route again.
  const RouteEntry* best = sim.router(2).best(kBeacon);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->path.origin_asn(), 100u);
}

TEST(Simulation, RovCompliantEvictsOnRoaRemoval) {
  Topology topo = diamond();
  rpki::RoaTable roas;
  roas.add(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 100}, utc(2024, 6, 1));

  Simulation sim = make_sim(topo);
  sim.set_roa_table(&roas);
  sim.set_rov_policy(2, rpki::RovPolicy::kCompliant);

  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  // T1b gets a zombie via suppression from M3.
  WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);
  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 3 * kHour);
  ASSERT_NE(sim.router(2).best(kBeacon), nullptr);

  // The ROA is removed; the only remaining ROA for the /32 belongs to
  // another ASN, making the stale route Invalid. The compliant router
  // evicts it; kNone routers would keep it (the paper's observation).
  roas.remove(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 100}, utc(2024, 6, 22, 19, 49, 0));
  roas.add(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 32, 999}, utc(2024, 6, 22, 19, 49, 0));
  sim.run_until(utc(2024, 6, 23));
  EXPECT_EQ(sim.router(2).best(kBeacon), nullptr);
}

TEST(Simulation, RovImportOnlyKeepsStaleInvalidRoute) {
  Topology topo = diamond();
  rpki::RoaTable roas;
  roas.add(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 100}, utc(2024, 6, 1));

  Simulation sim = make_sim(topo);
  sim.set_roa_table(&roas);
  sim.set_rov_policy(2, rpki::RovPolicy::kImportOnly);  // flawed ROV

  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);
  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + 3 * kHour);
  ASSERT_NE(sim.router(2).best(kBeacon), nullptr);

  roas.remove(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 100}, utc(2024, 6, 22, 19, 49, 0));
  roas.add(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 32, 999}, utc(2024, 6, 22, 19, 49, 0));
  sim.run_until(utc(2024, 6, 23));
  // Import-only ROV never re-validates: the zombie survives the ROA
  // deletion — exactly the paper's security concern.
  EXPECT_NE(sim.router(2).best(kBeacon), nullptr);
}

TEST(Simulation, RovImportDropsInvalidAnnouncement) {
  Topology topo = diamond();
  rpki::RoaTable roas;
  // ROA authorizes a different origin: announcements are Invalid.
  roas.add(rpki::Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 999}, utc(2024, 6, 1));
  Simulation sim = make_sim(topo);
  sim.set_roa_table(&roas);
  sim.set_rov_policy(2, rpki::RovPolicy::kImportOnly);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  EXPECT_EQ(sim.router(2).best(kBeacon), nullptr);   // dropped at import
  EXPECT_NE(sim.router(1).best(kBeacon), nullptr);   // non-ROV AS accepts
}

TEST(Simulation, MonitorSeesAnnounceAndWithdraw) {
  struct Recorder : MonitorSink {
    std::vector<std::pair<netbase::TimePoint, bool>> events;  // (t, is_announce)
    void on_route_change(netbase::TimePoint t, const RibChange& change) override {
      events.emplace_back(t, change.is_announcement());
    }
  };
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  Recorder recorder;
  sim.attach_monitor(2, &recorder);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  sim.run_until(t0 + kHour);
  ASSERT_GE(recorder.events.size(), 2u);
  EXPECT_TRUE(recorder.events.front().second);
  EXPECT_FALSE(recorder.events.back().second);
}

TEST(Simulation, PathHuntingProducesLongerTransientPaths) {
  // Fig. 6's explanation: after a withdrawal, routers briefly fall
  // back to longer alternative paths ("path hunting"). Monitor every
  // AS; at least some ASes must transiently announce a path longer
  // than their steady-state best before converging to "no route".
  struct Lengths : MonitorSink {
    std::vector<int> lengths;
    void on_route_change(netbase::TimePoint, const RibChange& change) override {
      if (change.is_announcement()) lengths.push_back(change.new_best->path.length());
    }
  };
  GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 20;
  params.tier3_count = 60;
  Rng rng(21);
  Topology topo = topology::generate_hierarchical(params, rng);
  Simulation sim = make_sim(topo, 21);
  std::map<bgp::Asn, Lengths> monitors;
  for (bgp::Asn asn : topo.all_asns()) sim.attach_monitor(asn, &monitors[asn]);
  const bgp::Asn origin = topo.all_asns().back();
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, origin, kBeacon);
  sim.run_until(t0 + kHour);
  std::map<bgp::Asn, std::size_t> steady_counts;
  std::map<bgp::Asn, int> steady_lengths;
  for (const auto& [asn, m] : monitors) {
    steady_counts[asn] = m.lengths.size();
    if (!m.lengths.empty()) steady_lengths[asn] = m.lengths.back();
  }
  sim.withdraw(t0 + kHour, origin, kBeacon);
  sim.run_until(t0 + 2 * kHour);
  int hunting_ases = 0;
  int longer_than_steady = 0;
  for (const auto& [asn, m] : monitors) {
    if (m.lengths.size() <= steady_counts[asn]) continue;
    ++hunting_ases;  // this AS re-announced during convergence
    for (std::size_t i = steady_counts[asn]; i < m.lengths.size(); ++i)
      if (m.lengths[i] > steady_lengths[asn]) {
        ++longer_than_steady;
        break;
      }
  }
  EXPECT_GT(hunting_ases, 0) << "no path hunting observed anywhere";
  EXPECT_GT(longer_than_steady, 0) << "hunting paths were never longer";
  // Everyone still converges to clean state.
  for (bgp::Asn asn : topo.all_asns())
    ASSERT_EQ(sim.router(asn).best(kBeacon), nullptr) << "AS" << asn;
}

TEST(Simulation, StatsAreCounted) {
  Topology topo = diamond();
  Simulation sim = make_sim(topo);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 100, kBeacon);
  sim.run_until(t0 + kHour);
  EXPECT_GT(sim.stats().events_processed, 0u);
  EXPECT_GT(sim.stats().messages_delivered, 0u);
  EXPECT_GT(sim.stats().rib_changes, 0u);
}

TEST(Simulation, DeterministicAcrossRuns) {
  for (int run = 0; run < 2; ++run) {
    static std::uint64_t first_delivered = 0;
    Topology topo = diamond();
    Simulation sim = make_sim(topo, 77);
    const auto t0 = utc(2024, 6, 4, 12, 0, 0);
    sim.announce(t0, 100, kBeacon);
    sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
    sim.run_until(t0 + kHour);
    if (run == 0)
      first_delivered = sim.stats().messages_delivered;
    else
      EXPECT_EQ(sim.stats().messages_delivered, first_delivered);
  }
}

}  // namespace
}  // namespace zombiescope::simnet

#include "live/loopback.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace zombiescope::live {

namespace {

constexpr std::string_view kIngestKey = "\"ingest_ns\":";

std::uint64_t now_steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

LoopbackLatencyClient::LoopbackLatencyClient(std::uint16_t port,
                                             std::string target)
    : port_(port), target_(std::move(target)) {
  if constexpr (obs::kLatHistCompiledIn) {
    e2e_ = &obs::LatRegistry::global().get("live.e2e");
    m_e2e_seconds_ = obs::Registry::global().histogram(
        "zs_live_stage_seconds_e2e",
        {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
         1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
         1.0,  2.5,    5.0});
  }
}

LoopbackLatencyClient::~LoopbackLatencyClient() { stop(); }

bool LoopbackLatencyClient::start() {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  // Bounded recv waits so stop() is honored even on a silent stream.
  timeval tv{};
  tv.tv_usec = 100 * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = "GET " + target_ +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\nAccept: "
                              "text/event-stream\r\n\r\n";
  if (::send(fd_, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { reader_loop(); });
  return true;
}

void LoopbackLatencyClient::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void LoopbackLatencyClient::reader_loop() {
  char buf[8192];
  while (!stop_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_.fetch_add(static_cast<std::uint64_t>(n),
                       std::memory_order_relaxed);
      scan(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;  // recv timeout tick; re-check stop_
    }
    break;  // peer closed or hard error
  }
}

void LoopbackLatencyClient::scan(const char* data, std::size_t len) {
  // Incremental match of `"ingest_ns":<digits>`; any byte boundary may
  // fall inside the key or the number (TCP segmentation), so the
  // partial state lives across calls. Chunked-transfer headers never
  // split a number: pump_stream frames whole SSE events per chunk.
  for (std::size_t i = 0; i < len; ++i) {
    const char c = data[i];
    if (in_number_) {
      if (c >= '0' && c <= '9') {
        number_ = number_ * 10 + static_cast<std::uint64_t>(c - '0');
        continue;
      }
      in_number_ = false;
      const std::uint64_t now = now_steady_ns();
      if (number_ != 0 && now > number_) {
        const std::uint64_t e2e_ns = now - number_;
        if constexpr (obs::kLatHistCompiledIn) {
          if (e2e_ != nullptr) e2e_->record(e2e_ns);
          m_e2e_seconds_.observe(static_cast<double>(e2e_ns) * 1e-9);
        }
        samples_.fetch_add(1, std::memory_order_relaxed);
      }
      number_ = 0;
      // fall through to key matching on this byte
    }
    if (c == kIngestKey[key_matched_]) {
      if (++key_matched_ == kIngestKey.size()) {
        key_matched_ = 0;
        in_number_ = true;
        number_ = 0;
      }
    } else {
      key_matched_ = c == kIngestKey[0] ? 1 : 0;
    }
  }
}

}  // namespace zombiescope::live

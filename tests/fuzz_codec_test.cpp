// Robustness ("fuzz-lite") tests for the wire codecs: malformed,
// truncated and bit-flipped inputs must produce DecodeError — never
// crashes, hangs, or silent garbage. A measurement pipeline that
// ingests years of third-party MRT archives lives or dies on this
// (the paper cites corrupted records from FRR ADD-PATH encodings as a
// real operational hazard).

#include <gtest/gtest.h>

#include "beacon/clock.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"

namespace zombiescope {
namespace {

using netbase::DecodeError;
using netbase::IpAddress;
using netbase::Prefix;
using netbase::Rng;

std::vector<std::uint8_t> sample_update_wire() {
  bgp::UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("2a0d:3dc1:1851::/48"));
  msg.attributes.as_path = bgp::AsPath{61573, 28598, 8298, 210312};
  msg.attributes.next_hop = IpAddress::parse("2001:db8::1");
  msg.attributes.aggregator =
      beacon::make_beacon_aggregator(12654, netbase::utc(2018, 7, 15, 12, 0, 0));
  msg.attributes.communities = {{8298, 100}};
  return msg.encode();
}

std::vector<std::uint8_t> sample_mrt_stream() {
  mrt::Bgp4mpMessage m;
  m.timestamp = netbase::utc(2024, 6, 4, 12, 0, 0);
  m.peer_asn = 211509;
  m.local_asn = 12654;
  m.peer_address = IpAddress::parse("2001:678:3f4:5::1");
  m.local_address = IpAddress::parse("2001:7f8::1");
  m.update = bgp::UpdateMessage::decode(sample_update_wire());
  mrt::MrtWriter writer;
  writer.write(m);
  mrt::PeerIndexTable t;
  t.timestamp = m.timestamp;
  t.view_name = "rrc25";
  t.peers.push_back({1, m.peer_address, m.peer_asn});
  writer.write(t);
  mrt::RibEntryRecord rib;
  rib.timestamp = m.timestamp;
  rib.prefix = Prefix::parse("2a0d:3dc1:1851::/48");
  mrt::RibEntryRecord::Entry e;
  e.peer_index = 0;
  e.attributes = m.update.attributes;
  rib.entries.push_back(e);
  writer.write(rib);
  return writer.take();
}

// Either a clean parse or a DecodeError — nothing else.
template <typename Fn>
void expect_parse_or_decode_error(Fn&& fn) {
  try {
    fn();
  } catch (const DecodeError&) {
    // fine
  }
  // Any other exception type (or a crash) fails the test harness.
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, TruncatedUpdatesNeverCrash) {
  const auto wire = sample_update_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + static_cast<long>(len));
    expect_parse_or_decode_error([&] { (void)bgp::UpdateMessage::decode(cut); });
  }
}

TEST_P(CodecFuzz, BitFlippedUpdatesNeverCrash) {
  Rng rng(GetParam());
  const auto original = sample_update_wire();
  for (int iter = 0; iter < 2000; ++iter) {
    auto wire = original;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.index(wire.size());
      wire[pos] = static_cast<std::uint8_t>(wire[pos] ^ (1u << rng.uniform_int(0, 7)));
    }
    expect_parse_or_decode_error([&] {
      const auto msg = bgp::UpdateMessage::decode(wire);
      // If it parsed, it must re-encode without crashing too.
      (void)msg.encode();
    });
  }
}

TEST_P(CodecFuzz, RandomBytesAsUpdatesNeverCrash) {
  Rng rng(GetParam() + 1);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_int(0, 128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    expect_parse_or_decode_error([&] { (void)bgp::UpdateMessage::decode(junk); });
  }
}

TEST_P(CodecFuzz, TruncatedMrtStreamsNeverCrash) {
  const auto stream = sample_mrt_stream();
  for (std::size_t len = 0; len < stream.size(); len += 3) {
    std::vector<std::uint8_t> cut(stream.begin(), stream.begin() + static_cast<long>(len));
    expect_parse_or_decode_error([&] { (void)mrt::decode_all(cut); });
  }
}

TEST_P(CodecFuzz, BitFlippedMrtStreamsNeverCrash) {
  Rng rng(GetParam() + 2);
  const auto original = sample_mrt_stream();
  for (int iter = 0; iter < 2000; ++iter) {
    auto stream = original;
    const int flips = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.index(stream.size());
      stream[pos] = static_cast<std::uint8_t>(stream[pos] ^ (1u << rng.uniform_int(0, 7)));
    }
    expect_parse_or_decode_error([&] { (void)mrt::decode_all(stream); });
  }
}

TEST_P(CodecFuzz, RandomBytesAsMrtNeverCrash) {
  Rng rng(GetParam() + 3);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.uniform_int(0, 200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    expect_parse_or_decode_error([&] { (void)mrt::decode_all(junk); });
  }
}

TEST_P(CodecFuzz, ParsedGarbageReachesCanonicalFormInOneStep) {
  // Whatever survives decoding must re-encode into a *canonical* form:
  // encode(decode(encode(decode(x)))) == encode(decode(x)). Attributes
  // attached to withdrawal-only messages are deliberately dropped
  // (UpdateMessage documents attributes as meaningful only for
  // announcements), so value equality is checked on the canonical
  // wire, where that normalization has already happened.
  Rng rng(GetParam() + 4);
  const auto original = sample_update_wire();
  int survivors = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    auto wire = original;
    const auto pos = rng.index(wire.size());
    wire[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    bgp::UpdateMessage msg;
    try {
      msg = bgp::UpdateMessage::decode(wire);
    } catch (const DecodeError&) {
      continue;
    }
    ++survivors;
    const auto canonical = msg.encode();
    const auto msg2 = bgp::UpdateMessage::decode(canonical);
    EXPECT_EQ(msg2.encode(), canonical);
    EXPECT_EQ(msg2.announced, msg.announced);
    EXPECT_EQ(msg2.withdrawn, msg.withdrawn);
    if (msg.is_announcement()) {
      EXPECT_EQ(msg2.attributes, msg.attributes);
    }
  }
  EXPECT_GT(survivors, 0);  // some single-byte changes are benign
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(101, 202, 303));

TEST(ClockFuzz, AggregatorDecodeTotalOnAllAddresses) {
  Rng rng(7);
  for (int iter = 0; iter < 5000; ++iter) {
    const auto addr = IpAddress::v4(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL)));
    const auto t = netbase::utc(2018, 7, 19) + rng.uniform_int(0, 400 * netbase::kDay);
    const auto decoded = beacon::decode_aggregator_clock(addr, t);
    if (decoded.has_value()) {
      EXPECT_LE(*decoded, t);
      EXPECT_GE(*decoded, t - 32 * netbase::kDay);  // at most one month back
    }
  }
}

}  // namespace
}  // namespace zombiescope

#include "bgp/update.hpp"

#include <algorithm>

#include "bgp/types.hpp"

namespace zombiescope::bgp {

namespace {

using netbase::AddressFamily;
using netbase::ByteReader;
using netbase::ByteWriter;
using netbase::DecodeError;
using netbase::IpAddress;
using netbase::Prefix;

constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint16_t kAfiIpv6 = 2;
constexpr std::uint8_t kSafiUnicast = 1;

void split_by_family(std::span<const Prefix> in, std::vector<Prefix>& v4,
                     std::vector<Prefix>& v6) {
  for (const auto& p : in) (p.is_v4() ? v4 : v6).push_back(p);
}

std::vector<std::uint8_t> encode_mp_reach(const IpAddress& next_hop,
                                          std::span<const Prefix> v6_nlri) {
  ByteWriter w;
  w.u16(kAfiIpv6);
  w.u8(kSafiUnicast);
  w.u8(16);  // next-hop length
  w.bytes(std::span<const std::uint8_t>(next_hop.bytes().data(), 16));
  w.u8(0);  // reserved / SNPA count
  encode_nlri(w, v6_nlri);
  return w.take();
}

std::vector<std::uint8_t> encode_mp_unreach(std::span<const Prefix> v6_withdrawn) {
  ByteWriter w;
  w.u16(kAfiIpv6);
  w.u8(kSafiUnicast);
  encode_nlri(w, v6_withdrawn);
  return w.take();
}

}  // namespace

namespace wire {

void write_attribute(ByteWriter& w, std::uint8_t flags, AttrType type,
                     std::span<const std::uint8_t> payload) {
  // The extended-length flag must agree with the length field we emit;
  // normalize it both ways (a preserved unknown attribute may carry a
  // gratuitous extended-length flag from the wire).
  const bool extended = payload.size() > 255;
  if (extended)
    flags |= kAttrFlagExtendedLength;
  else
    flags = static_cast<std::uint8_t>(flags & ~kAttrFlagExtendedLength);
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (extended)
    w.u16(static_cast<std::uint16_t>(payload.size()));
  else
    w.u8(static_cast<std::uint8_t>(payload.size()));
  w.bytes(payload);
}

std::vector<std::uint8_t> encode_as_path(const AsPath& path) {
  ByteWriter w;
  for (const auto& seg : path.segments()) {
    w.u8(static_cast<std::uint8_t>(seg.type));
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) w.u32(asn);  // 4-byte ASNs (RFC 6793)
  }
  return w.take();
}

AsPath decode_as_path(ByteReader r) {
  AsPath path;
  while (!r.done()) {
    PathSegment seg;
    const std::uint8_t type = r.u8();
    if (type != 1 && type != 2) throw DecodeError("AS_PATH: bad segment type");
    seg.type = static_cast<SegmentType>(type);
    const std::uint8_t count = r.u8();
    seg.asns.reserve(count);
    for (int i = 0; i < count; ++i) seg.asns.push_back(r.u32());
    path.segments().push_back(std::move(seg));
  }
  return path;
}

}  // namespace wire

using wire::decode_as_path;
using wire::encode_as_path;
using wire::write_attribute;

void encode_nlri(ByteWriter& w, std::span<const Prefix> prefixes) {
  for (const auto& p : prefixes) {
    w.u8(static_cast<std::uint8_t>(p.length()));
    const int nbytes = (p.length() + 7) / 8;
    w.bytes(std::span<const std::uint8_t>(p.address().bytes().data(),
                                          static_cast<std::size_t>(nbytes)));
  }
}

std::vector<Prefix> decode_nlri(ByteReader& r, AddressFamily family) {
  std::vector<Prefix> out;
  while (!r.done()) {
    const int length = r.u8();
    const int max_len = family == AddressFamily::kIpv4 ? 32 : 128;
    if (length > max_len) throw DecodeError("NLRI: prefix length out of range");
    const int nbytes = (length + 7) / 8;
    auto raw = r.bytes(static_cast<std::size_t>(nbytes));
    std::array<std::uint8_t, 16> bytes{};
    std::copy(raw.begin(), raw.end(), bytes.begin());
    IpAddress addr = family == AddressFamily::kIpv4
                         ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
                         : IpAddress::v6(bytes);
    out.emplace_back(addr, length);
  }
  return out;
}

std::vector<std::uint8_t> UpdateMessage::encode() const {
  std::vector<Prefix> withdrawn_v4, withdrawn_v6, announced_v4, announced_v6;
  split_by_family(withdrawn, withdrawn_v4, withdrawn_v6);
  split_by_family(announced, announced_v4, announced_v6);

  ByteWriter body;

  // Withdrawn Routes (IPv4 only at top level).
  {
    ByteWriter nlri;
    encode_nlri(nlri, withdrawn_v4);
    body.u16(static_cast<std::uint16_t>(nlri.size()));
    body.bytes(nlri.data());
  }

  // Path attributes.
  ByteWriter attrs;
  const bool has_reach = !announced.empty();
  if (has_reach) {
    attrs.u8(kAttrFlagTransitive);
    attrs.u8(static_cast<std::uint8_t>(AttrType::kOrigin));
    attrs.u8(1);
    attrs.u8(static_cast<std::uint8_t>(attributes.origin));

    write_attribute(attrs, kAttrFlagTransitive, AttrType::kAsPath,
                    encode_as_path(attributes.as_path));

    if (!announced_v4.empty()) {
      // In the (rare) mixed-family case the configured next hop may be
      // v6; fall back to the unspecified v4 next hop for the NEXT_HOP
      // attribute, as the v6 hop travels inside MP_REACH_NLRI.
      IpAddress nh = attributes.next_hop.value_or(IpAddress::v4(0u));
      if (!nh.is_v4()) nh = IpAddress::v4(0u);
      attrs.u8(kAttrFlagTransitive);
      attrs.u8(static_cast<std::uint8_t>(AttrType::kNextHop));
      attrs.u8(4);
      attrs.bytes(std::span<const std::uint8_t>(nh.bytes().data(), 4));
    }
    if (attributes.med) {
      attrs.u8(kAttrFlagOptional);
      attrs.u8(static_cast<std::uint8_t>(AttrType::kMultiExitDisc));
      attrs.u8(4);
      attrs.u32(*attributes.med);
    }
    if (attributes.local_pref) {
      attrs.u8(kAttrFlagTransitive);
      attrs.u8(static_cast<std::uint8_t>(AttrType::kLocalPref));
      attrs.u8(4);
      attrs.u32(*attributes.local_pref);
    }
    if (attributes.atomic_aggregate) {
      attrs.u8(kAttrFlagTransitive);
      attrs.u8(static_cast<std::uint8_t>(AttrType::kAtomicAggregate));
      attrs.u8(0);
    }
    if (attributes.aggregator) {
      if (!attributes.aggregator->address.is_v4())
        throw DecodeError("AGGREGATOR address must be IPv4");
      attrs.u8(kAttrFlagOptional | kAttrFlagTransitive);
      attrs.u8(static_cast<std::uint8_t>(AttrType::kAggregator));
      attrs.u8(8);
      attrs.u32(attributes.aggregator->asn);
      attrs.bytes(std::span<const std::uint8_t>(attributes.aggregator->address.bytes().data(), 4));
    }
    if (!attributes.communities.empty()) {
      ByteWriter cw;
      for (const auto& c : attributes.communities) cw.u32(c.value());
      write_attribute(attrs, kAttrFlagOptional | kAttrFlagTransitive, AttrType::kCommunities,
                      cw.take());
    }
    if (!announced_v6.empty()) {
      std::array<std::uint8_t, 16> zero{};
      IpAddress nh = attributes.next_hop.value_or(IpAddress::v6(zero));
      if (!nh.is_v6()) nh = IpAddress::v6(zero);
      write_attribute(attrs, kAttrFlagOptional, AttrType::kMpReachNlri,
                      encode_mp_reach(nh, announced_v6));
    }
  }
  if (!withdrawn_v6.empty()) {
    write_attribute(attrs, kAttrFlagOptional, AttrType::kMpUnreachNlri,
                    encode_mp_unreach(withdrawn_v6));
  }
  for (const auto& raw : attributes.unknown) {
    write_attribute(attrs, raw.flags, static_cast<AttrType>(raw.type), raw.payload);
  }

  body.u16(static_cast<std::uint16_t>(attrs.size()));
  body.bytes(attrs.data());

  // Top-level NLRI (IPv4 only).
  encode_nlri(body, announced_v4);

  // BGP header.
  ByteWriter msg;
  for (int i = 0; i < 16; ++i) msg.u8(0xff);
  msg.u16(static_cast<std::uint16_t>(19 + body.size()));
  msg.u8(static_cast<std::uint8_t>(MessageType::kUpdate));
  msg.bytes(body.data());
  return msg.take();
}

UpdateMessage UpdateMessage::decode(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  for (int i = 0; i < 16; ++i) {
    if (r.u8() != 0xff) throw DecodeError("BGP header: bad marker");
  }
  const std::uint16_t length = r.u16();
  if (length != wire.size()) throw DecodeError("BGP header: length mismatch");
  const auto type = static_cast<MessageType>(r.u8());
  if (type != MessageType::kUpdate) throw DecodeError("not an UPDATE message");

  UpdateMessage msg;

  const std::uint16_t withdrawn_len = r.u16();
  {
    ByteReader wr = r.sub(withdrawn_len);
    auto v4 = decode_nlri(wr, AddressFamily::kIpv4);
    msg.withdrawn.insert(msg.withdrawn.end(), v4.begin(), v4.end());
  }

  const std::uint16_t attrs_len = r.u16();
  ByteReader ar = r.sub(attrs_len);
  while (!ar.done()) {
    const std::uint8_t flags = ar.u8();
    const std::uint8_t type_code = ar.u8();
    const std::size_t len = (flags & kAttrFlagExtendedLength) ? ar.u16() : ar.u8();
    ByteReader pr = ar.sub(len);
    switch (static_cast<AttrType>(type_code)) {
      case AttrType::kOrigin: {
        const std::uint8_t v = pr.u8();
        if (v > 2) throw DecodeError("ORIGIN: bad value");
        msg.attributes.origin = static_cast<Origin>(v);
        break;
      }
      case AttrType::kAsPath:
        msg.attributes.as_path = decode_as_path(pr);
        pr = ByteReader({});
        break;
      case AttrType::kNextHop: {
        auto raw = pr.bytes(4);
        msg.attributes.next_hop = IpAddress::v4({raw[0], raw[1], raw[2], raw[3]});
        break;
      }
      case AttrType::kMultiExitDisc:
        msg.attributes.med = pr.u32();
        break;
      case AttrType::kLocalPref:
        msg.attributes.local_pref = pr.u32();
        break;
      case AttrType::kAtomicAggregate:
        msg.attributes.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        Aggregator agg;
        agg.asn = pr.u32();
        auto raw = pr.bytes(4);
        agg.address = IpAddress::v4({raw[0], raw[1], raw[2], raw[3]});
        msg.attributes.aggregator = agg;
        break;
      }
      case AttrType::kCommunities: {
        while (!pr.done()) msg.attributes.communities.push_back(Community::from_value(pr.u32()));
        break;
      }
      case AttrType::kMpReachNlri: {
        const std::uint16_t afi = pr.u16();
        const std::uint8_t safi = pr.u8();
        if (afi != kAfiIpv6 || safi != kSafiUnicast)
          throw DecodeError("MP_REACH_NLRI: unsupported AFI/SAFI");
        const std::uint8_t nh_len = pr.u8();
        if (nh_len != 16 && nh_len != 32)
          throw DecodeError("MP_REACH_NLRI: bad next-hop length");
        auto nh_raw = pr.bytes(nh_len);
        std::array<std::uint8_t, 16> nh{};
        std::copy(nh_raw.begin(), nh_raw.begin() + 16, nh.begin());
        msg.attributes.next_hop = IpAddress::v6(nh);
        pr.u8();  // reserved
        auto v6 = decode_nlri(pr, AddressFamily::kIpv6);
        msg.announced.insert(msg.announced.end(), v6.begin(), v6.end());
        break;
      }
      case AttrType::kMpUnreachNlri: {
        const std::uint16_t afi = pr.u16();
        const std::uint8_t safi = pr.u8();
        if (afi != kAfiIpv6 || safi != kSafiUnicast)
          throw DecodeError("MP_UNREACH_NLRI: unsupported AFI/SAFI");
        auto v6 = decode_nlri(pr, AddressFamily::kIpv6);
        msg.withdrawn.insert(msg.withdrawn.end(), v6.begin(), v6.end());
        break;
      }
      default: {
        RawAttribute raw;
        raw.flags = flags;
        raw.type = type_code;
        auto payload = pr.bytes(pr.remaining());
        raw.payload.assign(payload.begin(), payload.end());
        msg.attributes.unknown.push_back(std::move(raw));
        break;
      }
    }
    if (static_cast<AttrType>(type_code) != AttrType::kAsPath)
      pr.expect_done("path attribute");
  }

  auto v4 = decode_nlri(r, AddressFamily::kIpv4);
  msg.announced.insert(msg.announced.end(), v4.begin(), v4.end());
  return msg;
}

std::string UpdateMessage::summary() const {
  std::string out;
  if (is_announcement()) {
    out += "A";
    for (const auto& p : announced) out += " " + p.to_string();
    out += " path=[" + attributes.as_path.to_string() + "]";
    if (attributes.aggregator)
      out += " agg=" + std::to_string(attributes.aggregator->asn) + "/" +
             attributes.aggregator->address.to_string();
  }
  if (!withdrawn.empty()) {
    if (!out.empty()) out += "; ";
    out += "W";
    for (const auto& p : withdrawn) out += " " + p.to_string();
  }
  return out;
}

}  // namespace zombiescope::bgp

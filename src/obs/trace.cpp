#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "obs/heap.hpp"
#include "obs/prof.hpp"

namespace zombiescope::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The innermost open span of this thread; spans started while another
// is open become its children.
thread_local std::uint64_t t_current_span = 0;

}  // namespace

Tracer::Tracer(std::size_t capacity) : epoch_ns_(steady_ns()), capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

Tracer& Tracer::global() {
  static Tracer* instance = [] {
    auto* tracer = new Tracer();
    tracer->set_dropped_counter(
        Registry::global().counter("zs_obs_spans_dropped_total"));
    return tracer;
  }();
  return *instance;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  head_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // head_ points at the oldest entry once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_ = steady_ns();
}

std::int64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

void Tracer::record(SpanRecord record) {
  std::lock_guard lock(mutex_);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    m_dropped_.inc();
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Overwriting the oldest buffered span loses it from snapshots.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  m_dropped_.inc();
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

ScopedSpan::ScopedSpan(std::string_view name, Tracer& tracer) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  id_ = tracer.next_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  // While a zsprof session runs, publish this span on the thread's
  // signal-readable span stack so samples are phase-attributed.
  // Compiles to nothing when the profiler is built out, and costs one
  // relaxed load plus one thread_local read when no session is active.
  // Registration is unconditional so a session started mid-run (GET
  // /profile) can sample threads that are already inside their spans —
  // those samples are frame-attributed but span-less until the thread
  // opens its next span.
  if constexpr (kProfCompiledIn) {
    prof_register_thread();
    if (prof_attribution_active()) {
      prof_push_span(prof_intern(name_));
      prof_pushed_ = true;
    }
  }
  // Same deal for zsheap: while an allocation-profiling session runs,
  // publish this span so the allocator hook can credit bytes to it.
  if constexpr (kHeapCompiledIn) {
    if (heap_attribution_active()) {
      heap_push_span(heap_intern(name_));
      heap_pushed_ = true;
    }
  }
  start_ns_ = tracer.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  if constexpr (kProfCompiledIn) {
    if (prof_pushed_) prof_pop_span();
  }
  if constexpr (kHeapCompiledIn) {
    if (heap_pushed_) heap_pop_span();
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.duration_ns = tracer_->now_ns() - start_ns_;
  t_current_span = parent_;
  tracer_->record(std::move(record));
}

}  // namespace zombiescope::obs

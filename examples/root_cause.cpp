// root_cause — walks through the palm-tree root-cause inference of
// §5.2 on a branching outbreak: many peers keep a stuck route, all
// paths converge into a single chain toward the origin, and the last
// AS of the chain is the suspect.
//
// Build & run:  ./build/examples/root_cause

#include <cstdio>

#include "collector/collector.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"
#include "zombie/longlived.hpp"
#include "zombie/rootcause.hpp"

using namespace zombiescope;

int main() {
  using topology::Relationship;

  // A palm tree: the culprit AS33891 sits on the single chain from the
  // origin; several customers branch above it.
  //
  //   peers:   64620  64621  64622  64623
  //                \   |       |   /
  //                 \  |       |  /
  //                    33891 (culprit)
  //                      |
  //                    25091
  //                      |
  //                     8298
  //                      |
  //                    210312 (origin)
  topology::Topology topo;
  topo.add_as({210312, 3, "origin"});
  topo.add_as({8298, 2, "upstream"});
  topo.add_as({25091, 2, "transit"});
  topo.add_as({33891, 2, "culprit"});
  topo.add_link(8298, 210312, Relationship::kCustomer);
  topo.add_link(25091, 8298, Relationship::kCustomer);
  topo.add_link(33891, 25091, Relationship::kCustomer);
  std::vector<bgp::Asn> peers{64620, 64621, 64622, 64623};
  for (bgp::Asn asn : peers) {
    topo.add_as({asn, 3, "peer"});
    topo.add_link(33891, asn, Relationship::kCustomer);
  }

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(3));
  collector::Collector rrc("rrc25", 12654, netbase::IpAddress::parse("193.0.29.28"));
  int index = 0;
  for (bgp::Asn asn : peers) {
    collector::SessionConfig session;
    session.peer_asn = asn;
    session.peer_address = netbase::IpAddress::parse("2001:7f8::" + std::to_string(++index));
    rrc.add_peer(sim, session, netbase::Rng(static_cast<std::uint64_t>(index)));
  }

  // The culprit swallows the withdrawal toward all of its customers.
  const auto t0 = netbase::utc(2024, 6, 18, 22, 30, 0);
  const auto prefix = netbase::Prefix::parse("2a0d:3dc1:2233::/48");
  simnet::WithdrawalSuppression fault;
  fault.from_asn = 33891;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  sim.announce(t0, 210312, prefix);
  sim.withdraw(t0 + 15 * netbase::kMinute, 210312, prefix);
  sim.run_until(t0 + 4 * netbase::kHour);

  std::vector<beacon::BeaconEvent> events{{prefix, t0, t0 + 15 * netbase::kMinute, false}};
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result =
      detector.detect(mrt::decode_all(mrt::encode_all(rrc.updates())), events,
                      180 * netbase::kMinute);

  if (result.outbreaks.empty()) {
    std::printf("no outbreak detected?!\n");
    return 1;
  }
  const auto& outbreak = result.outbreaks.front();
  std::printf("outbreak: %s stuck >= 3h at %d peer routers in %d peer ASes\n\n",
              outbreak.prefix.to_string().c_str(), outbreak.peer_router_count(),
              outbreak.peer_as_count());
  std::printf("stuck AS paths (peer first, origin last):\n");
  for (const auto& route : outbreak.routes)
    std::printf("  [%s]\n", route.path.to_string().c_str());

  const auto cause = zombie::infer_root_cause(outbreak);
  std::printf("\npalm-tree analysis:\n");
  std::printf("  chain from the origin: ");
  for (bgp::Asn asn : cause.chain) std::printf("AS%u ", asn);
  std::printf("\n  common subpath: '%s'\n", cause.common_subpath().c_str());
  std::printf("  suspect (last AS of the chain): AS%u\n", cause.suspect.value_or(0));
  std::printf("  caveats: ambiguous=%s single_route=%s\n", cause.ambiguous ? "yes" : "no",
              cause.single_route ? "yes" : "no");
  std::printf("\nNote (paper §5.2): the suspect is not necessarily responsible — the\n"
              "previous AS may have failed to propagate the withdrawal to it, and\n"
              "invisible IXP route servers can hide the real culprit.\n");
  return 0;
}

// Tests for zstsdb: ring wraparound under the lock-free discipline,
// tier downsampling at bucket boundaries, counter-reset-aware rate(),
// the alert state machine (hysteresis, sustained-duration, baseline
// ratio), and the /tsdb/query HTTP parameter validation. Everything is
// driven through sample_once() with a synthetic clock — no sampler
// thread, no sleeps.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/http.hpp"
#include "obs/tsdb.hpp"

namespace zombiescope::obs {
namespace {

constexpr std::int64_t kSec = 1000;

/// A Tsdb over a single small tier with one gauge/counter probe whose
/// value the test controls directly.
struct Harness {
  explicit Harness(std::vector<TsdbTier> tiers, SeriesKind kind,
                   const char* name = "test.metric") {
    TsdbConfig cfg;
    cfg.tiers = std::move(tiers);
    tsdb = std::make_unique<Tsdb>(cfg);
    tsdb->add_probe(name, kind, [this] { return value; });
  }

  double value = 0.0;
  std::unique_ptr<Tsdb> tsdb;
};

TEST(ObsTsdbDuration, ParsesSuffixedAndBareSeconds) {
  EXPECT_EQ(parse_duration_ms("30s"), 30'000);
  EXPECT_EQ(parse_duration_ms("5m"), 300'000);
  EXPECT_EQ(parse_duration_ms("2h"), 7'200'000);
  EXPECT_EQ(parse_duration_ms("42"), 42'000);  // bare number = seconds
  EXPECT_EQ(parse_duration_ms(""), 0);
  EXPECT_EQ(parse_duration_ms("banana"), 0);
  EXPECT_EQ(parse_duration_ms("-5s"), 0);
  EXPECT_EQ(parse_duration_ms("0"), 0);
  EXPECT_EQ(parse_duration_ms("12x"), 0);
  EXPECT_EQ(parse_duration_ms("s"), 0);
  EXPECT_EQ(parse_duration_ms("99999999999999999999h"), 0);  // overflow guard
}

TEST(ObsTsdb, RingWraparoundKeepsNewestWindow) {
  Harness h({{kSec, 8}}, SeriesKind::kGauge);
  // 21 ticks at 1 s; each bucket is flushed when the next one starts,
  // so buckets 0..19 are pushed through an 8-slot ring.
  for (std::int64_t t = 0; t <= 20; ++t) {
    h.value = static_cast<double>(t);
    h.tsdb->sample_once(t * kSec);
  }
  const auto q = h.tsdb->query("test.metric", 120 * kSec, 0, false);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  // Once wrapped, a lock-free read yields cap-1 points: the oldest
  // copied slot must be discarded because the writer may already be
  // rewriting it before the head advances.
  ASSERT_EQ(q.points.size(), 7u);
  for (std::size_t i = 0; i < q.points.size(); ++i) {
    EXPECT_EQ(q.points[i].t_ms, static_cast<std::int64_t>(13 + i) * kSec);
    EXPECT_DOUBLE_EQ(q.points[i].v, static_cast<double>(13 + i));
    if (i > 0) {
      EXPECT_GT(q.points[i].t_ms, q.points[i - 1].t_ms);
    }
  }
}

TEST(ObsTsdb, TierDownsampleAveragesGaugesAtBoundaries) {
  // Tier 0 spans only 4 s, so a 60 s query must fall through to the
  // 10 s tier — whose buckets average the ten 1 s samples they cover.
  Harness h({{kSec, 4}, {10 * kSec, 100}}, SeriesKind::kGauge);
  for (std::int64_t t = 0; t < 60; ++t) {
    h.value = static_cast<double>(t);
    h.tsdb->sample_once(t * kSec);
  }
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 0, false);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  EXPECT_EQ(q.step_ms, 10 * kSec);
  // Buckets 0..4 are complete and flushed; bucket 5 still accumulates.
  ASSERT_EQ(q.points.size(), 5u);
  for (std::size_t i = 0; i < q.points.size(); ++i) {
    EXPECT_EQ(q.points[i].t_ms, static_cast<std::int64_t>(i) * 10 * kSec);
    // mean of {10i, .., 10i+9} = 10i + 4.5
    EXPECT_DOUBLE_EQ(q.points[i].v, 10.0 * static_cast<double>(i) + 4.5);
  }
}

TEST(ObsTsdb, TierDownsampleKeepsLastCumulativeForCounters) {
  Harness h({{kSec, 4}, {10 * kSec, 100}}, SeriesKind::kCounter);
  for (std::int64_t t = 0; t < 60; ++t) {
    h.value = static_cast<double>(t);
    h.tsdb->sample_once(t * kSec);
  }
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 0, false);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  ASSERT_EQ(q.points.size(), 5u);
  for (std::size_t i = 0; i < q.points.size(); ++i) {
    // Last cumulative value in bucket i is 10i + 9, not the mean.
    EXPECT_DOUBLE_EQ(q.points[i].v, 10.0 * static_cast<double>(i) + 9.0);
  }
}

TEST(ObsTsdb, StepCoarserThanTierRegroups) {
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  for (std::int64_t t = 0; t <= 12; ++t) {
    h.value = static_cast<double>(t);
    h.tsdb->sample_once(t * kSec);
  }
  // step=3s over 1s samples: buckets of three average.
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 3 * kSec, false);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  EXPECT_EQ(q.step_ms, 3 * kSec);
  ASSERT_FALSE(q.points.empty());
  // Bucket [0,3) holds samples 0,1,2 -> mean 1.
  EXPECT_EQ(q.points.front().t_ms, 0);
  EXPECT_DOUBLE_EQ(q.points.front().v, 1.0);
}

TEST(ObsTsdb, CounterResetProducesPositiveRate) {
  Harness h({{kSec, 64}}, SeriesKind::kCounter);
  const double samples[] = {0, 10, 20, 30, 5, 15, 25};  // reset after 30
  std::int64_t t = 0;
  for (const double v : samples) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  }
  h.tsdb->sample_once(t * kSec);  // flush the last bucket
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 0, true);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  ASSERT_GE(q.points.size(), 5u);
  for (const auto& p : q.points) {
    EXPECT_GE(p.v, 0.0) << "rate() must absorb counter resets";
  }
  // Across the reset (30 -> 5) the new cumulative value is the delta.
  bool saw_reset_rate = false;
  for (const auto& p : q.points) {
    if (p.t_ms == 4 * kSec) {
      EXPECT_DOUBLE_EQ(p.v, 5.0);
      saw_reset_rate = true;
    }
  }
  EXPECT_TRUE(saw_reset_rate);
}

TEST(ObsTsdb, RateOnGaugeIsBadRequest) {
  Harness h({{kSec, 8}}, SeriesKind::kGauge);
  h.tsdb->sample_once(0);
  h.tsdb->sample_once(kSec);
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 0, true);
  EXPECT_EQ(q.status, Tsdb::QueryStatus::kBadRequest);
}

TEST(ObsTsdb, ClockBackwardsKeepsTimestampsMonotone) {
  Harness h({{kSec, 32}}, SeriesKind::kGauge);
  const std::int64_t ticks[] = {0, 1, 2, 3, 4, 5, 2, 3, 6, 7, 8};
  for (const std::int64_t t : ticks) {
    h.value = static_cast<double>(t);
    h.tsdb->sample_once(t * kSec);
  }
  const auto q = h.tsdb->query("test.metric", 60 * kSec, 0, false);
  ASSERT_EQ(q.status, Tsdb::QueryStatus::kOk);
  ASSERT_GE(q.points.size(), 2u);
  for (std::size_t i = 1; i < q.points.size(); ++i) {
    EXPECT_GT(q.points[i].t_ms, q.points[i - 1].t_ms);
  }
}

TEST(ObsTsdb, UnknownMetricIsNotFound) {
  Harness h({{kSec, 8}}, SeriesKind::kGauge);
  h.tsdb->sample_once(0);
  EXPECT_EQ(h.tsdb->query("no.such", 60 * kSec, 0, false).status,
            Tsdb::QueryStatus::kNotFound);
}

TEST(ObsTsdb, MetricNamesIncludeRegistryAndProbes) {
  Harness h({{kSec, 8}}, SeriesKind::kGauge);
  h.tsdb->sample_once(0);
  const auto names = h.tsdb->metric_names();
  bool saw_probe = false;
  bool saw_registry = false;
  for (const auto& n : names) {
    if (n == "test.metric") saw_probe = true;
    // The zs_ prefix is stripped and the module separator dotted.
    if (n == "tsdb.samples_total") saw_registry = true;
  }
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_registry);
}

// ---------------------------------------------------------------------------
// Alerts

TEST(ObsTsdbAlerts, SingleSpikeDoesNotFire) {
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "load_high";
  rule.metric = "test.metric";
  rule.threshold = 10.0;
  rule.clear_threshold = 5.0;
  rule.for_seconds = 3.0;
  rule.clear_for_seconds = 2.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(0);
  step(0);
  step(20);  // one spike
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kPending);
  step(0);  // back below clear
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  EXPECT_EQ(h.tsdb->firing_count(), 0u);
}

TEST(ObsTsdbAlerts, SustainedBreachFiresAndHysteresisHolds) {
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "load_high";
  rule.metric = "test.metric";
  rule.threshold = 10.0;
  rule.clear_threshold = 5.0;
  rule.for_seconds = 3.0;
  rule.clear_for_seconds = 2.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(0);
  for (int i = 0; i < 3; ++i) step(20);  // breach run starts
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kPending);
  step(20);  // 3 s sustained -> fires
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(h.tsdb->firing_count(), 1u);
  EXPECT_EQ(h.tsdb->firing_names(), "load_high");

  // Dip into the hysteresis band (5 < 7 <= 10): firing holds.
  step(7);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);

  // Below the clear threshold, but the run must last clear_for = 2 s.
  step(3);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  step(3);
  step(3);  // clear run >= 2 s -> resolved
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  EXPECT_EQ(h.tsdb->firing_count(), 0u);
  EXPECT_EQ(h.tsdb->firing_names(), "");
}

TEST(ObsTsdbAlerts, BelowRuleFiresWhenValueDropsUnderThreshold) {
  // Op::kBelow inverts the comparison: breach when value < threshold,
  // clear when value >= clear_threshold (zslived's peers_silent rule
  // watches a feeding-peer count this way).
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "feed_lost";
  rule.metric = "test.metric";
  rule.op = AlertRule::Op::kBelow;
  rule.threshold = 1.0;
  rule.for_seconds = 2.0;
  rule.clear_for_seconds = 1.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(5);  // healthy: above threshold
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  step(0);  // drops under: pending
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kPending);
  step(0);
  step(0);  // sustained 2 s -> fires
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(h.tsdb->firing_names(), "feed_lost");
  // Exactly at the threshold is NOT a breach for kBelow (strict <).
  step(1);
  step(1);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  EXPECT_EQ(h.tsdb->firing_count(), 0u);
}

TEST(ObsTsdbAlerts, BelowRuleHysteresisBandHoldsFiring) {
  // With a clear_threshold above the trigger, a kBelow rule must keep
  // firing while the value sits inside the (threshold, clear) band and
  // resolve only once it climbs past clear for clear_for seconds.
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "feed_low";
  rule.metric = "test.metric";
  rule.op = AlertRule::Op::kBelow;
  rule.threshold = 10.0;
  rule.clear_threshold = 15.0;  // must recover well past the trigger
  rule.for_seconds = 2.0;
  rule.clear_for_seconds = 2.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(20);
  for (int i = 0; i < 3; ++i) step(5);  // sustained drop -> fires
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  // In the band (10 <= 12 < 15): firing holds.
  step(12);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  // Recovered, but only for 1 s: still firing.
  step(20);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  // A dip back into the band restarts the clear clock.
  step(12);
  step(20);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  step(20);
  step(20);  // >= 2 s clean recovery -> resolved
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
}

TEST(ObsTsdbAlerts, AboveAndBelowAliasesMatchGtLt) {
  // The Op aliases are interchangeable spellings, not separate modes.
  EXPECT_EQ(AlertRule::Op::kAbove, AlertRule::Op::kGt);
  EXPECT_EQ(AlertRule::Op::kBelow, AlertRule::Op::kLt);
}

TEST(ObsTsdbAlerts, InBandSampleRestartsPendingClock) {
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "load_high";
  rule.metric = "test.metric";
  rule.threshold = 10.0;
  rule.clear_threshold = 5.0;
  rule.for_seconds = 2.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(0);
  step(20);  // pending at t=1
  step(7);   // in band: pending holds, but its clock restarts
  step(20);  // 1 s into the new run: must NOT fire yet
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kPending);
  step(20);
  step(20);  // uninterrupted 2 s run -> fires
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
}

TEST(ObsTsdbAlerts, RateRuleFiresOnCounterIncrease) {
  Harness h({{kSec, 64}}, SeriesKind::kCounter);
  AlertRule rule;
  rule.name = "drops";
  rule.metric = "test.metric";
  rule.mode = AlertRule::Mode::kRate;
  rule.threshold = 0.0;  // any increase breaches
  rule.for_seconds = 2.0;
  rule.clear_for_seconds = 1.0;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  step(0);  // first tick seeds prev, no evaluation
  step(0);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  step(5);   // rate 5/s -> pending
  step(9);   // still increasing
  step(12);  // 2 s sustained -> firing
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  step(12);  // flat: rate 0 -> clear run starts
  step(12);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
}

TEST(ObsTsdbAlerts, BaselineRatioScalesThreshold) {
  Harness h({{kSec, 128}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "p99_regression";
  rule.metric = "test.metric";
  rule.mode = AlertRule::Mode::kBaselineRatio;
  rule.threshold = 2.0;  // 2x own baseline
  rule.clear_threshold = 1.5;
  rule.for_seconds = 2.0;
  rule.clear_for_seconds = 2.0;
  rule.baseline_window_seconds = 20.0;
  rule.baseline_min_samples = 10;
  h.tsdb->add_rule(rule);

  std::int64_t t = 0;
  auto step = [&](double v) {
    h.value = v;
    h.tsdb->sample_once(t * kSec);
    ++t;
  };
  // Not enough history: the rule holds Ok however large the value.
  for (int i = 0; i < 5; ++i) step(100);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);

  // Build a ~1.0 baseline, then regress to 5x.
  for (int i = 0; i < 30; ++i) step(1.0);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kOk);
  step(5.0);
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kPending);
  step(5.0);
  step(5.0);  // 2 s sustained over 2x baseline -> firing
  EXPECT_EQ(h.tsdb->alert_statuses()[0].state, AlertState::kFiring);
  // The effective threshold the status reports is baseline-scaled,
  // not the raw ratio.
  const auto st = h.tsdb->alert_statuses()[0];
  EXPECT_GT(st.threshold, 1.5);
  EXPECT_LT(st.threshold, 4.0);
}

TEST(ObsTsdbAlerts, AlertsJsonReportsFiringRule) {
  Harness h({{kSec, 64}}, SeriesKind::kGauge);
  AlertRule rule;
  rule.name = "load_high";
  rule.metric = "test.metric";
  rule.threshold = 1.0;
  rule.for_seconds = 0.0;  // fire immediately on breach
  h.tsdb->add_rule(rule);
  h.value = 5.0;
  h.tsdb->sample_once(0);
  const std::string json = h.tsdb->alerts_json();
  EXPECT_NE(json.find("\"firing\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"load_high\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// HTTP handlers (no socket: the handler bodies are exposed for this)

class ObsTsdbHttp : public ::testing::Test {
 protected:
  ObsTsdbHttp() {
    TsdbConfig cfg;
    cfg.tiers = {{kSec, 64}};
    tsdb_ = std::make_unique<Tsdb>(cfg);
    tsdb_->add_probe("test.gauge", SeriesKind::kGauge, [] { return 1.0; });
    tsdb_->add_probe("test.counter", SeriesKind::kCounter,
                     [this] { return static_cast<double>(ticks_); });
    for (ticks_ = 0; ticks_ < 10; ++ticks_) {
      tsdb_->sample_once(static_cast<std::int64_t>(ticks_) * kSec);
    }
  }

  int ticks_ = 0;
  std::unique_ptr<Tsdb> tsdb_;
};

TEST_F(ObsTsdbHttp, QueryParamValidation) {
  EXPECT_EQ(tsdb_->handle_query("/tsdb/query").status, 400);
  EXPECT_EQ(tsdb_->handle_query("/tsdb/query?metric=test.gauge").status, 400);
  EXPECT_EQ(
      tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=banana").status,
      400);
  EXPECT_EQ(
      tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=-5s").status,
      400);
  EXPECT_EQ(tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=30s&step=0s")
                .status,
            400);
  EXPECT_EQ(tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=30s&step=x")
                .status,
            400);
  EXPECT_EQ(
      tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=30s&agg=median")
          .status,
      400);
  EXPECT_EQ(
      tsdb_->handle_query("/tsdb/query?metric=test.gauge&range=30s&agg=rate")
          .status,
      400);  // rate needs a counter
  EXPECT_EQ(tsdb_->handle_query("/tsdb/query?metric=no.such&range=30s").status,
            404);
}

TEST_F(ObsTsdbHttp, QueryReturnsSeriesJson) {
  const auto res =
      tsdb_->handle_query("/tsdb/query?metric=test.counter&range=30s&agg=rate");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"metric\":\"test.counter\""), std::string::npos);
  EXPECT_NE(res.body.find("\"agg\":\"rate\""), std::string::npos);
  EXPECT_NE(res.body.find("\"points\":[["), std::string::npos) << res.body;
}

TEST_F(ObsTsdbHttp, MetricsEndpointListsSeries) {
  const auto res = tsdb_->handle_metrics("/tsdb/metrics");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"name\":\"test.gauge\""), std::string::npos);
  EXPECT_NE(res.body.find("\"kind\":\"counter\""), std::string::npos);
}

TEST_F(ObsTsdbHttp, AlertsEndpointHealthy) {
  const auto res = tsdb_->handle_alerts("/alerts");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"firing\":0"), std::string::npos);
}

}  // namespace
}  // namespace zombiescope::obs

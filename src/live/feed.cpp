#include "live/feed.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <thread>
#include <variant>

#include "collector/collector.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"
#include "obs/metrics.hpp"
#include "simnet/simulation.hpp"
#include "topology/topology.hpp"

namespace zombiescope::live {

namespace {

obs::Counter feed_records_counter() {
  return obs::Registry::global().counter("zs_live_feed_records_total");
}
obs::Counter feed_parse_errors_counter() {
  return obs::Registry::global().counter("zs_live_feed_parse_errors_total");
}

// --- a minimal JSON reader for the RIS-Live schema -------------------
//
// The container bakes in no JSON library and the schema is shallow, so
// a ~100-line recursive-descent parser is the whole dependency. It
// accepts the JSON subset RIS-Live emits (no comments, UTF-8 passed
// through, \uXXXX escapes collapsed to '?').

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      v = nullptr;

  const JsonObject* object() const { return std::get_if<JsonObject>(&v); }
  const JsonArray* array() const { return std::get_if<JsonArray>(&v); }
  const std::string* string() const { return std::get_if<std::string>(&v); }
  const double* number() const { return std::get_if<double>(&v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out.v = std::move(s);
      return true;
    }
    if (eat_word("null")) {
      out.v = nullptr;
      return true;
    }
    if (eat_word("true")) {
      out.v = true;
      return true;
    }
    if (eat_word("false")) {
      out.v = false;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!eat('{')) return false;
    JsonObject object;
    skip_ws();
    if (eat('}')) {
      out.v = std::move(object);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return false;
    }
    out.v = std::move(object);
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!eat('[')) return false;
    JsonArray array;
    skip_ws();
    if (eat(']')) {
      out.v = std::move(array);
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return false;
    }
    out.v = std::move(array);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (pos_ + 4 > text_.size()) return false;
          pos_ += 4;
          out += '?';  // no field we read carries non-ASCII escapes
          break;
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.v = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& object, const std::string& key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

/// peer_asn arrives as "64500" in RIS-Live but some producers send a
/// bare number; accept both.
std::optional<bgp::Asn> parse_asn(const JsonValue* value) {
  if (value == nullptr) return std::nullopt;
  if (const double* n = value->number()) {
    if (*n < 0 || *n > 4294967295.0) return std::nullopt;
    return static_cast<bgp::Asn>(*n);
  }
  if (const std::string* s = value->string()) {
    char* end = nullptr;
    const unsigned long long asn = std::strtoull(s->c_str(), &end, 10);
    if (end != s->c_str() + s->size() || asn > 4294967295ull) return std::nullopt;
    return static_cast<bgp::Asn>(asn);
  }
  return std::nullopt;
}

/// RIS-Live paths can contain AS_SET members as nested arrays; flatten
/// (the detector only matches paths textually).
void flatten_path(const JsonArray& array, std::vector<bgp::Asn>& out) {
  for (const JsonValue& element : array) {
    if (const double* n = element.number()) {
      out.push_back(static_cast<bgp::Asn>(*n));
    } else if (const JsonArray* nested = element.array()) {
      flatten_path(*nested, out);
    }
  }
}

}  // namespace

std::optional<mrt::MrtRecord> parse_ris_live_line(std::string_view line) {
  JsonParser parser(line);
  const auto doc = parser.parse();
  if (!doc) return std::nullopt;
  const JsonObject* object = doc->object();
  if (object == nullptr) return std::nullopt;
  if (const JsonValue* data = find(*object, "data")) {
    if (data->object() == nullptr) return std::nullopt;
    object = data->object();
  }

  std::string type = "UPDATE";
  if (const JsonValue* t = find(*object, "type")) {
    if (t->string() == nullptr) return std::nullopt;
    type = *t->string();
  }

  netbase::TimePoint timestamp = 0;
  if (const JsonValue* ts = find(*object, "timestamp")) {
    if (ts->number() == nullptr) return std::nullopt;
    timestamp = static_cast<netbase::TimePoint>(std::floor(*ts->number()));
  }

  const JsonValue* peer = find(*object, "peer");
  if (peer == nullptr || peer->string() == nullptr) return std::nullopt;
  const auto peer_address = netbase::IpAddress::try_parse(*peer->string());
  if (!peer_address) return std::nullopt;
  const auto peer_asn = parse_asn(find(*object, "peer_asn"));
  if (!peer_asn) return std::nullopt;

  if (type == "UPDATE") {
    mrt::Bgp4mpMessage message;
    message.timestamp = timestamp;
    message.peer_asn = *peer_asn;
    message.peer_address = *peer_address;
    if (const JsonValue* withdrawals = find(*object, "withdrawals")) {
      if (withdrawals->array() == nullptr) return std::nullopt;
      for (const JsonValue& w : *withdrawals->array()) {
        if (w.string() == nullptr) return std::nullopt;
        const auto prefix = netbase::Prefix::try_parse(*w.string());
        if (!prefix) return std::nullopt;
        message.update.withdrawn.push_back(*prefix);
      }
    }
    if (const JsonValue* announcements = find(*object, "announcements")) {
      if (announcements->array() == nullptr) return std::nullopt;
      for (const JsonValue& a : *announcements->array()) {
        const JsonObject* entry = a.object();
        if (entry == nullptr) return std::nullopt;
        if (const JsonValue* next_hop = find(*entry, "next_hop")) {
          if (next_hop->string() != nullptr) {
            message.update.attributes.next_hop =
                netbase::IpAddress::try_parse(*next_hop->string());
          }
        }
        const JsonValue* prefixes = find(*entry, "prefixes");
        if (prefixes == nullptr || prefixes->array() == nullptr) {
          return std::nullopt;
        }
        for (const JsonValue& p : *prefixes->array()) {
          if (p.string() == nullptr) return std::nullopt;
          const auto prefix = netbase::Prefix::try_parse(*p.string());
          if (!prefix) return std::nullopt;
          message.update.announced.push_back(*prefix);
        }
      }
    }
    if (const JsonValue* path = find(*object, "path")) {
      if (path->array() != nullptr) {
        std::vector<bgp::Asn> asns;
        flatten_path(*path->array(), asns);
        message.update.attributes.as_path = bgp::AsPath::sequence(asns);
      }
    }
    if (message.update.announced.empty() && message.update.withdrawn.empty()) {
      return std::nullopt;  // keepalive-ish UPDATE; nothing to detect on
    }
    return mrt::MrtRecord{std::move(message)};
  }

  if (type == "STATE" || type == "RIS_PEER_STATE") {
    std::string state;
    if (const JsonValue* s = find(*object, "state")) {
      if (s->string() != nullptr) state = *s->string();
    }
    const bool up =
        state == "connected" || state == "established" || state == "up";
    mrt::Bgp4mpStateChange change;
    change.timestamp = timestamp;
    change.peer_asn = *peer_asn;
    change.peer_address = *peer_address;
    change.old_state = up ? bgp::SessionState::kIdle : bgp::SessionState::kEstablished;
    change.new_state = up ? bgp::SessionState::kEstablished : bgp::SessionState::kIdle;
    return mrt::MrtRecord{change};
  }

  return std::nullopt;  // RIS_ERROR, pong, OPEN dumps, ...
}

// --- ReplayFeedSource ------------------------------------------------

ReplayFeedSource::ReplayFeedSource(std::vector<mrt::MrtRecord> records,
                                   double speed)
    : records_(std::move(records)), speed_(speed) {}

std::unique_ptr<ReplayFeedSource> ReplayFeedSource::from_file(
    const std::string& path, double speed) {
  return std::make_unique<ReplayFeedSource>(mrt::read_file(path), speed);
}

FeedSource::RunStats ReplayFeedSource::run(LiveService& service) {
  RunStats stats;
  if (records_.empty()) return stats;
  const obs::Counter m_records = feed_records_counter();
  const netbase::TimePoint t0 = mrt::record_timestamp(records_.front());
  const auto wall0 = std::chrono::steady_clock::now();
  for (const mrt::MrtRecord& record : records_) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (speed_ > 0) {
      const double offset =
          static_cast<double>(mrt::record_timestamp(record) - t0) / speed_;
      const auto target = wall0 + std::chrono::duration_cast<
                                      std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double>(offset));
      while (!stop_.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < target) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    // The ingest stamp is taken *after* the pacing wait: pacing models
    // inter-arrival time, so for latency purposes the record "arrives"
    // when the gate releases it.
    service.submit(FeedItem{record, std::chrono::steady_clock::now()});
    ++stats.records;
    m_records.inc();
  }
  return stats;
}

// --- SimTapFeedSource ------------------------------------------------

namespace {

constexpr bgp::Asn kTapOrigin = 65000;
constexpr bgp::Asn kTapTransitA = 65010;
constexpr bgp::Asn kTapTransitB = 65020;
constexpr bgp::Asn kTapPeerClean = 65030;
constexpr bgp::Asn kTapPeerLossy = 65040;
constexpr bgp::Asn kTapPeerFlaky = 65050;
constexpr netbase::TimePoint kTapStart = 300;  // let initial routing settle

netbase::Prefix tap_beacon_prefix(std::size_t i) {
  return netbase::Prefix::parse("100.64." + std::to_string(i % 256) + ".0/24");
}

topology::Topology tap_topology() {
  topology::Topology topo;
  topo.add_as({kTapOrigin, 3, "tap-origin"});
  topo.add_as({kTapTransitA, 1, "tap-transit-a"});
  topo.add_as({kTapTransitB, 1, "tap-transit-b"});
  topo.add_as({kTapPeerClean, 2, "tap-peer-clean"});
  topo.add_as({kTapPeerLossy, 2, "tap-peer-lossy"});
  topo.add_as({kTapPeerFlaky, 2, "tap-peer-flaky"});
  topo.add_link(kTapTransitA, kTapOrigin, topology::Relationship::kCustomer);
  topo.add_link(kTapTransitB, kTapOrigin, topology::Relationship::kCustomer);
  topo.add_link(kTapTransitA, kTapTransitB, topology::Relationship::kPeer);
  topo.add_link(kTapTransitA, kTapPeerClean, topology::Relationship::kCustomer);
  topo.add_link(kTapTransitB, kTapPeerLossy, topology::Relationship::kCustomer);
  topo.add_link(kTapTransitA, kTapPeerFlaky, topology::Relationship::kCustomer);
  topo.add_link(kTapTransitB, kTapPeerFlaky, topology::Relationship::kCustomer);
  return topo;
}

}  // namespace

std::vector<beacon::BeaconEvent> SimTapFeedSource::schedule() const {
  std::vector<beacon::BeaconEvent> events;
  for (std::size_t i = 0; i < config_.beacon_prefixes; ++i) {
    const netbase::Prefix prefix = tap_beacon_prefix(i);
    for (netbase::TimePoint t = kTapStart; t < config_.duration;
         t += config_.beacon_period) {
      events.push_back({prefix, t, t + config_.beacon_uptime, false});
    }
  }
  return events;
}

FeedSource::RunStats SimTapFeedSource::run(LiveService& service) {
  RunStats stats;
  const obs::Counter m_records = feed_records_counter();

  const topology::Topology topo = tap_topology();
  netbase::Rng rng(config_.seed);
  simnet::Simulation sim(topo, simnet::SimConfig{}, rng.fork());

  collector::Collector col("tap", 64999,
                           netbase::IpAddress::parse("198.51.100.1"));
  const netbase::Prefix beacon_covering = netbase::Prefix::parse("100.64.0.0/16");
  collector::SessionConfig clean;
  clean.peer_asn = kTapPeerClean;
  clean.peer_address = netbase::IpAddress::parse("192.0.2.30");
  col.add_peer(sim, clean, rng.fork());
  // The session that makes the demo interesting: it loses *every*
  // beacon withdrawal, so each cycle is a guaranteed zombie on this
  // peer until the next announcement supersedes it.
  collector::SessionConfig lossy;
  lossy.peer_asn = kTapPeerLossy;
  lossy.peer_address = netbase::IpAddress::parse("192.0.2.40");
  lossy.withdrawal_loss_probability = 1.0;
  lossy.noise_prefix_filter = beacon_covering;
  col.add_peer(sim, lossy, rng.fork());
  collector::SessionConfig flaky;
  flaky.peer_asn = kTapPeerFlaky;
  flaky.peer_address = netbase::IpAddress::parse("192.0.2.50");
  flaky.withdrawal_loss_probability = 0.5;
  flaky.noise_prefix_filter = beacon_covering;
  col.add_peer(sim, flaky, rng.fork());

  for (const beacon::BeaconEvent& event : schedule()) {
    sim.announce(event.announce_time, kTapOrigin, event.prefix);
    sim.withdraw(event.withdraw_time, kTapOrigin, event.prefix);
  }

  std::size_t next = 0;
  const auto drain = [&] {
    const std::vector<mrt::MrtRecord>& updates = col.updates();
    for (; next < updates.size(); ++next) {
      // Stamped per record at drain time — the moment the tap hands
      // the collector's update to the live pipeline.
      service.submit(
          FeedItem{updates[next], std::chrono::steady_clock::now()});
      ++stats.records;
      m_records.inc();
    }
  };

  if (config_.speed <= 0) {
    sim.run_until(config_.duration);
    drain();
    return stats;
  }

  const auto wall0 = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    const auto target = std::min<netbase::TimePoint>(
        config_.duration,
        static_cast<netbase::TimePoint>(elapsed * config_.speed));
    sim.run_until(target);
    drain();
    if (target >= config_.duration) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return stats;
}

// --- TcpNdjsonFeedSource ---------------------------------------------

TcpNdjsonFeedSource::TcpNdjsonFeedSource(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("zslive: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("zslive: cannot bind NDJSON feed port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
}

TcpNdjsonFeedSource::~TcpNdjsonFeedSource() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

FeedSource::RunStats TcpNdjsonFeedSource::run(LiveService& service) {
  RunStats stats;
  const obs::Counter m_records = feed_records_counter();
  const obs::Counter m_errors = feed_parse_errors_counter();

  struct Client {
    int fd = -1;
    std::string buffer;
  };
  std::vector<Client> clients;

  const auto consume = [&](Client& client, bool flush) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = client.buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(client.buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        // Stamp before the parse: wire read → enqueue includes the
        // JSON decode cost in the ingest_enqueue stage.
        const auto ingest = std::chrono::steady_clock::now();
        if (auto record = parse_ris_live_line(line)) {
          service.submit(FeedItem{std::move(*record), ingest});
          ++stats.records;
          m_records.inc();
        } else {
          ++stats.parse_errors;
          m_errors.inc();
        }
      }
      start = nl + 1;
    }
    client.buffer.erase(0, start);
    if (flush && !client.buffer.empty()) {
      // A final unterminated line when the client hangs up.
      const auto ingest = std::chrono::steady_clock::now();
      if (auto record = parse_ris_live_line(client.buffer)) {
        service.submit(FeedItem{std::move(*record), ingest});
        ++stats.records;
        m_records.inc();
      } else {
        ++stats.parse_errors;
        m_errors.inc();
      }
      client.buffer.clear();
    }
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Client& client : clients) {
      pfds.push_back({client.fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), 50);
    if (ready <= 0) continue;

    for (std::size_t i = 0; i < clients.size(); ++i) {
      if ((pfds[i + 1].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      Client& client = clients[i];
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(client.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          client.buffer.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        consume(client, true);
        ::close(client.fd);
        client.fd = -1;
        break;
      }
      if (client.fd >= 0) consume(client, false);
    }
    std::erase_if(clients, [](const Client& client) { return client.fd < 0; });

    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        clients.push_back({fd, {}});
      }
    }
  }
  for (Client& client : clients) {
    consume(client, true);
    ::close(client.fd);
  }
  return stats;
}

}  // namespace zombiescope::live

// fig3_duration_cdf — reproduces Figure 3: the CDF of zombie-outbreak
// durations (outbreaks lasting at least one day), from ~a year of
// 8-hourly RIB dumps, for (i) all peers and (ii) noisy peers excluded.
// The shape to reproduce: durations reach months (max ~262 days =
// ~8.5 months); the noisy-excluded curve has knees near 4, 35–37, 85,
// 133/138 and 262 days; the 35–37-day cluster is visible from a single
// peer (2a0c:b641:780:7::feca of AS207301) whose next AS is noisy
// AS211509; zombies survive the ROA removal at ASes without ROV.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;

void print_figure() {
  bench::print_header("Figure 3 — CDF of zombie outbreak durations (>= 1 day)",
                      "IMC'25 paper Fig. 3 + §5.2 case-study durations");
  g_out = bench::load_longlived2024();

  for (bool exclude_noisy : {false, true}) {
    zombie::LongLivedConfig config;
    if (exclude_noisy)
      for (const auto& peer : g_out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::LifespanAnalyzer analyzer{config};
    const auto lifespans =
        analyzer.analyze(g_out.rib_dumps, g_out.events, g_out.rib_dump_interval);

    std::vector<double> days;
    int survived_roa_removal = 0;
    for (const auto& l : lifespans) {
      if (l.duration() < netbase::kDay) continue;
      days.push_back(static_cast<double>(l.duration()) / netbase::kDay);
      if (l.last_seen > g_out.roa_removed_at + netbase::kDay) ++survived_roa_removal;
    }
    analysis::Cdf cdf(days);
    std::printf("\n--- %s (outbreaks >= 1 day: %zu) ---\n",
                exclude_noisy ? "Noisy peers excluded" : "All peers", days.size());
    std::fputs(analysis::render_cdf(cdf, "days", 14).c_str(), stdout);
    std::printf("max duration: %.1f days (~%.1f months; paper max: ~262 days = 8.5 months)\n",
                cdf.max(), cdf.max() / 30.4);
    std::printf("outbreaks alive > 1 day after the ROA removal: %d (paper: zombies are\n"
                "not evicted by ASes without/with flawed ROV)\n",
                survived_roa_removal);

    if (exclude_noisy) {
      // The 35-37-day cluster must be visible from the single AS207301
      // peer router, with noisy AS211509 next in the path.
      int cluster = 0;
      bool single_peer = true, next_as_noisy = true;
      for (const auto& l : lifespans) {
        const double d = static_cast<double>(l.duration()) / netbase::kDay;
        if (d < 34 || d > 38) continue;
        ++cluster;
        for (const auto& interval : l.intervals) {
          if (interval.peer.address !=
              netbase::IpAddress::parse("2a0c:b641:780:7::feca"))
            single_peer = false;
          const auto flat = interval.path.flatten();
          if (flat.size() < 2 || flat[1] != scenarios::Cast::kNoisy1) next_as_noisy = false;
        }
      }
      std::printf("35-37 day cluster: %d outbreaks, single-peer=%s, next-AS-is-211509=%s\n"
                  "(paper: all such outbreaks visible from one AS207301 router behind\n"
                  "noisy AS211509)\n",
                  cluster, single_peer ? "yes" : "NO", next_as_noisy ? "yes" : "NO");
    }
  }
}

void BM_LifespanAnalyze(benchmark::State& state) {
  zombie::LifespanAnalyzer analyzer{zombie::LongLivedConfig{}};
  for (auto _ : state) {
    auto lifespans = analyzer.analyze(g_out.rib_dumps, g_out.events, g_out.rib_dump_interval);
    benchmark::DoNotOptimize(lifespans.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g_out.rib_dumps.size()));
}
BENCHMARK(BM_LifespanAnalyze)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// zombie/longlived.hpp — §5 of the paper: long-lived zombie detection
// with the new beacons.
//
// Two data sources, as in the paper:
//  * update archives — a prefix is stuck at a peer if, at
//    withdrawal + threshold, its last update is not a withdrawal;
//    swept over thresholds for Fig. 2;
//  * 8-hourly RIB dumps — coarser, but scale to ~a year of monitoring
//    for the lifespan CDF (Fig. 3), the resurrection timelines
//    (Fig. 4), and the §5.2 case studies.

#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

struct LongLivedConfig {
  std::set<PeerKey> excluded_peers;
  std::set<bgp::Asn> excluded_peer_asns;
  /// Skip beacon events flagged superseded (approach-2 collision rule:
  /// "we study only the latter prefix").
  bool skip_superseded = true;
};

/// Result of one detection pass at a fixed threshold.
struct LongLivedResult {
  std::vector<ZombieOutbreak> outbreaks;           // one per stuck beacon event
  int total_announcements = 0;                     // studied events
  double outbreak_fraction() const {
    return total_announcements == 0
               ? 0.0
               : static_cast<double>(outbreaks.size()) / total_announcements;
  }
  int route_count() const {
    int n = 0;
    for (const auto& o : outbreaks) n += o.route_count();
    return n;
  }
};

/// One point of the Fig. 2 threshold sweep.
struct SweepPoint {
  netbase::Duration threshold = 0;
  int outbreaks = 0;
  int routes = 0;
  double announcement_fraction = 0.0;  // outbreaks / studied announcements
};

class LongLivedZombieDetector {
 public:
  explicit LongLivedZombieDetector(LongLivedConfig config) : config_(std::move(config)) {}

  /// Detects zombies at a fixed threshold after each beacon's
  /// withdrawal. `records` must be time-sorted.
  LongLivedResult detect(std::span<const mrt::MrtRecord> records,
                         std::span<const beacon::BeaconEvent> events,
                         netbase::Duration threshold) const;

  /// Fig. 2: runs detect() for each threshold.
  std::vector<SweepPoint> sweep(std::span<const mrt::MrtRecord> records,
                                std::span<const beacon::BeaconEvent> events,
                                std::span<const netbase::Duration> thresholds) const;

 private:
  bool peer_excluded(const PeerKey& peer) const {
    return config_.excluded_peers.contains(peer) ||
           config_.excluded_peer_asns.contains(peer.asn);
  }

  LongLivedConfig config_;
};

// ---------------------------------------------------------------------------
// RIB-dump lifespan analysis
// ---------------------------------------------------------------------------

/// A maximal run of consecutive RIB dumps in which one peer held one
/// prefix.
struct PresenceInterval {
  PeerKey peer;
  netbase::TimePoint first_seen = 0;
  netbase::TimePoint last_seen = 0;
  bgp::AsPath path;  // path at last sighting
};

/// Lifespan of one zombie outbreak (per prefix, across peers).
struct OutbreakLifespan {
  netbase::Prefix prefix;
  /// The final beacon withdrawal for this prefix.
  netbase::TimePoint withdraw_time = 0;
  /// Last time any peer still held the route.
  netbase::TimePoint last_seen = 0;
  /// Total lifespan including invisibility gaps (the paper counts the
  /// resurrected prefix as stuck "in total ~8.5 months").
  netbase::Duration duration() const { return last_seen - withdraw_time; }
  std::vector<PresenceInterval> intervals;
  /// Resurrections: reappearances after the route had vanished from
  /// every peer for at least one dump period, with no beacon
  /// announcement in between.
  struct Resurrection {
    netbase::TimePoint vanished_at = 0;
    netbase::TimePoint reappeared_at = 0;
    PeerKey peer;  // the peer where it reappeared
  };
  std::vector<Resurrection> resurrections;
};

class LifespanAnalyzer {
 public:
  explicit LifespanAnalyzer(LongLivedConfig config) : config_(std::move(config)) {}

  /// Builds outbreak lifespans from TABLE_DUMP_V2 archives (must be
  /// time-sorted; PeerIndexTable precedes its RIB records as written
  /// by the collector). Only prefixes covered by `beacon_covering`
  /// that match a studied beacon event are analyzed; presence before a
  /// prefix's final withdrawal is ignored.
  std::vector<OutbreakLifespan> analyze(std::span<const mrt::MrtRecord> rib_dumps,
                                        std::span<const beacon::BeaconEvent> events,
                                        netbase::Duration dump_interval) const;

 private:
  bool peer_excluded(const PeerKey& peer) const {
    return config_.excluded_peers.contains(peer) ||
           config_.excluded_peer_asns.contains(peer.asn);
  }

  LongLivedConfig config_;
};

}  // namespace zombiescope::zombie

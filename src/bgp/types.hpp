// bgp/types.hpp — elementary BGP vocabulary types.

#pragma once

#include <cstdint>
#include <string>

namespace zombiescope::bgp {

/// A 4-byte Autonomous System Number (RFC 6793).
using Asn = std::uint32_t;

/// ORIGIN path attribute values (RFC 4271 §5.1.1).
enum class Origin : std::uint8_t {
  kIgp = 0,
  kEgp = 1,
  kIncomplete = 2,
};

std::string to_string(Origin origin);

/// BGP session FSM states (RFC 4271 §8.2.2), as reported by MRT
/// BGP4MP_STATE_CHANGE records.
enum class SessionState : std::uint16_t {
  kIdle = 1,
  kConnect = 2,
  kActive = 3,
  kOpenSent = 4,
  kOpenConfirm = 5,
  kEstablished = 6,
};

std::string to_string(SessionState state);

/// Path attribute type codes used in this library.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMultiExitDisc = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kMpReachNlri = 14,
  kMpUnreachNlri = 15,
};

/// Path attribute flag bits (RFC 4271 §4.3).
inline constexpr std::uint8_t kAttrFlagOptional = 0x80;
inline constexpr std::uint8_t kAttrFlagTransitive = 0x40;
inline constexpr std::uint8_t kAttrFlagPartial = 0x20;
inline constexpr std::uint8_t kAttrFlagExtendedLength = 0x10;

}  // namespace zombiescope::bgp

#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace zombiescope::analysis {

Cdf::Cdf(std::vector<double> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
}

double Cdf::at(double x) const {
  if (values_.empty()) return 0.0;
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

double Cdf::quantile(double q) const {
  if (values_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size())));
  return values_[rank == 0 ? 0 : rank - 1];
}

double Cdf::min() const { return values_.empty() ? 0.0 : values_.front(); }
double Cdf::max() const { return values_.empty() ? 0.0 : values_.back(); }

double Cdf::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

std::vector<std::pair<double, double>> Cdf::points(int count) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || count <= 0) return out;
  const double lo = min();
  const double hi = max();
  if (lo == hi) {
    out.emplace_back(lo, 1.0);
    return out;
  }
  for (int i = 0; i <= count; ++i) {
    const double x = lo + (hi - lo) * i / count;
    out.emplace_back(x, at(x));
  }
  return out;
}

std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) sep += std::string(widths[c] + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

std::string render_cdf(const Cdf& cdf, const std::string& x_label, int points) {
  if (cdf.empty()) return "  (empty sample)\n";
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  n=%zu min=%.4g median=%.4g mean=%.4g max=%.4g\n",
                cdf.size(), cdf.min(), cdf.median(), cdf.mean(), cdf.max());
  out += buf;
  for (const auto& [x, f] : cdf.points(points)) {
    const int bar = static_cast<int>(f * 40);
    std::snprintf(buf, sizeof(buf), "  %-10s %10.4g | %-40s %5.1f%%\n", x_label.c_str(), x,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(), f * 100.0);
    out += buf;
  }
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace zombiescope::analysis

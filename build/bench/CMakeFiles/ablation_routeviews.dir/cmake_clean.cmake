file(REMOVE_RECURSE
  "CMakeFiles/ablation_routeviews.dir/ablation_routeviews.cpp.o"
  "CMakeFiles/ablation_routeviews.dir/ablation_routeviews.cpp.o.d"
  "ablation_routeviews"
  "ablation_routeviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routeviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "scenarios/longlived2024.hpp"

#include <algorithm>
#include <optional>

#include "beacon/driver.hpp"
#include "obs/trace.hpp"
#include "zombie/state.hpp"

namespace zombiescope::scenarios {

namespace {

using beacon::LongLivedBeaconSchedule;
using netbase::AddressFamily;
using netbase::IpAddress;
using netbase::kDay;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::TimePoint;
using netbase::utc;
using topology::Relationship;

}  // namespace

LongLived2024Output run_longlived2024(const LongLived2024Spec& spec) {
  Rng rng(spec.seed);
  LongLived2024Output output;

  // Stage spans: emplace() ends the previous stage before starting the
  // next, so the phase tree stays flat under the scenario root.
  obs::ScopedSpan run_span("scenario.longlived2024");
  std::optional<obs::ScopedSpan> stage;
  stage.emplace("scenario.topology_build");

  // --- topology: generated hierarchy + the paper's cast ----------------
  topology::GeneratorParams params;
  params.tier1_count = 5;
  params.tier2_count = 18;
  params.tier3_count = 60;
  params.first_asn = 50000;
  Rng topo_rng = rng.fork();
  topology::Topology topo = topology::generate_hierarchical(params, topo_rng);

  std::vector<bgp::Asn> gen_t1, gen_t2;
  for (bgp::Asn asn : topo.all_asns()) {
    if (topo.info(asn).tier == 1) gen_t1.push_back(asn);
    if (topo.info(asn).tier == 2) gen_t2.push_back(asn);
  }

  using C = Cast;
  // Origin chain: 210312 <- 8298 <- 25091.
  topo.add_as({C::kOrigin, 3, "beacon-origin"});
  topo.add_as({C::kUpstream, 2, "upstream-8298"});
  topo.add_as({C::kTransit, 2, "transit-25091"});
  topo.add_link(C::kUpstream, C::kOrigin, Relationship::kCustomer);
  topo.add_link(C::kTransit, C::kUpstream, Relationship::kCustomer);

  // Providers of 25091: 1299 (Tier-1-like), 33891, 43100.
  topo.add_as({C::kTier1, 1, "tier1-1299"});
  topo.add_as({C::kCoreBackbone, 2, "core-backbone-33891"});
  topo.add_as({C::kHgcUp1, 2, "43100"});
  topo.add_link(C::kTier1, C::kTransit, Relationship::kCustomer);
  topo.add_link(C::kCoreBackbone, C::kTransit, Relationship::kCustomer);
  topo.add_link(C::kHgcUp1, C::kTransit, Relationship::kCustomer);
  // Join the grafted core to the generated clique.
  for (bgp::Asn t1 : gen_t1) topo.add_link(C::kTier1, t1, Relationship::kPeer);
  topo.add_link(gen_t1[0], C::kCoreBackbone, Relationship::kCustomer);
  topo.add_link(gen_t1[1], C::kHgcUp1, Relationship::kCustomer);

  // Telstra branch: 4637 peers with 1299; monitored customers below.
  topo.add_as({C::kTelstra, 2, "telstra-4637"});
  topo.add_link(C::kTelstra, C::kTier1, Relationship::kPeer);
  const std::vector<bgp::Asn> telstra_customers{64610, 64611};
  for (std::size_t i = 0; i < telstra_customers.size(); ++i) {
    topo.add_as({telstra_customers[i], 3, "telstra-cust"});
    topo.add_link(C::kTelstra, telstra_customers[i], Relationship::kCustomer);
    topo.add_link(gen_t2[i % gen_t2.size()], telstra_customers[i], Relationship::kCustomer);
  }

  // Core-Backbone cone: monitored stubs (multihomed to generated T2s).
  const std::vector<bgp::Asn> cb_customers{64620, 64621, 64622, 64623, 64624, 64625};
  for (std::size_t i = 0; i < cb_customers.size(); ++i) {
    topo.add_as({cb_customers[i], 3, "cb-cust"});
    topo.add_link(C::kCoreBackbone, cb_customers[i], Relationship::kCustomer);
    topo.add_link(gen_t2[(i + 3) % gen_t2.size()], cb_customers[i], Relationship::kCustomer);
  }

  // HGC branch: 43100 -peer- 6939; 9304 customer of 6939; 17639 and
  // 142271 customers of 9304.
  topo.add_as({C::kHgcUp2, 2, "6939"});
  topo.add_as({C::kHgc, 2, "hgc-9304"});
  topo.add_as({C::kHgcPeer2, 3, "17639"});
  topo.add_as({C::kHgcPeer3, 3, "142271"});
  topo.add_link(C::kHgcUp1, C::kHgcUp2, Relationship::kPeer);
  topo.add_link(C::kHgcUp2, C::kHgc, Relationship::kCustomer);
  topo.add_link(C::kHgc, C::kHgcPeer2, Relationship::kCustomer);
  topo.add_link(C::kHgc, C::kHgcPeer3, Relationship::kCustomer);

  // The 1851 chain: 8298 <- 34549 <- 3356 -peer- 12956 <- 10429 <-
  // 28598 <- 61573 (single-homed, so the chain is its only path).
  topo.add_as({C::kResUp4, 2, "34549"});
  topo.add_as({C::kResUp3, 1, "3356"});
  topo.add_as({C::kResUp2, 1, "12956"});
  topo.add_as({C::kResUp1, 2, "10429"});
  topo.add_as({C::kResHolder, 2, "28598"});
  topo.add_as({C::kResPeer, 3, "61573"});
  topo.add_link(C::kResUp4, C::kUpstream, Relationship::kCustomer);
  topo.add_link(C::kResUp3, C::kResUp4, Relationship::kCustomer);
  topo.add_link(C::kResUp3, C::kResUp2, Relationship::kPeer);
  topo.add_link(C::kResUp2, C::kResUp1, Relationship::kCustomer);
  topo.add_link(C::kResUp1, C::kResHolder, Relationship::kCustomer);
  topo.add_link(C::kResHolder, C::kResPeer, Relationship::kCustomer);

  // Noisy peers and the 207301 cluster peer.
  topo.add_as({C::kNoisy1, 3, "noisy-211509"});
  topo.add_as({C::kNoisy2, 3, "noisy-211380"});
  topo.add_as({C::kClusterPeer, 3, "207301"});
  topo.add_link(C::kTier1, C::kNoisy1, Relationship::kCustomer);
  topo.add_link(gen_t2[5], C::kNoisy1, Relationship::kCustomer);
  topo.add_link(gen_t2[6], C::kNoisy2, Relationship::kCustomer);
  topo.add_link(gen_t2[7], C::kNoisy2, Relationship::kCustomer);
  topo.add_link(C::kNoisy1, C::kClusterPeer, Relationship::kCustomer);  // single-homed

  // --- RPKI --------------------------------------------------------------
  auto roas = std::make_shared<rpki::RoaTable>();
  const Prefix covering = Prefix::parse("2a0d:3dc1::/32");
  const rpki::Roa beacon_roa{covering, 48, C::kOrigin};
  const rpki::Roa covering_roa{covering, 32, C::kOrigin};
  roas->add(beacon_roa, utc(2024, 6, 1));
  roas->add(covering_roa, utc(2024, 6, 1));
  output.roa_removed_at = utc(2024, 6, 22, 19, 49, 0);
  // RPKI time-of-flight: routers see the deletion about an hour later.
  roas->remove(beacon_roa, output.roa_removed_at, kHour);

  stage.emplace("scenario.setup");

  // --- simulation -----------------------------------------------------------
  simnet::SimConfig sim_config;
  sim_config.min_link_delay = 2;
  sim_config.max_link_delay = 40;
  simnet::Simulation sim(topo, sim_config, rng.fork());
  sim.set_roa_table(roas.get());

  Rng rov_rng = rng.fork();
  for (bgp::Asn asn : topo.all_asns()) {
    if (asn == C::kOrigin) continue;
    const double draw = rov_rng.uniform();
    if (draw < spec.rov_compliant_fraction)
      sim.set_rov_policy(asn, rpki::RovPolicy::kCompliant);
    else if (draw < spec.rov_compliant_fraction + spec.rov_import_only_fraction)
      sim.set_rov_policy(asn, rpki::RovPolicy::kImportOnly);
  }
  // The anecdote holders must NOT validate, or their zombies would die
  // with the ROA (the paper's zombies survived it).
  for (bgp::Asn asn : {C::kResHolder, C::kResPeer, C::kHgc, C::kHgcPeer2, C::kHgcPeer3,
                       C::kNoisy1, C::kClusterPeer, C::kTelstra, C::kCoreBackbone})
    sim.set_rov_policy(asn, rpki::RovPolicy::kNone);
  for (bgp::Asn asn : cb_customers) sim.set_rov_policy(asn, rpki::RovPolicy::kNone);
  for (bgp::Asn asn : telstra_customers) sim.set_rov_policy(asn, rpki::RovPolicy::kNone);

  // --- collectors & sessions ---------------------------------------------
  collector::Collector rrc00("rrc00", 12654, IpAddress::parse("193.0.4.28"));
  collector::Collector rrc25("rrc25", 12654, IpAddress::parse("193.0.29.28"),
                             IpAddress::parse("2001:7f8:fff::25"));

  std::set<bgp::Asn> reserved{C::kOrigin,    C::kUpstream, C::kTransit,  C::kTier1,
                              C::kTelstra,   C::kCoreBackbone, C::kHgc,  C::kHgcPeer2,
                              C::kHgcPeer3,  C::kHgcUp1,   C::kHgcUp2,   C::kNoisy1,
                              C::kNoisy2,    C::kClusterPeer, C::kResPeer, C::kResHolder,
                              C::kResUp1,    C::kResUp2,   C::kResUp3,   C::kResUp4};
  for (bgp::Asn asn : telstra_customers) reserved.insert(asn);
  for (bgp::Asn asn : cb_customers) reserved.insert(asn);
  Rng pick_rng = rng.fork();
  auto monitor_asns = pick_monitor_asns(topo, spec.monitor_sessions, pick_rng, reserved);
  // Anecdote peers are monitored too (they are RIS peers in the paper).
  monitor_asns.push_back(C::kResPeer);
  monitor_asns.push_back(C::kHgc);
  monitor_asns.push_back(C::kHgcPeer2);
  monitor_asns.push_back(C::kHgcPeer3);
  for (bgp::Asn asn : telstra_customers) monitor_asns.push_back(asn);
  for (bgp::Asn asn : cb_customers) monitor_asns.push_back(asn);

  int session_index = 0;
  for (bgp::Asn asn : monitor_asns) {
    collector::SessionConfig config;
    config.peer_asn = asn;
    config.peer_address = peer_address_for(asn, session_index, true);
    config.noise_prefix_filter = covering;
    if (session_index < spec.long_tail_sessions) {
      config.withdrawal_delay_probability = spec.long_tail_probability;
      config.withdrawal_delay_min = 2 * kHour;
      config.withdrawal_delay_max = 20 * kHour;
    } else {
      config.withdrawal_delay_probability = spec.delayed_withdrawal_probability;
      config.withdrawal_delay_min = 30 * kMinute;
      config.withdrawal_delay_max = 145 * kMinute;
    }
    rrc00.add_peer(sim, config, rng.fork());
    output.all_peers.push_back({asn, config.peer_address});
    ++session_index;
  }

  // The cluster peer's session (the famous 2a0c:b641:780:7::feca).
  collector::PeerSession* cluster_session = nullptr;
  {
    collector::SessionConfig config;
    config.peer_asn = C::kClusterPeer;
    config.peer_address = IpAddress::parse("2a0c:b641:780:7::feca");
    rrc25.add_peer(sim, config, rng.fork());
    cluster_session = rrc25.sessions().back().get();
    output.all_peers.push_back({C::kClusterPeer, config.peer_address});
  }

  // Noisy RRC25 sessions. The two AS211509 routers are one box with
  // two transports: identical noise seeds give perfectly correlated
  // stuck sets (Table 5 shows identical counts for both).
  std::vector<collector::PeerSession*> noisy_sessions;
  {
    const std::uint64_t shared_seed = rng.fork().engine()();
    for (const char* address : {"176.119.234.201", "2001:678:3f4:5::1"}) {
      collector::SessionConfig config;
      config.peer_asn = C::kNoisy1;
      config.peer_address = IpAddress::parse(address);
      config.withdrawal_loss_probability = spec.noisy_211509_loss;
      config.withdrawal_delay_probability = spec.noisy_211509_delay_probability;
      config.withdrawal_delay_min = 100 * kMinute;
      config.withdrawal_delay_max = 170 * kMinute;
      config.noise_prefix_filter = covering;
      rrc25.add_peer(sim, config, Rng(shared_seed));
      noisy_sessions.push_back(rrc25.sessions().back().get());
      const zombie::PeerKey key{C::kNoisy1, config.peer_address};
      output.all_peers.push_back(key);
      output.noisy_peers.insert(key);
      output.rrc25_noisy_routers.push_back(key);
    }
  }
  {
    collector::SessionConfig config;
    config.peer_asn = C::kNoisy2;
    config.peer_address = IpAddress::parse("2a0c:9a40:1031::504");
    config.withdrawal_loss_probability = spec.noisy_211380_loss;
    config.withdrawal_delay_probability = spec.noisy_211380_delay_probability;
    config.withdrawal_delay_min = 100 * kMinute;
    config.withdrawal_delay_max = 170 * kMinute;
    config.noise_prefix_filter = covering;
    rrc25.add_peer(sim, config, rng.fork());
    noisy_sessions.push_back(rrc25.sessions().back().get());
    const zombie::PeerKey key{C::kNoisy2, config.peer_address};
    output.all_peers.push_back(key);
    output.noisy_peers.insert(key);
    output.rrc25_noisy_routers.push_back(key);
  }

  // --- beacon schedule ------------------------------------------------------
  const auto daily =
      LongLivedBeaconSchedule::paper_deployment(LongLivedBeaconSchedule::Approach::kDaily);
  const auto fifteen = LongLivedBeaconSchedule::paper_deployment(
      LongLivedBeaconSchedule::Approach::kFifteenDay);
  std::vector<beacon::BeaconEvent> events =
      daily.events(utc(2024, 6, 4, 11, 45, 0), utc(2024, 6, 10, 9, 30, 0) + 1);
  {
    auto second = fifteen.events(utc(2024, 6, 10, 11, 30, 0), utc(2024, 6, 22, 17, 30, 0) + 1);
    events.insert(events.end(), second.begin(), second.end());
  }
  beacon::BeaconDriver driver(sim, C::kOrigin, /*with_aggregator_clock=*/false);
  driver.drive(events);
  output.events = driver.ground_truth();
  output.studied_announcements = 0;
  for (const auto& event : output.events)
    if (!event.superseded) ++output.studied_announcements;

  // --- anecdote fault injection ----------------------------------------------
  // (a) Telstra resurrection uptick (Fig. 2, §5.1): for three slots,
  // AS4637 misses the withdrawal; its customers' sessions drop at
  // +145 min (they withdraw) and re-establish at +165 min (they are
  // re-infected ~170 min after the withdrawal).
  {
    const std::vector<TimePoint> slots{
        utc(2024, 6, 12, 9, 15, 0), utc(2024, 6, 14, 21, 45, 0), utc(2024, 6, 16, 6, 30, 0),
        utc(2024, 6, 17, 14, 0, 0)};
    for (TimePoint slot : slots) {
      const Prefix prefix = fifteen.prefix_for(slot);
      const TimePoint withdrawn = slot + LongLivedBeaconSchedule::kUpTime;
      simnet::WithdrawalSuppression fault;
      fault.from_asn = C::kTier1;
      fault.to_asn = C::kTelstra;
      fault.prefix_filter = prefix;
      fault.window = {withdrawn - kMinute, withdrawn + kHour};
      sim.add_withdrawal_suppression(fault);
      for (bgp::Asn customer : telstra_customers) {
        sim.schedule_session_outage(withdrawn + 145 * kMinute, withdrawn + 165 * kMinute,
                                    C::kTelstra, customer);
      }
      // Cleanup well before the prefix could recycle: flush 4637.
      sim.schedule_session_reset(withdrawn + 20 * kHour, C::kTier1, C::kTelstra);
    }
  }

  // (b) Impactful outbreak 2a0d:3dc1:2233::/48 (§5.2): Core-Backbone
  // suppresses the withdrawal toward its whole customer cone; gone
  // after 4 days.
  {
    const TimePoint slot = utc(2024, 6, 18, 22, 30, 0);
    output.impactful_prefix = fifteen.prefix_for(slot);
    const TimePoint withdrawn = slot + LongLivedBeaconSchedule::kUpTime;
    simnet::WithdrawalSuppression fault;
    fault.from_asn = C::kCoreBackbone;
    fault.to_asn = 0;  // all neighbors
    fault.prefix_filter = output.impactful_prefix;
    fault.window = {withdrawn - kMinute, withdrawn + kHour};
    sim.add_withdrawal_suppression(fault);
    // The stale route also leaks upward: gen_t1[0] prefers its
    // customer 33891's (stale) route and re-exports it across the
    // topology — that is how the paper's outbreak reaches 24 peer
    // routers in 21 peer ASes. The 4-day cleanup must therefore flush
    // the Tier-1 side too.
    int stagger = 0;
    for (bgp::Asn neighbor : cb_customers) {
      sim.schedule_session_reset(withdrawn + 4 * kDay + stagger * 10 * kMinute,
                                 C::kCoreBackbone, neighbor);
      ++stagger;
    }
    sim.schedule_session_reset(withdrawn + 4 * kDay, gen_t1[0], C::kCoreBackbone);
  }

  // (c) Extremely long-lived outbreak 2a0d:3dc1:163::/48 (§5.2): HGC
  // misses the withdrawal; stuck in AS9304/AS17639 until 11-03 and in
  // AS142271 (re-infected on 06-23 through a session re-establish)
  // until 10-25.
  {
    const TimePoint slot = utc(2024, 6, 18, 16, 0, 0);
    output.longest_prefix = fifteen.prefix_for(slot);
    const TimePoint withdrawn = slot + LongLivedBeaconSchedule::kUpTime;
    simnet::WithdrawalSuppression fault;
    fault.from_asn = C::kHgcUp2;
    fault.to_asn = C::kHgc;
    fault.prefix_filter = output.longest_prefix;
    fault.window = {withdrawn - kMinute, withdrawn + kHour};
    sim.add_withdrawal_suppression(fault);
    // A second prefix stuck in the same box a few days later; both are
    // flushed by the 11-03 cleanup — Fig. 3's paired 133/138-day knees.
    {
      const TimePoint slot2 = utc(2024, 6, 22, 6, 15, 0);
      simnet::WithdrawalSuppression fault2 = fault;
      fault2.prefix_filter = fifteen.prefix_for(slot2);
      const TimePoint withdrawn2 = slot2 + LongLivedBeaconSchedule::kUpTime;
      fault2.window = {withdrawn2 - kMinute, withdrawn2 + kHour};
      sim.add_withdrawal_suppression(fault2);
    }
    // 142271 is offline across the withdrawal; infected on re-establish.
    sim.schedule_session_outage(utc(2024, 6, 17), utc(2024, 6, 23), C::kHgc, C::kHgcPeer3);
    // 142271 goes dark again on 10-25 and only returns after the
    // cleanup, so it is never re-infected.
    sim.schedule_session_outage(utc(2024, 10, 25), utc(2024, 11, 4), C::kHgc, C::kHgcPeer3);
    // Cleanup on 11-03: flushing 9304 withdraws the zombie everywhere.
    sim.schedule_session_reset(utc(2024, 11, 3), C::kHgcUp2, C::kHgc);
  }

  // (d) The 8.5-month resurrected prefix 2a0d:3dc1:1851::/48 (Fig. 4):
  // stuck in AS28598; the AS61573 session is down across the
  // withdrawal, re-establishes 06-29 (first resurrection), drops
  // 10-04, re-establishes 11-29 (second resurrection), and the chain
  // is finally flushed 2025-03-11.
  {
    const TimePoint slot = utc(2024, 6, 21, 18, 45, 0);
    output.resurrected_prefix = fifteen.prefix_for(slot);
    const TimePoint withdrawn = slot + LongLivedBeaconSchedule::kUpTime;
    simnet::WithdrawalSuppression fault;
    fault.from_asn = C::kResUp1;
    fault.to_asn = C::kResHolder;
    fault.prefix_filter = output.resurrected_prefix;
    fault.window = {withdrawn - kMinute, withdrawn + kHour};
    sim.add_withdrawal_suppression(fault);
    sim.schedule_session_outage(withdrawn - 10 * kMinute, utc(2024, 6, 29), C::kResHolder,
                                C::kResPeer);
    sim.schedule_session_outage(utc(2024, 10, 4, 12, 0, 0), utc(2024, 11, 29), C::kResHolder,
                                C::kResPeer);
    sim.schedule_session_reset(utc(2025, 3, 11), C::kResUp1, C::kResHolder);
  }

  // (e) The ~35–37-day cluster (Fig. 3): five prefixes stuck in noisy
  // AS211509's router; the AS207301 session is down through June and
  // re-establishes on 07-22, exposing them from the single peer
  // 2a0c:b641:780:7::feca; the router is flushed on 07-25.
  {
    const std::vector<TimePoint> slots{
        utc(2024, 6, 18, 7, 15, 0), utc(2024, 6, 18, 13, 45, 0), utc(2024, 6, 19, 4, 30, 0),
        utc(2024, 6, 19, 17, 0, 0), utc(2024, 6, 20, 10, 15, 0)};
    for (TimePoint slot : slots) {
      const Prefix prefix = fifteen.prefix_for(slot);
      const TimePoint withdrawn = slot + LongLivedBeaconSchedule::kUpTime;
      simnet::WithdrawalSuppression fault;
      fault.from_asn = C::kTier1;
      fault.to_asn = C::kNoisy1;
      fault.prefix_filter = prefix;
      fault.window = {withdrawn - kMinute, withdrawn + kHour};
      sim.add_withdrawal_suppression(fault);
      // 211509's other provider must also fail toward it, or the
      // second withdrawal would clean the box.
      simnet::WithdrawalSuppression fault2 = fault;
      fault2.from_asn = gen_t2[5];
      sim.add_withdrawal_suppression(fault2);
    }
    sim.schedule_session_outage(utc(2024, 6, 10), utc(2024, 7, 22), C::kNoisy1,
                                C::kClusterPeer);
    sim.schedule_session_reset(utc(2024, 7, 25), C::kTier1, C::kNoisy1);
    sim.schedule_session_reset(utc(2024, 7, 25, 0, 30, 0), gen_t2[5], C::kNoisy1);
  }

  // Noisy collector sessions flap occasionally during the year,
  // clearing their accumulated garbage (the ~85-day knee of Fig. 3's
  // all-peers line).
  for (collector::PeerSession* session : noisy_sessions) {
    session->schedule_reset(sim, utc(2024, 9, 15), utc(2024, 9, 15, 0, 30, 0));
    session->schedule_reset(sim, utc(2025, 2, 1), utc(2025, 2, 1, 0, 30, 0));
  }
  (void)cluster_session;

  // --- optional RouteViews-style collector ---------------------------------
  // Added strictly last so the paper-faithful base run (0 sessions) is
  // bit-identical regardless of this knob: all earlier RNG streams are
  // already forked.
  collector::Collector route_views("route-views2", 6447,
                                   IpAddress::parse("128.223.51.102"),
                                   IpAddress::parse("2001:468:d01:33::2"));
  if (spec.routeviews_sessions > 0) {
    std::set<bgp::Asn> taken(monitor_asns.begin(), monitor_asns.end());
    for (const auto& key : output.all_peers) taken.insert(key.asn);
    Rng rv_rng = rng.fork();
    auto rv_asns = pick_monitor_asns(topo, spec.routeviews_sessions, rv_rng, taken);
    int rv_index = 100;
    for (bgp::Asn asn : rv_asns) {
      collector::SessionConfig config;
      config.peer_asn = asn;
      config.peer_address = peer_address_for(asn, rv_index++, true);
      // RouteViews peers exhibit the same session realities as RIS
      // peers: occasional slow-converging withdrawals are stuck-route
      // observations unique to this vantage point.
      config.withdrawal_delay_probability = spec.delayed_withdrawal_probability;
      config.withdrawal_delay_min = 30 * kMinute;
      config.withdrawal_delay_max = 200 * kMinute;
      config.noise_prefix_filter = covering;
      route_views.add_peer(sim, config, rng.fork());
      const zombie::PeerKey key{asn, config.peer_address};
      output.all_peers.push_back(key);
      output.routeviews_peers.push_back(key);
    }
  }

  // --- RIB dumps ----------------------------------------------------------
  rrc00.schedule_rib_dumps(sim, utc(2024, 6, 4), spec.monitor_until,
                           output.rib_dump_interval);
  rrc25.schedule_rib_dumps(sim, utc(2024, 6, 4), spec.monitor_until,
                           output.rib_dump_interval);

  // --- run ------------------------------------------------------------------
  stage.emplace("scenario.simulate");
  sim.run_until(spec.monitor_until + kDay);
  output.sim_stats = sim.stats();

  stage.emplace("scenario.collect");
  const std::vector<const std::vector<mrt::MrtRecord>*> update_archives{
      &rrc00.updates(), &rrc25.updates(), &route_views.updates()};
  output.updates = through_mrt_codec(zombie::merge_archives(update_archives));
  const std::vector<const std::vector<mrt::MrtRecord>*> dump_archives{&rrc00.rib_dumps(),
                                                                      &rrc25.rib_dumps()};
  output.rib_dumps = zombie::merge_archives(dump_archives);
  return output;
}

}  // namespace zombiescope::scenarios

# Empty dependencies file for beacon_service.
# This may be replaced when dependencies are built.

#!/usr/bin/env bash
# Builds and runs the experiment harness (bench/): one binary per paper
# table/figure. Each binary leaves a BENCH_<tool>.json telemetry
# snapshot behind; this script collects them in the repo root so
# successive runs can be diffed (ZS_BENCH_JSON_DIR overridable).
#
# Usage: scripts/run_bench.sh [build-dir] [bench ...]
#   scripts/run_bench.sh                      # all benches, build/
#   scripts/run_bench.sh build micro_hotpaths # just one

set -euo pipefail
cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))

# Bench targets = every .cpp in bench/ except the shared library.
if [ "$#" -gt 0 ]; then
  BENCHES=("$@")
else
  BENCHES=()
  for src in bench/*.cpp; do
    name="$(basename "${src}" .cpp)"
    case "${name}" in bench_common) continue ;; esac
    BENCHES+=("${name}")
  done
fi

echo "== bench: building ${#BENCHES[@]} harness binarie(s) (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j --target "${BENCHES[@]}"

export ZS_BENCH_JSON_DIR="${ZS_BENCH_JSON_DIR:-${REPO_ROOT}}"
export ZS_CACHE_DIR="${ZS_CACHE_DIR:-${REPO_ROOT}/zs_bench_cache}"

failed=()
for bench in "${BENCHES[@]}"; do
  echo "== bench: ${bench}"
  if ! "${BUILD_DIR}/bench/${bench}"; then
    failed+=("${bench}")
  fi
done

echo "== bench: telemetry snapshots in ${ZS_BENCH_JSON_DIR}"
ls -1 "${ZS_BENCH_JSON_DIR}"/BENCH_*.json 2>/dev/null || true

if [ "${#failed[@]}" -gt 0 ]; then
  echo "== bench: FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "== bench: OK"

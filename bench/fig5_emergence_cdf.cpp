// fig5_emergence_cdf — reproduces Figure 5 (App. B.2): the CDF of the
// likelihood of a <RIPE RIS beacon, peer AS> pair to have a zombie
// route (zombie emergence rate), with and without double-counting,
// per address family. Paper findings to reproduce: a sizable share of
// pairs never produce a zombie (18.76 %); half the pairs are below
// ~0.5 % (0.26 % after dedup); IPv6 averages above IPv4; averages drop
// after the Aggregator filter (0.88 % -> 0.54 % for IPv4, 1.82 % ->
// 1.58 % for IPv6).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/analyzer.hpp"
#include "zombie/interval_detector.hpp"

using namespace zombiescope;

namespace {

zombie::IntervalDetectionResult g_result;

void print_figure() {
  bench::print_header("Figure 5 — CDF of <beacon, peerAS> zombie emergence rates",
                      "IMC'25 paper Fig. 5 (App. B.2)");
  // Aggregate over the three periods like the paper's appendix.
  std::vector<zombie::IntervalDetectionResult> results;
  for (int which = 0; which < 3; ++which) {
    auto out = bench::load_ris_period(which);
    zombie::IntervalDetectorConfig config;
    for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::IntervalZombieDetector detector(config);
    results.push_back(detector.detect(out.updates, out.events));
    if (which == 0) g_result = results.back();
  }

  for (bool dedup : {false, true}) {
    std::printf("\n--- %s ---\n", dedup ? "Without double-counting" : "With double-counting");
    for (auto family : {netbase::AddressFamily::kIpv4, netbase::AddressFamily::kIpv6}) {
      std::vector<double> rates;
      int zero_pairs = 0;
      for (const auto& result : results) {
        for (const auto& rate : zombie::emergence_rates(result, family, dedup)) {
          rates.push_back(rate.rate());
          if (rate.zombies == 0) ++zero_pairs;
        }
      }
      analysis::Cdf cdf(rates);
      std::printf("%s: pairs=%zu zero-rate=%s mean=%s median=%s\n",
                  std::string(netbase::to_string(family)).c_str(), rates.size(),
                  analysis::pct(static_cast<double>(zero_pairs) /
                                static_cast<double>(std::max<std::size_t>(1, rates.size())))
                      .c_str(),
                  analysis::pct(cdf.mean()).c_str(), analysis::pct(cdf.median()).c_str());
      std::fputs(analysis::render_cdf(cdf, "rate", 10).c_str(), stdout);
    }
  }
  std::printf("\nPaper: with dc — 18.76%% of pairs show no zombies; 50%% of pairs < 0.52%%;\n"
              "means 0.88%% (v4) / 1.82%% (v6). Without dc — 50%% < 0.26%%; means 0.54%% /\n"
              "1.58%%. Shape checks: v6 mean > v4 mean; dedup lowers both means.\n");
}

void BM_EmergenceRatesBothFamilies(benchmark::State& state) {
  for (auto _ : state) {
    auto v4 = zombie::emergence_rates(g_result, netbase::AddressFamily::kIpv4, true);
    auto v6 = zombie::emergence_rates(g_result, netbase::AddressFamily::kIpv6, true);
    benchmark::DoNotOptimize(v4.size() + v6.size());
  }
}
BENCHMARK(BM_EmergenceRatesBothFamilies)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

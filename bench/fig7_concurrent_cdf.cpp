// fig7_concurrent_cdf — reproduces Figure 7 (App. B.2): the CDF of
// the number of concurrent zombie outbreaks (outbreaks sharing a
// beacon interval), per family, with and without double-counting.
// Shape to reproduce: a sizable share of outbreaks occur singly
// (paper: 22.35 % of IPv4 / 34.04 % of IPv6 with dc; 26.38 % / 37.97 %
// after dedup), while a large IPv4 mass (26.96 %) emerges
// simultaneously for ALL beacon prefixes — whole-session events.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/analyzer.hpp"
#include "zombie/interval_detector.hpp"

using namespace zombiescope;

namespace {

std::vector<zombie::ZombieOutbreak> g_outbreaks;

void print_figure() {
  bench::print_header("Figure 7 — CDF of concurrent zombie outbreaks",
                      "IMC'25 paper Fig. 7 (App. B.2)");
  std::vector<zombie::IntervalDetectionResult> results;
  for (int which = 0; which < 3; ++which) {
    auto out = bench::load_ris_period(which);
    zombie::IntervalDetectorConfig config;
    for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::IntervalZombieDetector detector(config);
    results.push_back(detector.detect(out.updates, out.events));
  }

  const int beacons_v4 = 13, beacons_v6 = 14;
  for (bool dedup : {false, true}) {
    std::printf("\n--- %s ---\n", dedup ? "Without double-counting" : "With double-counting");
    for (auto family : {netbase::AddressFamily::kIpv4, netbase::AddressFamily::kIpv6}) {
      std::vector<int> concurrency;
      for (const auto& result : results) {
        const auto& outbreaks =
            dedup ? result.outbreaks_deduplicated : result.outbreaks_with_duplicates;
        auto c = zombie::concurrent_outbreaks(outbreaks, family);
        concurrency.insert(concurrency.end(), c.begin(), c.end());
        if (!dedup && family == netbase::AddressFamily::kIpv4)
          g_outbreaks.insert(g_outbreaks.end(), outbreaks.begin(), outbreaks.end());
      }
      analysis::Cdf cdf(std::vector<double>(concurrency.begin(), concurrency.end()));
      int single = 0, all_beacons = 0;
      const int family_count =
          family == netbase::AddressFamily::kIpv4 ? beacons_v4 : beacons_v6;
      for (int c : concurrency) {
        if (c == 1) ++single;
        if (c >= family_count) ++all_beacons;
      }
      const double n = std::max<std::size_t>(1, concurrency.size());
      std::printf("%s: outbreaks=%zu singly=%s all-%d-beacons=%s\n",
                  std::string(netbase::to_string(family)).c_str(), concurrency.size(),
                  analysis::pct(single / n).c_str(), family_count,
                  analysis::pct(all_beacons / n).c_str());
      std::fputs(analysis::render_cdf(cdf, "concurrent", 10).c_str(), stdout);
    }
  }
  std::printf("\nPaper: 22.35%% of IPv4 and 34.04%% of IPv6 outbreaks occurred singly\n"
              "(26.38%%/37.97%% after dedup); 26.96%% of IPv4 outbreaks emerged\n"
              "simultaneously for all beacon prefixes (26.71%% after dedup).\n");
}

void BM_Concurrency(benchmark::State& state) {
  for (auto _ : state) {
    auto c = zombie::concurrent_outbreaks(g_outbreaks, netbase::AddressFamily::kIpv4);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_Concurrency)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "obs/export.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "obs/build_info.hpp"

namespace zombiescope::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct ExportedQuantile {
  std::string_view label;     // Prometheus q="..." label value
  std::string_view json_key;  // zsobs-v1 histogram object key
  double q;
};

constexpr ExportedQuantile kExportedQuantiles[] = {
    {"0.5", "p50", 0.5},
    {"0.95", "p95", 0.95},
    {"0.99", "p99", 0.99},
};

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1))
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

void append_json_spans(std::string& out, std::span<const SpanRecord> spans) {
  out += "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i != 0) out += ',';
    out += "\n    {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           json_escape(s.name) + "\", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) + "}";
  }
  out += spans.empty() ? "]" : "\n  ]";
}

}  // namespace

std::optional<Format> parse_format(std::string_view text) {
  if (text == "prom" || text == "prometheus") return Format::kPrometheus;
  if (text == "json") return Format::kJson;
  return std::nullopt;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  const BuildInfo& build = build_info();
  out += "# HELP zs_build_info Build identity of this binary (value is always 1).\n";
  out += "# TYPE zs_build_info gauge\n";
  out += "zs_build_info{git_sha=\"" + prometheus_escape_label(build.git_sha) +
         "\",compiler=\"" + prometheus_escape_label(build.compiler) +
         "\",build_type=\"" + prometheus_escape_label(build.build_type) +
         "\",sanitizer=\"" + prometheus_escape_label(build.sanitizer) +
         "\",arch=\"" + prometheus_escape_label(build.arch) + "\"} 1\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name + "_bucket{le=\"" + format_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += h.name + "_sum " + format_double(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
    // Precomputed quantiles as a separate gauge family: appending
    // extra samples under the histogram TYPE would be invalid
    // exposition, and a `summary` would collide with the bucket series.
    out += "# TYPE " + h.name + "_quantile gauge\n";
    for (const auto& eq : kExportedQuantiles) {
      out += h.name + "_quantile{q=\"" + std::string(eq.label) + "\"} " +
             format_double(h.quantile(eq.q)) + "\n";
    }
  }
  return out;
}

std::string to_json(const Snapshot& snapshot, std::span<const SpanRecord> spans,
                    const JsonSections& extra) {
  std::string out = "{\n  \"schema\": \"zsobs-v1\",\n";
  out += "  \"build_info\": " + build_info_json() + ",\n";
  for (const auto& [key, value] : extra) {
    out += "  \"" + json_escape(key) + "\": " + value + ",\n";
  }
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(snapshot.counters[i].first) +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(snapshot.gauges[i].first) +
           "\": " + std::to_string(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(h.name) + "\": {\"bounds\": [";
    for (std::size_t k = 0; k < h.bounds.size(); ++k) {
      if (k != 0) out += ", ";
      out += format_double(h.bounds[k]);
    }
    out += "], \"counts\": [";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k != 0) out += ", ";
      out += std::to_string(h.counts[k]);
    }
    out += "], \"sum\": " + format_double(h.sum) +
           ", \"count\": " + std::to_string(h.count);
    for (const auto& eq : kExportedQuantiles) {
      out += ", \"" + std::string(eq.json_key) +
             "\": " + format_double(h.quantile(eq.q));
    }
    out += "}";
  }
  out += snapshot.histograms.empty() ? "},\n" : "\n  },\n";
  append_json_spans(out, spans);
  out += "\n}\n";
  return out;
}

std::string trace_to_json(std::span<const SpanRecord> spans) {
  std::string out = "{\n  \"schema\": \"zsobs-trace-v1\",\n";
  append_json_spans(out, spans);
  out += "\n}\n";
  return out;
}

bool prometheus_format_ok(std::string_view text) {
  // Histogram bookkeeping: every series family seen via `# TYPE ...
  // histogram` must expose _bucket, _sum and _count samples.
  std::set<std::string> histogram_families;
  std::map<std::string, std::set<std::string>> histogram_series_seen;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only validate TYPE comments; HELP and free comments pass.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) return false;
        std::string_view name = rest.substr(0, space);
        std::string_view kind = rest.substr(space + 1);
        if (!valid_metric_name(name)) return false;
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          return false;
        if (kind == "histogram") histogram_families.emplace(name);
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' && line[name_end] != ' ')
      ++name_end;
    std::string_view name = line.substr(0, name_end);
    if (!valid_metric_name(name)) return false;
    std::size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      // Scan to the closing brace, honoring quoted label values: a
      // value may contain any character (backslash-escaped `\` `"` and
      // `\n`), including `}` and `,`.
      std::size_t i = value_start + 1;
      bool in_string = false;
      bool escaped = false;
      bool closed = false;
      for (; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
          if (escaped) escaped = false;
          else if (c == '\\') escaped = true;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == '}') {
          closed = true;
          ++i;
          break;
        }
      }
      if (!closed) return false;
      value_start = i;
    }
    if (value_start >= line.size() || line[value_start] != ' ') return false;
    std::string_view value = line.substr(value_start + 1);
    if (value.empty()) return false;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size()) return false;
    }
    for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (name.size() > suffix.size() && name.ends_with(suffix)) {
        const std::string family(name.substr(0, name.size() - suffix.size()));
        if (histogram_families.contains(family))
          histogram_series_seen[family].emplace(suffix);
      }
    }
  }
  for (const auto& family : histogram_families) {
    const auto it = histogram_series_seen.find(family);
    if (it == histogram_series_seen.end() || it->second.size() != 3) return false;
  }
  return true;
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw std::runtime_error("short write to " + path);
}

void write_metrics_file(const std::string& path, Format format) {
  const Snapshot snapshot = Registry::global().snapshot();
  if (format == Format::kPrometheus) {
    write_text_file(path, to_prometheus(snapshot));
  } else {
    const auto spans = Tracer::global().snapshot();
    write_text_file(path, to_json(snapshot, spans));
  }
}

void write_trace_file(const std::string& path) {
  write_text_file(path, trace_to_json(Tracer::global().snapshot()));
}

}  // namespace zombiescope::obs

// Tests for the BGP session FSM: establishment, keepalive/hold
// machinery, the zero-TCP-window zombie pathology, and the RFC 9687
// send-hold-timer remedy.

#include <gtest/gtest.h>

#include "bgp/session_fsm.hpp"

namespace zombiescope::bgp {
namespace {

using netbase::kMinute;
using netbase::TimePoint;

UpdateMessage withdrawal() {
  UpdateMessage msg;
  msg.withdrawn.push_back(netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  return msg;
}

/// A two-endpoint harness with per-side read windows (the TCP receive
/// window abstraction). advance() moves time in 1-second steps,
/// ticking both sides and shuttling messages subject to the windows.
struct Wire {
  SessionFsm a;
  SessionFsm b;
  bool a_reads = true;  // does A read what B sends?
  bool b_reads = true;  // does B read what A sends?
  TimePoint now = 0;

  Wire(FsmConfig config_a, FsmConfig config_b) : a(config_a), b(config_b) {}

  void establish() {
    a.start(now);
    b.start(now);
    a.connected(now);
    b.connected(now);
    advance(5);
    ASSERT_EQ(a.state(), FsmState::kEstablished);
    ASSERT_EQ(b.state(), FsmState::kEstablished);
  }

  void advance(netbase::Duration seconds) {
    for (netbase::Duration i = 0; i < seconds; ++i) {
      ++now;
      a.tick(now);
      b.tick(now);
      if (b_reads)
        for (const auto& message : a.drain(now, 16)) b.receive(now, message);
      if (a_reads)
        for (const auto& message : b.drain(now, 16)) a.receive(now, message);
    }
  }
};

FsmConfig plain() { return FsmConfig{90, 30, 0}; }
FsmConfig with_send_hold(netbase::Duration t) { return FsmConfig{90, 30, t}; }

TEST(SessionFsm, HandshakeReachesEstablished) {
  Wire wire(plain(), plain());
  wire.establish();
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, KeepalivesSustainTheSession) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.advance(20 * kMinute);
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
  EXPECT_EQ(wire.b.state(), FsmState::kEstablished);
}

TEST(SessionFsm, HoldTimerFiresWhenPeerGoesSilent) {
  Wire wire(plain(), plain());
  wire.establish();
  // B's messages stop reaching A entirely (link cut one way).
  wire.a_reads = false;
  wire.advance(91);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.last_error(), "hold timer expired");
}

TEST(SessionFsm, UpdatesFlowWhenHealthy) {
  Wire wire(plain(), plain());
  wire.establish();
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(2);
  EXPECT_EQ(wire.a.queued(), 0u);
}

TEST(SessionFsm, SendUpdateRequiresEstablished) {
  SessionFsm fsm(plain());
  EXPECT_FALSE(fsm.send_update(0, withdrawal()));
}

FsmConfig wedged_box() {
  // The buggy box: keeps generating KEEPALIVEs, never reads, and its
  // own hold timer never fires (that is the bug — a healthy box would
  // tear down when it stops processing input).
  return FsmConfig{0, 30, 0};
}

TEST(SessionFsm, ZeroWindowPathologyWithoutRfc9687) {
  // The Cartwright-Cox incident: B wedges — it keeps sending
  // KEEPALIVEs but never reads. A's withdrawals queue forever; A's
  // hold timer never fires (B's keepalives keep arriving); the session
  // stays Established indefinitely. Every route B holds is a zombie.
  Wire wire(plain(), wedged_box());
  wire.establish();
  wire.b_reads = false;  // zero receive window at B
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(60 * kMinute);
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished) << "pre-9687: session never drops";
  EXPECT_GT(wire.a.queued(), 0u) << "the withdrawal is still stuck in the queue";
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, SendHoldTimerTearsDownWedgedSession) {
  // Same pathology, with RFC 9687 enabled on A (send hold 8 minutes).
  Wire wire(with_send_hold(8 * kMinute), wedged_box());
  wire.establish();
  wire.b_reads = false;
  EXPECT_TRUE(wire.a.send_update(wire.now, withdrawal()));
  wire.advance(8 * kMinute + 30);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.last_error(), "send hold timer expired (RFC 9687)");
  EXPECT_EQ(wire.a.session_drops(), 1);
}

TEST(SessionFsm, SendHoldTimerDoesNotFireUnderNormalOperation) {
  Wire wire(with_send_hold(8 * kMinute), with_send_hold(8 * kMinute));
  wire.establish();
  for (int i = 0; i < 30; ++i) {
    wire.a.send_update(wire.now, withdrawal());
    wire.advance(2 * kMinute);
  }
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
  EXPECT_EQ(wire.a.session_drops(), 0);
}

TEST(SessionFsm, SendHoldTimerRestartsOnPartialProgress) {
  // The peer reads slowly but steadily: as long as the queue makes
  // progress, RFC 9687 must not fire.
  Wire wire(with_send_hold(5 * kMinute), plain());  // healthy peer
  wire.establish();
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 40; ++i) wire.a.send_update(wire.now, withdrawal());
    wire.advance(4 * kMinute);  // drain rate 16/s clears each burst
  }
  EXPECT_EQ(wire.a.state(), FsmState::kEstablished);
}

TEST(SessionFsm, NotificationDropsSession) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.b.receive(wire.now, FsmMessage{MessageType::kNotification, std::nullopt});
  EXPECT_EQ(wire.b.state(), FsmState::kIdle);
  EXPECT_EQ(wire.b.last_error(), "NOTIFICATION from peer");
}

TEST(SessionFsm, StopClearsQueues) {
  Wire wire(plain(), plain());
  wire.establish();
  wire.b_reads = false;
  wire.a.send_update(wire.now, withdrawal());
  EXPECT_GT(wire.a.queued(), 0u);
  wire.a.stop(wire.now);
  EXPECT_EQ(wire.a.state(), FsmState::kIdle);
  EXPECT_EQ(wire.a.queued(), 0u);
}

TEST(SessionFsm, StateNames) {
  EXPECT_EQ(to_string(FsmState::kEstablished), "Established");
  EXPECT_EQ(to_string(FsmState::kOpenConfirm), "OpenConfirm");
}

}  // namespace
}  // namespace zombiescope::bgp

file(REMOVE_RECURSE
  "libzs_bgp.a"
)

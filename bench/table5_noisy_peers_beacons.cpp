// table5_noisy_peers_beacons — reproduces Table 5: the absolute number
// of zombie routes (and the percentage of beacon announcements that
// led to them) at the three noisy RRC25 peer routers, 1.5 hours and
// 3 hours after the beacons' withdrawal. The two AS211509 rows must be
// identical — they are one router observed over two transports.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;

void print_table() {
  bench::print_header("Table 5 — noisy RRC25 peer routers at 1.5h and 3h",
                      "IMC'25 paper Table 5 (Appendix C) + §5 noisy-peer analysis");
  g_out = bench::load_longlived2024();

  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto at90 = detector.detect(g_out.updates, g_out.events, 90 * netbase::kMinute);
  const auto at180 = detector.detect(g_out.updates, g_out.events, 180 * netbase::kMinute);

  auto count_for = [](const zombie::LongLivedResult& result, const zombie::PeerKey& peer) {
    int n = 0;
    for (const auto& outbreak : result.outbreaks)
      for (const auto& route : outbreak.routes)
        if (route.peer == peer) ++n;
    return n;
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& router : g_out.rrc25_noisy_routers) {
    const int n90 = count_for(at90, router);
    const int n180 = count_for(at180, router);
    rows.push_back({zombie::to_string(router), std::to_string(n90),
                    analysis::pct(static_cast<double>(n90) / g_out.studied_announcements),
                    std::to_string(n180),
                    analysis::pct(static_cast<double>(n180) / g_out.studied_announcements)});
  }
  rows.push_back({"paper: 176.119.234.201 (AS211509)", "163", "9.91%", "149", "9.06%"});
  rows.push_back({"paper: 2001:678:3f4:5::1 (AS211509)", "163", "9.91%", "149", "9.06%"});
  rows.push_back({"paper: 2a0c:9a40:1031::504 (AS211380)", "115", "7.00%", "113", "6.88%"});
  std::fputs(analysis::render_table({"Peer router", "routes @1.5h", "%", "routes @3h", "%"},
                                    rows)
                 .c_str(),
             stdout);

  // The filter must find exactly these three sessions against the
  // ~670-peer background.
  zombie::NoisyPeerFilter filter;
  std::vector<zombie::ZombieRoute> routes;
  for (const auto& outbreak : at90.outbreaks)
    for (const auto& route : outbreak.routes) routes.push_back(route);
  const auto detected =
      filter.noisy_peer_keys(routes, g_out.all_peers, g_out.studied_announcements);
  std::printf("NoisyPeerFilter flags %zu sessions:\n", detected.size());
  for (const auto& key : detected) std::printf("  %s\n", zombie::to_string(key).c_str());
}

void BM_LongLivedDetect(benchmark::State& state) {
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  for (auto _ : state) {
    auto result = detector.detect(g_out.updates, g_out.events, 90 * netbase::kMinute);
    benchmark::DoNotOptimize(result.outbreaks.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g_out.updates.size()));
}
BENCHMARK(BM_LongLivedDetect)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

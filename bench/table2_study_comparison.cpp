// table2_study_comparison — reproduces Table 2: the previous study's
// counts ("Study [4]", emulated by the looking-glass detector) next to
// the raw-data methodology with and without double-counting, per
// period, plus total visible prefixes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/lookingglass.hpp"

using namespace zombiescope;

namespace {

// Table 2 of the paper.
struct PaperRow {
  int study_v4, study_v6, dc_v4, dc_v6, nd_v4, nd_v6, visible;
};
const PaperRow kPaper[3] = {
    {520, 686, 536, 745, 226, 514, 7126},
    {384, 1202, 705, 1378, 478, 1370, 14336},
    {1732, 591, 1781, 610, 1319, 610, 9556},
};

scenarios::ScenarioOutput g_out0;

void print_table() {
  bench::print_header("Table 2 — previous study vs raw-data methodology",
                      "IMC'25 paper Table 2 (App. B.1)");
  std::vector<std::vector<std::string>> rows;
  int total_raw = 0, total_study = 0;
  for (int which = 0; which < 3; ++which) {
    const auto spec = bench::ris_spec(which);
    auto out = bench::load_ris_period(which);

    zombie::IntervalDetectorConfig config;
    for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::IntervalZombieDetector raw(config);
    const auto raw_result = raw.detect(out.updates, out.events);

    // The previous study had no dedup; its real-time looking glass
    // adds delay artifacts. For a like-for-like comparison both
    // pipelines run on the noisy-peer-cleaned feed.
    zombie::LookingGlassDetector study{zombie::LookingGlassConfig{}};
    auto study_result = study.detect(out.updates, out.events);
    std::erase_if(study_result.outbreaks, [&](zombie::ZombieOutbreak& o) {
      std::erase_if(o.routes, [&](const zombie::ZombieRoute& r) {
        return out.noisy_peers.contains(r.peer);
      });
      return o.routes.empty();
    });

    int sv4 = 0, sv6 = 0, dc4 = 0, dc6 = 0, nd4 = 0, nd6 = 0;
    for (const auto& o : study_result.outbreaks) (o.prefix.is_v4() ? sv4 : sv6)++;
    for (const auto& o : raw_result.outbreaks_with_duplicates) (o.prefix.is_v4() ? dc4 : dc6)++;
    for (const auto& o : raw_result.outbreaks_deduplicated) (o.prefix.is_v4() ? nd4 : nd6)++;
    total_raw += dc4 + dc6;
    total_study += sv4 + sv6;

    rows.push_back({spec.label, std::to_string(sv4), std::to_string(sv6), std::to_string(dc4),
                    std::to_string(dc6), std::to_string(nd4), std::to_string(nd6),
                    std::to_string(raw_result.visible_prefixes)});
    const auto& p = kPaper[which];
    rows.push_back({"  (paper)", std::to_string(p.study_v4), std::to_string(p.study_v6),
                    std::to_string(p.dc_v4), std::to_string(p.dc_v6), std::to_string(p.nd_v4),
                    std::to_string(p.nd_v6), std::to_string(p.visible)});
    if (which == 0) g_out0 = std::move(out);
  }
  std::fputs(analysis::render_table({"Period", "Study v4", "Study v6", "With dc v4",
                                     "With dc v6", "No dc v4", "No dc v6", "#visible"},
                                    rows)
                 .c_str(),
             stdout);
  const double gain = total_study == 0
                          ? 0.0
                          : 100.0 * (total_raw - total_study) / static_cast<double>(total_study);
  std::printf("Raw-data methodology finds %.1f%% more outbreaks than the looking-glass\n"
              "study (paper: +12.51%%). Each side also misses events the other reports\n"
              "(see Table 3).\n",
              gain);
}

void BM_LookingGlass2018(benchmark::State& state) {
  zombie::LookingGlassDetector detector{zombie::LookingGlassConfig{}};
  for (auto _ : state) {
    auto result = detector.detect(g_out0.updates, g_out0.events);
    benchmark::DoNotOptimize(result.outbreaks.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g_out0.updates.size()));
}
BENCHMARK(BM_LookingGlass2018)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "bgp/aspath.hpp"

#include <algorithm>

namespace zombiescope::bgp {

AsPath::AsPath(std::initializer_list<Asn> sequence) {
  if (sequence.size() > 0)
    segments_.push_back({SegmentType::kAsSequence, std::vector<Asn>(sequence)});
}

AsPath AsPath::sequence(std::vector<Asn> asns) {
  AsPath p;
  if (!asns.empty()) p.segments_.push_back({SegmentType::kAsSequence, std::move(asns)});
  return p;
}

int AsPath::length() const {
  int n = 0;
  for (const auto& seg : segments_)
    n += seg.type == SegmentType::kAsSequence ? static_cast<int>(seg.asns.size()) : 1;
  return n;
}

int AsPath::asn_count() const {
  int n = 0;
  for (const auto& seg : segments_) n += static_cast<int>(seg.asns.size());
  return n;
}

std::optional<Asn> AsPath::origin_asn() const {
  if (segments_.empty()) return std::nullopt;
  const auto& last = segments_.back();
  if (last.type != SegmentType::kAsSequence || last.asns.empty()) return std::nullopt;
  return last.asns.back();
}

std::optional<Asn> AsPath::first_asn() const {
  if (segments_.empty()) return std::nullopt;
  const auto& first = segments_.front();
  if (first.asns.empty()) return std::nullopt;
  return first.asns.front();
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments_)
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) return true;
  return false;
}

AsPath AsPath::prepend(Asn asn) const {
  AsPath out = *this;
  if (!out.segments_.empty() && out.segments_.front().type == SegmentType::kAsSequence) {
    out.segments_.front().asns.insert(out.segments_.front().asns.begin(), asn);
  } else {
    out.segments_.insert(out.segments_.begin(), {SegmentType::kAsSequence, {asn}});
  }
  return out;
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_) out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  return out;
}

bool AsPath::ends_with(const std::vector<Asn>& suffix) const {
  const std::vector<Asn> flat = flatten();
  if (suffix.size() > flat.size()) return false;
  return std::equal(suffix.rbegin(), suffix.rend(), flat.rbegin());
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (!out.empty()) out += ' ';
    if (seg.type == SegmentType::kAsSet) {
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    } else {
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i > 0) out += ' ';
        out += std::to_string(seg.asns[i]);
      }
    }
  }
  return out;
}

}  // namespace zombiescope::bgp

# Empty dependencies file for table5_noisy_peers_beacons.
# This may be replaced when dependencies are built.

// bgp/attributes.hpp — BGP path attributes carried by UPDATE messages.
//
// PathAttributes is a value type holding the attributes this library
// interprets plus a raw escape hatch for unknown optional-transitive
// attributes, so foreign messages survive a decode/encode round trip.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/types.hpp"
#include "netbase/ip.hpp"

namespace zombiescope::bgp {

/// AGGREGATOR attribute (RFC 4271 §5.1.7). The paper's key insight:
/// RIPE RIS beacons encode the *origination time* of each announcement
/// in the Aggregator IP as 10.x.y.z where x.y.z is a 24-bit count of
/// seconds since midnight UTC on the 1st of the month.
struct Aggregator {
  Asn asn = 0;
  netbase::IpAddress address;  // IPv4 by construction on the wire

  friend bool operator==(const Aggregator&, const Aggregator&) = default;
};

/// A standard 32-bit community value, rendered "asn:value".
struct Community {
  std::uint16_t high = 0;
  std::uint16_t low = 0;

  std::uint32_t value() const {
    return (static_cast<std::uint32_t>(high) << 16) | low;
  }
  static Community from_value(std::uint32_t v) {
    return {static_cast<std::uint16_t>(v >> 16), static_cast<std::uint16_t>(v & 0xffff)};
  }
  std::string to_string() const {
    return std::to_string(high) + ":" + std::to_string(low);
  }
  friend auto operator<=>(const Community&, const Community&) = default;
};

/// An attribute this library does not interpret, preserved verbatim.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RawAttribute&, const RawAttribute&) = default;
};

struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  /// IPv4 NEXT_HOP (attribute 3); IPv6 next hops travel inside
  /// MP_REACH_NLRI and are stored here as well when the NLRI is v6.
  std::optional<netbase::IpAddress> next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  std::vector<Community> communities;
  std::vector<RawAttribute> unknown;

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;
};

}  // namespace zombiescope::bgp

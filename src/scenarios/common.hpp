// scenarios/common.hpp — shared infrastructure for the calibrated
// experiment scenarios.
//
// A scenario builds a topology (generated hierarchy + a grafted
// backbone of "real" ASNs for the paper's anecdotes), wires collectors
// and peer sessions, injects faults, drives a beacon schedule, runs
// the simulation, and hands the resulting MRT archives to the
// detectors — exactly the data flow of the paper, with the Internet
// replaced by the simulator.

#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "beacon/schedule.hpp"
#include "collector/collector.hpp"
#include "mrt/record.hpp"
#include "simnet/simulation.hpp"
#include "zombie/types.hpp"

namespace zombiescope::scenarios {

/// Everything a bench/example needs after a scenario run.
struct ScenarioOutput {
  /// Merged, time-sorted update archives of all collectors.
  std::vector<mrt::MrtRecord> updates;
  /// Merged, time-sorted RIB dump archives of all collectors.
  std::vector<mrt::MrtRecord> rib_dumps;
  /// Ground-truth beacon events (superseded ones included but flagged).
  std::vector<beacon::BeaconEvent> events;
  /// Ground-truth noisy peer sessions (the ones with injected session
  /// noise) — detectors should *discover* these, but benches compare.
  std::set<zombie::PeerKey> noisy_peers;
  /// Every peer session in the run.
  std::vector<zombie::PeerKey> all_peers;
  /// Announcements studied (superseded excluded).
  int studied_announcements = 0;
  simnet::SimStats sim_stats;
};

/// Round-trips archives through the binary MRT codec, guaranteeing
/// detectors consume exactly what a file reader would produce.
std::vector<mrt::MrtRecord> through_mrt_codec(const std::vector<mrt::MrtRecord>& records);

/// Picks `count` monitored ASes from a topology: a spread over tiers
/// (favoring stubs and mid-tier ASes, like real RIS volunteers).
std::vector<bgp::Asn> pick_monitor_asns(const topology::Topology& topo, int count,
                                        netbase::Rng& rng,
                                        const std::set<bgp::Asn>& exclude = {});

/// Synthesizes a deterministic peer-router address for a session.
netbase::IpAddress peer_address_for(bgp::Asn asn, int index, bool v6);

}  // namespace zombiescope::scenarios

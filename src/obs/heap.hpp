// obs/heap.hpp — zsheap, the span-attributed allocation profiler.
//
// The allocation-side twin of zsprof: where zsprof answers "where did
// the CPU go", zsheap answers "who allocated, how much, and in which
// phase". On Linux the library interposes malloc/calloc/realloc/free
// (strong-symbol override backed by glibc's __libc_malloc family) and
// the replaceable operator new/delete, so every allocation in the
// process flows through one accounting hook:
//
//   * per-thread counters — cumulative bytes, alloc/free counts, and a
//     power-of-two size-class histogram — aggregated at stop();
//   * live/peak tracking via one process-global pair of atomics;
//   * span attribution: each allocation is credited to the innermost
//     active zsobs span of the calling thread, maintained by the same
//     two-relaxed-stores mechanism prof.cpp uses for SIGPROF samples
//     (obs/trace.cpp pushes via heap_push_span while a session runs);
//   * a 1-in-N sampler (default 1024) captures frame-pointer call
//     stacks — bounds-checked exactly like prof.cpp's walker — into
//     per-thread SPSC rings; stop() folds and self-symbolizes them
//     (dladdr + demangling) into a top-N allocation-site table.
//
// When no session is active the interposed hot path is a single
// relaxed atomic load on top of libc's allocator. Sanitizer builds
// (ASan/TSan/MSan own the allocator) compile the interposition out and
// detect a sanitizer runtime at start() via weak __sanitizer symbols —
// zsheap steps aside instead of fighting for malloc (DESIGN.md §7).
// ZS_HEAP_ENABLED=0 removes every hook (empty inline bodies), enforced
// by tests/heap_compileout_test like prof/causal.
//
// Surfaces: --heap-out on zssim/zsdetect/zslived, GET /heap?seconds=N
// on the obs HTTP server, the `heap` section of every BENCH_*.json,
// and zs_heap_* gauges in the exporters. zsbenchdiff gates
// heap:total_bytes / heap:allocs with --gate-alloc.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZS_HEAP_ENABLED
#define ZS_HEAP_ENABLED 1
#endif

namespace zombiescope::obs {

/// True when the allocation profiler hooks are compiled in. Call sites
/// guard with `if constexpr (kHeapCompiledIn)` so a ZS_HEAP_ENABLED=0
/// build executes exactly zero profiler code.
inline constexpr bool kHeapCompiledIn = ZS_HEAP_ENABLED != 0;

/// Size-class histogram buckets: class i counts allocations with
/// requested size <= 2^(i+4) bytes (16 B .. 256 KiB), the last class
/// is the overflow bucket.
inline constexpr std::size_t kHeapSizeClasses = 16;

struct HeapProfilerOptions {
  /// Capture one call stack per this many allocations (per thread).
  /// 1 samples everything; 0 disables stack sampling entirely.
  std::uint64_t sample_every = 1024;
  /// Per-thread sample ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
};

/// One folded allocation site of the top-N table:
/// "span;...;frame;frame" (root first) with its sampled cost.
struct HeapSite {
  std::string stack;
  std::uint64_t bytes = 0;   // sampled bytes attributed to this stack
  std::uint64_t allocs = 0;  // sampled allocation count
};

/// Per-span allocation attribution (exhaustive, not sampled).
struct HeapSpanAlloc {
  std::uint64_t bytes = 0;
  std::uint64_t allocs = 0;
};

/// Aggregated result of one allocation-profiling session.
struct HeapReport {
  bool valid = false;  // false: profiler never ran (or compiled out)
  double duration_s = 0.0;
  std::uint64_t sample_every = 0;

  // Exhaustive counters over the session window.
  std::uint64_t total_bytes = 0;  // cumulative allocated (usable sizes)
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t freed_bytes = 0;
  /// Net live delta at stop() (can be negative: blocks allocated
  /// before the session and freed inside it).
  std::int64_t live_bytes = 0;
  /// Peak of the net live delta during the session (never negative).
  std::uint64_t peak_live_bytes = 0;

  // Stack-sampling accounting.
  std::uint64_t samples = 0;
  std::uint64_t sampled_bytes = 0;
  std::uint64_t dropped = 0;  // ring-overflow losses

  /// Requested-size histogram; index per kHeapSizeClasses.
  std::array<std::uint64_t, kHeapSizeClasses> size_class_allocs{};

  /// Innermost active span ("(no span)" when none) -> exhaustive
  /// bytes/alloc attribution.
  std::map<std::string, HeapSpanAlloc> span_bytes;
  /// Sampled allocation sites, sorted by bytes descending.
  std::vector<HeapSite> top_sites;

  /// Flamegraph-ready folded text of the sampled sites, weighted by
  /// bytes: one "stack bytes" line per site.
  std::string to_folded() const;
  /// Human-readable per-span shares + top-N site table.
  std::string top_report(std::size_t n = 20) const;
  /// The "heap" section of BENCH_*.json: schema zsheap-v1.
  std::string to_json(std::size_t top_n = 20) const;
};

/// The process-wide allocation profiler. The interposed allocator is a
/// process-global resource, so there is exactly one; start()/stop()
/// may be called from any thread.
class HeapProfiler {
 public:
  /// The singleton every entry point (CLI --heap-out, GET /heap, the
  /// bench harness) shares.
  static HeapProfiler& global();

  /// True when this build carries the interposed allocator symbols
  /// (Linux/glibc, no sanitizer). False under ASan/TSan/MSan or
  /// ZS_HEAP_ENABLED=0 — the build defers to the sanitizer allocator.
  static bool interposition_compiled();
  /// interposition_compiled() AND no sanitizer runtime is linked into
  /// the process (detected via weak __sanitizer symbols at runtime).
  static bool interposition_available();

  /// Arms the accounting hooks. Returns false if already running,
  /// compiled out, or interposition is unavailable (sanitizer build).
  bool start(const HeapProfilerOptions& options = {});

  /// Disarms the hooks, drains the sample rings, symbolizes, and
  /// returns the aggregated report. Invalid report when not running.
  HeapReport stop();

  bool running() const;
  /// Allocations accounted so far in the active session (approximate).
  std::uint64_t allocs_observed() const;

 private:
  HeapProfiler() = default;
};

/// The --heap-out CLI helper: starts a global allocation-profiling
/// session on construction (when `path` is non-empty and interposition
/// is available), and on destruction stops it, writes the zsheap-v1
/// JSON report to `path`, and prints the top-sites summary to stderr.
/// Does nothing at all for an empty path.
class ScopedHeapSession {
 public:
  explicit ScopedHeapSession(std::string path);
  ~ScopedHeapSession();
  ScopedHeapSession(const ScopedHeapSession&) = delete;
  ScopedHeapSession& operator=(const ScopedHeapSession&) = delete;

  bool active() const { return active_; }

 private:
  std::string path_;
  bool active_ = false;
};

/// Copies the live session counters into the zs_heap_* registry gauges
/// so /metrics scrapes and exporter snapshots carry them. Called by
/// stop(), the /metrics route, and the bench harness; cheap enough to
/// call on every scrape. No-op when no session ever ran.
void heap_publish_metrics();

// --- span-attribution hooks (used by obs/trace.cpp) -----------------
//
// ScopedSpan pushes its interned name while a heap session is active
// so the allocation hook can read the innermost span with two relaxed
// loads. All of this is a no-op when no session runs, and compiles
// away entirely when ZS_HEAP_ENABLED=0 (call sites guard with
// kHeapCompiledIn).

#if ZS_HEAP_ENABLED
/// One relaxed atomic load: should spans register with the profiler?
bool heap_attribution_active() noexcept;
/// Returns a pointer that stays valid forever (names are interned).
const char* heap_intern(std::string_view name);
/// Pushes/pops the calling thread's active-span stack.
void heap_push_span(const char* interned_name) noexcept;
void heap_pop_span() noexcept;
#else
inline bool heap_attribution_active() noexcept { return false; }
inline const char* heap_intern(std::string_view) { return nullptr; }
inline void heap_push_span(const char*) noexcept {}
inline void heap_pop_span() noexcept {}
#endif

}  // namespace zombiescope::obs

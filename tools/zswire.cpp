// zswire — the BGP-4 wire subsystem's command-line face.
//
//   zswire score [--seeds N] [--json] [--out FILE]
//       Runs the session-layer fault suite (scenarios/wirefault.hpp):
//       hold-timer expiry vs send-hold stall, graceful-restart stale
//       retention, LLGR long retention — each scored against analytic
//       ground truth through the real-time detector. --out writes the
//       JSON report (SCORE_wire.json) regardless of --json.
//
//   zswire peer HOST PORT [--asn N] [--address IP] [--announce PFX]...
//              [--hold S] [--wait S]
//       Dials a BGP speaker (zslived --bgp-listen), completes the
//       OPEN/KEEPALIVE handshake, announces the given prefixes, and
//       holds the session up for --wait seconds, answering KEEPALIVEs.
//       The loopback soak peer: after it connects, /sessions on the
//       daemon must show one Established session with this ASN.
//
//   zswire replay FILE HOST PORT [--no-stamp]
//       Replays an MRT update archive over real BGP sessions (one per
//       distinct archive peer) against a collector speaker, carrying
//       archive timestamps and ordering in the bridge sideband so the
//       receiver reproduces the batch record stream exactly.
//
// Exit codes: 0 ok; 1 score below 100% (or replay/peer failure);
// 2 usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mrt/codec.hpp"
#include "obs/build_info.hpp"
#include "scenarios/wirefault.hpp"
#include "wire/bridge.hpp"
#include "wire/message.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s score [--seeds N] [--json] [--out FILE]\n"
      "       %s peer HOST PORT [--asn N] [--address IP] [--announce PFX]...\n"
      "                [--hold S] [--wait S]\n"
      "       %s replay FILE HOST PORT [--no-stamp]\n"
      "       (--version prints build identity)\n",
      argv0, argv0, argv0);
  std::exit(2);
}

void write_score_json(FILE* out,
                      const std::vector<scenarios::WireScenarioResult>& results,
                      const scenarios::WireSuiteSummary& summary, int seeds) {
  std::fprintf(out, "{\n  \"suite\": \"wirefault\",\n  \"seeds\": %d,\n", seeds);
  std::fprintf(out,
               "  \"total\": %d,\n  \"passed\": %d,\n  \"pass_rate\": %.4f,\n",
               summary.total, summary.passed, summary.pass_rate());
  std::fprintf(out,
               "  \"zombies\": {\"expected\": %d, \"detected\": %d},\n"
               "  \"resolutions\": {\"expected\": %d, \"detected\": %d},\n",
               summary.zombies_expected, summary.zombies_detected,
               summary.resolutions_expected, summary.resolutions_detected);
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"prefix\": \"%s\", \"peer_asn\": %u, "
                 "\"passed\": %s, \"expect_zombie\": %s, "
                 "\"emergence\": %lld, \"resolution\": %lld, "
                 "\"drop_reason\": \"%s\", \"flush_reason\": \"%s\", "
                 "\"failure\": \"%s\"}%s\n",
                 r.spec.name().c_str(), r.prefix.to_string().c_str(), r.peer.asn,
                 r.passed ? "true" : "false", r.expect_zombie ? "true" : "false",
                 static_cast<long long>(r.measured_emergence),
                 static_cast<long long>(r.measured_resolution),
                 r.drop_reason.c_str(), to_string(r.flush_reason).c_str(),
                 r.failure.c_str(), i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
}

int run_score(int argc, char** argv) {
  int seeds = 3;
  bool json = false;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) seeds = std::atoi(argv[++i]);
    else if (arg == "--json") json = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else usage(argv[0]);
  }
  std::vector<scenarios::WireScenarioResult> results;
  for (const auto& spec : scenarios::default_wire_suite(seeds))
    results.push_back(scenarios::run_wire_scenario(spec));
  const auto summary = scenarios::summarize_wire(results);

  if (json) {
    write_score_json(stdout, results, summary, seeds);
  } else {
    std::printf("wirefault suite: %d scenario(s), %d passed (%.1f%%)\n",
                summary.total, summary.passed, 100.0 * summary.pass_rate());
    std::printf("  zombies     %d expected, %d detected\n",
                summary.zombies_expected, summary.zombies_detected);
    std::printf("  resolutions %d expected, %d detected\n",
                summary.resolutions_expected, summary.resolutions_detected);
    for (const auto& r : results) {
      std::printf("  %-28s %s%s%s\n", r.spec.name().c_str(),
                  r.passed ? "pass" : "FAIL", r.failure.empty() ? "" : ": ",
                  r.failure.c_str());
    }
  }
  if (!out_path.empty()) {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    write_score_json(out, results, summary, seeds);
    std::fclose(out);
  }
  return summary.passed == summary.total ? 0 : 1;
}

int run_peer(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  const std::string host = argv[2];
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[3]));
  std::uint32_t asn = 65001;
  std::string address;
  std::vector<netbase::Prefix> announce;
  long hold = 90;
  long wait = 10;
  for (int i = 4; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--asn" && i + 1 < argc) asn = static_cast<std::uint32_t>(std::atol(argv[++i]));
    else if (arg == "--address" && i + 1 < argc) address = argv[++i];
    else if (arg == "--announce" && i + 1 < argc) {
      const auto prefix = netbase::Prefix::try_parse(argv[++i]);
      if (!prefix.has_value()) usage(argv[0]);
      announce.push_back(*prefix);
    } else if (arg == "--hold" && i + 1 < argc) hold = std::atol(argv[++i]);
    else if (arg == "--wait" && i + 1 < argc) wait = std::atol(argv[++i]);
    else usage(argv[0]);
  }
  try {
    const int fd = wire::wire_connect(host, port);
    std::optional<netbase::IpAddress> logical;
    if (!address.empty()) logical = netbase::IpAddress::parse(address);
    wire::wire_handshake(fd, asn, 0xc0000200 + asn % 250, hold, logical);
    std::fprintf(stderr, "zswire peer: session established (AS%u)\n", asn);
    if (!announce.empty()) {
      bgp::UpdateMessage update;
      update.announced = announce;
      update.attributes.as_path = bgp::AsPath{asn};
      update.attributes.next_hop = netbase::IpAddress::parse("127.0.0.1");
      const auto msg = wire::encode_update(update);
      std::size_t off = 0;
      while (off < msg.size()) {
        const ssize_t n = ::send(fd, msg.data() + off, msg.size() - off, 0);
        if (n <= 0) throw std::runtime_error("peer: send failed");
        off += static_cast<std::size_t>(n);
      }
      std::fprintf(stderr, "zswire peer: announced %zu prefix(es)\n",
                   announce.size());
    }
    // Keep the session alive: answer with KEEPALIVEs on a hold/3
    // cadence, draining whatever the collector sends.
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(wait);
    auto next_keepalive = std::chrono::steady_clock::now();
    const auto keepalive_wire = wire::encode_keepalive();
    char buf[4096];
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::chrono::steady_clock::now() >= next_keepalive) {
        (void)!::send(fd, keepalive_wire.data(), keepalive_wire.size(), 0);
        next_keepalive += std::chrono::seconds(std::max<long>(hold / 3, 1));
      }
      while (::recv(fd, buf, sizeof(buf), 0) > 0) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    wire::NotificationMessage bye;
    bye.code = wire::NotifyCode::kCease;
    bye.subcode = wire::kCeaseAdminShutdown;
    const auto bye_wire = bye.encode();
    (void)!::send(fd, bye_wire.data(), bye_wire.size(), 0);
    ::close(fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_replay(int argc, char** argv) {
  if (argc < 5) usage(argv[0]);
  const std::string file = argv[2];
  const std::string host = argv[3];
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[4]));
  wire::BridgeOptions options;
  for (int i = 5; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--no-stamp") options.stamp = false;
    else usage(argv[0]);
  }
  try {
    const std::vector<mrt::MrtRecord> records = mrt::read_file(file);
    const wire::BridgeStats stats =
        wire::replay_over_wire(records, host, port, options);
    std::fprintf(stderr,
                 "replayed %zu record(s): %zu session(s), %zu update(s), "
                 "%zu state change(s), %llu byte(s)\n",
                 records.size(), stats.sessions, stats.updates_sent,
                 stats.state_changes_sent,
                 static_cast<unsigned long long>(stats.bytes_sent));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zswire").c_str());
      return 0;
    }
  }
  if (argc < 2) usage(argv[0]);
  const std::string_view mode = argv[1];
  if (mode == "score") return run_score(argc, argv);
  if (mode == "peer") return run_peer(argc, argv);
  if (mode == "replay") return run_replay(argc, argv);
  usage(argv[0]);
}

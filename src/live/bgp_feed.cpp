#include "live/bgp_feed.hpp"

#include <chrono>
#include <utility>

#include "wire/bridge.hpp"

namespace zombiescope::live {

namespace {

netbase::TimePoint system_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BgpFeedSource::BgpFeedSource(wire::SpeakerConfig config, std::uint16_t port)
    : config_(config), speaker_(config, /*listen=*/true, port) {}

void BgpFeedSource::attach_http(obs::HttpServer& http) {
  http.add_endpoint("/sessions", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = speaker_.sessions_json();
    return response;
  });
}

void BgpFeedSource::submit_or_queue(LiveService& service, PendingRecord&& pending,
                                    bool stamped, RunStats& stats) {
  if (!stamped) {
    ++stats.records;
    service.submit(FeedItem{std::move(pending.record), pending.ingest});
    return;
  }
  // Bridge records re-sequence: the archive order must survive the
  // kernel's cross-socket interleaving for live == batch equivalence.
  reorder_.push(std::move(pending));
  while (!reorder_.empty() && reorder_.top().sequence <= next_sequence_) {
    PendingRecord release = reorder_.top();
    reorder_.pop();
    if (release.sequence == next_sequence_) ++next_sequence_;
    ++stats.records;
    service.submit(FeedItem{std::move(release.record), release.ingest});
  }
}

FeedSource::RunStats BgpFeedSource::run(LiveService& service) {
  RunStats stats;

  speaker_.on_update([this, &service, &stats](
                         const wire::SessionRef& ref, bgp::UpdateMessage&& update,
                         std::chrono::steady_clock::time_point ingest) {
    const auto stamp = wire::extract_stamp(update);
    const auto state = wire::extract_state(update);
    if (state.has_value()) {
      // An attr-253 empty UPDATE: a Bgp4mpStateChange in transit.
      mrt::Bgp4mpStateChange change;
      change.timestamp = stamp ? stamp->timestamp : system_seconds();
      change.peer_asn = ref.peer_asn;
      change.local_asn = config_.local_asn;
      change.peer_address = ref.peer_address;
      change.old_state = static_cast<bgp::SessionState>(state->first);
      change.new_state = static_cast<bgp::SessionState>(state->second);
      submit_or_queue(service,
                      PendingRecord{stamp ? stamp->sequence : 0,
                                    mrt::MrtRecord{std::move(change)}, ingest},
                      stamp.has_value(), stats);
      return;
    }
    mrt::Bgp4mpMessage message;
    message.timestamp = stamp ? stamp->timestamp : system_seconds();
    message.peer_asn = ref.peer_asn;
    message.local_asn = config_.local_asn;
    message.peer_address = ref.peer_address;
    message.update = std::move(update);
    submit_or_queue(service,
                    PendingRecord{stamp ? stamp->sequence : 0,
                                  mrt::MrtRecord{std::move(message)}, ingest},
                    stamp.has_value(), stats);
  });

  speaker_.on_state([this, &service, &stats](const wire::SessionRef& ref,
                                             bgp::SessionState old_state,
                                             bgp::SessionState new_state,
                                             bool retained) {
    // Bridge transport flaps are not routing events; a GR-retained
    // drop deliberately hides from the detector (the RIB kept the
    // routes — that is the zombie being manufactured).
    if (ref.bridged || retained) return;
    mrt::Bgp4mpStateChange change;
    change.timestamp = system_seconds();
    change.peer_asn = ref.peer_asn;
    change.local_asn = config_.local_asn;
    change.peer_address = ref.peer_address;
    change.old_state = old_state;
    change.new_state = new_state;
    ++stats.records;
    service.submit(FeedItem{mrt::MrtRecord{std::move(change)},
                            std::chrono::steady_clock::now()});
  });

  speaker_.on_flush([this, &service, &stats](const wire::SessionRef& ref,
                                             std::vector<netbase::Prefix>&& prefixes,
                                             wire::FlushReason) {
    // Retention ended (End-of-RIB sweep, restart or LLGR expiry): the
    // stale routes leave the RIB now, as explicit withdrawals.
    mrt::Bgp4mpMessage message;
    message.timestamp = system_seconds();
    message.peer_asn = ref.peer_asn;
    message.local_asn = config_.local_asn;
    message.peer_address = ref.peer_address;
    message.update.withdrawn = std::move(prefixes);
    ++stats.records;
    service.submit(FeedItem{mrt::MrtRecord{std::move(message)},
                            std::chrono::steady_clock::now()});
  });

  speaker_.run();

  // Anything still parked in the reorder heap (a bridge died mid-run)
  // flushes in sequence order rather than vanishing.
  while (!reorder_.empty()) {
    PendingRecord release = reorder_.top();
    reorder_.pop();
    ++stats.records;
    service.submit(FeedItem{std::move(release.record), release.ingest});
  }
  return stats;
}

}  // namespace zombiescope::live

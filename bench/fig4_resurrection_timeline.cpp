// fig4_resurrection_timeline — reproduces Figure 4: the timeline of
// the BGP zombie prefix 2a0d:3dc1:1851::/48 becoming invisible and
// resurrecting twice over ~8.5 months. Paper timeline: withdrawn
// 2024-06-21; reappears in one RIS peer's RIB 2024-06-29 (with no new
// beacon announcement); visible until 2024-10-04; reappears
// 2024-11-29; visible until 2025-03-11. Path: "61573 28598 10429
// 12956 3356 34549 8298 210312".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;

void print_figure() {
  bench::print_header("Figure 4 — timeline of the twice-resurrected zombie prefix",
                      "IMC'25 paper Fig. 4 + §5.1");
  g_out = bench::load_longlived2024();
  std::printf("prefix: %s (paper: 2a0d:3dc1:1851::/48)\n",
              g_out.resurrected_prefix.to_string().c_str());

  // The paper's timeline tracks the route at the (non-noisy) RIS
  // peers; noisy sessions hold stale copies of half the table and
  // would mask the visibility gaps.
  zombie::LongLivedConfig config;
  for (const auto& peer : g_out.noisy_peers) config.excluded_peers.insert(peer);
  zombie::LifespanAnalyzer analyzer{config};
  const auto lifespans =
      analyzer.analyze(g_out.rib_dumps, g_out.events, g_out.rib_dump_interval);

  const zombie::OutbreakLifespan* target = nullptr;
  for (const auto& l : lifespans)
    if (l.prefix == g_out.resurrected_prefix) target = &l;
  if (target == nullptr) {
    std::printf("ERROR: resurrected prefix not found in lifespans\n");
    return;
  }

  std::printf("withdrawn:    %s (paper: 2024-06-21)\n",
              netbase::format_utc(target->withdraw_time).c_str());
  for (const auto& interval : target->intervals) {
    std::printf("visible:      %s .. %s at %s\n    path: %s\n",
                netbase::format_date(interval.first_seen).c_str(),
                netbase::format_date(interval.last_seen).c_str(),
                zombie::to_string(interval.peer).c_str(), interval.path.to_string().c_str());
  }
  for (const auto& res : target->resurrections) {
    std::printf("RESURRECTION: vanished %s, reappeared %s at %s\n",
                netbase::format_date(res.vanished_at).c_str(),
                netbase::format_date(res.reappeared_at).c_str(),
                zombie::to_string(res.peer).c_str());
  }
  std::printf("total stuck:  %.1f days (~%.1f months; paper: ~8.5 months)\n",
              static_cast<double>(target->duration()) / netbase::kDay,
              static_cast<double>(target->duration()) / netbase::kDay / 30.4);
  std::printf("resurrections: %zu (paper: the prefix resurrects twice)\n",
              target->resurrections.size());

  // The stuck path must match the paper's chain.
  bool path_ok = false;
  for (const auto& interval : target->intervals)
    if (interval.path.ends_with({28598, 10429, 12956, 3356, 34549, 8298, 210312}))
      path_ok = true;
  std::printf("path matches '61573 28598 10429 12956 3356 34549 8298 210312': %s\n",
              path_ok ? "yes" : "NO");
}

void BM_TimelineExtraction(benchmark::State& state) {
  zombie::LifespanAnalyzer analyzer{zombie::LongLivedConfig{}};
  for (auto _ : state) {
    auto lifespans = analyzer.analyze(g_out.rib_dumps, g_out.events, g_out.rib_dump_interval);
    int resurrections = 0;
    for (const auto& l : lifespans) resurrections += static_cast<int>(l.resurrections.size());
    benchmark::DoNotOptimize(resurrections);
  }
}
BENCHMARK(BM_TimelineExtraction)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

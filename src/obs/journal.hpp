// obs/journal.hpp — the zombie flight recorder.
//
// A structured event journal for the zombie-detection pipeline: every
// lifecycle transition the detectors, collectors, and the simulator's
// fault injections decide on (announcement seen, withdraw seen/missed,
// stuck-threshold crossed, zombie declared/cleared, resurrection,
// noisy-peer exclusion, Aggregator double-count elimination) is
// recorded as one fixed-size, trivially-copyable JournalEvent with its
// cause metadata. A run that disagrees with the paper's tables can
// then be audited event by event instead of staring at aggregate
// counters — see tools/zsreport.cpp, which reconstructs per-prefix
// timelines and per-peer zombie probabilities from a journal file.
//
// Design rules (matching the rest of zsobs):
//  * zero overhead when idle — the journal is disabled by default; an
//    instrumented call site costs one relaxed atomic load;
//  * producers never block or allocate — emit() claims a slot in a
//    lock-free bounded MPSC ring (Vyukov-style sequence numbers) and
//    copies the POD event in; when the ring is full the event is
//    dropped and counted, never waited for;
//  * draining is strictly pull — pump() (the single consumer, guarded
//    by a mutex so the exit-time flush and the HTTP /journal/tail
//    endpoint can share it) moves events to the attached writer (NDJSON
//    or a length-prefixed binary format) and a bounded recent-events
//    buffer;
//  * categories are filterable at compile time (ZS_JOURNAL_CATEGORIES)
//    and at run time (set_enabled_categories), so the chatty
//    message-level layer can be compiled out of a production build
//    while the detector-decision layer stays.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "obs/metrics.hpp"

/// Categories compiled into the binary. Call sites use the template
/// emit<Cat>() so a category masked out here costs literally nothing —
/// the call compiles to an empty function.
#ifndef ZS_JOURNAL_CATEGORIES
#define ZS_JOURNAL_CATEGORIES 0xffffffffu
#endif

namespace zombiescope::obs {

/// Event categories (bitmask). kCatState is the message-granularity
/// layer (one event per BGP update applied) and is by far the
/// chattiest; everything else records decisions.
enum JournalCategory : std::uint32_t {
  kCatRun = 1u << 0,        // run-level metadata
  kCatState = 1u << 1,      // per-message state reconstruction
  kCatDetector = 1u << 2,   // threshold checks, declarations, dedup
  kCatNoise = 1u << 3,      // noisy peers, collector-side noise
  kCatLifespan = 1u << 4,   // RIB-dump lifespans and resurrections
  kCatCollector = 1u << 5,  // collector session lifecycle
  kCatFault = 1u << 6,        // simnet fault injections
  kCatPropagation = 1u << 7,  // causal per-hop update provenance
  kCatLive = 1u << 8,         // zslive streaming service transitions
  kCatAlert = 1u << 9,        // zstsdb alert-rule transitions
  kCatPeer = 1u << 10,        // zspeerq feed-quality transitions
  kCatSession = 1u << 11,     // zswire BGP session lifecycle
  kCatAll = (1u << 12) - 1,
};

/// One name per bit ("run", "state", ...). Empty for unknown bits.
std::string_view category_name(std::uint32_t category);

/// Parses a comma-separated category list ("detector,fault,lifespan");
/// "all" enables everything. nullopt on an unknown name.
std::optional<std::uint32_t> parse_categories(std::string_view text);

enum class JournalEventType : std::uint16_t {
  // kCatRun
  kRunMeta = 1,  // a = studied announcements, b = threshold, c = end time
  // kCatState (per-message layer)
  kAnnounceSeen = 2,  // peer announced prefix
  kWithdrawSeen = 3,  // peer withdrew prefix
  kSessionFlush = 4,  // peer session left Established; its routes drop
  // kCatDetector
  kThresholdCrossed = 10,    // a = threshold, b = withdraw time; the
                             // route was still announced at b + a
  kZombieDeclared = 11,      // a = threshold, b = withdraw, c = interval
  kZombieCleared = 12,       // b = withdraw time (real-time resolution)
  kDuplicateSuppressed = 13, // a = Aggregator clock, b = interval start
  // kCatNoise
  kNoisyPeerExcluded = 14,
  kWithdrawalLost = 20,     // collector session noise ate a withdrawal
  kWithdrawalDelayed = 21,  // a = delay (slow convergence)
  kPhantomReannounce = 22,  // a = delay (stale path resurfaced)
  // kCatLifespan
  kResurrectionDetected = 15,  // a = vanished at, b = reappeared at
  kLifespanClosed = 16,        // a = withdraw time, b = last seen
  // kCatCollector
  kCollectorSessionDown = 23,
  kCollectorSessionUp = 24,
  // kCatFault (a = from AS, b = to AS unless noted)
  kFaultWithdrawalSuppressed = 30,
  kFaultReceiveStall = 31,
  kSimSessionDown = 32,
  kSimSessionUp = 33,
  kPrefixEvicted = 34,  // a = AS evicting the prefix (RoST)
  // kCatPropagation (packed by obs/causal.hpp: a = trace id,
  // b = from/to ASNs, c = hop + kind + decision — use
  // to_journal_event / hop_from_event, never the raw fields)
  kPropagationHop = 40,
  // kCatLive (zslive service; a/b per transition comments in
  // live/service.hpp)
  kLiveZombieEmerged = 50,      // a = threshold, b = withdraw time
  kLiveZombieResurrected = 51,  // a = raised at, b = withdraw time
  kLiveZombieDied = 52,         // a = withdraw time, b = stuck seconds
  kLiveIngestDropped = 53,      // a = shard, b = total drops so far
  kLiveClientEvicted = 54,      // a = buffered bytes at eviction
  // kCatAlert (zstsdb rule engine; rules are identified by index — the
  // names live in GET /alerts). Values are scaled by 1000 because the
  // journal carries integers (a = observed value, b = threshold, both
  // milli-units; c = rule index).
  kAlertFiring = 60,
  kAlertResolved = 61,
  // kCatPeer (zspeerq classifier; emitted at merge time, so `time` is
  // the merged stream clock)
  kPeerNoisyEnter = 70,  // a = stuck probability (ppm), b = median
                         // probability (ppm), c = stuck routes
  kPeerNoisyExit = 71,   // same fields as kPeerNoisyEnter
  kPeerSilent = 72,      // a = silent age (s), b = last update seen
  // kCatSession (zswire BGP-4 speaker; peer fields carry the session's
  // logical peer identity)
  kWireSessionState = 80,     // a = old FsmState, b = new FsmState
  kWireNotifySent = 81,       // a = error code, b = subcode
  kWireNotifyReceived = 82,   // a = error code, b = subcode
  kWireGrRetained = 83,       // a = routes retained, b = deadline (s)
  kWireGrFlushed = 84,        // a = routes flushed, b = FlushReason
  kWireCollision = 85,        // a = 1 kept our initiated connection
};

/// Snake-case wire name ("zombie_declared"). Used by both serializers.
std::string_view to_string(JournalEventType type);
std::optional<JournalEventType> parse_event_type(std::string_view name);

/// The category an event type reports under.
std::uint32_t category_of(JournalEventType type);

/// One journal record. Trivially copyable by design: the ring buffer
/// moves raw bytes, never runs constructors concurrently. The aux
/// fields a/b/c are type-specific (see JournalEventType comments);
/// times are simulation TimePoints (seconds since the epoch).
struct JournalEvent {
  JournalEventType type = JournalEventType::kRunMeta;
  netbase::TimePoint time = 0;
  bool has_prefix = false;
  bool has_peer = false;
  netbase::Prefix prefix;
  std::uint32_t peer_asn = 0;
  netbase::IpAddress peer_address;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};
static_assert(std::is_trivially_copyable_v<JournalEvent>,
              "the journal ring copies events as raw memory");

/// One NDJSON line (no trailing newline).
std::string to_ndjson(const JournalEvent& event);
/// Parses one NDJSON line back. nullopt on malformed input.
std::optional<JournalEvent> parse_ndjson(std::string_view line);
/// Appends one length-prefixed binary record.
void append_binary(std::vector<std::uint8_t>& out, const JournalEvent& event);

enum class JournalFormat { kNdjson, kBinary };

/// Parses "ndjson" / "bin" / "binary" (the --journal-format values).
std::optional<JournalFormat> parse_journal_format(std::string_view text);

/// File header of the binary format; NDJSON files start with '{'.
inline constexpr std::string_view kJournalBinaryMagic = "ZSJL1\n";

/// Streams events to a file in either format. Not thread-safe: owned
/// by the journal's consumer side.
class JournalWriter {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  JournalWriter(const std::string& path, JournalFormat format);

  void write(const JournalEvent& event);
  void flush();
  const std::string& path() const { return path_; }
  JournalFormat format() const { return format_; }

 private:
  std::string path_;
  JournalFormat format_;
  std::ofstream out_;
};

/// Reads a journal file back, auto-detecting the format; "-" reads
/// stdin (for piped journals). Throws std::runtime_error on an
/// unreadable or structurally corrupt file; unparseable NDJSON lines
/// are skipped (foreign tools may append).
std::vector<JournalEvent> read_journal_file(const std::string& path);

class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;
  static constexpr std::size_t kRecentCapacity = 4096;

  explicit Journal(std::size_t capacity = kDefaultCapacity);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The process-wide journal the instrumented modules report to.
  /// Disabled (mask 0) until a tool opts in via --journal-out.
  static Journal& global();

  std::uint32_t enabled_categories() const {
    return mask_.load(std::memory_order_relaxed);
  }
  void set_enabled_categories(std::uint32_t mask) {
    mask_.store(mask, std::memory_order_relaxed);
  }
  /// True if any of the given category bits is enabled. The one-load
  /// guard instrumented call sites use before building an event.
  bool enabled(std::uint32_t categories) const {
    return (mask_.load(std::memory_order_relaxed) & categories) != 0;
  }

  /// Records an event under category `Cat`. Compiled out entirely when
  /// the category is masked by ZS_JOURNAL_CATEGORIES; otherwise a
  /// runtime mask check plus a lock-free ring enqueue.
  template <std::uint32_t Cat>
  void emit(const JournalEvent& event) {
    if constexpr ((Cat & ZS_JOURNAL_CATEGORIES) == 0u) {
      (void)event;
    } else {
      emit_runtime(Cat, event);
    }
  }
  void emit_runtime(std::uint32_t category, const JournalEvent& event);

  /// Drains the ring: appends to the recent-events buffer and, if a
  /// writer is attached, streams to it. Safe to call from any thread
  /// (consumer side is mutex-guarded); returns events moved.
  std::size_t pump();

  /// The last `n` drained events, oldest first (pumps first so the
  /// tail is current).
  std::vector<JournalEvent> tail(std::size_t n);

  /// Attaches the output file; subsequent pump()s stream to it. With
  /// autopump on, emit() pumps whenever the ring passes half full —
  /// only safe when producers may take the consumer mutex (the
  /// single-threaded CLI tools; not arbitrary hot loops).
  void attach_writer(std::unique_ptr<JournalWriter> writer);
  /// Final pump + flush; detaches the writer.
  void close_writer();
  void set_autopump(bool on) { autopump_.store(on, std::memory_order_relaxed); }

  std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }
  /// Events currently buffered (approximate under concurrent writers).
  std::size_t approx_size() const;

  /// Binds registry counters (zs_journal_events_*_total) so journal
  /// health shows up in /metrics. global() binds automatically.
  void bind_counters(Counter emitted, Counter dropped);

  /// Drops buffered and recent events and zeroes the counts. The
  /// writer, mask, and autopump setting are kept.
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    JournalEvent event;
  };

  bool try_enqueue(const JournalEvent& event);
  bool try_dequeue(JournalEvent& out);  // callers hold consumer_mutex_

  std::atomic<std::uint32_t> mask_{0};
  std::atomic<bool> autopump_{false};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Counter m_emitted_;
  Counter m_dropped_;

  std::size_t capacity_ = 0;  // power of two
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};

  mutable std::mutex consumer_mutex_;
  std::deque<JournalEvent> recent_;
  std::unique_ptr<JournalWriter> writer_;
};

}  // namespace zombiescope::obs

file(REMOVE_RECURSE
  "CMakeFiles/zsdetect.dir/zsdetect.cpp.o"
  "CMakeFiles/zsdetect.dir/zsdetect.cpp.o.d"
  "zsdetect"
  "zsdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zsdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libzs_rost.a"
)

#include "zombie/longlived.hpp"

#include <algorithm>

#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "zombie/detector_metrics.hpp"

namespace zombiescope::zombie {

namespace {

using internal::PassTimer;
using internal::detector_metrics;
using netbase::Duration;
using netbase::Prefix;
using netbase::TimePoint;

struct LastUpdate {
  bool announced = false;
  bgp::AsPath path;
  TimePoint at = 0;
};

}  // namespace

LongLivedResult LongLivedZombieDetector::detect(
    std::span<const mrt::MrtRecord> records, std::span<const beacon::BeaconEvent> events,
    Duration threshold) const {
  obs::ScopedSpan span("zombie.detect.longlived");
  PassTimer timer;
  internal::DetectorMetrics& metrics = detector_metrics();
  metrics.records_scanned.inc(records.size());
  LongLivedResult result;

  // Studied events per prefix, sorted by announce time. Beacon prefixes
  // recycle no faster than daily, and threshold windows are a few
  // hours, so windows of the same prefix never overlap.
  std::map<Prefix, std::vector<const beacon::BeaconEvent*>> by_prefix;
  std::vector<const beacon::BeaconEvent*> studied;
  for (const auto& event : events) {
    if (config_.skip_superseded && event.superseded) continue;
    by_prefix[event.prefix].push_back(&event);
    studied.push_back(&event);
  }
  for (auto& [prefix, list] : by_prefix) {
    (void)prefix;
    std::sort(list.begin(), list.end(), [](const auto* a, const auto* b) {
      return a->announce_time < b->announce_time;
    });
  }
  result.total_announcements = static_cast<int>(studied.size());

  // Find the event whose check window [announce, withdraw+threshold]
  // contains t.
  auto active_event = [&](const Prefix& prefix, TimePoint t) -> const beacon::BeaconEvent* {
    auto it = by_prefix.find(prefix);
    if (it == by_prefix.end()) return nullptr;
    const auto& list = it->second;
    auto jt = std::upper_bound(list.begin(), list.end(), t,
                               [](TimePoint value, const beacon::BeaconEvent* e) {
                                 return value < e->announce_time;
                               });
    if (jt == list.begin()) return nullptr;
    const beacon::BeaconEvent* event = *(jt - 1);
    return t <= event->withdraw_time + threshold ? event : nullptr;
  };

  // Fold the stream.
  std::map<const beacon::BeaconEvent*, std::map<PeerKey, LastUpdate>> table;
  for (const auto& record : records) {
    if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
      const PeerKey peer{msg->peer_asn, msg->peer_address};
      if (peer_excluded(peer)) continue;
      const TimePoint t = msg->timestamp;
      for (const auto& prefix : msg->update.withdrawn) {
        const auto* event = active_event(prefix, t);
        if (event == nullptr) continue;
        LastUpdate& last = table[event][peer];
        last.announced = false;
        last.at = t;
      }
      for (const auto& prefix : msg->update.announced) {
        const auto* event = active_event(prefix, t);
        if (event == nullptr) continue;
        LastUpdate& last = table[event][peer];
        last.announced = true;
        last.path = msg->update.attributes.as_path;
        last.at = t;
      }
    } else if (const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
      if (state->old_state == bgp::SessionState::kEstablished &&
          state->new_state != bgp::SessionState::kEstablished) {
        const PeerKey peer{state->peer_asn, state->peer_address};
        const TimePoint t = state->timestamp;
        // Clear the peer from every window that is active at t.
        for (auto& [event, peers] : table) {
          if (t < event->announce_time || t > event->withdraw_time + threshold) continue;
          auto it = peers.find(peer);
          if (it != peers.end() && it->second.announced) {
            it->second.announced = false;
            it->second.at = t;
          }
        }
      }
    }
  }

  // Assemble outbreaks.
  for (const beacon::BeaconEvent* event : studied) {
    auto it = table.find(event);
    if (it == table.end()) continue;
    metrics.candidates.inc(it->second.size());
    ZombieOutbreak outbreak;
    outbreak.prefix = event->prefix;
    outbreak.interval_start = event->announce_time;
    outbreak.withdraw_time = event->withdraw_time;
    for (const auto& [peer, last] : it->second) {
      if (!last.announced) continue;
      ZombieRoute route;
      route.peer = peer;
      route.prefix = event->prefix;
      route.interval_start = event->announce_time;
      route.withdraw_time = event->withdraw_time;
      route.path = last.path;
      obs::Journal& journal = obs::Journal::global();
      if (journal.enabled(obs::kCatDetector)) {
        obs::JournalEvent ev;
        ev.time = event->withdraw_time + threshold;
        ev.has_prefix = true;
        ev.prefix = event->prefix;
        ev.has_peer = true;
        ev.peer_asn = peer.asn;
        ev.peer_address = peer.address;
        ev.a = threshold;
        ev.b = event->withdraw_time;
        ev.c = event->announce_time;
        ev.type = obs::JournalEventType::kThresholdCrossed;
        journal.emit<obs::kCatDetector>(ev);
        ev.type = obs::JournalEventType::kZombieDeclared;
        journal.emit<obs::kCatDetector>(ev);
      }
      outbreak.routes.push_back(std::move(route));
    }
    if (!outbreak.routes.empty()) result.outbreaks.push_back(std::move(outbreak));
  }
  metrics.outbreaks.inc(result.outbreaks.size());
  metrics.routes.inc(static_cast<std::uint64_t>(result.route_count()));
  return result;
}

std::vector<SweepPoint> LongLivedZombieDetector::sweep(
    std::span<const mrt::MrtRecord> records, std::span<const beacon::BeaconEvent> events,
    std::span<const Duration> thresholds) const {
  std::vector<SweepPoint> out;
  for (Duration threshold : thresholds) {
    const LongLivedResult result = detect(records, events, threshold);
    SweepPoint point;
    point.threshold = threshold;
    point.outbreaks = static_cast<int>(result.outbreaks.size());
    point.routes = result.route_count();
    point.announcement_fraction = result.outbreak_fraction();
    out.push_back(point);
  }
  return out;
}

std::vector<OutbreakLifespan> LifespanAnalyzer::analyze(
    std::span<const mrt::MrtRecord> rib_dumps, std::span<const beacon::BeaconEvent> events,
    Duration dump_interval) const {
  obs::ScopedSpan span("zombie.analyze.lifespans");
  PassTimer timer;
  internal::DetectorMetrics& metrics = detector_metrics();
  metrics.records_scanned.inc(rib_dumps.size());
  // Final withdrawal time per studied prefix.
  std::map<Prefix, TimePoint> final_withdrawal;
  for (const auto& event : events) {
    if (config_.skip_superseded && event.superseded) continue;
    auto [it, inserted] = final_withdrawal.try_emplace(event.prefix, event.withdraw_time);
    if (!inserted) it->second = std::max(it->second, event.withdraw_time);
  }

  // Sightings per (prefix, peer): sorted dump timestamps + path.
  struct Sighting {
    TimePoint at;
    bgp::AsPath path;
  };
  std::map<Prefix, std::map<PeerKey, std::vector<Sighting>>> sightings;

  mrt::PeerIndexTable current_index;
  for (const auto& record : rib_dumps) {
    if (const auto* index = std::get_if<mrt::PeerIndexTable>(&record)) {
      current_index = *index;
      continue;
    }
    const auto* rib = std::get_if<mrt::RibEntryRecord>(&record);
    if (rib == nullptr) continue;
    auto fw = final_withdrawal.find(rib->prefix);
    if (fw == final_withdrawal.end()) continue;
    if (rib->timestamp <= fw->second) continue;  // before the final withdrawal
    for (const auto& entry : rib->entries) {
      if (entry.peer_index >= current_index.peers.size()) continue;
      const auto& dir = current_index.peers[entry.peer_index];
      const PeerKey peer{dir.asn, dir.address};
      if (peer_excluded(peer)) continue;
      sightings[rib->prefix][peer].push_back({rib->timestamp, entry.attributes.as_path});
    }
  }

  std::vector<OutbreakLifespan> out;
  for (auto& [prefix, peers] : sightings) {
    OutbreakLifespan lifespan;
    lifespan.prefix = prefix;
    lifespan.withdraw_time = final_withdrawal.at(prefix);

    // Per-peer presence intervals: consecutive dumps (gap <= dump
    // interval) merge into one interval.
    for (auto& [peer, list] : peers) {
      std::sort(list.begin(), list.end(),
                [](const Sighting& a, const Sighting& b) { return a.at < b.at; });
      PresenceInterval interval;
      interval.peer = peer;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i == 0 || list[i].at - list[i - 1].at > dump_interval) {
          if (i != 0) lifespan.intervals.push_back(interval);
          interval.first_seen = list[i].at;
        }
        interval.last_seen = list[i].at;
        interval.path = list[i].path;
      }
      lifespan.intervals.push_back(interval);
      lifespan.last_seen = std::max(lifespan.last_seen, interval.last_seen);
    }

    // Resurrections at the prefix level: the union of presence across
    // peers goes dark for more than one dump period, then a peer sees
    // the route again (with no beacon announcement possible — all
    // sightings are past the final withdrawal).
    // Coverage starts at the withdrawal: a first appearance more than
    // one dump period later is already a resurrection (the Fig. 4
    // prefix was withdrawn on 06-21 and first re-appeared on 06-29).
    TimePoint covered_until = lifespan.withdraw_time;
    std::vector<const PresenceInterval*> sorted;
    for (const auto& interval : lifespan.intervals) sorted.push_back(&interval);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return a->first_seen < b->first_seen;
    });
    obs::Journal& journal = obs::Journal::global();
    for (const auto* interval : sorted) {
      if (interval->first_seen > covered_until + dump_interval) {
        OutbreakLifespan::Resurrection res;
        res.vanished_at = covered_until;
        res.reappeared_at = interval->first_seen;
        res.peer = interval->peer;
        if (journal.enabled(obs::kCatLifespan)) {
          obs::JournalEvent ev;
          ev.type = obs::JournalEventType::kResurrectionDetected;
          ev.time = res.reappeared_at;
          ev.has_prefix = true;
          ev.prefix = prefix;
          ev.has_peer = true;
          ev.peer_asn = res.peer.asn;
          ev.peer_address = res.peer.address;
          ev.a = res.vanished_at;
          ev.b = res.reappeared_at;
          journal.emit<obs::kCatLifespan>(ev);
        }
        lifespan.resurrections.push_back(res);
      }
      covered_until = std::max(covered_until, interval->last_seen);
    }
    if (journal.enabled(obs::kCatLifespan)) {
      obs::JournalEvent ev;
      ev.type = obs::JournalEventType::kLifespanClosed;
      ev.time = lifespan.last_seen;
      ev.has_prefix = true;
      ev.prefix = prefix;
      ev.a = lifespan.withdraw_time;
      ev.b = lifespan.last_seen;
      journal.emit<obs::kCatLifespan>(ev);
    }

    out.push_back(std::move(lifespan));
  }
  metrics.lifespans.inc(out.size());
  return out;
}

}  // namespace zombiescope::zombie

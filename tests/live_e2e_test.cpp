// End-to-end equivalence for the zslive service: replaying the
// longlived2024 scenario's update archives through the sharded live
// pipeline must produce exactly the zombie set the batch detector
// (zsdetect's LongLivedZombieDetector) finds over the same archives —
// independent of shard count and of replay pacing. This is the
// contract that makes the live daemon trustworthy: an operator watching
// /live/events sees the same outbreaks a forensic batch run would
// reconstruct later.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "live/feed.hpp"
#include "live/service.hpp"
#include "scenarios/longlived2024.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"
#include "zombie/state.hpp"

namespace zombiescope::live {
namespace {

using netbase::Prefix;
using netbase::TimePoint;
using zombie::PeerKey;

using PairSet = std::vector<std::pair<Prefix, PeerKey>>;

/// The batch reference: every (prefix, peer) the LongLivedZombieDetector
/// reports stuck at withdrawal + threshold, deduplicated across
/// intervals — the same key space LiveService::emerged_pairs() uses.
PairSet batch_pairs(const scenarios::LongLived2024Output& out,
                    netbase::Duration threshold) {
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(out.updates, out.events, threshold);
  std::set<std::pair<Prefix, PeerKey>> merged;
  for (const auto& outbreak : result.outbreaks) {
    for (const auto& route : outbreak.routes) {
      merged.insert({outbreak.prefix, route.peer});
    }
  }
  return {merged.begin(), merged.end()};
}

PairSet live_pairs(const scenarios::LongLived2024Output& out,
                   netbase::Duration threshold, std::size_t shards,
                   double speed) {
  LiveConfig config;
  config.shards = shards;
  config.block_on_full = true;  // equivalence demands zero drops
  config.detector.threshold = threshold;
  LiveService service(config);
  service.start();
  for (const auto& event : out.events) service.expect(event);
  ReplayFeedSource feed(out.updates, speed);
  const auto stats = feed.run(service);
  EXPECT_EQ(stats.records, out.updates.size());
  service.finalize();
  EXPECT_EQ(service.drops(), 0u);
  EXPECT_EQ(service.processed(), service.submitted());
  auto pairs = service.emerged_pairs();
  service.stop();
  return pairs;
}

class LiveE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenarios::LongLived2024Spec spec;
    output_ = new scenarios::LongLived2024Output(
        scenarios::run_longlived2024(spec));
  }
  static void TearDownTestSuite() {
    delete output_;
    output_ = nullptr;
  }

  static scenarios::LongLived2024Output* output_;
};

scenarios::LongLived2024Output* LiveE2E::output_ = nullptr;

TEST_F(LiveE2E, ReplayMatchesBatchDetectorExactly) {
  const netbase::Duration threshold = 90 * netbase::kMinute;
  const auto batch = batch_pairs(*output_, threshold);
  ASSERT_FALSE(batch.empty()) << "scenario produced no zombies to compare";
  const auto live = live_pairs(*output_, threshold, 4, /*speed=*/0.0);
  EXPECT_EQ(live, batch);
}

TEST_F(LiveE2E, ShardCountDoesNotChangeTheZombieSet) {
  const netbase::Duration threshold = 90 * netbase::kMinute;
  const auto one = live_pairs(*output_, threshold, 1, /*speed=*/0.0);
  const auto eight = live_pairs(*output_, threshold, 8, /*speed=*/0.0);
  EXPECT_EQ(one, eight);
  ASSERT_FALSE(one.empty());
}

TEST_F(LiveE2E, PacedReplayMatchesBatchOnTruncatedWindow) {
  // A paced replay of the full eleven-month archive would take hours;
  // pacing is a wall-clock behavior, so one beacon day exercises it
  // fully. Truncate records and events to the first day, pace the
  // replay so it takes a few wall seconds, and demand the same exact
  // set the batch detector computes over the truncated inputs.
  const netbase::Duration threshold = 90 * netbase::kMinute;
  TimePoint first = 0;
  for (const auto& event : output_->events) {
    if (first == 0 || event.announce_time < first) first = event.announce_time;
  }
  ASSERT_NE(first, 0);
  const TimePoint cutoff = first + netbase::kDay;

  scenarios::LongLived2024Output day;
  for (const auto& event : output_->events) {
    // Keep only events whose whole check window fits inside the day.
    if (event.withdraw_time + threshold < cutoff) day.events.push_back(event);
  }
  for (const auto& record : output_->updates) {
    if (mrt::record_timestamp(record) < cutoff) day.updates.push_back(record);
  }
  ASSERT_FALSE(day.events.empty());
  ASSERT_FALSE(day.updates.empty());

  const auto batch = batch_pairs(day, threshold);
  // One simulated day in ~3 wall seconds.
  const double speed = static_cast<double>(netbase::kDay) / 3.0;
  const auto paced = live_pairs(day, threshold, 4, speed);
  const auto flat_out = live_pairs(day, threshold, 4, /*speed=*/0.0);
  EXPECT_EQ(paced, flat_out);
  EXPECT_EQ(paced, batch);
}

TEST_F(LiveE2E, NoisyPeerSetMatchesBatchFilterExactly) {
  // The streaming classifier (PeerQAccumulator + PeerTableBuilder) must
  // converge, after finalize(), to the *exact* peer set the batch
  // statistics pass in zsdetect --filter-noisy computes: dedicated
  // detector run -> NoisyPeerFilter over (routes, tracker.peers(),
  // pass.total_announcements). Same floor, same median multiplier, same
  // universe, same denominator.
  const netbase::Duration threshold = 90 * netbase::kMinute;

  // Batch reference, mirroring the longlived branch of zsdetect's
  // statistics pass verbatim.
  zombie::StateTracker tracker;
  for (const auto& record : output_->updates) tracker.apply(record);
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto pass = detector.detect(output_->updates, output_->events, threshold);
  std::vector<zombie::ZombieRoute> routes;
  for (const auto& outbreak : pass.outbreaks)
    for (const auto& route : outbreak.routes) routes.push_back(route);
  const zombie::NoisyPeerFilter filter;
  const std::set<PeerKey> batch =
      filter.noisy_peer_keys(routes, tracker.peers(), pass.total_announcements);

  // Live side: replay flat-out, finalize (which runs the converge pass
  // that drops the streaming hysteresis), read the published table.
  LiveConfig config;
  config.shards = 4;
  config.block_on_full = true;
  config.detector.threshold = threshold;
  LiveService service(config);
  service.start();
  for (const auto& event : output_->events) service.expect(event);
  ReplayFeedSource feed(output_->updates, /*speed=*/0.0);
  const auto stats = feed.run(service);
  EXPECT_EQ(stats.records, output_->updates.size());
  service.finalize();
  EXPECT_EQ(service.drops(), 0u);

  const auto table = service.peers();
  ASSERT_NE(table, nullptr);
  // The denominator must line up exactly: closed beacon cycles ==
  // studied announcements of the batch pass.
  EXPECT_EQ(table->total_cycles,
            static_cast<std::uint64_t>(pass.total_announcements));
  // Same peer universe as StateTracker.
  EXPECT_EQ(table->rows.size(), tracker.peers().size());
  // And the headline claim: identical noisy sets.
  EXPECT_EQ(table->noisy_set(), batch);
  service.stop();
}

TEST_F(LiveE2E, PeerTableCountsMatchBatchStats) {
  // Beyond set equality, per-peer numerators must agree with the batch
  // PeerStats: stuck == zombie_routes for every tracked peer.
  const netbase::Duration threshold = 90 * netbase::kMinute;

  zombie::StateTracker tracker;
  for (const auto& record : output_->updates) tracker.apply(record);
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto pass = detector.detect(output_->updates, output_->events, threshold);
  std::vector<zombie::ZombieRoute> routes;
  for (const auto& outbreak : pass.outbreaks)
    for (const auto& route : outbreak.routes) routes.push_back(route);
  const zombie::NoisyPeerFilter filter;
  const auto stats =
      filter.stats(routes, tracker.peers(), pass.total_announcements);

  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  config.detector.threshold = threshold;
  LiveService service(config);
  service.start();
  for (const auto& event : output_->events) service.expect(event);
  ReplayFeedSource feed(output_->updates, /*speed=*/0.0);
  feed.run(service);
  service.finalize();
  EXPECT_EQ(service.drops(), 0u);

  const auto table = service.peers();
  ASSERT_NE(table, nullptr);
  for (const auto& ps : stats) {
    const PeerRow* row = table->find(ps.peer);
    ASSERT_NE(row, nullptr) << zombie::to_string(ps.peer);
    EXPECT_EQ(row->stuck, static_cast<std::uint64_t>(ps.zombie_routes))
        << zombie::to_string(ps.peer);
  }
  service.stop();
}

}  // namespace
}  // namespace zombiescope::live

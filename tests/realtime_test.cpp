// Tests for the streaming (real-time) zombie detector.

#include <gtest/gtest.h>

#include "zombie/realtime.hpp"

namespace zombiescope::zombie {
namespace {

using beacon::BeaconEvent;
using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::utc;

const Prefix kBeacon = Prefix::parse("2a0d:3dc1:1200::/48");

PeerKey peer_a() { return {64500, IpAddress::parse("192.0.2.1")}; }
PeerKey peer_b() { return {64501, IpAddress::parse("192.0.2.2")}; }

mrt::Bgp4mpMessage announce(netbase::TimePoint t, const PeerKey& peer, const Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = IpAddress::parse("193.0.4.28");
  m.update.announced.push_back(prefix);
  m.update.attributes.as_path = bgp::AsPath{peer.asn, 25091, 8298, 210312};
  m.update.attributes.next_hop = peer.address;
  return m;
}

mrt::Bgp4mpMessage withdraw(netbase::TimePoint t, const PeerKey& peer, const Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = IpAddress::parse("193.0.4.28");
  m.update.withdrawn.push_back(prefix);
  return m;
}

BeaconEvent event_at(netbase::TimePoint t) {
  return {kBeacon, t, t + 15 * kMinute, false};
}

struct Harness {
  RealTimeZombieDetector detector;
  std::vector<ZombieAlert> alerts;
  std::vector<ZombieResolution> resolutions;

  explicit Harness(RealTimeConfig config = {}) : detector(std::move(config)) {
    detector.on_alert([this](const ZombieAlert& a) { alerts.push_back(a); });
    detector.on_resolution([this](const ZombieResolution& r) { resolutions.push_back(r); });
  }
};

TEST(RealTime, AlertsAtDeadlineForStuckRoute) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.ingest(announce(t0 + 12, peer_b(), kBeacon));
  h.detector.ingest(withdraw(t0 + 16 * kMinute, peer_b(), kBeacon));
  EXPECT_TRUE(h.alerts.empty());

  h.detector.advance(t0 + 15 * kMinute + 89 * kMinute);
  EXPECT_TRUE(h.alerts.empty()) << "fired before the threshold";
  h.detector.advance(t0 + 15 * kMinute + 90 * kMinute);
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].peer, peer_a());
  EXPECT_EQ(h.alerts[0].prefix, kBeacon);
  EXPECT_EQ(h.alerts[0].withdrawn_at, t0 + 15 * kMinute);
  EXPECT_EQ(h.detector.active_zombies().size(), 1u);
}

TEST(RealTime, ResolutionReportsStuckDuration) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const auto w = t0 + 15 * kMinute;
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.advance(w + 90 * kMinute);
  ASSERT_EQ(h.alerts.size(), 1u);
  // The stuck route finally clears 4 hours after the withdrawal.
  h.detector.ingest(withdraw(w + 4 * kHour, peer_a(), kBeacon));
  ASSERT_EQ(h.resolutions.size(), 1u);
  EXPECT_EQ(h.resolutions[0].stuck_for(), 4 * kHour);
  EXPECT_TRUE(h.detector.active_zombies().empty());
}

TEST(RealTime, SessionFlushResolves) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.advance(t0 + 15 * kMinute + 90 * kMinute);
  ASSERT_EQ(h.alerts.size(), 1u);

  mrt::Bgp4mpStateChange drop;
  drop.timestamp = t0 + 3 * kHour;
  drop.peer_asn = peer_a().asn;
  drop.peer_address = peer_a().address;
  drop.old_state = bgp::SessionState::kEstablished;
  drop.new_state = bgp::SessionState::kIdle;
  h.detector.ingest(drop);
  EXPECT_EQ(h.resolutions.size(), 1u);
}

TEST(RealTime, LateAnnouncementAfterDeadlineAlertsImmediately) {
  // The resurrection case: the route was withdrawn in time, but a new
  // announcement arrives long after the deadline.
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const auto w = t0 + 15 * kMinute;
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.ingest(withdraw(w + 5 * kMinute, peer_a(), kBeacon));
  h.detector.advance(w + 90 * kMinute);
  EXPECT_TRUE(h.alerts.empty());
  // 170 minutes after the withdrawal: a new announcement (paper §5.1).
  h.detector.ingest(announce(w + 170 * kMinute, peer_a(), kBeacon));
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts[0].raised_at, w + 170 * kMinute);
}

TEST(RealTime, RecycledPrefixSupersedesWatch) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  // The prefix recycles a day later before the stuck route cleared.
  h.detector.expect(event_at(t0 + 24 * kHour));
  h.detector.advance(t0 + 24 * kHour);
  // The old watch is gone: no alert for the old interval.
  EXPECT_TRUE(h.alerts.empty());
}

TEST(RealTime, ExcludedPeersNeverAlert) {
  RealTimeConfig config;
  config.excluded_peer_asns.insert(peer_a().asn);
  Harness h(config);
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.advance(t0 + 15 * kMinute + 2 * kHour);
  EXPECT_TRUE(h.alerts.empty());
}

TEST(RealTime, SupersededEventsIgnored) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  BeaconEvent event = event_at(t0);
  event.superseded = true;
  h.detector.expect(event);
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.advance(t0 + 6 * kHour);
  EXPECT_TRUE(h.alerts.empty());
}

TEST(RealTime, MessagesBeforeAnnounceTimeIgnored) {
  // Stale messages from a previous life of the prefix must not arm the
  // watch.
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 - kHour, peer_a(), kBeacon));
  h.detector.advance(t0 + 15 * kMinute + 2 * kHour);
  EXPECT_TRUE(h.alerts.empty());
}

TEST(RealTime, CountersTrackTotals) {
  Harness h;
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  h.detector.expect(event_at(t0));
  h.detector.ingest(announce(t0 + 10, peer_a(), kBeacon));
  h.detector.ingest(announce(t0 + 11, peer_b(), kBeacon));
  h.detector.advance(t0 + 15 * kMinute + 90 * kMinute);
  EXPECT_EQ(h.detector.alerts_raised(), 2);
  h.detector.ingest(withdraw(t0 + 5 * kHour, peer_a(), kBeacon));
  EXPECT_EQ(h.detector.resolutions(), 1);
}

}  // namespace
}  // namespace zombiescope::zombie

#include "simnet/router.hpp"

#include <stdexcept>

namespace zombiescope::simnet {

std::uint32_t local_pref_for(topology::Relationship rel) {
  switch (rel) {
    case topology::Relationship::kCustomer:
      return 300;
    case topology::Relationship::kPeer:
      return 200;
    case topology::Relationship::kProvider:
      return 100;
  }
  return 0;
}

bool Router::may_export(topology::Relationship source, topology::Relationship to) {
  // Valley-free: routes from customers (and self) go everywhere;
  // routes from peers/providers go only to customers.
  if (source == topology::Relationship::kCustomer) return true;
  return to == topology::Relationship::kCustomer;
}

topology::Relationship Router::source_relationship(bgp::Asn neighbor) const {
  if (neighbor == kSelf) return topology::Relationship::kCustomer;  // self exports everywhere
  auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end())
    throw std::invalid_argument("AS" + std::to_string(asn_) + ": unknown neighbor " +
                                std::to_string(neighbor));
  return it->second;
}

const RouteEntry* Router::entry_for(const PrefixState& state, bgp::Asn neighbor) const {
  if (neighbor == kSelf)
    return state.originated.has_value() ? &*state.originated : nullptr;
  auto it = state.adj_in.find(neighbor);
  return it == state.adj_in.end() ? nullptr : &it->second;
}

bool Router::better(const PrefixState& state, bgp::Asn a, bgp::Asn b) const {
  // Returns true if candidate a is preferred over candidate b.
  const RouteEntry* ea = entry_for(state, a);
  const RouteEntry* eb = entry_for(state, b);
  if (eb == nullptr) return ea != nullptr;
  if (ea == nullptr) return false;
  const std::uint32_t pa = local_pref_for(source_relationship(a));
  const std::uint32_t pb = local_pref_for(source_relationship(b));
  if (pa != pb) return pa > pb;
  const int la = ea->path.length();
  const int lb = eb->path.length();
  if (la != lb) return la < lb;
  return a < b;  // deterministic tiebreak: lowest neighbor ASN (kSelf wins)
}

// Runs the decision process after the caller mutated `state`.
// `old_best` is the best-route value the caller captured *before* the
// mutation; a change is reported whenever the new best differs from it.
std::optional<RibChange> Router::decide(const netbase::Prefix& prefix, PrefixState& state,
                                        const std::optional<RouteEntry>& old_best) {
  std::optional<bgp::Asn> winner;
  if (state.originated.has_value()) winner = kSelf;
  for (const auto& [neighbor, entry] : state.adj_in) {
    (void)entry;
    if (!winner.has_value() || better(state, neighbor, *winner)) winner = neighbor;
  }
  state.best_neighbor = winner;

  const RouteEntry* new_entry = winner.has_value() ? entry_for(state, *winner) : nullptr;
  const bool had = old_best.has_value();
  const bool has = new_entry != nullptr;
  if (!had && !has) return std::nullopt;
  if (had && has && *old_best == *new_entry) return std::nullopt;

  RibChange change;
  change.prefix = prefix;
  change.old_best = old_best;
  if (has) {
    change.new_best = *new_entry;
    change.new_best_source = source_relationship(*winner);
    change.new_best_neighbor = *winner;
  }
  return change;
}

std::optional<RouteEntry> Router::capture_best(const PrefixState& state) const {
  if (!state.best_neighbor.has_value()) return std::nullopt;
  const RouteEntry* entry = entry_for(state, *state.best_neighbor);
  return entry == nullptr ? std::nullopt : std::make_optional(*entry);
}

std::optional<RibChange> Router::originate(const netbase::Prefix& prefix,
                                           bgp::PathAttributes attributes,
                                           netbase::TimePoint now) {
  PrefixState& state = prefixes_[prefix];
  const auto old_best = capture_best(state);
  RouteEntry entry;
  entry.path = bgp::AsPath{};  // empty at origin; prepended on export
  entry.attributes = std::move(attributes);
  entry.learned = now;
  state.originated = std::move(entry);
  return decide(prefix, state, old_best);
}

std::optional<RibChange> Router::withdraw_origin(const netbase::Prefix& prefix) {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || !it->second.originated.has_value()) return std::nullopt;
  const auto old_best = capture_best(it->second);
  it->second.originated.reset();
  return decide(prefix, it->second, old_best);
}

std::optional<RibChange> Router::learn(bgp::Asn neighbor, const netbase::Prefix& prefix,
                                       RouteEntry route, const ImportContext& ctx,
                                       ImportVerdict* verdict) {
  if (verdict != nullptr) *verdict = ImportVerdict::kAccepted;
  // Import policy 1: AS-path loop rejection.
  if (route.path.contains(asn_)) {
    if (verdict != nullptr) *verdict = ImportVerdict::kLoopRejected;
    return std::nullopt;
  }
  // Import policy 2: ROV at import (both import-only and compliant).
  if (rov_policy_ != rpki::RovPolicy::kNone && ctx.roas != nullptr) {
    const auto origin = route.path.origin_asn();
    if (origin.has_value() &&
        ctx.roas->validate(prefix, *origin, ctx.now) == rpki::RovState::kInvalid) {
      if (verdict != nullptr) *verdict = ImportVerdict::kRovRejected;
      return std::nullopt;
    }
  }
  PrefixState& state = prefixes_[prefix];
  const auto old_best = capture_best(state);
  state.adj_in[neighbor] = std::move(route);
  return decide(prefix, state, old_best);
}

std::optional<RibChange> Router::unlearn(bgp::Asn neighbor, const netbase::Prefix& prefix) {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return std::nullopt;
  const auto old_best = capture_best(it->second);
  if (it->second.adj_in.erase(neighbor) == 0) return std::nullopt;
  return decide(prefix, it->second, old_best);
}

std::vector<RibChange> Router::flush_neighbor(bgp::Asn neighbor) {
  std::vector<RibChange> changes;
  for (auto& [prefix, state] : prefixes_) {
    const auto old_best = capture_best(state);
    if (state.adj_in.erase(neighbor) == 0) continue;
    if (auto change = decide(prefix, state, old_best); change.has_value())
      changes.push_back(std::move(*change));
  }
  return changes;
}

std::optional<RibChange> Router::drop_learned_routes(const netbase::Prefix& prefix) {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || it->second.adj_in.empty()) return std::nullopt;
  const auto old_best = capture_best(it->second);
  it->second.adj_in.clear();
  return decide(prefix, it->second, old_best);
}

std::vector<RibChange> Router::revalidate(const ImportContext& ctx) {
  std::vector<RibChange> changes;
  if (rov_policy_ != rpki::RovPolicy::kCompliant || ctx.roas == nullptr) return changes;
  for (auto& [prefix, state] : prefixes_) {
    const auto old_best = capture_best(state);
    bool removed = false;
    for (auto it = state.adj_in.begin(); it != state.adj_in.end();) {
      const auto origin = it->second.path.origin_asn();
      if (origin.has_value() &&
          ctx.roas->validate(prefix, *origin, ctx.now) == rpki::RovState::kInvalid) {
        it = state.adj_in.erase(it);
        removed = true;
      } else {
        ++it;
      }
    }
    if (removed) {
      if (auto change = decide(prefix, state, old_best); change.has_value())
        changes.push_back(std::move(*change));
    }
  }
  return changes;
}

const RouteEntry* Router::best(const netbase::Prefix& prefix) const {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || !it->second.best_neighbor.has_value()) return nullptr;
  return entry_for(it->second, *it->second.best_neighbor);
}

std::optional<topology::Relationship> Router::best_source(const netbase::Prefix& prefix) const {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || !it->second.best_neighbor.has_value()) return std::nullopt;
  return source_relationship(*it->second.best_neighbor);
}

std::optional<bgp::Asn> Router::best_neighbor(const netbase::Prefix& prefix) const {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end() || !it->second.best_neighbor.has_value()) return std::nullopt;
  if (entry_for(it->second, *it->second.best_neighbor) == nullptr) return std::nullopt;
  return it->second.best_neighbor;
}

std::vector<std::pair<netbase::Prefix, bgp::Asn>> Router::fib_entries() const {
  std::vector<std::pair<netbase::Prefix, bgp::Asn>> out;
  for (const auto& [prefix, state] : prefixes_) {
    if (!state.best_neighbor.has_value()) continue;
    if (entry_for(state, *state.best_neighbor) == nullptr) continue;
    out.emplace_back(prefix, *state.best_neighbor);
  }
  return out;
}

std::vector<std::pair<netbase::Prefix, RouteEntry>> Router::full_table() const {
  std::vector<std::pair<netbase::Prefix, RouteEntry>> out;
  for (const auto& [prefix, state] : prefixes_) {
    if (!state.best_neighbor.has_value()) continue;
    const RouteEntry* entry = entry_for(state, *state.best_neighbor);
    if (entry != nullptr) out.emplace_back(prefix, *entry);
  }
  return out;
}

const RouteEntry* Router::adj_in(bgp::Asn neighbor, const netbase::Prefix& prefix) const {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return nullptr;
  auto jt = it->second.adj_in.find(neighbor);
  return jt == it->second.adj_in.end() ? nullptr : &jt->second;
}

bool Router::advertised_to(bgp::Asn neighbor, const netbase::Prefix& prefix) const {
  auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return false;
  auto jt = it->second.advertised.find(neighbor);
  return jt != it->second.advertised.end() && jt->second;
}

void Router::mark_advertised(bgp::Asn neighbor, const netbase::Prefix& prefix,
                             bool advertised) {
  prefixes_[prefix].advertised[neighbor] = advertised;
}

}  // namespace zombiescope::simnet

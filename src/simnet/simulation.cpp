#include "simnet/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/journal.hpp"

namespace zombiescope::simnet {

namespace {

std::pair<bgp::Asn, bgp::Asn> norm(bgp::Asn a, bgp::Asn b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Fault injections are the causes the journal exists to record: a
// zombie declared downstream traces back to one of these events.
void journal_fault(obs::JournalEventType type, netbase::TimePoint at, bgp::Asn from,
                   bgp::Asn to, const netbase::Prefix* prefix = nullptr) {
  obs::Journal& journal = obs::Journal::global();
  if (!journal.enabled(obs::kCatFault)) return;
  obs::JournalEvent ev;
  ev.type = type;
  ev.time = at;
  if (prefix != nullptr) {
    ev.has_prefix = true;
    ev.prefix = *prefix;
  }
  ev.a = from;
  ev.b = to;
  journal.emit<obs::kCatFault>(ev);
}

// Causal-tracing hook: one HopRecord per link traversal outcome.
// Compiles to nothing when ZS_CAUSAL_ENABLED=0, and costs one branch
// (ctx.sampled()) per hop of an unsampled wave otherwise.
void record_hop(const obs::TraceContext& ctx, const netbase::Prefix& prefix,
                bgp::Asn from, bgp::Asn to, netbase::TimePoint at, obs::TraceKind kind,
                obs::HopDecision decision) {
  if constexpr (obs::kCausalCompiledIn) {
    if (!ctx.sampled()) return;
    obs::HopRecord record;
    record.trace_id = ctx.trace_id;
    record.prefix = prefix;
    record.from_asn = from;
    record.to_asn = to;
    record.time = at;
    record.hop = ctx.hop;
    record.kind = kind;
    record.decision = decision;
    obs::causal_record(record);
  } else {
    (void)ctx, (void)prefix, (void)from, (void)to, (void)at, (void)kind, (void)decision;
  }
}

}  // namespace

Simulation::Simulation(const topology::Topology& topo, const SimConfig& config,
                       netbase::Rng rng)
    : topo_(topo),
      config_(config),
      rng_(std::move(rng)),
      m_events_(obs::Registry::global().counter("zs_simnet_events_processed_total")),
      m_delivered_(obs::Registry::global().counter("zs_simnet_messages_delivered_total")),
      m_suppressed_(obs::Registry::global().counter("zs_simnet_messages_suppressed_total")),
      m_stalled_(obs::Registry::global().counter("zs_simnet_messages_stalled_total")),
      m_rib_changes_(obs::Registry::global().counter("zs_simnet_rib_changes_total")),
      m_queue_depth_(obs::Registry::global().gauge("zs_simnet_event_queue_depth")) {
  for (bgp::Asn asn : topo.all_asns()) {
    std::map<bgp::Asn, topology::Relationship> neighbors;
    for (const auto& [neighbor, rel] : topo.neighbors(asn)) neighbors[neighbor] = rel;
    routers_.emplace(asn, Router(asn, std::move(neighbors), rpki::RovPolicy::kNone));
  }
  // Draw one symmetric delay per link.
  for (bgp::Asn asn : topo.all_asns()) {
    for (const auto& [neighbor, rel] : topo.neighbors(asn)) {
      (void)rel;
      const auto key = norm(asn, neighbor);
      if (!delays_.contains(key))
        delays_[key] = rng_.uniform_int(config_.min_link_delay, config_.max_link_delay);
    }
  }
}

void Simulation::set_roa_table(const rpki::RoaTable* roas) { roas_ = roas; }

void Simulation::set_rov_policy(bgp::Asn asn, rpki::RovPolicy policy) {
  Router& r = router(asn);
  r = Router(r.asn(), r.neighbors(), policy);
}

void Simulation::add_withdrawal_suppression(const WithdrawalSuppression& fault) {
  suppressions_.push_back(fault);
}

void Simulation::add_receive_stall(const ReceiveStall& fault) { stalls_.push_back(fault); }

void Simulation::schedule_session_reset(netbase::TimePoint at, bgp::Asn a, bgp::Asn b) {
  schedule_session_outage(at, at + config_.session_reset_downtime, a, b);
}

void Simulation::schedule_session_outage(netbase::TimePoint down_at,
                                         netbase::TimePoint up_at, bgp::Asn a, bgp::Asn b) {
  push(down_at, SessionDown{a, b});
  push(up_at, SessionUp{a, b});
}

void Simulation::announce(netbase::TimePoint at, bgp::Asn origin,
                          const netbase::Prefix& prefix, bgp::PathAttributes attributes) {
  push(at, OriginateAction{origin, prefix, std::move(attributes), true});
}

void Simulation::withdraw(netbase::TimePoint at, bgp::Asn origin,
                          const netbase::Prefix& prefix) {
  push(at, OriginateAction{origin, prefix, {}, false});
}

void Simulation::attach_monitor(bgp::Asn asn, MonitorSink* sink) {
  if (!topo_.has_as(asn))
    throw std::invalid_argument("monitor on unknown AS " + std::to_string(asn));
  monitors_.emplace(asn, sink);
}

void Simulation::schedule_callback(netbase::TimePoint at, std::function<void()> fn) {
  push(at, Callback{std::move(fn)});
}

bool Simulation::evict_prefix(bgp::Asn asn, const netbase::Prefix& prefix) {
  auto change = router(asn).drop_learned_routes(prefix);
  if (!change.has_value()) return false;
  journal_fault(obs::JournalEventType::kPrefixEvicted, now_, asn, 0, &prefix);
  apply_change(now_, asn, *change, begin_local_trace(now_, asn, *change));
  return true;
}

obs::TraceContext Simulation::begin_local_trace(netbase::TimePoint t, bgp::Asn asn,
                                                const RibChange& change) {
  const obs::TraceKind kind = change.is_withdrawal() ? obs::TraceKind::kWithdrawal
                                                     : obs::TraceKind::kAnnouncement;
  obs::TraceContext trace = obs::causal_begin_trace(kind);
  record_hop(trace, change.prefix, 0, asn, t, kind, obs::HopDecision::kOriginated);
  return trace;
}

const Router& Simulation::router(bgp::Asn asn) const {
  auto it = routers_.find(asn);
  if (it == routers_.end())
    throw std::invalid_argument("unknown router AS " + std::to_string(asn));
  return it->second;
}

Router& Simulation::router(bgp::Asn asn) {
  auto it = routers_.find(asn);
  if (it == routers_.end())
    throw std::invalid_argument("unknown router AS " + std::to_string(asn));
  return it->second;
}

netbase::Duration Simulation::link_delay(bgp::Asn a, bgp::Asn b) const {
  auto it = delays_.find(norm(a, b));
  if (it == delays_.end())
    throw std::invalid_argument("no link " + std::to_string(a) + "-" + std::to_string(b));
  return it->second;
}

void Simulation::push(netbase::TimePoint at, Payload payload) {
  queue_.push(Event{at, next_seq_++, std::move(payload)});
}

bool Simulation::link_down(bgp::Asn a, bgp::Asn b) const {
  return down_links_.contains(norm(a, b));
}

bool Simulation::suppression_matches(netbase::TimePoint t, bgp::Asn from, bgp::Asn to,
                                     const netbase::Prefix& prefix) {
  for (const auto& fault : suppressions_) {
    if (fault.from_asn != from) continue;
    if (fault.to_asn != 0 && fault.to_asn != to) continue;
    if (!fault.window.contains(t)) continue;
    if (fault.prefix_filter.has_value() && !fault.prefix_filter->covers(prefix)) continue;
    if (fault.probability >= 1.0 || rng_.chance(fault.probability)) return true;
  }
  return false;
}

bool Simulation::stall_matches(netbase::TimePoint t, bgp::Asn to, bgp::Asn from,
                               netbase::AddressFamily family) const {
  for (const auto& fault : stalls_) {
    if (fault.asn != to) continue;
    if (fault.from_asn != 0 && fault.from_asn != from) continue;
    if (fault.family.has_value() && *fault.family != family) continue;
    if (fault.window.contains(t)) return true;
  }
  return false;
}

void Simulation::apply_change(netbase::TimePoint t, bgp::Asn router_asn,
                              const RibChange& change, obs::TraceContext trace) {
  ++stats_.rib_changes;
  Router& r = router(router_asn);

  // Notify collector sessions first; what a monitor sees is exactly the
  // AS's best-route evolution (a full-feed peering).
  auto [lo, hi] = monitors_.equal_range(router_asn);
  for (auto it = lo; it != hi; ++it) it->second->on_route_change(t, change);

  for (const auto& [neighbor, rel] : topo_.neighbors(router_asn)) {
    const bool session_up = !link_down(router_asn, neighbor);
    const bool eligible = change.is_announcement() &&
                          Router::may_export(change.new_best_source, rel) &&
                          neighbor != change.new_best_neighbor;
    if (eligible) {
      if (!session_up) continue;  // state re-syncs on SessionUp
      RouteEntry exported = *change.new_best;
      exported.path = exported.path.prepend(router_asn);
      exported.learned = t + link_delay(router_asn, neighbor);
      push(exported.learned, AnnounceDelivery{router_asn, neighbor, change.prefix,
                                              std::move(exported), trace.child()});
      r.mark_advertised(neighbor, change.prefix, true);
    } else if (r.advertised_to(neighbor, change.prefix)) {
      // Either the prefix is gone, or the new best must not be
      // exported to this neighbor: send a withdrawal...
      r.mark_advertised(neighbor, change.prefix, false);
      if (!session_up) continue;
      // ...unless a withdrawal-suppression fault eats it. This is the
      // zombie seed: the neighbor keeps the stale route.
      if (suppression_matches(t, router_asn, neighbor, change.prefix)) {
        ++stats_.messages_suppressed;
        journal_fault(obs::JournalEventType::kFaultWithdrawalSuppressed, t,
                      router_asn, neighbor, &change.prefix);
        record_hop(trace.child(), change.prefix, router_asn, neighbor, t,
                   obs::TraceKind::kWithdrawal, obs::HopDecision::kSuppressedByFault);
        continue;
      }
      push(t + link_delay(router_asn, neighbor),
           WithdrawDelivery{router_asn, neighbor, change.prefix, trace.child()});
    }
  }
}

void Simulation::readvertise_full_table(netbase::TimePoint t, bgp::Asn from, bgp::Asn to) {
  Router& r = router(from);
  const auto rel_to = topo_.relationship(from, to);
  if (!rel_to.has_value()) return;
  for (const auto& [prefix, entry] : r.full_table()) {
    const auto source = r.best_source(prefix);
    if (!source.has_value() || !Router::may_export(*source, *rel_to)) continue;
    RouteEntry exported = entry;
    exported.path = exported.path.prepend(from);
    exported.learned = t + link_delay(from, to);
    // Each re-advertised prefix roots a fresh (announcement-sampled)
    // trace: a resurrection wave is a new causal story, not a
    // continuation of whatever installed the table entry.
    obs::TraceContext trace = obs::causal_begin_trace(obs::TraceKind::kAnnouncement);
    record_hop(trace, prefix, 0, from, t, obs::TraceKind::kAnnouncement,
               obs::HopDecision::kOriginated);
    push(exported.learned,
         AnnounceDelivery{from, to, prefix, std::move(exported), trace.child()});
    r.mark_advertised(to, prefix, true);
  }
}

void Simulation::process(Event& event) {
  now_ = event.time;
  ++stats_.events_processed;

  if (auto* announce = std::get_if<AnnounceDelivery>(&event.payload)) {
    if (link_down(announce->from, announce->to)) return;
    if (stall_matches(now_, announce->to, announce->from, announce->prefix.family())) {
      ++stats_.messages_stalled;
      journal_fault(obs::JournalEventType::kFaultReceiveStall, now_, announce->from,
                    announce->to, &announce->prefix);
      record_hop(announce->trace, announce->prefix, announce->from, announce->to, now_,
                 obs::TraceKind::kAnnouncement, obs::HopDecision::kStalled);
      return;
    }
    ++stats_.messages_delivered;
    ImportContext ctx{now_, roas_};
    Router::ImportVerdict verdict = Router::ImportVerdict::kAccepted;
    if (auto change = router(announce->to)
                          .learn(announce->from, announce->prefix, announce->route, ctx,
                                 &verdict);
        change.has_value()) {
      record_hop(announce->trace, announce->prefix, announce->from, announce->to, now_,
                 obs::TraceKind::kAnnouncement, obs::HopDecision::kForwarded);
      apply_change(now_, announce->to, *change, announce->trace);
    } else {
      record_hop(announce->trace, announce->prefix, announce->from, announce->to, now_,
                 obs::TraceKind::kAnnouncement,
                 verdict == Router::ImportVerdict::kAccepted
                     ? obs::HopDecision::kImplicitlyWithdrawn
                     : obs::HopDecision::kPolicyFiltered);
    }
    return;
  }
  if (auto* withdraw = std::get_if<WithdrawDelivery>(&event.payload)) {
    if (link_down(withdraw->from, withdraw->to)) return;
    if (stall_matches(now_, withdraw->to, withdraw->from, withdraw->prefix.family())) {
      ++stats_.messages_stalled;
      journal_fault(obs::JournalEventType::kFaultReceiveStall, now_, withdraw->from,
                    withdraw->to, &withdraw->prefix);
      record_hop(withdraw->trace, withdraw->prefix, withdraw->from, withdraw->to, now_,
                 obs::TraceKind::kWithdrawal, obs::HopDecision::kStalled);
      return;
    }
    ++stats_.messages_delivered;
    if (auto change = router(withdraw->to).unlearn(withdraw->from, withdraw->prefix);
        change.has_value()) {
      // The wave continues as withdrawals only while the withdrawn
      // route was the best; an alternate taking over means downstream
      // sees announcements (implicit withdrawal).
      record_hop(withdraw->trace, withdraw->prefix, withdraw->from, withdraw->to, now_,
                 obs::TraceKind::kWithdrawal,
                 change->is_withdrawal() ? obs::HopDecision::kForwarded
                                         : obs::HopDecision::kImplicitlyWithdrawn);
      apply_change(now_, withdraw->to, *change, withdraw->trace);
    } else {
      record_hop(withdraw->trace, withdraw->prefix, withdraw->from, withdraw->to, now_,
                 obs::TraceKind::kWithdrawal, obs::HopDecision::kImplicitlyWithdrawn);
    }
    return;
  }
  if (auto* action = std::get_if<OriginateAction>(&event.payload)) {
    Router& r = router(action->origin);
    std::optional<RibChange> change =
        action->announce ? r.originate(action->prefix, action->attributes, now_)
                         : r.withdraw_origin(action->prefix);
    if (change.has_value()) {
      const obs::TraceKind kind = action->announce ? obs::TraceKind::kAnnouncement
                                                   : obs::TraceKind::kWithdrawal;
      obs::TraceContext trace = obs::causal_begin_trace(kind);
      record_hop(trace, action->prefix, 0, action->origin, now_, kind,
                 obs::HopDecision::kOriginated);
      apply_change(now_, action->origin, *change, trace);
    }
    return;
  }
  if (auto* down = std::get_if<SessionDown>(&event.payload)) {
    down_links_.insert(norm(down->a, down->b));
    journal_fault(obs::JournalEventType::kSimSessionDown, now_, down->a, down->b);
    // Both ends drop what they learned over the session and clear the
    // Adj-RIB-Out state for it.
    for (auto [x, y] : {std::pair{down->a, down->b}, std::pair{down->b, down->a}}) {
      Router& rx = router(x);
      for (const auto& [prefix, entry] : rx.full_table()) {
        (void)entry;
        rx.mark_advertised(y, prefix, false);
      }
      for (auto& change : rx.flush_neighbor(y))
        apply_change(now_, x, change, begin_local_trace(now_, x, change));
    }
    return;
  }
  if (auto* up = std::get_if<SessionUp>(&event.payload)) {
    down_links_.erase(norm(up->a, up->b));
    journal_fault(obs::JournalEventType::kSimSessionUp, now_, up->a, up->b);
    // Fresh session: both ends advertise their current tables. If one
    // end still holds a zombie, the other now (re)learns it — months
    // after the original withdrawal, this is a zombie resurrection.
    readvertise_full_table(now_, up->a, up->b);
    readvertise_full_table(now_, up->b, up->a);
    return;
  }
  if (auto* callback = std::get_if<Callback>(&event.payload)) {
    callback->fn();
    return;
  }
  if (std::get_if<RovChange>(&event.payload) != nullptr) {
    ImportContext ctx{now_, roas_};
    for (auto& [asn, r] : routers_) {
      for (auto& change : r.revalidate(ctx))
        apply_change(now_, asn, change, begin_local_trace(now_, asn, change));
    }
    return;
  }
}

void Simulation::run_until(netbase::TimePoint until) {
  // Lazily schedule ROV re-validation passes for ROA change times we
  // have not yet covered.
  if (roas_ != nullptr) {
    for (netbase::TimePoint t : roas_->change_times()) {
      if (t <= until && !scheduled_rov_times_.contains(t)) {
        scheduled_rov_times_.insert(t);
        push(t, RovChange{});
      }
    }
  }
  while (!queue_.empty() && queue_.top().time <= until) {
    Event event = queue_.top();
    queue_.pop();
    process(event);
  }
  now_ = std::max(now_, until);
  flush_metrics();
}

void Simulation::run_all() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    process(event);
  }
  flush_metrics();
}

void Simulation::flush_metrics() {
  m_events_.inc(stats_.events_processed - flushed_.events_processed);
  m_delivered_.inc(stats_.messages_delivered - flushed_.messages_delivered);
  m_suppressed_.inc(stats_.messages_suppressed - flushed_.messages_suppressed);
  m_stalled_.inc(stats_.messages_stalled - flushed_.messages_stalled);
  m_rib_changes_.inc(stats_.rib_changes - flushed_.rib_changes);
  flushed_ = stats_;
  m_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
}

}  // namespace zombiescope::simnet

# Empty dependencies file for ablation_recycle.
# This may be replaced when dependencies are built.

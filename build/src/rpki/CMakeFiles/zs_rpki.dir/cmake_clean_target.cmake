file(REMOVE_RECURSE
  "libzs_rpki.a"
)

// Tests for the core zombie-detection library: state reconstruction,
// the interval detector with Aggregator-clock dedup, the long-lived
// detector, the lifespan/resurrection analyzer, noisy-peer filtering,
// root-cause inference, and the looking-glass comparator.
//
// These tests construct MRT record streams directly (hand-built or
// via small simulations), mirroring how the real pipeline consumes
// RIS raw data.

#include <gtest/gtest.h>

#include "beacon/clock.hpp"
#include "beacon/schedule.hpp"
#include "zombie/analyzer.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/longlived.hpp"
#include "zombie/lookingglass.hpp"
#include "zombie/noisy.hpp"
#include "zombie/rootcause.hpp"
#include "zombie/state.hpp"

namespace zombiescope::zombie {
namespace {

using beacon::BeaconEvent;
using netbase::AddressFamily;
using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::TimePoint;
using netbase::utc;

const Prefix kV4Beacon = Prefix::parse("84.205.64.0/24");
const Prefix kV6Beacon = Prefix::parse("2001:7fb:fe00::/48");

PeerKey peer_a() { return {64500, IpAddress::parse("192.0.2.1")}; }
PeerKey peer_b() { return {64501, IpAddress::parse("192.0.2.2")}; }

mrt::Bgp4mpMessage announce(TimePoint t, const PeerKey& peer, const Prefix& prefix,
                            std::vector<bgp::Asn> path,
                            std::optional<TimePoint> aggregator_origin = std::nullopt) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = peer.address.is_v4() ? IpAddress::parse("193.0.4.28")
                                         : IpAddress::parse("2001:7f8::1");
  m.update.announced.push_back(prefix);
  m.update.attributes.as_path = bgp::AsPath::sequence(std::move(path));
  m.update.attributes.next_hop = peer.address;
  if (aggregator_origin.has_value())
    m.update.attributes.aggregator = beacon::make_beacon_aggregator(12654, *aggregator_origin);
  return m;
}

mrt::Bgp4mpMessage withdraw(TimePoint t, const PeerKey& peer, const Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = peer.address.is_v4() ? IpAddress::parse("193.0.4.28")
                                         : IpAddress::parse("2001:7f8::1");
  m.update.withdrawn.push_back(prefix);
  return m;
}

mrt::Bgp4mpStateChange session_drop(TimePoint t, const PeerKey& peer) {
  mrt::Bgp4mpStateChange s;
  s.timestamp = t;
  s.peer_asn = peer.asn;
  s.peer_address = peer.address;
  s.local_asn = 12654;
  s.local_address = IpAddress::parse("193.0.4.28");
  s.old_state = bgp::SessionState::kEstablished;
  s.new_state = bgp::SessionState::kIdle;
  return s;
}

// --- StateTracker -----------------------------------------------------------

TEST(StateTracker, AnnounceWithdrawToggleState) {
  StateTracker tracker;
  const auto t0 = utc(2018, 7, 19, 0, 0, 0);
  tracker.apply(announce(t0, peer_a(), kV4Beacon, {64500, 12654}));
  EXPECT_TRUE(tracker.is_present(peer_a(), kV4Beacon));
  EXPECT_FALSE(tracker.is_present(peer_b(), kV4Beacon));
  tracker.apply(withdraw(t0 + kHour, peer_a(), kV4Beacon));
  EXPECT_FALSE(tracker.is_present(peer_a(), kV4Beacon));
  const RouteStatus* status = tracker.status(peer_a(), kV4Beacon);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->last_change, t0 + kHour);
}

TEST(StateTracker, SessionDropFlushesPeer) {
  StateTracker tracker;
  const auto t0 = utc(2018, 7, 19, 0, 0, 0);
  tracker.apply(announce(t0, peer_a(), kV4Beacon, {64500, 12654}));
  tracker.apply(announce(t0, peer_a(), kV6Beacon, {64500, 12654}));
  tracker.apply(announce(t0, peer_b(), kV4Beacon, {64501, 12654}));
  tracker.apply(session_drop(t0 + kMinute, peer_a()));
  EXPECT_FALSE(tracker.is_present(peer_a(), kV4Beacon));
  EXPECT_FALSE(tracker.is_present(peer_a(), kV6Beacon));
  EXPECT_TRUE(tracker.is_present(peer_b(), kV4Beacon));
  EXPECT_EQ(tracker.holders(kV4Beacon).size(), 1u);
}

TEST(StateTracker, MergeArchivesSortsByTime) {
  std::vector<mrt::MrtRecord> a{announce(100, peer_a(), kV4Beacon, {1}),
                                announce(300, peer_a(), kV6Beacon, {1})};
  std::vector<mrt::MrtRecord> b{announce(200, peer_b(), kV4Beacon, {2})};
  const std::vector<const std::vector<mrt::MrtRecord>*> archives{&a, &b};
  auto merged = merge_archives(archives);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(mrt::record_timestamp(merged[0]), 100);
  EXPECT_EQ(mrt::record_timestamp(merged[1]), 200);
  EXPECT_EQ(mrt::record_timestamp(merged[2]), 300);
}

// --- IntervalZombieDetector -------------------------------------------------

std::vector<BeaconEvent> two_intervals(const Prefix& prefix, TimePoint day) {
  return {
      {prefix, day, day + 2 * kHour, false},
      {prefix, day + 4 * kHour, day + 6 * kHour, false},
  };
}

TEST(IntervalDetector, CleanBeaconYieldsNoZombie) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 40, peer_a(), kV4Beacon),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  EXPECT_TRUE(result.outbreaks_with_duplicates.empty());
  EXPECT_TRUE(result.outbreaks_deduplicated.empty());
  EXPECT_EQ(result.visible_prefixes, 1);
}

TEST(IntervalDetector, StuckRouteIsAZombie) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      announce(day + 40, peer_b(), kV4Beacon, {64501, 12654}, day),
      withdraw(day + 2 * kHour + 40, peer_b(), kV4Beacon),
      // peer_a never withdraws: stuck at the 90-minute check.
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  ASSERT_EQ(result.outbreaks_with_duplicates.size(), 1u);
  ASSERT_EQ(result.outbreaks_deduplicated.size(), 1u);
  const auto& outbreak = result.outbreaks_deduplicated[0];
  ASSERT_EQ(outbreak.routes.size(), 1u);
  EXPECT_EQ(outbreak.routes[0].peer, peer_a());
  EXPECT_FALSE(outbreak.routes[0].duplicate);
  EXPECT_EQ(outbreak.interval_start, day);
}

TEST(IntervalDetector, WithdrawalJustBeforeCheckIsClean) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 89 * kMinute, peer_a(), kV4Beacon),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  EXPECT_TRUE(result.outbreaks_with_duplicates.empty());
}

TEST(IntervalDetector, WithdrawalAfterThresholdStillAZombie) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 91 * kMinute, peer_a(), kV4Beacon),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  EXPECT_EQ(result.outbreaks_with_duplicates.size(), 1u);
}

TEST(IntervalDetector, SessionFlushBeforeCheckIsClean) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records;
  records.push_back(announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day));
  records.push_back(session_drop(day + 3 * kHour, peer_a()));
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  EXPECT_TRUE(result.outbreaks_with_duplicates.empty());
}

TEST(IntervalDetector, AggregatorClockEliminatesDoubleCounting) {
  // The §3.1 scenario: a stuck route is refreshed in a LATER interval
  // by a churn re-announcement that still carries the ORIGINAL
  // Aggregator clock. The baseline counts it again; the revised
  // methodology flags it as a duplicate.
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      // Interval 1: stuck at peer_a (never withdrawn).
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      // Interval 2: peer_a re-announces (e.g. upstream churn) with the
      // *old* clock; still never withdraws.
      announce(day + 4 * kHour + 20 * kMinute, peer_a(), kV4Beacon, {64500, 777, 12654},
               day),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  ASSERT_EQ(result.outbreaks_with_duplicates.size(), 2u);   // double-counted
  ASSERT_EQ(result.outbreaks_deduplicated.size(), 1u);      // revised: one outbreak
  EXPECT_EQ(result.outbreaks_deduplicated[0].interval_start, day);
  // The duplicate route is flagged, with its decoded origin time.
  bool found_duplicate = false;
  for (const auto& route : result.routes) {
    if (route.interval_start != day + 4 * kHour) continue;
    EXPECT_TRUE(route.duplicate);
    ASSERT_TRUE(route.aggregator_time.has_value());
    EXPECT_EQ(*route.aggregator_time, day);
    found_duplicate = true;
  }
  EXPECT_TRUE(found_duplicate);
}

TEST(IntervalDetector, FreshAnnouncementInNewIntervalIsNotADuplicate) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 5, peer_a(), kV4Beacon),
      // Interval 2: fresh announcement with the interval's own clock,
      // then stuck.
      announce(day + 4 * kHour + 30, peer_a(), kV4Beacon, {64500, 12654}, day + 4 * kHour),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  ASSERT_EQ(result.outbreaks_deduplicated.size(), 1u);
  EXPECT_EQ(result.outbreaks_deduplicated[0].interval_start, day + 4 * kHour);
}

TEST(IntervalDetector, PerIntervalIndependenceIgnoresStaleState) {
  // A zombie from interval 1 that generates NO message in interval 2
  // must not count in interval 2 (the paper processes each interval
  // with no prior knowledge).
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      // silence afterwards
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  ASSERT_EQ(result.outbreaks_with_duplicates.size(), 1u);
  EXPECT_EQ(result.outbreaks_with_duplicates[0].interval_start, day);
}

TEST(IntervalDetector, ExcludedPeerIsIgnored) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
  };
  IntervalDetectorConfig config;
  config.excluded_peer_asns.insert(peer_a().asn);
  IntervalZombieDetector detector(config);
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  EXPECT_TRUE(result.outbreaks_with_duplicates.empty());
  EXPECT_EQ(result.visible_prefixes, 0);
}

TEST(IntervalDetector, OutbreakGroupsMultiplePeers) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      announce(day + 40, peer_b(), kV4Beacon, {64501, 12654}, day),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  ASSERT_EQ(result.outbreaks_with_duplicates.size(), 1u);
  EXPECT_EQ(result.outbreaks_with_duplicates[0].route_count(), 2);
  EXPECT_EQ(result.outbreaks_with_duplicates[0].peer_as_count(), 2);
}

TEST(IntervalDetector, PathObservationsFeedFig6) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      announce(day + 40, peer_b(), kV4Beacon, {64501, 12654}, day),
      withdraw(day + 2 * kHour + 10, peer_b(), kV4Beacon),
      // peer_a hunts to a longer stale path after the withdrawal.
      announce(day + 2 * kHour + 20, peer_a(), kV4Beacon, {64500, 777, 888, 12654}, day),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  auto pops = path_length_populations(result, AddressFamily::kIpv4, false);
  ASSERT_EQ(pops.normal_at_normal_peers.size(), 1u);  // peer_b
  ASSERT_EQ(pops.normal_at_zombie_peers.size(), 1u);  // peer_a
  ASSERT_EQ(pops.zombie_paths.size(), 1u);
  EXPECT_EQ(pops.normal_at_zombie_peers[0], 2);
  EXPECT_EQ(pops.zombie_paths[0], 4);  // longer (path hunting)
  EXPECT_EQ(pops.changed_path_fraction, 1.0);
}

// --- LongLivedZombieDetector -------------------------------------------------

std::vector<BeaconEvent> one_long_event(const Prefix& prefix, TimePoint t) {
  return {{prefix, t, t + 15 * kMinute, false}};
}

TEST(LongLived, DetectsStuckRouteAtThreshold) {
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1200::/48");
  const PeerKey peer{207301, IpAddress::parse("2a0c:b641:780:7::feca")};
  std::vector<mrt::MrtRecord> records{
      announce(t0 + 10, peer, beacon, {207301, 211509, 25091, 8298, 210312}),
  };
  LongLivedZombieDetector detector{LongLivedConfig{}};
  auto result = detector.detect(records, one_long_event(beacon, t0), 90 * kMinute);
  ASSERT_EQ(result.outbreaks.size(), 1u);
  EXPECT_EQ(result.total_announcements, 1);
  EXPECT_DOUBLE_EQ(result.outbreak_fraction(), 1.0);
}

TEST(LongLived, WithdrawnInTimeIsClean) {
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1200::/48");
  const PeerKey peer{207301, IpAddress::parse("2a0c:b641:780:7::feca")};
  std::vector<mrt::MrtRecord> records{
      announce(t0 + 10, peer, beacon, {207301, 210312}),
      withdraw(t0 + 20 * kMinute, peer, beacon),
  };
  LongLivedZombieDetector detector{LongLivedConfig{}};
  auto result = detector.detect(records, one_long_event(beacon, t0), 90 * kMinute);
  EXPECT_TRUE(result.outbreaks.empty());
}

TEST(LongLived, ThresholdSweepIsMonotoneForQuietStreams) {
  // A route withdrawn at +120min counts at thresholds < 120 and not
  // after — sweeping thresholds moves counts monotonically down when
  // no re-announcements occur.
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1200::/48");
  const PeerKey peer{207301, IpAddress::parse("2a0c:b641:780:7::feca")};
  std::vector<mrt::MrtRecord> records{
      announce(t0 + 10, peer, beacon, {207301, 210312}),
      withdraw(t0 + 15 * kMinute + 120 * kMinute, peer, beacon),
  };
  LongLivedZombieDetector detector{LongLivedConfig{}};
  std::vector<netbase::Duration> thresholds{90 * kMinute, 110 * kMinute, 130 * kMinute};
  auto sweep = detector.sweep(records, one_long_event(beacon, t0), thresholds);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].outbreaks, 1);
  EXPECT_EQ(sweep[1].outbreaks, 1);
  EXPECT_EQ(sweep[2].outbreaks, 0);
}

TEST(LongLived, LateReannouncementCreatesUptick) {
  // Fig. 2's §5.1 observation: withdrawn by the peer at +150 min, a
  // new announcement arrives at +170 min — thresholds beyond 170
  // count it again (the increasing tail).
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1200::/48");
  const PeerKey peer{207301, IpAddress::parse("2a0c:b641:780:7::feca")};
  const auto w = t0 + 15 * kMinute;
  std::vector<mrt::MrtRecord> records{
      announce(t0 + 10, peer, beacon, {207301, 210312}),
      withdraw(w + 150 * kMinute, peer, beacon),
      announce(w + 170 * kMinute, peer, beacon, {207301, 4637, 1299, 25091, 8298, 210312}),
  };
  LongLivedZombieDetector detector{LongLivedConfig{}};
  std::vector<netbase::Duration> thresholds{140 * kMinute, 160 * kMinute, 180 * kMinute};
  auto sweep = detector.sweep(records, one_long_event(beacon, t0), thresholds);
  EXPECT_EQ(sweep[0].outbreaks, 1);  // still stuck at 140
  EXPECT_EQ(sweep[1].outbreaks, 0);  // withdrawn by 160
  EXPECT_EQ(sweep[2].outbreaks, 1);  // resurrected by 180
}

TEST(LongLived, SupersededEventsAreSkipped) {
  const auto t0 = utc(2024, 6, 15, 0, 30, 0);
  const Prefix beacon = Prefix::parse("2a0d:3dc1:30::/48");
  std::vector<BeaconEvent> events{
      {beacon, t0, t0 + 15 * kMinute, true},                              // superseded
      {beacon, t0 + 150 * kMinute, t0 + 165 * kMinute, false},            // studied
  };
  const PeerKey peer{64500, IpAddress::parse("192.0.2.1")};
  std::vector<mrt::MrtRecord> records{
      announce(t0 + 5, peer, beacon, {64500, 210312}),
      withdraw(t0 + 16 * kMinute, peer, beacon),
      announce(t0 + 150 * kMinute + 5, peer, beacon, {64500, 210312}),
  };
  LongLivedZombieDetector detector{LongLivedConfig{}};
  auto result = detector.detect(records, events, 90 * kMinute);
  EXPECT_EQ(result.total_announcements, 1);
  ASSERT_EQ(result.outbreaks.size(), 1u);
  EXPECT_EQ(result.outbreaks[0].interval_start, t0 + 150 * kMinute);
}

// --- LifespanAnalyzer --------------------------------------------------------

mrt::PeerIndexTable index_table(TimePoint t, std::vector<PeerKey> peers) {
  mrt::PeerIndexTable table;
  table.timestamp = t;
  table.view_name = "rrc25";
  for (const auto& p : peers)
    table.peers.push_back({static_cast<std::uint32_t>(table.peers.size()), p.address, p.asn});
  return table;
}

mrt::RibEntryRecord rib_entry(TimePoint t, const Prefix& prefix,
                              std::vector<std::uint16_t> peer_indices) {
  mrt::RibEntryRecord rib;
  rib.timestamp = t;
  rib.prefix = prefix;
  for (std::uint16_t index : peer_indices) {
    mrt::RibEntryRecord::Entry e;
    e.peer_index = index;
    e.originated_time = t;
    e.attributes.as_path = bgp::AsPath{61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312};
    rib.entries.push_back(e);
  }
  return rib;
}

TEST(Lifespan, DurationSpansDumpsAndMergesGaps) {
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1851::/48");
  const auto withdraw_time = utc(2024, 6, 21, 18, 45, 0) + 15 * kMinute;
  std::vector<BeaconEvent> events{
      {beacon, utc(2024, 6, 21, 18, 45, 0), withdraw_time, false}};

  const auto dump_interval = 8 * kHour;
  std::vector<mrt::MrtRecord> dumps;
  const auto peers = std::vector<PeerKey>{peer_a()};
  // Visible 06-29 .. 10-04, gap, visible again 11-29 .. 2025-03-11
  // (the paper's Fig. 4 timeline).
  for (TimePoint t = utc(2024, 6, 29); t <= utc(2024, 10, 4); t += dump_interval) {
    dumps.push_back(index_table(t, peers));
    dumps.push_back(rib_entry(t, beacon, {0}));
  }
  for (TimePoint t = utc(2024, 11, 29); t <= utc(2025, 3, 11); t += dump_interval) {
    dumps.push_back(index_table(t, peers));
    dumps.push_back(rib_entry(t, beacon, {0}));
  }

  LifespanAnalyzer analyzer{LongLivedConfig{}};
  auto lifespans = analyzer.analyze(dumps, events, dump_interval);
  ASSERT_EQ(lifespans.size(), 1u);
  const auto& l = lifespans[0];
  EXPECT_EQ(l.prefix, beacon);
  // Total lifespan ~8.5 months (the paper: "in total ~8.5 months").
  EXPECT_GT(l.duration(), 255 * netbase::kDay);
  EXPECT_LT(l.duration(), 270 * netbase::kDay);
  // Two presence intervals (visible, gap, visible).
  ASSERT_EQ(l.intervals.size(), 2u);
  // The prefix resurrects twice (paper Fig. 4): first appearing a week
  // after the withdrawal, then again on 2024-11-29 after the gap.
  ASSERT_EQ(l.resurrections.size(), 2u);
  EXPECT_EQ(l.resurrections[0].reappeared_at, utc(2024, 6, 29));
  EXPECT_EQ(l.resurrections[1].reappeared_at, utc(2024, 11, 29));
}

TEST(Lifespan, SightingsBeforeWithdrawalIgnored) {
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1145::/48");
  const auto announce_time = utc(2024, 6, 4, 11, 45, 0);
  std::vector<BeaconEvent> events{
      {beacon, announce_time, announce_time + 15 * kMinute, false}};
  std::vector<mrt::MrtRecord> dumps;
  dumps.push_back(index_table(announce_time + 5 * kMinute, {peer_a()}));
  dumps.push_back(rib_entry(announce_time + 5 * kMinute, beacon, {0}));  // legit route
  LifespanAnalyzer analyzer{LongLivedConfig{}};
  auto lifespans = analyzer.analyze(dumps, events, 8 * kHour);
  EXPECT_TRUE(lifespans.empty());
}

TEST(Lifespan, ExcludedPeerDoesNotContribute) {
  const Prefix beacon = Prefix::parse("2a0d:3dc1:1145::/48");
  const auto announce_time = utc(2024, 6, 4, 11, 45, 0);
  std::vector<BeaconEvent> events{
      {beacon, announce_time, announce_time + 15 * kMinute, false}};
  std::vector<mrt::MrtRecord> dumps;
  const auto t = announce_time + kHour;
  dumps.push_back(index_table(t, {peer_a()}));
  dumps.push_back(rib_entry(t, beacon, {0}));
  LongLivedConfig config;
  config.excluded_peer_asns.insert(peer_a().asn);
  LifespanAnalyzer analyzer{config};
  EXPECT_TRUE(analyzer.analyze(dumps, events, 8 * kHour).empty());
}

// --- NoisyPeerFilter ---------------------------------------------------------

TEST(NoisyPeers, OutlierIsFlagged) {
  // 20 peers: one stuck 40% of the time, the rest ~1.5%.
  std::vector<PeerKey> peers;
  std::vector<ZombieRoute> routes;
  const int announcements = 200;
  for (int i = 0; i < 20; ++i) {
    PeerKey peer{static_cast<bgp::Asn>(64500 + i),
                 IpAddress::parse("192.0.2." + std::to_string(i + 1))};
    peers.push_back(peer);
    const int stuck = i == 0 ? 80 : 3;  // 40% vs 1.5%
    for (int k = 0; k < stuck; ++k) {
      ZombieRoute route;
      route.peer = peer;
      route.prefix = kV4Beacon;
      routes.push_back(route);
    }
  }
  NoisyPeerFilter filter;
  auto stats = filter.stats(routes, peers, announcements);
  ASSERT_EQ(stats.size(), 20u);
  auto noisy = filter.noisy_peers(stats);
  ASSERT_EQ(noisy.size(), 1u);
  EXPECT_EQ(noisy[0].peer.asn, 64500u);
  EXPECT_NEAR(noisy[0].probability(), 0.4, 1e-9);
  EXPECT_NEAR(NoisyPeerFilter::median_probability(stats), 0.015, 1e-9);
}

TEST(NoisyPeers, UniformPopulationHasNoOutliers) {
  std::vector<PeerKey> peers;
  std::vector<ZombieRoute> routes;
  for (int i = 0; i < 10; ++i) {
    PeerKey peer{static_cast<bgp::Asn>(64500 + i),
                 IpAddress::parse("192.0.2." + std::to_string(i + 1))};
    peers.push_back(peer);
    ZombieRoute route;
    route.peer = peer;
    routes.push_back(route);
  }
  NoisyPeerFilter filter;
  auto stats = filter.stats(routes, peers, 100);
  EXPECT_TRUE(filter.noisy_peers(stats).empty());
}

TEST(NoisyPeers, FloorPreventsFlaggingInSparseData) {
  // One zombie total: that peer has probability 1/100 which is above
  // 10x median (0) but below the 5% floor — not noisy.
  std::vector<PeerKey> peers{peer_a(), peer_b()};
  std::vector<ZombieRoute> routes(1);
  routes[0].peer = peer_a();
  NoisyPeerFilter filter;
  auto stats = filter.stats(routes, peers, 100);
  EXPECT_TRUE(filter.noisy_peers(stats).empty());
}

// --- Root cause --------------------------------------------------------------

TEST(RootCause, PalmTreeChain) {
  // The paper's impactful zombie: all routes share "33891 25091 8298
  // 210312"; many peers branch above 33891.
  std::vector<bgp::AsPath> paths{
      {3333, 33891, 25091, 8298, 210312},
      {1111, 2222, 33891, 25091, 8298, 210312},
      {4444, 33891, 25091, 8298, 210312},
  };
  auto result = infer_root_cause(paths);
  ASSERT_TRUE(result.suspect.has_value());
  EXPECT_EQ(*result.suspect, 33891u);
  EXPECT_EQ(result.common_subpath(), "33891 25091 8298 210312");
  EXPECT_FALSE(result.ambiguous);
  EXPECT_FALSE(result.single_route);
}

TEST(RootCause, SingleRouteIsWholePath) {
  std::vector<bgp::AsPath> paths{{9304, 6939, 43100, 25091, 8298, 210312}};
  auto result = infer_root_cause(paths);
  EXPECT_TRUE(result.single_route);
  ASSERT_TRUE(result.suspect.has_value());
  EXPECT_EQ(*result.suspect, 9304u);
  EXPECT_EQ(result.common_subpath(), "9304 6939 43100 25091 8298 210312");
}

TEST(RootCause, BranchAtOriginIsAmbiguous) {
  std::vector<bgp::AsPath> paths{{111, 210312}, {222, 210312}};
  auto result = infer_root_cause(paths);
  EXPECT_TRUE(result.ambiguous);
  ASSERT_TRUE(result.suspect.has_value());
  EXPECT_EQ(*result.suspect, 210312u);  // only the origin is common
}

TEST(RootCause, PrependingDoesNotBreakChain) {
  std::vector<bgp::AsPath> paths{
      {111, 33891, 33891, 33891, 8298, 210312},  // prepend padding
      {222, 33891, 8298, 210312},
  };
  auto result = infer_root_cause(paths);
  ASSERT_TRUE(result.suspect.has_value());
  EXPECT_EQ(*result.suspect, 33891u);
}

TEST(RootCause, EmptyOutbreak) {
  auto result = infer_root_cause(std::vector<bgp::AsPath>{});
  EXPECT_FALSE(result.suspect.has_value());
  EXPECT_TRUE(result.chain.empty());
}

TEST(RootCause, OutbreakOverloadWithNoRoutes) {
  // The ZombieOutbreak overload, not just the raw-paths one: an
  // outbreak object with an empty route list must come back inert.
  ZombieOutbreak outbreak;
  outbreak.prefix = netbase::Prefix::parse("203.0.113.0/24");
  auto result = infer_root_cause(outbreak);
  EXPECT_FALSE(result.suspect.has_value());
  EXPECT_TRUE(result.chain.empty());
  EXPECT_FALSE(result.ambiguous);
  EXPECT_FALSE(result.single_route);
  EXPECT_EQ(result.common_subpath(), "");
}

TEST(RootCause, OriginDisagreementHasNoChainAndNoSuspect) {
  // Paths that do not even share an origin (e.g. a MOAS mixup): the
  // chain is empty, the result is ambiguous, and — unlike the
  // branch-at-origin case — there is no suspect at all.
  std::vector<bgp::AsPath> paths{{111, 210312}, {222, 99999}};
  auto result = infer_root_cause(paths);
  EXPECT_TRUE(result.ambiguous);
  EXPECT_FALSE(result.suspect.has_value());
  EXPECT_TRUE(result.chain.empty());
  EXPECT_EQ(result.common_subpath(), "");
}

TEST(RootCause, AllEmptyPathsBehaveLikeEmptyOutbreak) {
  // Routes whose AS paths flattened to nothing (a pure AS_SET path
  // stripped by dedup, or a malformed archive) must not fabricate a
  // suspect or claim single_route.
  std::vector<bgp::AsPath> paths{bgp::AsPath{}, bgp::AsPath{}};
  auto result = infer_root_cause(paths);
  EXPECT_FALSE(result.suspect.has_value());
  EXPECT_TRUE(result.chain.empty());
  EXPECT_FALSE(result.ambiguous);
  EXPECT_FALSE(result.single_route);
}

TEST(RootCause, OutbreakOverloadSingleRoute) {
  ZombieOutbreak outbreak;
  outbreak.prefix = netbase::Prefix::parse("203.0.113.0/24");
  ZombieRoute route;
  route.prefix = outbreak.prefix;
  route.path = bgp::AsPath{9304, 6939, 210312};
  outbreak.routes.push_back(route);
  auto result = infer_root_cause(outbreak);
  EXPECT_TRUE(result.single_route);
  ASSERT_TRUE(result.suspect.has_value());
  EXPECT_EQ(*result.suspect, 9304u);
  EXPECT_FALSE(result.ambiguous);
}

// --- Looking glass ------------------------------------------------------------

TEST(LookingGlass, LagCreatesFalsePositive) {
  // The withdrawal lands 5 minutes before the 90-minute poll; the
  // looking glass (lag 8 min) still serves the stale state, so it
  // reports a zombie the raw methodology does not.
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 86 * kMinute, peer_a(), kV4Beacon),
  };
  auto events = two_intervals(kV4Beacon, day);

  LookingGlassDetector lg{LookingGlassConfig{}};
  auto lg_result = lg.detect(records, events);
  ASSERT_EQ(lg_result.outbreaks.size(), 1u);

  IntervalZombieDetector raw({});
  auto raw_result = raw.detect(records, events);
  EXPECT_TRUE(raw_result.outbreaks_with_duplicates.empty());
}

TEST(LookingGlass, LagCreatesFalseNegative) {
  // A re-announcement lands 5 minutes before the poll: the raw method
  // sees a stuck route; the lagged looking glass still believes the
  // earlier withdrawal.
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 30 * kMinute, peer_a(), kV4Beacon),
      announce(day + 2 * kHour + 86 * kMinute, peer_a(), kV4Beacon, {64500, 12654}, day),
  };
  auto events = two_intervals(kV4Beacon, day);

  LookingGlassDetector lg{LookingGlassConfig{}};
  EXPECT_TRUE(lg.detect(records, events).outbreaks.empty());

  IntervalZombieDetector raw({});
  EXPECT_EQ(raw.detect(records, events).outbreaks_with_duplicates.size(), 1u);
}

TEST(LookingGlass, MissingCountsBothDirections) {
  const auto day = utc(2018, 7, 19);
  std::vector<mrt::MrtRecord> records{
      // peer_a: LG-only zombie (withdrawn within the lag window).
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      withdraw(day + 2 * kHour + 86 * kMinute, peer_a(), kV4Beacon),
      // peer_b: raw-only zombie (re-announced within the lag window).
      announce(day + 40, peer_b(), kV4Beacon, {64501, 12654}, day),
      withdraw(day + 2 * kHour + 30 * kMinute, peer_b(), kV4Beacon),
      announce(day + 2 * kHour + 87 * kMinute, peer_b(), kV4Beacon, {64501, 12654}, day),
  };
  auto events = two_intervals(kV4Beacon, day);

  LookingGlassDetector lg{LookingGlassConfig{}};
  auto lg_result = lg.detect(records, events);
  IntervalZombieDetector raw({});
  auto raw_result = raw.detect(records, events);

  const auto raw_missing_from_lg =
      count_missing(raw_result.routes, raw_result.outbreaks_with_duplicates,
                    lg_result.routes, lg_result.outbreaks);
  const auto lg_missing_from_raw =
      count_missing(lg_result.routes, lg_result.outbreaks,
                    raw_result.routes, raw_result.outbreaks_with_duplicates);
  EXPECT_EQ(raw_missing_from_lg.routes_v4, 1);  // peer_b zombie
  EXPECT_EQ(lg_missing_from_raw.routes_v4, 1);  // peer_a zombie
}

// --- Analyzer -----------------------------------------------------------------

TEST(Analyzer, EmergenceRates) {
  const auto day = utc(2018, 7, 19);
  // Two intervals; peer_a gets stuck in the first only; both peers see
  // both announcements.
  std::vector<mrt::MrtRecord> records{
      announce(day + 30, peer_a(), kV4Beacon, {64500, 12654}, day),
      announce(day + 40, peer_b(), kV4Beacon, {64501, 12654}, day),
      withdraw(day + 2 * kHour + 10, peer_b(), kV4Beacon),
      // interval 2, clean for both:
      announce(day + 4 * kHour + 30, peer_a(), kV4Beacon, {64500, 12654}, day + 4 * kHour),
      announce(day + 4 * kHour + 40, peer_b(), kV4Beacon, {64501, 12654}, day + 4 * kHour),
      withdraw(day + 6 * kHour + 10, peer_a(), kV4Beacon),
      withdraw(day + 6 * kHour + 12, peer_b(), kV4Beacon),
  };
  IntervalZombieDetector detector({});
  auto result = detector.detect(records, two_intervals(kV4Beacon, day));
  auto rates = emergence_rates(result, AddressFamily::kIpv4, true);
  ASSERT_EQ(rates.size(), 2u);
  for (const auto& rate : rates) {
    EXPECT_EQ(rate.announcements, 2);
    if (rate.peer_asn == peer_a().asn)
      EXPECT_DOUBLE_EQ(rate.rate(), 0.5);
    else
      EXPECT_DOUBLE_EQ(rate.rate(), 0.0);
  }
}

TEST(Analyzer, ConcurrentOutbreaks) {
  std::vector<ZombieOutbreak> outbreaks;
  const auto day = utc(2018, 7, 19);
  auto make = [&](const char* prefix, TimePoint t) {
    ZombieOutbreak o;
    o.prefix = Prefix::parse(prefix);
    o.interval_start = t;
    outbreaks.push_back(o);
  };
  make("84.205.64.0/24", day);
  make("84.205.65.0/24", day);
  make("84.205.66.0/24", day + 4 * kHour);
  make("2001:7fb:fe00::/48", day);  // other family, ignored for v4
  auto concurrency = concurrent_outbreaks(outbreaks, AddressFamily::kIpv4);
  ASSERT_EQ(concurrency.size(), 3u);
  EXPECT_EQ(concurrency[0], 2);
  EXPECT_EQ(concurrency[1], 2);
  EXPECT_EQ(concurrency[2], 1);
}

}  // namespace
}  // namespace zombiescope::zombie

// obs/build_info.hpp — identity stamp of this binary's build.
//
// Snapshots that feed the perf trajectory (BENCH_*.json, Prometheus
// scrapes) carry the git revision, compiler, build type, and sanitizer
// flags they were produced with, so zsbenchdiff can refuse to compare
// numbers from incompatible builds (a Debug-vs-Release "regression" is
// noise, a TSan run is a different program). The git sha is captured
// at CMake configure time — reconfigure to refresh it after new
// commits; an unconfigured tree reports "unknown".

#pragma once

#include <string>
#include <string_view>

namespace zombiescope::obs {

struct BuildInfo {
  std::string git_sha;     // short revision, "unknown" outside git
  std::string compiler;    // e.g. "gcc 12.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string sanitizer;   // ZS_SANITIZE value, "" for a plain build
  std::string arch;        // e.g. "x86_64"
};

/// The process-wide build identity (computed once).
const BuildInfo& build_info();

/// The build info as a JSON object (the "build_info" section of the
/// zsobs-v1 snapshot).
std::string build_info_json();

/// The one-line identity every tool prints for --version, e.g.
///   zsdetect (zombiescope) a1b2c3d4e5f6 gcc 12.2.0 Release x86_64
/// with " sanitizer=<flags>" appended for instrumented builds. One
/// format across tools so scripts can parse any of them.
std::string identity_line(std::string_view tool);

/// True when two builds' numbers are comparable: same compiler, build
/// type, sanitizer flags, and architecture (the git sha may differ —
/// comparing across commits is the point).
bool builds_comparable(const BuildInfo& a, const BuildInfo& b);

}  // namespace zombiescope::obs

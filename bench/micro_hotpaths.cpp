// micro_hotpaths — google-benchmark microbenchmarks of the library's
// hot paths: BGP UPDATE encode/decode, MRT record round trips, prefix
// trie operations, the event simulator, and state reconstruction.
// These are not paper reproductions; they establish throughput
// baselines for the pipeline stages.

#include <benchmark/benchmark.h>

#include "beacon/clock.hpp"
#include "bench/bench_common.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"
#include "netbase/trie.hpp"
#include "simnet/simulation.hpp"
#include "zombie/state.hpp"

using namespace zombiescope;

namespace {

bgp::UpdateMessage sample_update() {
  bgp::UpdateMessage msg;
  msg.announced.push_back(netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  msg.attributes.as_path = bgp::AsPath{61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312};
  msg.attributes.next_hop = netbase::IpAddress::parse("2001:db8::1");
  msg.attributes.local_pref = 100;
  msg.attributes.aggregator =
      beacon::make_beacon_aggregator(12654, netbase::utc(2018, 7, 15, 12, 0, 0));
  msg.attributes.communities = {{8298, 100}, {8298, 20}};
  return msg;
}

void BM_UpdateEncode(benchmark::State& state) {
  const auto msg = sample_update();
  for (auto _ : state) {
    auto wire = msg.encode();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UpdateEncode);

void BM_UpdateDecode(benchmark::State& state) {
  const auto wire = sample_update().encode();
  for (auto _ : state) {
    auto msg = bgp::UpdateMessage::decode(wire);
    benchmark::DoNotOptimize(msg.announced.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_UpdateDecode);

void BM_MrtRoundTrip(benchmark::State& state) {
  mrt::Bgp4mpMessage record;
  record.timestamp = netbase::utc(2024, 6, 4, 12, 0, 0);
  record.peer_asn = 211509;
  record.local_asn = 12654;
  record.peer_address = netbase::IpAddress::parse("2001:678:3f4:5::1");
  record.local_address = netbase::IpAddress::parse("2001:7f8::1");
  record.update = sample_update();
  for (auto _ : state) {
    mrt::MrtWriter writer;
    writer.write(record);
    auto records = mrt::decode_all(writer.data());
    benchmark::DoNotOptimize(records.size());
  }
}
BENCHMARK(BM_MrtRoundTrip);

void BM_TrieLongestMatch(benchmark::State& state) {
  netbase::Rng rng(7);
  netbase::PrefixTrie<int> trie;
  std::vector<netbase::IpAddress> probes;
  for (int i = 0; i < state.range(0); ++i) {
    std::array<std::uint8_t, 16> bytes{0x2a, 0x0d};
    for (std::size_t k = 2; k < 8; ++k)
      bytes[k] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    trie.insert(netbase::Prefix(netbase::IpAddress::v6(bytes),
                                static_cast<int>(rng.uniform_int(32, 64))),
                i);
  }
  for (int i = 0; i < 1024; ++i) {
    std::array<std::uint8_t, 16> bytes{0x2a, 0x0d};
    for (std::size_t k = 2; k < 10; ++k)
      bytes[k] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    probes.push_back(netbase::IpAddress::v6(bytes));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieLongestMatch)->Arg(1000)->Arg(10000);

void BM_AggregatorClock(benchmark::State& state) {
  const auto t = netbase::utc(2018, 7, 15, 12, 0, 0);
  const auto addr = beacon::encode_aggregator_clock(t);
  const auto observed = netbase::utc(2018, 7, 19, 2, 0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(beacon::decode_aggregator_clock(addr, observed));
  }
}
BENCHMARK(BM_AggregatorClock);

void BM_SimulatorBeaconCycle(benchmark::State& state) {
  // One announce+withdraw cycle over a mid-size topology.
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.tier2_count = 16;
  params.tier3_count = static_cast<int>(state.range(0));
  netbase::Rng topo_rng(11);
  const auto topo = topology::generate_hierarchical(params, topo_rng);
  const bgp::Asn origin = topo.all_asns().back();
  const auto prefix = netbase::Prefix::parse("2a0d:3dc1:1145::/48");
  for (auto _ : state) {
    simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(5));
    const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
    sim.announce(t0, origin, prefix);
    sim.withdraw(t0 + 15 * netbase::kMinute, origin, prefix);
    sim.run_until(t0 + 2 * netbase::kHour);
    benchmark::DoNotOptimize(sim.stats().messages_delivered);
    state.counters["msgs"] = static_cast<double>(sim.stats().messages_delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorBeaconCycle)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_StateTrackerApply(benchmark::State& state) {
  // Folding a synthetic archive of 10k records.
  std::vector<mrt::MrtRecord> records;
  netbase::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    mrt::Bgp4mpMessage m;
    m.timestamp = 1700000000 + i;
    m.peer_asn = static_cast<bgp::Asn>(64500 + rng.uniform_int(0, 40));
    m.peer_address = netbase::IpAddress::v4(static_cast<std::uint32_t>(m.peer_asn));
    m.local_asn = 12654;
    m.local_address = netbase::IpAddress::parse("193.0.4.28");
    const auto prefix = netbase::Prefix::parse(
        "2a0d:3dc1:" + std::to_string(rng.uniform_int(0, 95) * 15 / 60 * 100 +
                                      rng.uniform_int(0, 3) * 15) +
        "::/48");
    if (rng.chance(0.6)) {
      m.update.announced.push_back(prefix);
      m.update.attributes.as_path = bgp::AsPath{m.peer_asn, 25091, 8298, 210312};
      m.update.attributes.next_hop = netbase::IpAddress::parse("2001:db8::1");
    } else {
      m.update.withdrawn.push_back(prefix);
    }
    records.push_back(std::move(m));
  }
  for (auto _ : state) {
    zombie::StateTracker tracker;
    for (const auto& record : records) tracker.apply(record);
    benchmark::DoNotOptimize(tracker.peers().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_StateTrackerApply)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN so the run ends with a telemetry snapshot:
// the micro benches drive the instrumented hot paths directly, and the
// counter values (events processed, bytes through the codec) land in
// BENCH_micro_hotpaths.json next to the timing output.
int main(int argc, char** argv) {
  zombiescope::bench::begin_bench_session();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  zombiescope::bench::emit_metrics_snapshot("micro_hotpaths");
  return 0;
}

// Tests for the collector: MRT archiving of peer sessions, session
// noise, session resets with STATE messages, and RIB dumps.

#include <gtest/gtest.h>

#include <algorithm>

#include "collector/collector.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"

namespace zombiescope::collector {
namespace {

using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;
using topology::Relationship;
using topology::Topology;

const Prefix kBeacon = Prefix::parse("2a0d:3dc1:1145::/48");

Topology chain() {
  // origin(100) -> transit(10) -> peerAS(20)
  Topology topo;
  topo.add_as({10, 2, "transit"});
  topo.add_as({20, 2, "peerAS"});
  topo.add_as({100, 3, "origin"});
  topo.add_link(10, 100, Relationship::kCustomer);
  topo.add_link(10, 20, Relationship::kCustomer);
  return topo;
}

struct Harness {
  Topology topo = chain();
  simnet::Simulation sim;
  Collector collector;

  explicit Harness(std::uint64_t seed = 1)
      : sim(topo, simnet::SimConfig{2, 8, 60}, Rng(seed)),
        collector("rrc25", 12654, IpAddress::parse("193.0.4.28")) {}
};

SessionConfig clean_session() {
  SessionConfig config;
  config.peer_asn = 20;
  config.peer_address = IpAddress::parse("2001:678:3f4:5::1");
  return config;
}

TEST(Collector, ArchivesAnnounceAndWithdraw) {
  Harness s;
  s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  s.sim.run_until(t0 + kHour);

  const auto& updates = s.collector.updates();
  ASSERT_GE(updates.size(), 2u);
  const auto& first = std::get<mrt::Bgp4mpMessage>(updates.front());
  EXPECT_TRUE(first.update.is_announcement());
  EXPECT_EQ(first.peer_asn, 20u);
  EXPECT_EQ(first.update.announced.at(0), kBeacon);
  // The archived path starts with the peer's own ASN (full feed).
  EXPECT_EQ(first.update.attributes.as_path.first_asn(), 20u);
  EXPECT_EQ(first.update.attributes.as_path.origin_asn(), 100u);
  const auto& last = std::get<mrt::Bgp4mpMessage>(updates.back());
  EXPECT_TRUE(last.update.is_withdrawal_only());
}

TEST(Collector, ArchiveSurvivesMrtRoundTrip) {
  Harness s;
  s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  s.sim.run_until(t0 + kHour);

  const auto bytes = mrt::encode_all(s.collector.updates());
  const auto decoded = mrt::decode_all(bytes);
  ASSERT_EQ(decoded.size(), s.collector.updates().size());
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(mrt::record_timestamp(decoded[i]),
              mrt::record_timestamp(s.collector.updates()[i]));
}

TEST(Collector, NoisySessionKeepsStaleRoute) {
  Harness s;
  SessionConfig config = clean_session();
  config.withdrawal_loss_probability = 1.0;  // always loses withdrawals
  s.collector.add_peer(s.sim, config, Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  s.sim.run_until(t0 + 3 * kHour);

  // The peer's actual RIB is clean...
  EXPECT_EQ(s.sim.router(20).best(kBeacon), nullptr);
  // ...but the collector still sees the route: a collector-side zombie.
  const auto& session = *s.collector.sessions().front();
  EXPECT_TRUE(session.view().contains(kBeacon));
  // And no withdrawal record was archived.
  for (const auto& record : s.collector.updates()) {
    const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record);
    if (msg != nullptr) {
      EXPECT_FALSE(msg->update.is_withdrawal_only());
    }
  }
}

TEST(Collector, NoiseFilterRestrictsPrefixes) {
  Harness s;
  SessionConfig config = clean_session();
  config.withdrawal_loss_probability = 1.0;
  config.noise_prefix_filter = Prefix::parse("2a0d:3dc1::/32");
  s.collector.add_peer(s.sim, config, Rng(2));
  const Prefix outside = Prefix::parse("2001:db8:42::/48");
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.sim.announce(t0, 100, outside);
  s.sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);
  s.sim.withdraw(t0 + 15 * kMinute, 100, outside);
  s.sim.run_until(t0 + kHour);
  const auto& session = *s.collector.sessions().front();
  EXPECT_TRUE(session.view().contains(kBeacon));     // noise applied
  EXPECT_FALSE(session.view().contains(outside));    // withdrawn cleanly
}

TEST(Collector, SessionResetEmitsStateMessagesAndResyncs) {
  Harness s;
  auto& session = s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  // Session flaps while the route is up.
  session.schedule_reset(s.sim, t0 + 30 * kMinute, t0 + 40 * kMinute);
  s.sim.run_until(t0 + kHour);

  int state_changes = 0;
  bool saw_down = false, saw_up = false;
  for (const auto& record : s.collector.updates()) {
    if (const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
      ++state_changes;
      if (state->new_state == bgp::SessionState::kIdle) saw_down = true;
      if (state->new_state == bgp::SessionState::kEstablished) saw_up = true;
    }
  }
  EXPECT_EQ(state_changes, 2);
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);
  // After re-establishment the view is re-synced from the peer's RIB.
  EXPECT_TRUE(session.view().contains(kBeacon));
}

TEST(Collector, ResetWhileDownLosesWithdrawal) {
  // The withdrawal happens while the session is down; the re-sync
  // after re-establishment reflects the peer's clean table, so the
  // collector ends up consistent (no phantom route).
  Harness s;
  auto& session = s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  session.schedule_reset(s.sim, t0 + 10 * kMinute, t0 + 40 * kMinute);
  s.sim.withdraw(t0 + 15 * kMinute, 100, kBeacon);  // lands in the gap
  s.sim.run_until(t0 + kHour);
  EXPECT_FALSE(session.view().contains(kBeacon));
}

TEST(Collector, RibDumpContainsPeerIndexAndEntries) {
  Harness s;
  s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.collector.schedule_rib_dumps(s.sim, t0 + kHour, t0 + kHour, 8 * kHour);
  s.sim.run_until(t0 + 2 * kHour);

  const auto& dumps = s.collector.rib_dumps();
  ASSERT_EQ(dumps.size(), 2u);  // PEER_INDEX_TABLE + 1 prefix record
  const auto& index = std::get<mrt::PeerIndexTable>(dumps[0]);
  EXPECT_EQ(index.view_name, "rrc25");
  ASSERT_EQ(index.peers.size(), 1u);
  EXPECT_EQ(index.peers[0].asn, 20u);
  const auto& rib = std::get<mrt::RibEntryRecord>(dumps[1]);
  EXPECT_EQ(rib.prefix, kBeacon);
  ASSERT_EQ(rib.entries.size(), 1u);
  EXPECT_EQ(rib.entries[0].peer_index, 0);
  EXPECT_EQ(rib.entries[0].attributes.as_path.origin_asn(), 100u);
}

TEST(Collector, RibDumpsEveryEightHoursSkipWithdrawnPrefixes) {
  Harness s;
  s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 0, 0, 0);
  s.sim.announce(t0 + kHour, 100, kBeacon);
  s.sim.withdraw(t0 + 10 * kHour, 100, kBeacon);
  s.collector.schedule_rib_dumps(s.sim, t0, t0 + 24 * kHour, 8 * kHour);
  s.sim.run_until(t0 + 25 * kHour);

  // Dumps at 00:00 (no route), 08:00 (route), 16:00 (gone), 24:00.
  int with_entries = 0, tables = 0;
  for (const auto& record : s.collector.rib_dumps()) {
    if (std::holds_alternative<mrt::PeerIndexTable>(record))
      ++tables;
    else
      ++with_entries;
  }
  EXPECT_EQ(tables, 4);
  EXPECT_EQ(with_entries, 1);
}

TEST(Collector, RibDumpRoundTripsThroughMrt) {
  Harness s;
  s.collector.add_peer(s.sim, clean_session(), Rng(2));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.collector.schedule_rib_dumps(s.sim, t0 + kHour, t0 + kHour, 8 * kHour);
  s.sim.run_until(t0 + 2 * kHour);
  const auto bytes = mrt::encode_all(s.collector.rib_dumps());
  const auto decoded = mrt::decode_all(bytes);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(std::get<mrt::RibEntryRecord>(decoded[1]),
            std::get<mrt::RibEntryRecord>(s.collector.rib_dumps()[1]));
}

TEST(Collector, MultipleSessionsSamePeerAs) {
  // AS211509-style: one peer AS, two router sessions (v4 + v6
  // transport). Both sessions observe the same router.
  Harness s;
  SessionConfig a = clean_session();
  SessionConfig b = clean_session();
  b.peer_address = IpAddress::parse("176.119.234.201");  // v4-transport session
  s.collector.add_peer(s.sim, a, Rng(3));
  s.collector.add_peer(s.sim, b, Rng(4));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  s.sim.announce(t0, 100, kBeacon);
  s.sim.run_until(t0 + kHour);
  EXPECT_TRUE(s.collector.sessions()[0]->view().contains(kBeacon));
  EXPECT_TRUE(s.collector.sessions()[1]->view().contains(kBeacon));
  // RIB dump lists both router addresses under the same ASN.
  s.collector.dump_ribs(s.sim.now());
  const auto& index = std::get<mrt::PeerIndexTable>(s.collector.rib_dumps()[0]);
  ASSERT_EQ(index.peers.size(), 2u);
  EXPECT_EQ(index.peers[0].asn, index.peers[1].asn);
  EXPECT_NE(index.peers[0].address, index.peers[1].address);
}

}  // namespace
}  // namespace zombiescope::collector

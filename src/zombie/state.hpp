// zombie/state.hpp — reconstructing per-peer prefix state from RIS
// raw data.
//
// This implements §3.1(1) of the paper: "with [BGP UPDATE and STATE
// messages], we are able to reconstruct the state of a prefix
// (present or removed) at any RIPE RIS peer at a specific time
// point" — at message-level granularity, from archived MRT only.

#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "mrt/record.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

/// The reconstructed status of one prefix at one peer.
struct RouteStatus {
  bool present = false;
  bgp::AsPath path;                      // meaningful when present
  bgp::PathAttributes attributes;        // meaningful when present
  netbase::TimePoint last_change = 0;    // time of the deciding message
};

/// Chronological state tracker. Feed records in timestamp order; query
/// any ⟨peer, prefix⟩ at the current replay position.
class StateTracker {
 public:
  /// Processes one MRT record. BGP4MP updates toggle prefix states; a
  /// STATE message leaving Established clears everything the peer
  /// announced (session flush). TABLE_DUMP_V2 records are accepted
  /// too: RIB entries assert presence at dump time.
  void apply(const mrt::MrtRecord& record);

  /// nullptr if the peer never announced the prefix (or flushed).
  const RouteStatus* status(const PeerKey& peer, const netbase::Prefix& prefix) const;

  bool is_present(const PeerKey& peer, const netbase::Prefix& prefix) const {
    const RouteStatus* s = status(peer, prefix);
    return s != nullptr && s->present;
  }

  /// All peers currently holding `prefix`.
  std::vector<PeerKey> holders(const netbase::Prefix& prefix) const;

  /// All peer sessions seen so far (present or not).
  std::vector<PeerKey> peers() const;

  /// Forgets everything (used for the paper's per-interval processing,
  /// which starts every interval with no prior knowledge).
  void reset() { state_.clear(); }

 private:
  std::map<PeerKey, std::map<netbase::Prefix, RouteStatus>> state_;
  mrt::PeerIndexTable last_index_;
};

/// Merges several archives (e.g. per-collector) into one stream
/// sorted by timestamp (stable for equal stamps).
std::vector<mrt::MrtRecord> merge_archives(
    std::span<const std::vector<mrt::MrtRecord>* const> archives);

}  // namespace zombiescope::zombie

file(REMOVE_RECURSE
  "libzs_beacon.a"
)

// Differential property tests: two independent implementations of
// "what did the collector believe at time T" must agree.
//
// The LongLivedZombieDetector folds per-event windows; the
// StateTracker folds the whole stream chronologically. For any beacon
// event and peer, "stuck at withdraw+threshold" from the detector must
// equal "present when replaying all records up to that instant" from
// the tracker — across randomized topologies, fault plans, and session
// noise.

#include <gtest/gtest.h>

#include <map>

#include "beacon/driver.hpp"
#include "collector/collector.hpp"
#include "netbase/rng.hpp"
#include "zombie/longlived.hpp"
#include "zombie/state.hpp"

namespace zombiescope {
namespace {

using netbase::kHour;
using netbase::kMinute;
using netbase::Rng;
using netbase::TimePoint;
using netbase::utc;

struct RandomRun {
  std::vector<mrt::MrtRecord> records;
  std::vector<beacon::BeaconEvent> events;
  std::vector<zombie::PeerKey> peers;
};

RandomRun make_random_run(std::uint64_t seed) {
  Rng rng(seed);
  topology::GeneratorParams params;
  params.tier1_count = 3;
  params.tier2_count = 10;
  params.tier3_count = 30;
  params.first_asn = 50000;
  Rng topo_rng = rng.fork();
  auto topo = topology::generate_hierarchical(params, topo_rng);
  std::vector<bgp::Asn> tier2, stubs;
  for (bgp::Asn asn : topo.all_asns()) {
    if (topo.info(asn).tier == 2) tier2.push_back(asn);
    if (topo.info(asn).tier == 3) stubs.push_back(asn);
  }
  const bgp::Asn origin = 210312;
  topo.add_as({origin, 3, "origin"});
  topo.add_link(tier2[0], origin, topology::Relationship::kCustomer);
  topo.add_link(tier2[1], origin, topology::Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, rng.fork());
  collector::Collector rrc("rrc", 12654, netbase::IpAddress::parse("193.0.4.28"));

  RandomRun run;
  for (int i = 0; i < 6; ++i) {
    collector::SessionConfig config;
    config.peer_asn = stubs[rng.index(stubs.size())];
    if (std::any_of(run.peers.begin(), run.peers.end(),
                    [&](const zombie::PeerKey& k) { return k.asn == config.peer_asn; }))
      continue;  // unique peer ASes keep the comparison simple
    config.peer_address = netbase::IpAddress::v4(static_cast<std::uint32_t>(
        0xC6000000u + config.peer_asn));
    config.withdrawal_loss_probability = rng.uniform() * 0.1;
    config.withdrawal_delay_probability = rng.uniform() * 0.05;
    rrc.add_peer(sim, config, rng.fork());
    run.peers.push_back({config.peer_asn, config.peer_address});
  }

  // Random in-network faults.
  const auto start = utc(2024, 6, 5);
  for (int i = 0; i < 3; ++i) {
    simnet::ReceiveStall stall;
    stall.asn = tier2[rng.index(tier2.size())];
    stall.window.start = start + rng.uniform_int(0, 12) * kHour;
    stall.window.end = stall.window.start + rng.uniform_int(1, 30) * kHour;
    sim.add_receive_stall(stall);
  }
  for (int i = 0; i < 2; ++i) {
    simnet::WithdrawalSuppression fault;
    fault.from_asn = tier2[rng.index(tier2.size())];
    fault.window = {start + rng.uniform_int(0, 20) * kHour, std::nullopt};
    fault.probability = rng.uniform();
    sim.add_withdrawal_suppression(fault);
  }

  // One day of 15-minute beacons.
  const auto schedule = beacon::LongLivedBeaconSchedule::paper_deployment(
      beacon::LongLivedBeaconSchedule::Approach::kDaily);
  beacon::BeaconDriver driver(sim, origin, false);
  driver.drive(schedule.events(start, start + netbase::kDay));
  sim.run_until(start + netbase::kDay + 6 * kHour);

  run.records = rrc.updates();
  run.events = driver.ground_truth();
  return run;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, DetectorAgreesWithStateTrackerReplay) {
  const auto run = make_random_run(GetParam());
  ASSERT_FALSE(run.records.empty());

  const netbase::Duration threshold = 90 * kMinute;
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(run.records, run.events, threshold);

  // Detector verdicts, keyed by (event announce time, prefix, peer).
  std::map<std::tuple<TimePoint, netbase::Prefix, zombie::PeerKey>, bool> detected;
  for (const auto& outbreak : result.outbreaks)
    for (const auto& route : outbreak.routes)
      detected[{outbreak.interval_start, outbreak.prefix, route.peer}] = true;

  // Independent replay with the StateTracker: walk records in order,
  // and at each event's check instant snapshot presence per peer.
  zombie::StateTracker tracker;
  std::size_t cursor = 0;
  std::vector<const beacon::BeaconEvent*> ordered;
  for (const auto& event : run.events) ordered.push_back(&event);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    return a->withdraw_time < b->withdraw_time;
  });

  int stuck_checked = 0;
  for (const auto* event : ordered) {
    const TimePoint check = event->withdraw_time + threshold;
    while (cursor < run.records.size() &&
           mrt::record_timestamp(run.records[cursor]) <= check)
      tracker.apply(run.records[cursor++]);
    for (const auto& peer : run.peers) {
      const bool stuck_by_tracker = tracker.is_present(peer, event->prefix);
      const bool stuck_by_detector =
          detected.contains({event->announce_time, event->prefix, peer});
      EXPECT_EQ(stuck_by_tracker, stuck_by_detector)
          << event->prefix.to_string() << " at " << zombie::to_string(peer) << " check "
          << netbase::format_utc(check);
      if (stuck_by_tracker) ++stuck_checked;
    }
  }
  // The comparison must not be vacuous for every seed; with the fault
  // rates above most runs produce at least one zombie.
  RecordProperty("stuck_checked", stuck_checked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace zombiescope

# Empty compiler generated dependencies file for root_cause.
# This may be replaced when dependencies are built.

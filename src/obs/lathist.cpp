#include "obs/lathist.hpp"

#if ZS_LATHIST_ENABLED

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

namespace zombiescope::obs {

namespace {

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

}  // namespace

double LatSnapshot::quantile_ns(double q) const noexcept {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil) in the cumulative
  // bucket walk.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    seen += counts[i];
    if (seen < rank) continue;
    // Interpolate linearly within [lower, upper] by how far into the
    // bucket the rank lands, then clamp to the observed extremes so a
    // single-value histogram reports that value, not a bucket edge.
    double lower = static_cast<double>(lat_bucket_lower(i));
    double upper = static_cast<double>(lat_bucket_upper(i));
    std::uint64_t before = seen - counts[i];
    double frac = counts[i] == 0
                      ? 1.0
                      : static_cast<double>(rank - before) /
                            static_cast<double>(counts[i]);
    double v = lower + (upper - lower) * frac;
    v = std::clamp(v, static_cast<double>(min_ns), static_cast<double>(max_ns));
    return v;
  }
  return static_cast<double>(max_ns);
}

void LatSnapshot::merge(const LatSnapshot& other) {
  if (other.count == 0) return;
  if (counts.empty()) counts.assign(kLatBucketCount, 0);
  for (std::size_t i = 0; i < counts.size() && i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  min_ns = count == 0 ? other.min_ns : std::min(min_ns, other.min_ns);
  max_ns = count == 0 ? other.max_ns : std::max(max_ns, other.max_ns);
  count += other.count;
  sum_ns += other.sum_ns;
}

LatSnapshot LatSnapshot::diff_since(const LatSnapshot& earlier) const {
  LatSnapshot out;
  if (count <= earlier.count) return out;
  out.counts.assign(kLatBucketCount, 0);
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t i = 0; i < out.counts.size(); ++i) {
    std::uint64_t a = i < counts.size() ? counts[i] : 0;
    std::uint64_t b = i < earlier.counts.size() ? earlier.counts[i] : 0;
    std::uint64_t d = a > b ? a - b : 0;
    out.counts[i] = d;
    if (d != 0) {
      lo = std::min(lo, lat_bucket_lower(i));
      hi = std::max(hi, lat_bucket_upper(i));
    }
  }
  out.count = count - earlier.count;
  out.sum_ns = sum_ns >= earlier.sum_ns ? sum_ns - earlier.sum_ns : 0;
  // min/max are not differentiable; approximate from the surviving
  // bucket edges (exact to within the bucket quantization).
  out.min_ns = lo == ~0ull ? 0 : lo;
  out.max_ns = hi;
  return out;
}

std::string LatSnapshot::to_json() const {
  std::string out = "{\"count\":" + std::to_string(count);
  out += ",\"sum_ns\":" + std::to_string(sum_ns);
  out += ",\"min_ns\":" + std::to_string(empty() ? 0 : min_ns);
  out += ",\"max_ns\":" + std::to_string(max_ns);
  out += ",\"mean_ns\":" + format_double(mean_ns());
  out += ",\"p50_ns\":" + format_double(quantile_ns(0.50));
  out += ",\"p95_ns\":" + format_double(quantile_ns(0.95));
  out += ",\"p99_ns\":" + format_double(quantile_ns(0.99));
  out += "}";
  return out;
}

LatSnapshot LatHist::snapshot() const {
  LatSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.counts.resize(kLatBucketCount);
  for (std::size_t i = 0; i < kLatBucketCount; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  std::uint64_t mn = min_ns_.load(std::memory_order_relaxed);
  snap.min_ns = mn == ~0ull ? 0 : mn;
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

void LatHist::reset() noexcept {
  for (std::size_t i = 0; i < kLatBucketCount; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(~0ull, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

struct LatRegistry::Impl {
  mutable std::mutex mu;
  // Leaked LatHist cells so handles survive any teardown order, same
  // as Registry::global()'s cells.
  std::map<std::string, LatHist*, std::less<>> hists;
};

LatRegistry& LatRegistry::global() {
  // Leaked: histograms are recorded into from worker threads that may
  // still be draining at exit.
  static LatRegistry* reg = new LatRegistry();
  return *reg;
}

LatRegistry::Impl* LatRegistry::impl() {
  static Impl* impl = new Impl();
  return impl;
}

const LatRegistry::Impl* LatRegistry::impl() const {
  return const_cast<LatRegistry*>(this)->impl();
}

LatHist& LatRegistry::get(std::string_view name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  auto it = i->hists.find(name);
  if (it == i->hists.end()) {
    it = i->hists.emplace(std::string(name), new LatHist()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, LatSnapshot>> LatRegistry::snapshot_all()
    const {
  const Impl* i = impl();
  std::vector<std::pair<std::string, LatHist*>> hists;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    hists.reserve(i->hists.size());
    for (const auto& [name, hist] : i->hists) hists.emplace_back(name, hist);
  }
  std::vector<std::pair<std::string, LatSnapshot>> out;
  out.reserve(hists.size());
  for (const auto& [name, hist] : hists) {
    out.emplace_back(name, hist->snapshot());
  }
  return out;
}

std::string LatRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, snap] : snapshot_all()) {
    if (snap.empty()) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + snap.to_json();
  }
  out += "}";
  return out;
}

std::string LatRegistry::to_folded() const {
  std::string out;
  for (const auto& [name, snap] : snapshot_all()) {
    if (snap.empty()) continue;
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      out += name + ";le_" + std::to_string(lat_bucket_upper(i)) + "ns " +
             std::to_string(snap.counts[i]) + "\n";
    }
    out += name + ";count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

void LatRegistry::reset_all() {
  const Impl* i = impl();
  std::vector<LatHist*> hists;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    for (const auto& [name, hist] : i->hists) hists.push_back(hist);
  }
  for (LatHist* h : hists) h->reset();
}

}  // namespace zombiescope::obs

#endif  // ZS_LATHIST_ENABLED

file(REMOVE_RECURSE
  "CMakeFiles/zs_bgp.dir/aspath.cpp.o"
  "CMakeFiles/zs_bgp.dir/aspath.cpp.o.d"
  "CMakeFiles/zs_bgp.dir/session_fsm.cpp.o"
  "CMakeFiles/zs_bgp.dir/session_fsm.cpp.o.d"
  "CMakeFiles/zs_bgp.dir/types.cpp.o"
  "CMakeFiles/zs_bgp.dir/types.cpp.o.d"
  "CMakeFiles/zs_bgp.dir/update.cpp.o"
  "CMakeFiles/zs_bgp.dir/update.cpp.o.d"
  "libzs_bgp.a"
  "libzs_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scenario_probe.
# This may be replaced when dependencies are built.

#include "zombie/rootcause.hpp"

#include <algorithm>

namespace zombiescope::zombie {

std::string RootCauseResult::common_subpath() const {
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += ' ';
    out += std::to_string(*it);
  }
  return out;
}

RootCauseResult infer_root_cause(const std::vector<bgp::AsPath>& paths) {
  RootCauseResult result;
  if (paths.empty()) return result;

  // Reverse each path: origin first. Drop duplicate consecutive ASNs
  // (prepending) so path-prepend padding does not break agreement.
  std::vector<std::vector<bgp::Asn>> reversed;
  for (const auto& path : paths) {
    std::vector<bgp::Asn> flat = path.flatten();
    std::reverse(flat.begin(), flat.end());
    flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
    if (!flat.empty()) reversed.push_back(std::move(flat));
  }
  if (reversed.empty()) return result;

  result.single_route = reversed.size() == 1;

  // Walk the agreed chain from the origin.
  for (std::size_t depth = 0;; ++depth) {
    if (depth >= reversed.front().size()) break;
    const bgp::Asn candidate = reversed.front()[depth];
    bool all_agree = true;
    for (const auto& path : reversed) {
      if (depth >= path.size() || path[depth] != candidate) {
        all_agree = false;
        break;
      }
    }
    if (!all_agree) break;
    result.chain.push_back(candidate);
  }

  if (result.chain.empty()) {
    result.ambiguous = true;  // paths disagree on the origin itself
    return result;
  }
  if (result.chain.size() == 1 && reversed.size() > 1) {
    // Branches directly at the origin: every neighbor kept the route,
    // pointing at the origin's own withdrawal not propagating at all.
    result.ambiguous = true;
  }
  result.suspect = result.chain.back();
  return result;
}

RootCauseResult infer_root_cause(const ZombieOutbreak& outbreak) {
  std::vector<bgp::AsPath> paths;
  paths.reserve(outbreak.routes.size());
  for (const auto& route : outbreak.routes) paths.push_back(route.path);
  return infer_root_cause(paths);
}

}  // namespace zombiescope::zombie

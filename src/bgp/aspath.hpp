// bgp/aspath.hpp — the AS_PATH attribute.
//
// An AS_PATH is a sequence of segments; in practice almost all paths
// are a single AS_SEQUENCE, but AS_SETs (from aggregation) occur and
// must round-trip through the wire format, so both are modelled.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"

namespace zombiescope::bgp {

enum class SegmentType : std::uint8_t {
  kAsSet = 1,
  kAsSequence = 2,
};

struct PathSegment {
  SegmentType type = SegmentType::kAsSequence;
  std::vector<Asn> asns;

  friend bool operator==(const PathSegment&, const PathSegment&) = default;
};

class AsPath {
 public:
  AsPath() = default;

  /// Builds a single-AS_SEQUENCE path: first element is the neighbor
  /// nearest the receiver, last is the origin AS (RFC 4271).
  AsPath(std::initializer_list<Asn> sequence);
  static AsPath sequence(std::vector<Asn> asns);

  const std::vector<PathSegment>& segments() const { return segments_; }
  std::vector<PathSegment>& segments() { return segments_; }

  bool empty() const { return segments_.empty(); }

  /// Path length as used by the BGP decision process: each AS in a
  /// sequence counts 1, each AS_SET counts 1 total (RFC 4271 §9.1.2.2).
  int length() const;

  /// Total number of ASNs mentioned (sets expanded).
  int asn_count() const;

  /// The origin AS — last ASN of the last sequence segment, if the
  /// path ends with a sequence.
  std::optional<Asn> origin_asn() const;

  /// The first ASN (the neighbor the route was learned from).
  std::optional<Asn> first_asn() const;

  /// True if `asn` appears anywhere in the path (loop detection).
  bool contains(Asn asn) const;

  /// Returns a copy with `asn` prepended (new first hop), merging into
  /// a leading sequence segment.
  AsPath prepend(Asn asn) const;

  /// Flattened ASN list in path order (sets expanded in stored order).
  std::vector<Asn> flatten() const;

  /// True if the path ends with the given origin-adjacent subpath,
  /// e.g. contains_subpath({25091, 8298, 210312}) — used for the
  /// paper's common-subpath reporting.
  bool ends_with(const std::vector<Asn>& suffix) const;

  /// "4637 1299 25091 8298 210312"; sets render as "{a,b}".
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<PathSegment> segments_;
};

}  // namespace zombiescope::bgp

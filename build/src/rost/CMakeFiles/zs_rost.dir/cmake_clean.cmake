file(REMOVE_RECURSE
  "CMakeFiles/zs_rost.dir/rost.cpp.o"
  "CMakeFiles/zs_rost.dir/rost.cpp.o.d"
  "libzs_rost.a"
  "libzs_rost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_rost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

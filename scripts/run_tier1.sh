#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the obs
# subsystem's tests again under ThreadSanitizer (its hot paths — the
# metrics cells, the span ring, the journal MPSC ring, the causal
# tracer's hop ring, and the zsprof sample rings + SIGPROF handler —
# are the only code that promises
# lock-free cross-thread use — plus zslive's MPSC shard queues, epoch
# snapshots, and SSE fanout) and under AddressSanitizer+UBSan (the
# journal codec, the HTTP server, and the NDJSON feed parse external
# bytes; the zsprof stack walk reads raw stack memory). Each sanitizer
# leg ends with a 30-second zslived tap-demo soak under concurrent
# curl clients.
#
# Usage: scripts/run_tier1.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"
ASAN_DIR="${BUILD_DIR}-asan"

echo "== tier-1: plain build + ctest (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# heap_test runs under both sanitizer legs deliberately: the zsheap
# allocator interposition compiles itself out under ASan/TSan (the
# sanitizer owns malloc) and start() refuses at runtime via the weak
# __sanitizer symbols — the session tests skip there, while the
# report/rendering tests still run. This proves the step-aside path,
# not just the happy path.
OBS_TARGETS="obs_test journal_test http_test prof_test benchdiff_test prof_compileout_test \
  heap_test heap_compileout_test lathist_test lathist_compileout_test \
  tsdb_test tsdb_compileout_test \
  causal_test causal_e2e_test causal_compileout_test live_test \
  wire_test wirefault_test zswire zslived zstop"

# A 30-second zslived soak under the instrumented build: the tap demo
# feeds a live simulation through the sharded service while curl
# clients hammer all three /live endpoints — the exact concurrent
# surface (MPSC queues, snapshot publication, SSE fanout) the
# sanitizers exist to check. Fails on a nonzero daemon exit (sanitizer
# reports make the runtime exit nonzero), on any report text in the
# logs, or if a /live/zombies epoch ever moves backwards.
soak_zslived() {
  local build_dir="$1" label="$2"
  local log="${build_dir}/zslived-soak.stderr"
  echo "== tier-1: zslived 30s tap-demo soak (${label})"
  "${build_dir}/tools/zslived" --tap-demo --speed 120 --duration 30 \
    --http-port 0 >"${build_dir}/zslived-soak.stdout" 2>"${log}" &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's|^serving http://127.0.0.1:\([0-9]*\)/.*|\1|p' "${log}" | head -1)
    [ -n "${port}" ] && break
    sleep 0.2
  done
  if [ -z "${port}" ]; then
    echo "zslived (${label}) never started serving"; cat "${log}"
    kill "${pid}" 2>/dev/null || true
    exit 1
  fi
  curl -sN --max-time 28 "http://127.0.0.1:${port}/live/events" \
    >"${build_dir}/zslived-soak.events" || true &
  local sse_pid=$!
  local last_epoch=0 epoch lag_p99="" lag
  local alerts_json="" rate_series="" p99_series="" peers_json="" zstop_rc="" i
  for i in $(seq 1 25); do
    epoch=$(curl -s --max-time 5 "http://127.0.0.1:${port}/live/zombies" |
      sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
    lag=$(curl -s --max-time 5 "http://127.0.0.1:${port}/live/stats" |
      sed -n 's/.*"lag_p99":\([0-9.]*\).*/\1/p' | head -1)
    [ -n "${lag}" ] && lag_p99="${lag}"
    # zstsdb surface: keep the latest /alerts body and 1 s-resolution
    # series (rate-derived throughput + e2e p99). A response with
    # points supersedes an empty one — sparse series (e2e fills only
    # after transitions flow) may legitimately gap early in the soak.
    alerts_json=$(curl -s --max-time 5 "http://127.0.0.1:${port}/alerts" || true)
    body=$(curl -s --max-time 5 \
      "http://127.0.0.1:${port}/tsdb/query?metric=live.records_total&range=30s&step=1s&agg=rate" || true)
    case "${body}" in *'"points":[['*) rate_series="${body}" ;; *) : "${rate_series:=${body}}" ;; esac
    body=$(curl -s --max-time 5 \
      "http://127.0.0.1:${port}/tsdb/query?metric=latency:live.e2e:p99&range=30s&step=1s" || true)
    case "${body}" in *'"points":[['*) p99_series="${body}" ;; *) : "${p99_series:=${body}}" ;; esac
    # zspeerq surface: keep the latest populated /peers table. A body
    # with at least one row supersedes an empty one (the table fills
    # once the first shard snapshot publishes).
    body=$(curl -s --max-time 5 "http://127.0.0.1:${port}/peers" || true)
    case "${body}" in *'"peers":[{'*) peers_json="${body}" ;; *) : "${peers_json:=${body}}" ;; esac
    if [ "${i}" -eq 15 ]; then
      # The live console must render a frame against the running
      # daemon and exit 0 (its CI mode).
      "${build_dir}/tools/zstop" --port "${port}" --once --no-color \
        >"${build_dir}/zstop-once.out" 2>&1 && zstop_rc=0 || zstop_rc=$?
    fi
    if [ -n "${epoch}" ]; then
      if [ "${epoch}" -lt "${last_epoch}" ]; then
        echo "zslived (${label}) epoch moved backwards: ${last_epoch} -> ${epoch}"
        kill "${pid}" 2>/dev/null || true
        exit 1
      fi
      last_epoch="${epoch}"
    fi
    sleep 1
  done
  wait "${sse_pid}" || true
  if ! wait "${pid}"; then
    echo "zslived (${label}) exited nonzero"; cat "${log}"
    exit 1
  fi
  if grep -E 'ThreadSanitizer|AddressSanitizer|LeakSanitizer|runtime error' \
    "${log}" "${build_dir}/zslived-soak.stdout"; then
    echo "zslived (${label}) soak produced sanitizer reports"
    exit 1
  fi
  if [ "${last_epoch}" -eq 0 ]; then
    echo "zslived (${label}) served no snapshot epochs"; exit 1
  fi
  # Ingest-lag p99 must stay under a generous bound: a stalled shard
  # worker can keep publishing epochs while its queue ages — the lag
  # quantile is what catches it. 5s is far above healthy tap-demo lag
  # (milliseconds) but far below a wedged worker (tens of seconds).
  if [ -z "${lag_p99}" ]; then
    echo "zslived (${label}) /live/stats never reported lag_p99"; exit 1
  fi
  if ! awk -v lag="${lag_p99}" 'BEGIN { exit !(lag < 5.0) }'; then
    echo "zslived (${label}) ingest-lag p99 too high: ${lag_p99}s (bound 5.0s)"
    exit 1
  fi
  if ! grep -q 'event: emerge' "${build_dir}/zslived-soak.events"; then
    echo "zslived (${label}) SSE stream carried no emerge events"
    exit 1
  fi
  # zstsdb: a healthy soak must end with zero firing alerts, a working
  # zstop --once render, and non-empty monotonically-timestamped 1 s
  # series for the throughput rate and the e2e p99.
  case "${alerts_json}" in
    *'"firing":0'*) ;;
    *) echo "zslived (${label}) /alerts not clean: ${alerts_json}"; exit 1 ;;
  esac
  if [ "${zstop_rc}" != "0" ]; then
    echo "zslived (${label}) zstop --once failed (rc=${zstop_rc:-unset})"
    cat "${build_dir}/zstop-once.out" 2>/dev/null || true
    exit 1
  fi
  if ! grep -q 'throughput' "${build_dir}/zstop-once.out"; then
    echo "zslived (${label}) zstop --once rendered no panels"
    cat "${build_dir}/zstop-once.out"
    exit 1
  fi
  assert_series() {  # assert_series <label> <metric-desc> <json>
    local desc="$2" json="$3"
    case "${json}" in
      *'"points":[['*) ;;
      *) echo "zslived ($1) /tsdb/query ${desc} series empty: ${json}"; exit 1 ;;
    esac
    # Point timestamps must be sorted (sort -c exits nonzero otherwise).
    if ! printf '%s\n' "${json}" | grep -oE '\[[0-9]+\.[0-9]{3},' |
      tr -d '[,' | sort -c -n 2>/dev/null; then
      echo "zslived ($1) /tsdb/query ${desc} timestamps not monotone: ${json}"
      exit 1
    fi
  }
  assert_series "${label}" "live.records_total rate" "${rate_series}"
  assert_series "${label}" "latency:live.e2e:p99" "${p99_series}"
  # zspeerq: the peer table must be populated (the tap demo's simulated
  # collectors all feed) and classify nobody noisy — every simulated
  # peer withdraws honestly, so a nonzero noisy count here means the
  # live classifier has a false positive.
  case "${peers_json}" in
    *'"peers":[{'*) ;;
    *) echo "zslived (${label}) /peers table empty: ${peers_json}"; exit 1 ;;
  esac
  case "${peers_json}" in
    *'"noisy_count":0'*) ;;
    *) echo "zslived (${label}) /peers classified peers noisy on the clean tap demo: ${peers_json}"
       exit 1 ;;
  esac
  echo "== tier-1: zslived soak (${label}) OK (final epoch ${last_epoch}, lag p99 ${lag_p99}s, alerts clean, peers clean)"
}

# A short BGP loopback soak under the instrumented build: zslived as a
# real BGP-4 collector (--bgp-listen) with a zswire peer holding a live
# session and announcing a prefix across it — the socket reader, FSM,
# retention, and /sessions snapshot path under the sanitizer. Asserts
# /healthz answers ok, /peers is served, and /sessions shows the peer
# Established with its announced route.
soak_bgp() {
  local build_dir="$1" label="$2"
  local log="${build_dir}/zslived-bgp.stderr"
  echo "== tier-1: zslived BGP loopback soak (${label})"
  "${build_dir}/tools/zslived" --bgp-listen 0 --http-port 0 --duration 20 \
    --gr-restart 5 >"${build_dir}/zslived-bgp.stdout" 2>"${log}" &
  local pid=$!
  local http_port="" bgp_port=""
  for _ in $(seq 1 100); do
    http_port=$(sed -n 's|^serving http://127.0.0.1:\([0-9]*\)/.*|\1|p' "${log}" | head -1)
    bgp_port=$(sed -n 's|^BGP feed on port \([0-9]*\).*|\1|p' "${log}" | head -1)
    [ -n "${http_port}" ] && [ -n "${bgp_port}" ] && break
    sleep 0.2
  done
  if [ -z "${http_port}" ] || [ -z "${bgp_port}" ]; then
    echo "zslived (${label}) BGP mode never started serving"; cat "${log}"
    kill "${pid}" 2>/dev/null || true
    exit 1
  fi
  "${build_dir}/tools/zswire" peer 127.0.0.1 "${bgp_port}" --asn 65010 \
    --address 198.51.100.10 --announce 203.0.113.0/24 --wait 12 \
    >"${build_dir}/zswire-peer.out" 2>&1 &
  local peer_pid=$!
  # Poll /sessions until the peer session is Established with its route.
  local sessions="" i
  for i in $(seq 1 40); do
    sessions=$(curl -s --max-time 5 "http://127.0.0.1:${http_port}/sessions" || true)
    case "${sessions}" in
      *'"established":1'*'"asn":65010'*'"routes":1'*) break ;;
    esac
    sleep 0.25
  done
  case "${sessions}" in
    *'"established":1'*'"asn":65010'*'"routes":1'*) ;;
    *) echo "zslived (${label}) /sessions never showed the established peer: ${sessions}"
       kill "${pid}" "${peer_pid}" 2>/dev/null || true
       exit 1 ;;
  esac
  local health
  health=$(curl -s --max-time 5 "http://127.0.0.1:${http_port}/healthz" || true)
  case "${health}" in
    *'ok'*) ;;
    *) echo "zslived (${label}) /healthz not ok in BGP mode: ${health}"
       kill "${pid}" "${peer_pid}" 2>/dev/null || true
       exit 1 ;;
  esac
  local peers
  peers=$(curl -s --max-time 5 "http://127.0.0.1:${http_port}/peers" || true)
  case "${peers}" in
    *'"peers":'*) ;;
    *) echo "zslived (${label}) /peers not served in BGP mode: ${peers}"
       kill "${pid}" "${peer_pid}" 2>/dev/null || true
       exit 1 ;;
  esac
  wait "${peer_pid}" || {
    echo "zslived (${label}) zswire peer exited nonzero"
    cat "${build_dir}/zswire-peer.out"
    kill "${pid}" 2>/dev/null || true
    exit 1
  }
  if ! wait "${pid}"; then
    echo "zslived (${label}) BGP soak exited nonzero"; cat "${log}"
    exit 1
  fi
  if grep -E 'ThreadSanitizer|AddressSanitizer|LeakSanitizer|runtime error' \
    "${log}" "${build_dir}/zslived-bgp.stdout" "${build_dir}/zswire-peer.out"; then
    echo "zslived (${label}) BGP soak produced sanitizer reports"
    exit 1
  fi
  echo "== tier-1: zslived BGP soak (${label}) OK (session established, healthz ok)"
}

echo "== tier-1: obs tests under ThreadSanitizer (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DZS_SANITIZE=thread
# shellcheck disable=SC2086
cmake --build "${TSAN_DIR}" -j --target ${OBS_TARGETS}
ctest --test-dir "${TSAN_DIR}" --output-on-failure -R '^Obs|^Wire'
soak_zslived "${TSAN_DIR}" "tsan"
soak_bgp "${TSAN_DIR}" "tsan"

echo "== tier-1: obs tests under ASan+UBSan (${ASAN_DIR})"
cmake -B "${ASAN_DIR}" -S . -DZS_SANITIZE=address,undefined
# shellcheck disable=SC2086
cmake --build "${ASAN_DIR}" -j --target ${OBS_TARGETS}
ctest --test-dir "${ASAN_DIR}" --output-on-failure -R '^Obs|^Wire'
soak_zslived "${ASAN_DIR}" "asan"
soak_bgp "${ASAN_DIR}" "asan"

echo "== tier-1: OK"

file(REMOVE_RECURSE
  "libzs_zombie.a"
)

// zsheap allocation profiler tests. Session tests need the interposed
// allocator, which steps aside under sanitizers (ASan/TSan own malloc)
// — those skip there, while the shape/rendering tests run everywhere,
// so the sanitizer tier-1 legs still exercise this binary.

#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/heap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs = zombiescope::obs;

namespace {

// Keeps allocations observable: the optimizer cannot elide a store to
// a volatile global.
volatile char g_sink = 0;

void touch(char* p, std::size_t n) {
  std::memset(p, 0x5a, n);
  g_sink = p[n / 2];
}

/// Allocates `count` blocks of `size` bytes and frees them all.
void churn(std::size_t count, std::size_t size) {
  std::vector<std::unique_ptr<char[]>> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    blocks.emplace_back(new char[size]);
    touch(blocks.back().get(), size);
  }
  blocks.clear();
}

bool sessions_available() {
  return obs::kHeapCompiledIn && obs::HeapProfiler::interposition_available();
}

#define SKIP_WITHOUT_INTERPOSITION()                                     \
  do {                                                                   \
    if (!sessions_available())                                           \
      GTEST_SKIP() << "allocator interposition unavailable (sanitizer " \
                      "or compiled-out build)";                          \
  } while (0)

TEST(ObsHeap, InterposedSymbolsLiveInThisBinary) {
  SKIP_WITHOUT_INTERPOSITION();
  // The mirror image of heap_compileout_test: with the profiler
  // compiled in, the global-scope malloc must resolve to this
  // executable's strong override, not to libc.
  void* addr = dlsym(RTLD_DEFAULT, "malloc");
  ASSERT_NE(addr, nullptr);
  Dl_info info{};
  ASSERT_NE(dladdr(addr, &info), 0);
  ASSERT_NE(info.dli_fname, nullptr);
  EXPECT_EQ(std::strstr(info.dli_fname, "libc"), nullptr)
      << "malloc resolves to " << info.dli_fname
      << " — the interposed override is missing";
}

TEST(ObsHeap, SessionCountsAllocationsAndFrees) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  EXPECT_TRUE(profiler.running());
  constexpr std::size_t kCount = 500;
  constexpr std::size_t kSize = 1000;
  churn(kCount, kSize);
  EXPECT_GE(profiler.allocs_observed(), kCount);
  const obs::HeapReport report = profiler.stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_TRUE(report.valid);
  EXPECT_GE(report.allocs, kCount);
  EXPECT_GE(report.total_bytes, kCount * kSize);
  EXPECT_GE(report.frees, kCount);
  EXPECT_GE(report.freed_bytes, kCount * kSize);
  EXPECT_GT(report.duration_s, 0.0);
  // 1000-byte requests land in the <=1024 class (index 6).
  EXPECT_GE(report.size_class_allocs[6], kCount);
}

TEST(ObsHeap, SecondStartFailsWhileRunning) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  EXPECT_FALSE(profiler.start());
  EXPECT_TRUE(profiler.stop().valid);
  EXPECT_FALSE(profiler.stop().valid);  // not running anymore
}

TEST(ObsHeap, PeakTracksLiveHighWaterMark) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  constexpr std::size_t kBig = 8u << 20;  // 8 MiB, dwarfs test noise
  {
    std::unique_ptr<char[]> block(new char[kBig]);
    touch(block.get(), kBig);
  }
  const obs::HeapReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  EXPECT_GE(report.peak_live_bytes, kBig);
  // The block was freed inside the session, so the net live delta must
  // sit well below the peak.
  EXPECT_LT(report.live_bytes, static_cast<std::int64_t>(kBig));
}

TEST(ObsHeap, SpansAttributeAllocations) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  constexpr std::size_t kCount = 200;
  constexpr std::size_t kSize = 4096;
  {
    obs::ScopedSpan outer("heap_test.outer");
    churn(kCount, kSize);
    {
      obs::ScopedSpan inner("heap_test.inner");
      churn(kCount, kSize);
    }
  }
  const obs::HeapReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  const auto outer = report.span_bytes.find("heap_test.outer");
  const auto inner = report.span_bytes.find("heap_test.inner");
  ASSERT_NE(outer, report.span_bytes.end());
  ASSERT_NE(inner, report.span_bytes.end());
  // Attribution is innermost-wins: each span saw its own churn.
  EXPECT_GE(outer->second.bytes, kCount * kSize);
  EXPECT_GE(outer->second.allocs, kCount);
  EXPECT_GE(inner->second.bytes, kCount * kSize);
  EXPECT_GE(inner->second.allocs, kCount);
}

TEST(ObsHeap, SpansAttributeAcrossThreads) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  constexpr std::size_t kCount = 300;
  constexpr std::size_t kSize = 512;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      obs::ScopedSpan span("heap_test.worker");
      churn(kCount, kSize);
    });
  }
  for (auto& w : workers) w.join();
  const obs::HeapReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  const auto it = report.span_bytes.find("heap_test.worker");
  ASSERT_NE(it, report.span_bytes.end());
  EXPECT_GE(it->second.allocs, 4 * kCount);
  EXPECT_GE(it->second.bytes, 4 * kCount * kSize);
}

TEST(ObsHeap, SamplerCapturesAllocationSites) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  obs::HeapProfilerOptions options;
  options.sample_every = 1;  // sample everything: sites must appear
  ASSERT_TRUE(profiler.start(options));
  {
    obs::ScopedSpan span("heap_test.sampled");
    churn(100, 2048);
  }
  const obs::HeapReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  EXPECT_GT(report.samples, 0u);
  EXPECT_GT(report.sampled_bytes, 0u);
  ASSERT_FALSE(report.top_sites.empty());
  // Some site must carry the active span as its root and real bytes.
  bool saw_span_rooted = false;
  for (const auto& site : report.top_sites) {
    EXPECT_GT(site.bytes, 0u);
    EXPECT_GT(site.allocs, 0u);
    if (site.stack.rfind("heap_test.sampled", 0) == 0) saw_span_rooted = true;
  }
  EXPECT_TRUE(saw_span_rooted);
  // Folded output is one "stack bytes" line per site.
  const std::string folded = report.to_folded();
  EXPECT_NE(folded.find("heap_test.sampled"), std::string::npos);
}

TEST(ObsHeap, SamplingDisabledWithZeroRate) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  obs::HeapProfilerOptions options;
  options.sample_every = 0;
  ASSERT_TRUE(profiler.start(options));
  churn(100, 1024);
  const obs::HeapReport report = profiler.stop();
  ASSERT_TRUE(report.valid);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_TRUE(report.top_sites.empty());
  EXPECT_GE(report.allocs, 100u);  // exhaustive counters unaffected
}

TEST(ObsHeap, ScopedSessionWritesJsonReport) {
  SKIP_WITHOUT_INTERPOSITION();
  const std::string path = ::testing::TempDir() + "/zs_heap_session.json";
  {
    obs::ScopedHeapSession session(path);
    ASSERT_TRUE(session.active());
    obs::ScopedSpan span("heap_test.scoped");
    churn(50, 1024);
  }
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string json;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), in)) > 0;)
    json.append(buf, n);
  std::fclose(in);
  EXPECT_NE(json.find("\"schema\": \"zsheap-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\": "), std::string::npos);
  EXPECT_NE(json.find("heap_test.scoped"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsHeap, PublishesRegistryGauges) {
  SKIP_WITHOUT_INTERPOSITION();
  obs::HeapProfiler& profiler = obs::HeapProfiler::global();
  ASSERT_TRUE(profiler.start());
  churn(50, 256);
  profiler.stop();  // stop() publishes the zs_heap_* gauges
  const std::string prom =
      obs::to_prometheus(obs::Registry::global().snapshot());
  EXPECT_NE(prom.find("zs_heap_total_bytes"), std::string::npos);
  EXPECT_NE(prom.find("zs_heap_allocs"), std::string::npos);
  EXPECT_NE(prom.find("zs_heap_peak_live_bytes"), std::string::npos);
}

// --- pure-rendering tests (run under sanitizers too) ----------------

TEST(ObsHeapReport, JsonShape) {
  obs::HeapReport report;
  report.valid = true;
  report.duration_s = 1.5;
  report.sample_every = 1024;
  report.total_bytes = 4096;
  report.allocs = 4;
  report.frees = 2;
  report.freed_bytes = 2048;
  report.live_bytes = -128;  // negative net delta must render
  report.peak_live_bytes = 4096;
  report.samples = 2;
  report.sampled_bytes = 2048;
  report.size_class_allocs[0] = 1;
  report.size_class_allocs[obs::kHeapSizeClasses - 1] = 3;
  report.span_bytes["decode"] = {4000, 3};
  report.top_sites.push_back({"decode;mrt::read", 2048, 2});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"zsheap-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"live_bytes\": -128"), std::string::npos);
  EXPECT_NE(json.find("\"16\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"big\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"decode\": {\"bytes\": 4000, \"allocs\": 3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"stack\": \"decode;mrt::read\""), std::string::npos);
}

TEST(ObsHeapReport, TopReportRanksSpansByBytes) {
  obs::HeapReport report;
  report.valid = true;
  report.total_bytes = 100;
  report.span_bytes["small"] = {10, 1};
  report.span_bytes["large"] = {90, 2};
  const std::string text = report.top_report();
  const std::size_t large_at = text.find("large");
  const std::size_t small_at = text.find("small");
  ASSERT_NE(large_at, std::string::npos);
  ASSERT_NE(small_at, std::string::npos);
  EXPECT_LT(large_at, small_at);
}

TEST(ObsHeapReport, InvalidReportRendersEmpty) {
  const obs::HeapReport report;
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.to_json().find("\"valid\": false"), std::string::npos);
  EXPECT_TRUE(report.to_folded().empty());
}

}  // namespace

# Empty dependencies file for ablation_sendhold.
# This may be replaced when dependencies are built.

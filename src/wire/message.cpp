#include "wire/message.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace zombiescope::wire {

namespace {

// RFC 4271 §4.1: the marker is all ones.
constexpr std::uint8_t kMarkerByte = 0xff;

// Capability codes this speaker understands (RFC 5492 registry).
constexpr std::uint8_t kCapMultiprotocol = 1;
constexpr std::uint8_t kCapRouteRefresh = 2;
constexpr std::uint8_t kCapGracefulRestart = 64;
constexpr std::uint8_t kCapFourOctetAsn = 65;
constexpr std::uint8_t kCapLlgr = 71;
constexpr std::uint8_t kCapBridgePeerAddress = 240;  // RFC 8810 experimental range

// RFC 6793: the 2-octet My-AS placeholder when the real ASN needs 4.
constexpr std::uint16_t kAsTrans = 23456;

constexpr std::uint8_t kOptParamCapabilities = 2;

std::size_t min_length_for(bgp::MessageType type) {
  switch (type) {
    case bgp::MessageType::kOpen:
      return kHeaderSize + 10;  // version, my-as, hold, bgp-id, optlen
    case bgp::MessageType::kUpdate:
      return kHeaderSize + 4;  // withdrawn len + attr len
    case bgp::MessageType::kNotification:
      return kHeaderSize + 2;  // code + subcode
    case bgp::MessageType::kKeepalive:
      return kHeaderSize;
  }
  return kHeaderSize;
}

[[noreturn]] void throw_header(std::uint8_t subcode, const std::string& what) {
  throw WireError(NotifyCode::kMessageHeaderError, subcode, what);
}

[[noreturn]] void throw_open(std::uint8_t subcode, const std::string& what) {
  throw WireError(NotifyCode::kOpenMessageError, subcode, what);
}

void write_capability(netbase::ByteWriter& w, std::uint8_t code,
                      std::span<const std::uint8_t> payload) {
  w.u8(code);
  w.u8(static_cast<std::uint8_t>(payload.size()));
  w.bytes(payload);
}

}  // namespace

std::string to_string(NotifyCode code) {
  switch (code) {
    case NotifyCode::kMessageHeaderError:
      return "Message Header Error";
    case NotifyCode::kOpenMessageError:
      return "OPEN Message Error";
    case NotifyCode::kUpdateMessageError:
      return "UPDATE Message Error";
    case NotifyCode::kHoldTimerExpired:
      return "Hold Timer Expired";
    case NotifyCode::kFsmError:
      return "Finite State Machine Error";
    case NotifyCode::kCease:
      return "Cease";
    case NotifyCode::kRouteRefreshError:
      return "ROUTE-REFRESH Message Error";
    case NotifyCode::kSendHoldTimerExpired:
      return "Send Hold Timer Expired";
  }
  return "error " + std::to_string(static_cast<int>(code));
}

std::string notify_subcode_name(NotifyCode code, std::uint8_t subcode) {
  switch (code) {
    case NotifyCode::kMessageHeaderError:
      switch (subcode) {
        case kHdrConnectionNotSynchronized: return "Connection Not Synchronized";
        case kHdrBadMessageLength: return "Bad Message Length";
        case kHdrBadMessageType: return "Bad Message Type";
      }
      break;
    case NotifyCode::kOpenMessageError:
      switch (subcode) {
        case kOpenUnsupportedVersion: return "Unsupported Version Number";
        case kOpenBadPeerAs: return "Bad Peer AS";
        case kOpenBadBgpIdentifier: return "Bad BGP Identifier";
        case kOpenUnsupportedOptionalParameter: return "Unsupported Optional Parameter";
        case kOpenUnacceptableHoldTime: return "Unacceptable Hold Time";
        case kOpenUnsupportedCapability: return "Unsupported Capability";
      }
      break;
    case NotifyCode::kUpdateMessageError:
      switch (subcode) {
        case kUpdMalformedAttributeList: return "Malformed Attribute List";
        case 2: return "Unrecognized Well-known Attribute";
        case 3: return "Missing Well-known Attribute";
        case 4: return "Attribute Flags Error";
        case 5: return "Attribute Length Error";
        case 6: return "Invalid ORIGIN Attribute";
        case 8: return "Invalid NEXT_HOP Attribute";
        case 9: return "Optional Attribute Error";
        case kUpdInvalidNetworkField: return "Invalid Network Field";
        case kUpdMalformedAsPath: return "Malformed AS_PATH";
      }
      break;
    case NotifyCode::kCease:
      switch (subcode) {
        case 1: return "Maximum Number of Prefixes Reached";
        case kCeaseAdminShutdown: return "Administrative Shutdown";
        case kCeasePeerDeconfigured: return "Peer De-configured";
        case kCeaseAdminReset: return "Administrative Reset";
        case kCeaseConnectionRejected: return "Connection Rejected";
        case 6: return "Other Configuration Change";
        case kCeaseConnectionCollision: return "Connection Collision Resolution";
        case kCeaseOutOfResources: return "Out of Resources";
      }
      break;
    default:
      break;
  }
  if (subcode == 0) return "unspecific";
  return "subcode " + std::to_string(subcode);
}

MessageHeader decode_header(std::span<const std::uint8_t> wire) {
  if (wire.size() < kHeaderSize)
    throw netbase::DecodeError("wire: header needs 19 bytes");
  for (std::size_t i = 0; i < 16; ++i) {
    if (wire[i] != kMarkerByte)
      throw_header(kHdrConnectionNotSynchronized, "wire: bad marker");
  }
  MessageHeader header;
  header.length = static_cast<std::uint16_t>((wire[16] << 8) | wire[17]);
  const std::uint8_t type = wire[18];
  if (type < 1 || type > 4)
    throw_header(kHdrBadMessageType,
                 "wire: bad message type " + std::to_string(type));
  header.type = static_cast<bgp::MessageType>(type);
  if (header.length > kMaxMessageSize)
    throw_header(kHdrBadMessageLength,
                 "wire: length " + std::to_string(header.length) + " > 4096");
  if (header.length < min_length_for(header.type))
    throw_header(kHdrBadMessageLength,
                 "wire: length " + std::to_string(header.length) +
                     " below minimum for type " + std::to_string(type));
  if (header.type == bgp::MessageType::kKeepalive && header.length != kHeaderSize)
    throw_header(kHdrBadMessageLength, "wire: KEEPALIVE must be 19 bytes");
  return header;
}

std::size_t begin_message(netbase::ByteWriter& w, bgp::MessageType type) {
  for (int i = 0; i < 16; ++i) w.u8(kMarkerByte);
  const std::size_t length_at = w.reserve(2);
  w.u8(static_cast<std::uint8_t>(type));
  return length_at;
}

// --- OPEN ------------------------------------------------------------

std::vector<std::uint8_t> OpenMessage::encode() const {
  netbase::ByteWriter w;
  const std::size_t length_at = begin_message(w, bgp::MessageType::kOpen);
  w.u8(version);
  w.u16(asn <= 0xffff ? static_cast<std::uint16_t>(asn) : kAsTrans);
  w.u16(hold_time);
  w.u32(bgp_id);

  netbase::ByteWriter caps;
  if (cap_four_octet_asn) {
    netbase::ByteWriter p;
    p.u32(asn);
    write_capability(caps, kCapFourOctetAsn, p.data());
  }
  for (const auto& [afi, safi] : multiprotocol) {
    netbase::ByteWriter p;
    p.u16(afi);
    p.u8(0);  // reserved
    p.u8(safi);
    write_capability(caps, kCapMultiprotocol, p.data());
  }
  if (cap_route_refresh) write_capability(caps, kCapRouteRefresh, {});
  if (graceful_restart.has_value()) {
    netbase::ByteWriter p;
    std::uint16_t head = graceful_restart->restart_time & 0x0fff;
    if (graceful_restart->restarting) head |= 0x8000;
    p.u16(head);
    for (const GrTuple& t : graceful_restart->tuples) {
      p.u16(t.afi);
      p.u8(t.safi);
      p.u8(t.forwarding_preserved ? 0x80 : 0x00);
    }
    write_capability(caps, kCapGracefulRestart, p.data());
  }
  if (llgr.has_value()) {
    netbase::ByteWriter p;
    for (const LlgrTuple& t : llgr->tuples) {
      p.u16(t.afi);
      p.u8(t.safi);
      p.u8(0);  // flags (no F bit needed: the control plane is the point)
      p.u8(static_cast<std::uint8_t>((t.stale_time >> 16) & 0xff));
      p.u8(static_cast<std::uint8_t>((t.stale_time >> 8) & 0xff));
      p.u8(static_cast<std::uint8_t>(t.stale_time & 0xff));
    }
    write_capability(caps, kCapLlgr, p.data());
  }
  if (bridge_peer_address.has_value()) {
    netbase::ByteWriter p;
    p.u8(bridge_peer_address->is_v4() ? 4 : 6);
    p.bytes(std::span(bridge_peer_address->bytes())
                .first(static_cast<std::size_t>(bridge_peer_address->byte_length())));
    write_capability(caps, kCapBridgePeerAddress, p.data());
  }
  for (const RawCapability& c : unknown_capabilities)
    write_capability(caps, c.code, c.payload);

  if (caps.size() == 0) {
    w.u8(0);  // no optional parameters
  } else {
    w.u8(static_cast<std::uint8_t>(caps.size() + 2));
    w.u8(kOptParamCapabilities);
    w.u8(static_cast<std::uint8_t>(caps.size()));
    w.bytes(caps.data());
  }
  auto out = w.take();
  out[length_at] = static_cast<std::uint8_t>(out.size() >> 8);
  out[length_at + 1] = static_cast<std::uint8_t>(out.size() & 0xff);
  return out;
}

OpenMessage OpenMessage::decode(std::span<const std::uint8_t> wire) {
  const MessageHeader header = decode_header(wire);
  if (header.type != bgp::MessageType::kOpen)
    throw_open(0, "wire: not an OPEN");
  if (header.length != wire.size())
    throw_header(kHdrBadMessageLength, "wire: OPEN length mismatch");

  netbase::ByteReader r(wire.subspan(kHeaderSize));
  OpenMessage open;
  open.cap_four_octet_asn = false;
  open.version = r.u8();
  if (open.version != kBgpVersion)
    throw_open(kOpenUnsupportedVersion,
               "wire: BGP version " + std::to_string(open.version));
  open.asn = r.u16();
  open.hold_time = r.u16();
  // §4.2: hold time MUST be 0 or at least 3 seconds.
  if (open.hold_time == 1 || open.hold_time == 2)
    throw_open(kOpenUnacceptableHoldTime,
               "wire: hold time " + std::to_string(open.hold_time));
  open.bgp_id = r.u32();
  if (open.bgp_id == 0)
    throw_open(kOpenBadBgpIdentifier, "wire: BGP identifier 0");

  std::size_t opt_len = r.u8();
  if (opt_len != r.remaining())
    throw_open(0, "wire: optional parameter length mismatch");
  while (!r.done()) {
    const std::uint8_t param_type = r.u8();
    const std::uint8_t param_len = r.u8();
    if (param_len > r.remaining())
      throw_open(0, "wire: optional parameter truncated");
    netbase::ByteReader p = r.sub(param_len);
    if (param_type != kOptParamCapabilities)
      throw_open(kOpenUnsupportedOptionalParameter,
                 "wire: optional parameter " + std::to_string(param_type));
    while (!p.done()) {
      if (p.remaining() < 2) throw_open(0, "wire: capability truncated");
      const std::uint8_t cap_code = p.u8();
      const std::uint8_t cap_len = p.u8();
      if (cap_len > p.remaining())
        throw_open(0, "wire: capability " + std::to_string(cap_code) + " truncated");
      netbase::ByteReader c = p.sub(cap_len);
      switch (cap_code) {
        case kCapFourOctetAsn: {
          if (cap_len != 4) throw_open(0, "wire: 4-octet-AS capability length");
          open.cap_four_octet_asn = true;
          open.asn = c.u32();
          break;
        }
        case kCapMultiprotocol: {
          if (cap_len != 4) throw_open(0, "wire: multiprotocol capability length");
          const std::uint16_t afi = c.u16();
          c.u8();  // reserved
          open.multiprotocol.emplace_back(afi, c.u8());
          break;
        }
        case kCapRouteRefresh:
          open.cap_route_refresh = true;
          break;
        case kCapGracefulRestart: {
          if (cap_len < 2 || (cap_len - 2) % 4 != 0)
            throw_open(0, "wire: graceful-restart capability length");
          GracefulRestart gr;
          const std::uint16_t head = c.u16();
          gr.restarting = (head & 0x8000) != 0;
          gr.restart_time = head & 0x0fff;
          while (!c.done()) {
            GrTuple t;
            t.afi = c.u16();
            t.safi = c.u8();
            t.forwarding_preserved = (c.u8() & 0x80) != 0;
            gr.tuples.push_back(t);
          }
          open.graceful_restart = std::move(gr);
          break;
        }
        case kCapLlgr: {
          if (cap_len % 7 != 0) throw_open(0, "wire: LLGR capability length");
          LongLivedGracefulRestart llgr;
          while (!c.done()) {
            LlgrTuple t;
            t.afi = c.u16();
            t.safi = c.u8();
            c.u8();  // flags
            t.stale_time = static_cast<std::uint32_t>(c.u8()) << 16;
            t.stale_time |= static_cast<std::uint32_t>(c.u8()) << 8;
            t.stale_time |= c.u8();
            llgr.tuples.push_back(t);
          }
          open.llgr = std::move(llgr);
          break;
        }
        case kCapBridgePeerAddress: {
          if (cap_len != 5 && cap_len != 17)
            throw_open(0, "wire: bridge peer-address capability length");
          const std::uint8_t family = c.u8();
          if (family == 4 && cap_len == 5) {
            std::array<std::uint8_t, 4> b{};
            const auto s = c.bytes(4);
            std::copy(s.begin(), s.end(), b.begin());
            open.bridge_peer_address = netbase::IpAddress::v4(b);
          } else if (family == 6 && cap_len == 17) {
            std::array<std::uint8_t, 16> b{};
            const auto s = c.bytes(16);
            std::copy(s.begin(), s.end(), b.begin());
            open.bridge_peer_address = netbase::IpAddress::v6(b);
          } else {
            throw_open(0, "wire: bridge peer-address family/length mismatch");
          }
          break;
        }
        default: {
          RawCapability raw;
          raw.code = cap_code;
          const auto s = c.bytes(c.remaining());
          raw.payload.assign(s.begin(), s.end());
          open.unknown_capabilities.push_back(std::move(raw));
          break;
        }
      }
    }
  }
  if (open.asn == 0) throw_open(kOpenBadPeerAs, "wire: peer AS 0");
  return open;
}

// --- NOTIFICATION ----------------------------------------------------

std::vector<std::uint8_t> NotificationMessage::encode() const {
  netbase::ByteWriter w;
  const std::size_t length_at = begin_message(w, bgp::MessageType::kNotification);
  w.u8(static_cast<std::uint8_t>(code));
  w.u8(subcode);
  w.bytes(data);
  auto out = w.take();
  out[length_at] = static_cast<std::uint8_t>(out.size() >> 8);
  out[length_at + 1] = static_cast<std::uint8_t>(out.size() & 0xff);
  return out;
}

NotificationMessage NotificationMessage::decode(std::span<const std::uint8_t> wire) {
  const MessageHeader header = decode_header(wire);
  if (header.type != bgp::MessageType::kNotification)
    throw netbase::DecodeError("wire: not a NOTIFICATION");
  if (header.length != wire.size())
    throw_header(kHdrBadMessageLength, "wire: NOTIFICATION length mismatch");
  netbase::ByteReader r(wire.subspan(kHeaderSize));
  NotificationMessage n;
  n.code = static_cast<NotifyCode>(r.u8());
  n.subcode = r.u8();
  const auto rest = r.bytes(r.remaining());
  n.data.assign(rest.begin(), rest.end());
  return n;
}

std::string NotificationMessage::to_string() const {
  return wire::to_string(code) + "/" + notify_subcode_name(code, subcode);
}

// --- KEEPALIVE / UPDATE ----------------------------------------------

std::vector<std::uint8_t> encode_keepalive() {
  netbase::ByteWriter w;
  const std::size_t length_at = begin_message(w, bgp::MessageType::kKeepalive);
  auto out = w.take();
  out[length_at] = 0;
  out[length_at + 1] = kHeaderSize;
  return out;
}

std::vector<std::uint8_t> encode_update(const bgp::UpdateMessage& update) {
  auto wire = update.encode();
  if (wire.size() > kMaxMessageSize)
    throw WireError(NotifyCode::kUpdateMessageError, kUpdMalformedAttributeList,
                    "wire: UPDATE encodes to " + std::to_string(wire.size()) +
                        " bytes (max 4096); split the routes");
  return wire;
}

bgp::UpdateMessage decode_update(std::span<const std::uint8_t> wire) {
  decode_header(wire);  // marker/length/type validation with header subcodes
  try {
    return bgp::UpdateMessage::decode(wire);
  } catch (const WireError&) {
    throw;
  } catch (const netbase::DecodeError& e) {
    throw WireError(NotifyCode::kUpdateMessageError, kUpdMalformedAttributeList,
                    e.what());
  }
}

// --- FrameReader -----------------------------------------------------

void FrameReader::append(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::append(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (buffer_.size() < kHeaderSize) return std::nullopt;
  // Validates marker/length/type as soon as the header is in; a bogus
  // header fails here rather than stalling on a nonsense length.
  const MessageHeader header = decode_header(buffer_);
  if (buffer_.size() < header.length) return std::nullopt;
  std::vector<std::uint8_t> message(buffer_.begin(), buffer_.begin() + header.length);
  buffer_.erase(buffer_.begin(), buffer_.begin() + header.length);
  return message;
}

}  // namespace zombiescope::wire

// Tests for the zslive streaming detection service: the bounded MPSC
// shard queue, prefix-hash partitioning invariants, in-band beacon
// expect ordering, SSE framing, NDJSON feed parsing, and replay-speed
// independence. Suites are Obs-prefixed so scripts/run_tier1.sh runs
// them under TSan and ASan+UBSan: the queue, the snapshot publication,
// and the SSE channel are the subsystem's lock-free/concurrent core.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "live/feed.hpp"
#include "live/loopback.hpp"
#include "live/peerq.hpp"
#include "live/queue.hpp"
#include "live/service.hpp"
#include "obs/http.hpp"
#include "obs/journal.hpp"
#include "obs/lathist.hpp"

namespace zombiescope::live {
namespace {

using beacon::BeaconEvent;
using netbase::IpAddress;
using netbase::kMinute;
using netbase::Prefix;
using netbase::TimePoint;
using zombie::PeerKey;

PeerKey peer_a() { return {64500, IpAddress::parse("192.0.2.1")}; }
PeerKey peer_b() { return {64501, IpAddress::parse("192.0.2.2")}; }

mrt::MrtRecord announce(TimePoint t, const PeerKey& peer, const Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = IpAddress::parse("193.0.4.28");
  m.update.announced.push_back(prefix);
  m.update.attributes.as_path = bgp::AsPath{peer.asn, 25091, 8298, 210312};
  m.update.attributes.next_hop = peer.address;
  return mrt::MrtRecord{std::move(m)};
}

mrt::MrtRecord withdraw(TimePoint t, const PeerKey& peer, const Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = peer.asn;
  m.peer_address = peer.address;
  m.local_asn = 12654;
  m.local_address = IpAddress::parse("193.0.4.28");
  m.update.withdrawn.push_back(prefix);
  return mrt::MrtRecord{std::move(m)};
}

// ---------------------------------------------------------------------------
// Bounded MPSC queue
// ---------------------------------------------------------------------------

TEST(ObsLiveQueue, FifoOrderSingleProducer) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(ObsLiveQueue, TryPushFailsWhenFullAndRecoversAfterPop) {
  BoundedMpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(99));
}

TEST(ObsLiveQueue, BlockingPushWaitsForConsumer) {
  BoundedMpscQueue<int> q(4);
  constexpr int kItems = 500;
  std::vector<int> seen;
  std::thread consumer([&] {
    int v = -1;
    while (static_cast<int>(seen.size()) < kItems) {
      if (q.pop_wait(v, std::chrono::milliseconds(50))) seen.push_back(v);
    }
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push_blocking(int{i}));
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(ObsLiveQueue, CloseDrainsRemainingThenWakesConsumer) {
  BoundedMpscQueue<int> q(8);
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.push_blocking(8));  // producers refused after close
  int v = -1;
  EXPECT_TRUE(q.pop_wait(v, std::chrono::milliseconds(50)));
  EXPECT_EQ(v, 7);  // the final drain still hands over queued items
  EXPECT_FALSE(q.pop_wait(v, std::chrono::milliseconds(50)));
  EXPECT_TRUE(q.closed());
}

TEST(ObsLiveQueue, MultiProducerStressDeliversEverything) {
  BoundedMpscQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push_blocking(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  seen.reserve(kProducers * kPerProducer);
  int v = -1;
  while (static_cast<int>(seen.size()) < kProducers * kPerProducer) {
    if (q.pop_wait(v, std::chrono::milliseconds(100))) seen.push_back(v);
  }
  for (auto& t : producers) t.join();
  std::set<int> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

// ---------------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------------

TEST(ObsLiveShard, SamePrefixAlwaysSameShard) {
  const auto p4 = Prefix::parse("93.175.147.0/24");
  const auto p6 = Prefix::parse("2a0d:3dc1:1200::/48");
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const std::size_t s4 = shard_for(p4, shards);
    const std::size_t s6 = shard_for(p6, shards);
    EXPECT_LT(s4, shards);
    EXPECT_LT(s6, shards);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(shard_for(p4, shards), s4);
      EXPECT_EQ(shard_for(p6, shards), s6);
    }
  }
}

TEST(ObsLiveShard, HashSpreadsPrefixesAcrossShards) {
  std::set<std::size_t> hit;
  for (int i = 0; i < 64; ++i) {
    const auto prefix =
        Prefix::parse("10." + std::to_string(i) + ".0.0/16");
    hit.insert(shard_for(prefix, 4));
  }
  // 64 distinct prefixes into 4 buckets: every bucket should be used.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ObsLiveShard, ResizeRejectedAfterStart) {
  LiveConfig config;
  config.shards = 2;
  LiveService service(config);
  service.resize(4);  // fine before start
  service.start();
  EXPECT_THROW(service.resize(8), std::logic_error);
  service.stop();
}

TEST(ObsLiveShard, SubmitRoutesRecordsToOwningShard) {
  LiveConfig config;
  config.shards = 4;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  std::vector<std::uint64_t> expected(4, 0);
  for (int i = 0; i < 32; ++i) {
    const auto prefix = Prefix::parse("10." + std::to_string(i) + ".0.0/16");
    ++expected[shard_for(prefix, 4)];
    ASSERT_TRUE(service.submit(announce(t0 + i, peer_a(), prefix)));
  }
  service.finalize(t0 + 1000);
  const auto stats = service.stats();
  ASSERT_EQ(stats.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stats[i].submitted, expected[i]) << "shard " << i;
    EXPECT_EQ(stats[i].processed, expected[i]) << "shard " << i;
  }
  service.stop();
}

TEST(ObsLiveShard, EmergeThenDieViaWithdrawal) {
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  config.detector.threshold = 5 * kMinute;
  LiveService service(config);
  service.start();
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  const auto prefix = Prefix::parse("2a0d:3dc1:1200::/48");
  const auto w = t0 + 10 * kMinute;
  service.expect({prefix, t0, w, false});
  ASSERT_TRUE(service.submit(announce(t0 + 10, peer_a(), prefix)));
  ASSERT_TRUE(service.submit(announce(t0 + 12, peer_b(), prefix)));
  // peer_a withdraws in time; peer_b's withdrawal is "lost".
  ASSERT_TRUE(service.submit(withdraw(w + 30, peer_a(), prefix)));
  service.finalize(w + 6 * kMinute);
  auto pairs = service.emerged_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, prefix);
  EXPECT_EQ(pairs[0].second, peer_b());
  auto zombies = service.zombies();
  ASSERT_EQ(zombies.size(), 1u);
  EXPECT_EQ(zombies[0].alert.peer, peer_b());
  EXPECT_FALSE(zombies[0].resurrected);
  // The stuck route finally clears: a die event, no active zombie.
  ASSERT_TRUE(service.submit(withdraw(w + 20 * kMinute, peer_b(), prefix)));
  service.finalize(w + 21 * kMinute);
  EXPECT_TRUE(service.zombies().empty());
  std::uint64_t died = 0;
  for (std::size_t i = 0; i < 2; ++i) died += service.snapshot(i)->died;
  EXPECT_EQ(died, 1u);
  EXPECT_GE(service.events().published(), 2u);  // emerge + die on the SSE hub
  service.stop();
}

TEST(ObsLiveShard, UpfrontScheduleDeliveredInStreamOrder) {
  // Regression: a whole multi-cycle schedule registered before any
  // records must not let cycle 2's expect supersede cycle 1's watch
  // before cycle 1's deadline fires.
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  config.detector.threshold = 5 * kMinute;
  LiveService service(config);
  service.start();
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  const auto prefix = Prefix::parse("100.64.1.0/24");
  const auto cycle = 20 * kMinute;
  service.expect({prefix, t0, t0 + 10 * kMinute, false});
  service.expect({prefix, t0 + cycle, t0 + cycle + 10 * kMinute, false});
  ASSERT_TRUE(service.submit(announce(t0 + 5, peer_a(), prefix)));
  // Cycle 1's withdrawal never arrives; the next record the shard sees
  // is already cycle 2's announcement.
  ASSERT_TRUE(service.submit(announce(t0 + cycle + 5, peer_a(), prefix)));
  service.finalize();
  // Cycle 1 emerged (deadline t0+15min fired before the recycle at
  // t0+20min) and died at the recycle; cycle 2 emerged too (its
  // withdrawal never arrived either).
  const auto pairs = service.emerged_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, prefix);
  std::uint64_t emerged = 0;
  std::uint64_t died = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    emerged += service.snapshot(i)->emerged;
    died += service.snapshot(i)->died;
  }
  EXPECT_EQ(emerged, 2u);
  EXPECT_EQ(died, 1u);
  service.stop();
}

TEST(ObsLiveShard, EpochsAdvanceMonotonically) {
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  std::uint64_t last = service.epoch();
  for (int i = 0; i < 8; ++i) {
    const auto prefix = Prefix::parse("10." + std::to_string(i) + ".0.0/16");
    ASSERT_TRUE(service.submit(announce(t0 + i, peer_a(), prefix)));
    service.finalize(t0 + 100 + i);
    const std::uint64_t now = service.epoch();
    EXPECT_GE(now, last);
    last = now;
  }
  service.stop();
}

// ---------------------------------------------------------------------------
// SSE framing and streaming
// ---------------------------------------------------------------------------

TEST(ObsLiveSse, FrameSplitsMultilineData) {
  const std::string f = obs::SseChannel::frame("emerge", "line1\nline2", 7);
  EXPECT_EQ(f, "event: emerge\ndata: line1\ndata: line2\nid: 7\n\n");
}

TEST(ObsLiveSse, CollectReplaysRetainedAndReportsMissed) {
  obs::SseChannel channel(4);
  for (int i = 0; i < 10; ++i) {
    channel.publish("e", "payload" + std::to_string(i));
  }
  std::string out;
  std::uint64_t cursor = channel.collect(1, out);
  EXPECT_EQ(cursor, channel.head());
  EXPECT_NE(out.find(": missed 6 events"), std::string::npos);
  EXPECT_EQ(out.find("payload5"), std::string::npos);  // fell out of retention
  EXPECT_NE(out.find("payload6"), std::string::npos);
  EXPECT_NE(out.find("payload9"), std::string::npos);
  out.clear();
  EXPECT_EQ(channel.collect(cursor, out), cursor);
  EXPECT_TRUE(out.empty());  // caught up: nothing new
}

namespace sse {

/// Connects, sends a GET for `target`, and reads until `want` appears
/// in the stream (or ~2s elapse). Returns everything read.
std::string read_until(std::uint16_t port, const std::string& target,
                       const std::string& want) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  timeval tv{};
  tv.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string raw;
  char buf[4096];
  for (int spins = 0; spins < 20 && raw.find(want) == std::string::npos; ++spins) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) raw.append(buf, static_cast<std::size_t>(n));
    if (n == 0) break;
  }
  ::close(fd);
  return raw;
}

}  // namespace sse

TEST(ObsLiveSse, HttpStreamDeliversPublishedFrames) {
  obs::SseChannel channel;
  obs::HttpServer server;
  server.add_stream("/live/events", &channel);
  ASSERT_TRUE(server.start(0));
  channel.publish("emerge", "{\"prefix\":\"2a0d:3dc1:1200::/48\"}");
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    channel.publish("die", "{\"prefix\":\"2a0d:3dc1:1200::/48\"}");
  });
  // ?since=0 replays the retained emerge, then the live die arrives.
  const std::string raw =
      sse::read_until(server.port(), "/live/events?since=0", "event: die");
  late.join();
  server.stop();
  EXPECT_NE(raw.find("text/event-stream"), std::string::npos);
  EXPECT_NE(raw.find("event: emerge"), std::string::npos);
  EXPECT_NE(raw.find("event: die"), std::string::npos);
  EXPECT_LT(raw.find("event: emerge"), raw.find("event: die"));
}

TEST(ObsLiveSse, HeartbeatsFlowWhenIdle) {
  obs::SseChannel channel;
  obs::HttpServer server;
  server.add_stream("/live/events", &channel);
  server.set_heartbeat_interval_ms(50);
  ASSERT_TRUE(server.start(0));
  const std::string raw = sse::read_until(server.port(), "/live/events", ": hb");
  server.stop();
  EXPECT_NE(raw.find(": hb"), std::string::npos);
}

TEST(ObsLiveSse, DroppedClientDoesNotStallPublishers) {
  obs::SseChannel channel;
  obs::HttpServer server;
  server.add_stream("/live/events", &channel);
  ASSERT_TRUE(server.start(0));
  {
    // Subscribe, read the headers, then vanish without closing cleanly.
    const std::string head =
        sse::read_until(server.port(), "/live/events", "text/event-stream");
    ASSERT_NE(head.find("200 OK"), std::string::npos);
  }
  // Publishing to a hub whose only subscriber is gone must not block.
  for (int i = 0; i < 100; ++i) channel.publish("e", "x");
  EXPECT_EQ(channel.published(), 100u);
  // And a fresh subscriber still gets served.
  channel.publish("fresh", "y");
  const std::string raw =
      sse::read_until(server.port(), "/live/events?since=0", "event: fresh");
  EXPECT_NE(raw.find("event: fresh"), std::string::npos);
  server.stop();
}

TEST(ObsLiveSse, SlowConsumerIsEvictedWithoutBlockingOthers) {
  obs::SseChannel channel;
  obs::HttpServer server;
  server.add_stream("/live/events", &channel);
  // A tiny backlog bound so a stalled client trips eviction quickly.
  server.set_max_client_buffer(4096);
  ASSERT_TRUE(server.start(0));

  // A client that subscribes, reads the headers, then stops reading
  // entirely while keeping the socket open — the classic slow consumer.
  const int slow_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(slow_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // Shrink the kernel receive buffer so the server's sends back up
  // into its userspace backlog instead of the socket buffers.
  int rcvbuf = 1024;
  ::setsockopt(slow_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  const std::string request = "GET /live/events HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(slow_fd, request.data(), request.size(), 0), 0);
  char head[256];
  (void)::recv(slow_fd, head, sizeof(head), 0);  // headers only, then stall

  // Flooding the channel must neither block this (publisher) thread
  // nor wedge the serving loop: the stalled client's backlog crosses
  // max_client_buffer and it gets evicted.
  const std::string payload(512, 'x');
  const auto flood_started = std::chrono::steady_clock::now();
  for (int i = 0; i < 200; ++i) channel.publish("flood", payload);
  const auto flood_elapsed =
      std::chrono::steady_clock::now() - flood_started;
  EXPECT_EQ(channel.published(), 200u);
  EXPECT_LT(flood_elapsed, std::chrono::seconds(5));

  // Eviction happens on the serving thread's next write pass; a fresh
  // well-behaved client must be served regardless, proving the fanout
  // loop never stalled on the dead weight. A no-?since subscriber only
  // sees events published after it connects, so publish from a delayed
  // thread once the reader is attached.
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    channel.publish("fresh", "y");
  });
  const std::string raw =
      sse::read_until(server.port(), "/live/events", "event: fresh");
  late.join();
  EXPECT_NE(raw.find("event: fresh"), std::string::npos);

  // The stalled client is gone by now (or on the next pass): poll
  // briefly for the eviction counter.
  bool evicted = false;
  for (int spin = 0; spin < 100 && !evicted; ++spin) {
    evicted = server.slow_clients_evicted() > 0;
    if (!evicted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(evicted) << "slow client was never evicted";
  ::close(slow_fd);
  server.stop();
}

// ---------------------------------------------------------------------------
// RIS-Live NDJSON parsing and the TCP feed
// ---------------------------------------------------------------------------

TEST(ObsLiveFeed, ParsesWrappedUpdateWithPathAndSet) {
  const auto record = parse_ris_live_line(
      R"({"type":"ris_message","data":{"timestamp":1717500000.42,)"
      R"("peer":"192.0.2.1","peer_asn":"64500","type":"UPDATE",)"
      R"("path":[64500,[25091,25092],8298,210312],)"
      R"("announcements":[{"next_hop":"192.0.2.1",)"
      R"("prefixes":["93.175.147.0/24","2a0d:3dc1:1200::/48"]}],)"
      R"("withdrawals":["93.175.146.0/24"]}})");
  ASSERT_TRUE(record.has_value());
  const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&*record);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->timestamp, 1717500000);
  EXPECT_EQ(msg->peer_asn, 64500u);
  EXPECT_EQ(msg->peer_address, IpAddress::parse("192.0.2.1"));
  ASSERT_EQ(msg->update.announced.size(), 2u);
  EXPECT_EQ(msg->update.announced[0], Prefix::parse("93.175.147.0/24"));
  ASSERT_EQ(msg->update.withdrawn.size(), 1u);
  // Nested arrays (AS_SET) are flattened into the sequence.
  EXPECT_EQ(msg->update.attributes.as_path.length(), 5);
}

TEST(ObsLiveFeed, ParsesBareStateMessage) {
  const auto record = parse_ris_live_line(
      R"({"timestamp":1717500060,"peer":"192.0.2.9","peer_asn":64509,)"
      R"("type":"RIS_PEER_STATE","state":"connected"})");
  ASSERT_TRUE(record.has_value());
  const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&*record);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->peer_asn, 64509u);
  EXPECT_EQ(state->new_state, bgp::SessionState::kEstablished);
}

TEST(ObsLiveFeed, RejectsMalformedAndUselessLines) {
  EXPECT_FALSE(parse_ris_live_line("").has_value());
  EXPECT_FALSE(parse_ris_live_line("not json at all").has_value());
  EXPECT_FALSE(parse_ris_live_line(R"({"type":"ris_error","data":{}})").has_value());
  // An UPDATE with no prefixes carries nothing for the detector.
  EXPECT_FALSE(parse_ris_live_line(
                   R"({"timestamp":1,"peer":"192.0.2.1","peer_asn":1,)"
                   R"("type":"UPDATE"})")
                   .has_value());
  // Missing peer identity.
  EXPECT_FALSE(parse_ris_live_line(
                   R"({"timestamp":1,"type":"UPDATE","withdrawals":["10.0.0.0/8"]})")
                   .has_value());
}

TEST(ObsLiveFeed, TcpFeedSubmitsParsedLines) {
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  TcpNdjsonFeedSource feed(0);
  ASSERT_NE(feed.port(), 0);
  FeedSource::RunStats stats;
  std::thread pump([&] { stats = feed.run(service); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(feed.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string lines =
      R"({"timestamp":1717500000,"peer":"192.0.2.1","peer_asn":64500,)"
      R"("type":"UPDATE","announcements":[{"next_hop":"192.0.2.1",)"
      R"("prefixes":["93.175.147.0/24"]}]})"
      "\n"
      "this line is garbage\n"
      R"({"timestamp":1717500100,"peer":"192.0.2.1","peer_asn":64500,)"
      R"("type":"UPDATE","withdrawals":["93.175.147.0/24"]})"
      "\n";
  ASSERT_EQ(::send(fd, lines.data(), lines.size(), 0),
            static_cast<ssize_t>(lines.size()));
  ::close(fd);

  for (int spins = 0; spins < 100 && service.processed() < 2; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  feed.stop();
  pump.join();
  service.finalize(1717500200);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(service.processed(), 2u);
  service.stop();
}

TEST(ObsLiveFeed, TcpFeedFlushesFinalUnterminatedLineOnDisconnect) {
  // A peer that disconnects mid-stream without a trailing newline must
  // still have its buffered final line parsed and submitted — EOF acts
  // as the line terminator.
  LiveConfig config;
  config.shards = 1;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  TcpNdjsonFeedSource feed(0);
  ASSERT_NE(feed.port(), 0);
  FeedSource::RunStats stats;
  std::thread pump([&] { stats = feed.run(service); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(feed.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string lines =
      R"({"timestamp":1717500000,"peer":"192.0.2.1","peer_asn":64500,)"
      R"("type":"UPDATE","announcements":[{"next_hop":"192.0.2.1",)"
      R"("prefixes":["93.175.147.0/24"]}]})"
      "\n"
      // No trailing newline: only EOF terminates this one.
      R"({"timestamp":1717500100,"peer":"192.0.2.1","peer_asn":64500,)"
      R"("type":"UPDATE","withdrawals":["93.175.147.0/24"]})";
  ASSERT_EQ(::send(fd, lines.data(), lines.size(), 0),
            static_cast<ssize_t>(lines.size()));
  ::close(fd);

  for (int spins = 0; spins < 200 && service.processed() < 2; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  feed.stop();
  pump.join();
  service.finalize(1717500200);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.parse_errors, 0u);
  EXPECT_EQ(service.processed(), 2u);
  service.stop();
}

TEST(ObsLiveFeed, TcpFeedSurvivesDisconnectAndAcceptsReconnect) {
  // Client drops, another one (the "reconnect") comes back: the feed
  // keeps serving, and per-client line buffers do not bleed between
  // connections.
  LiveConfig config;
  config.shards = 1;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  TcpNdjsonFeedSource feed(0);
  ASSERT_NE(feed.port(), 0);
  FeedSource::RunStats stats;
  std::thread pump([&] { stats = feed.run(service); });

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(feed.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  // First connection dies holding half a line in its buffer; the
  // half-line flushes at EOF and fails to parse — one parse error,
  // nothing submitted, the server must not crash or stall.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string partial = R"({"timestamp":1717500000,"peer":"192.0)";
    ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
              static_cast<ssize_t>(partial.size()));
    ::close(fd);
  }

  // Reconnect and feed a complete record: must be parsed cleanly, with
  // no residue from the first connection's buffer.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string line =
        R"({"timestamp":1717500100,"peer":"192.0.2.1","peer_asn":64500,)"
        R"("type":"UPDATE","announcements":[{"next_hop":"192.0.2.1",)"
        R"("prefixes":["93.175.147.0/24"]}]})"
        "\n";
    ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    ::close(fd);
  }

  for (int spins = 0; spins < 200 && service.processed() < 1; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  feed.stop();
  pump.join();
  service.finalize(1717500200);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(service.processed(), 1u);
  service.stop();
}

// ---------------------------------------------------------------------------
// zspeerq: per-peer feed quality
// ---------------------------------------------------------------------------

mrt::MrtRecord session_drop(TimePoint t, const PeerKey& peer) {
  mrt::Bgp4mpStateChange c;
  c.timestamp = t;
  c.peer_asn = peer.asn;
  c.peer_address = peer.address;
  c.old_state = bgp::SessionState::kEstablished;
  c.new_state = bgp::SessionState::kIdle;
  return mrt::MrtRecord{c};
}

BeaconEvent cycle_event(const Prefix& prefix, TimePoint announce,
                        TimePoint withdraw, bool superseded = false) {
  BeaconEvent event;
  event.prefix = prefix;
  event.announce_time = announce;
  event.withdraw_time = withdraw;
  event.superseded = superseded;
  return event;
}

std::shared_ptr<const PeerQShardSnapshot> make_snap(
    std::uint64_t epoch, TimePoint clock, std::uint64_t cycles,
    std::vector<std::pair<PeerKey, PeerCell>> peers) {
  auto snap = std::make_shared<PeerQShardSnapshot>();
  snap->epoch = epoch;
  snap->clock = clock;
  snap->cycles_closed = cycles;
  for (auto& [key, cell] : peers) snap->peers[key] = cell;
  return snap;
}

PeerCell stuck_cell(std::uint64_t stuck, std::uint64_t updates = 100) {
  PeerCell cell;
  cell.updates = updates;
  cell.stuck = stuck;
  return cell;
}

TEST(ObsPeerQ, WilsonIntervalKnownValuesAndEdges) {
  // No evidence: the full [0, 1] band.
  const auto empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.low, 0.0);
  EXPECT_EQ(empty.high, 1.0);
  // Classic check: 5/10 at z = 1.96 -> [0.2366, 0.7634].
  const auto half = wilson_interval(5, 10);
  EXPECT_NEAR(half.low, 0.2366, 1e-3);
  EXPECT_NEAR(half.high, 0.7634, 1e-3);
  // More trials at the same ratio narrow the band.
  const auto more = wilson_interval(500, 1000);
  EXPECT_GT(more.low, half.low);
  EXPECT_LT(more.high, half.high);
  // Extremes stay clamped inside [0, 1].
  const auto all = wilson_interval(10, 10);
  EXPECT_GT(all.low, 0.5);
  EXPECT_LE(all.high, 1.0);
  const auto none = wilson_interval(0, 10);
  EXPECT_GE(none.low, 0.0);
  EXPECT_LT(none.high, 0.5);
}

TEST(ObsPeerQ, AccumulatorTracksCycleVisibilityAndMissStreaks) {
  const Prefix prefix = Prefix::parse("93.175.147.0/24");
  const netbase::Duration threshold = 90 * kMinute;
  PeerQAccumulator acc;

  // Cycle 1: both peers announce, only A withdraws in the window.
  acc.on_expect(cycle_event(prefix, 1000, 1000 + 2 * 3600), threshold);
  acc.on_record(announce(1100, peer_a(), prefix));
  acc.on_record(announce(1200, peer_b(), prefix));
  acc.on_record(withdraw(1000 + 2 * 3600 + 10, peer_a(), prefix));
  // A withdrawal *before* the scheduled withdraw time belongs to an
  // earlier window and must not count.
  acc.on_record(withdraw(2000, peer_b(), prefix));
  EXPECT_EQ(acc.cycles_closed(), 0u);
  acc.advance(1000 + 2 * 3600 + threshold + 1);  // strictly past deadline
  EXPECT_EQ(acc.cycles_closed(), 1u);

  // Cycle 2: only A shows up; B starts a miss streak.
  const TimePoint t2 = 1000 + 4 * 3600;
  acc.on_expect(cycle_event(prefix, t2, t2 + 2 * 3600), threshold);
  acc.on_record(announce(t2 + 100, peer_a(), prefix));
  acc.advance(t2 + 2 * 3600 + threshold + 1);
  EXPECT_EQ(acc.cycles_closed(), 2u);

  // A superseded event never opens a cycle.
  acc.on_expect(cycle_event(prefix, t2, t2 + 2 * 3600, /*superseded=*/true),
                threshold);
  acc.advance(t2 + 100 * 3600);
  EXPECT_EQ(acc.cycles_closed(), 2u);

  const auto snap = acc.snapshot(t2 + 100 * 3600, 1);
  const PeerCell& a = snap->peers.at(peer_a());
  EXPECT_EQ(a.ann_seen, 2u);
  EXPECT_EQ(a.wd_seen, 1u);
  EXPECT_EQ(a.miss_streak, 0u);
  EXPECT_EQ(a.updates, 3u);
  EXPECT_EQ(a.announcements, 2u);
  EXPECT_EQ(a.withdrawals, 1u);
  const PeerCell& b = snap->peers.at(peer_b());
  EXPECT_EQ(b.ann_seen, 1u);
  EXPECT_EQ(b.wd_seen, 0u);
  EXPECT_EQ(b.miss_streak, 1u);
}

TEST(ObsPeerQ, AccumulatorUniverseMatchesStateTrackerRules) {
  PeerQAccumulator acc;
  // A session state change alone never creates a peer...
  acc.on_record(session_drop(1000, peer_a()));
  EXPECT_EQ(acc.peer_count(), 0u);
  // ...but an update does, and later resets on that peer count.
  acc.on_record(announce(1100, peer_a(), Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(acc.peer_count(), 1u);
  acc.on_record(session_drop(1200, peer_a()));
  acc.on_record(session_drop(1300, peer_a()));
  // A stuck route creates its peer too (RIB-sourced zombies can
  // involve peers never seen in the update stream).
  zombie::ZombieAlert alert;
  alert.prefix = Prefix::parse("10.0.0.0/8");
  alert.peer = peer_b();
  acc.on_stuck(alert);
  EXPECT_EQ(acc.peer_count(), 2u);

  const auto snap = acc.snapshot(2000, 1);
  EXPECT_EQ(snap->peers.at(peer_a()).session_resets, 2u);
  EXPECT_EQ(snap->peers.at(peer_b()).stuck, 1u);
  EXPECT_EQ(snap->peers.at(peer_b()).updates, 0u);
}

TEST(ObsPeerQ, SnapshotClearsPublishDue) {
  PeerQAccumulator acc;
  EXPECT_FALSE(acc.publish_due());
  acc.on_record(announce(1000, peer_a(), Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(acc.publish_due());
  (void)acc.snapshot(1000, 1);
  EXPECT_FALSE(acc.publish_due());
  // Another update to a known peer is not classifier-relevant...
  acc.on_record(announce(1100, peer_a(), Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(acc.publish_due());
  // ...a session reset is.
  acc.on_record(session_drop(1200, peer_a()));
  EXPECT_TRUE(acc.publish_due());
}

TEST(ObsPeerQ, MergeSumsPrefixRoutedAndMaxesBroadcastCounters) {
  PeerCell shard0;
  shard0.updates = 10;
  shard0.announcements = 7;
  shard0.withdrawals = 3;
  shard0.stuck = 2;
  shard0.ann_seen = 5;
  shard0.wd_seen = 4;
  shard0.last_seen = 1000;
  shard0.session_resets = 2;  // broadcast: both shards saw both resets
  shard0.miss_streak = 1;
  PeerCell shard1 = shard0;
  shard1.updates = 4;
  shard1.last_seen = 1500;
  shard1.miss_streak = 3;

  PeerTableBuilder builder{PeerQConfig{}};
  const auto table = builder.build(
      {make_snap(1, 1500, 60, {{peer_a(), shard0}}),
       make_snap(2, 1500, 40, {{peer_a(), shard1}})},
      /*clock=*/1500, /*new_data=*/true, /*converge=*/false);
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->fingerprint, 3u);
  EXPECT_EQ(table->total_cycles, 100u);
  const PeerRow& row = table->rows[0];
  EXPECT_EQ(row.updates, 14u);         // summed
  EXPECT_EQ(row.announcements, 14u);   // summed
  EXPECT_EQ(row.stuck, 4u);            // summed
  EXPECT_EQ(row.ann_seen, 10u);        // summed
  EXPECT_EQ(row.last_seen, 1500);      // max
  EXPECT_EQ(row.session_resets, 2u);   // max, NOT 4
  EXPECT_EQ(row.miss_streak, 3u);      // max
  EXPECT_DOUBLE_EQ(row.probability, 0.04);
}

TEST(ObsPeerQ, ClassifierEntryNeedsCyclesWilsonAndDwell) {
  PeerQConfig config;
  config.dwell = 2;
  PeerTableBuilder builder{config};
  // Two clean peers keep the median at zero; peer B is the offender
  // (an odd universe size makes the median the middle clean value).
  const PeerKey clean{64502, IpAddress::parse("192.0.2.3")};
  const auto snaps_at = [&](std::uint64_t epoch, std::uint64_t cycles,
                            std::uint64_t stuck) {
    return std::vector<std::shared_ptr<const PeerQShardSnapshot>>{make_snap(
        epoch, 1000, cycles,
        {{peer_a(), stuck_cell(0)},
         {clean, stuck_cell(0)},
         {peer_b(), stuck_cell(stuck)}})};
  };

  // Raw-noisy but below min_cycles: published entry is blocked.
  auto table = builder.build(snaps_at(1, 10, 5), 1000, true, false);
  const PeerRow* b = table->find(peer_b());
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->noisy_raw);
  EXPECT_FALSE(b->noisy);

  // Enough cycles and a Wilson lower bound past the floor: the dwell
  // still holds the flip for `dwell` consecutive data epochs.
  table = builder.build(snaps_at(2, 100, 30), 1000, true, false);
  EXPECT_TRUE(table->find(peer_b())->noisy_raw);
  EXPECT_FALSE(table->find(peer_b())->noisy);  // streak 1 of 2
  // A no-new-data rebuild (poll) must not age the streak.
  table = builder.build(snaps_at(2, 100, 30), 1000, false, false);
  EXPECT_FALSE(table->find(peer_b())->noisy);
  // Second data epoch: flips.
  table = builder.build(snaps_at(3, 100, 30), 1000, true, false);
  EXPECT_TRUE(table->find(peer_b())->noisy);
  EXPECT_EQ(table->noisy_count, 1u);

  // Exit follows the raw rule with the same dwell.
  table = builder.build(snaps_at(4, 1000, 30), 1000, true, false);
  EXPECT_FALSE(table->find(peer_b())->noisy_raw);  // p = 0.03 < floor
  EXPECT_TRUE(table->find(peer_b())->noisy);       // streak 1 of 2
  table = builder.build(snaps_at(5, 1000, 30), 1000, true, false);
  EXPECT_FALSE(table->find(peer_b())->noisy);
}

TEST(ObsPeerQ, ConvergeSnapsPublishedStateToRawRule) {
  PeerQConfig config;
  config.dwell = 100;  // a dwell the stream could never satisfy
  PeerTableBuilder builder{config};
  const std::vector<std::shared_ptr<const PeerQShardSnapshot>> snaps{make_snap(
      1, 1000, 100,
      {{peer_a(), stuck_cell(0)},
       {PeerKey{64502, IpAddress::parse("192.0.2.3")}, stuck_cell(0)},
       {peer_b(), stuck_cell(30)}})};
  auto table = builder.build(snaps, 1000, true, false);
  EXPECT_FALSE(table->find(peer_b())->noisy);
  // converge (finalize) bypasses dwell, min_cycles, and Wilson gates.
  table = builder.build(snaps, 1000, true, true);
  EXPECT_TRUE(table->find(peer_b())->noisy);
  EXPECT_FALSE(table->find(peer_a())->noisy);
}

TEST(ObsPeerQ, SilentEpisodeJournaledOncePerEpisode) {
  obs::Journal& journal = obs::Journal::global();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(obs::kCatPeer);
  journal.reset();

  PeerQConfig config;
  PeerTableBuilder builder{config};
  PeerCell cell;
  cell.updates = 5;
  cell.last_seen = 1000;
  const auto build_at = [&](std::uint64_t epoch, TimePoint clock) {
    return builder.build({make_snap(epoch, clock, 0, {{peer_a(), cell}})},
                         clock, true, false);
  };

  auto table = build_at(1, 1000 + config.silent_after);  // not yet past
  EXPECT_FALSE(table->rows[0].silent);
  EXPECT_EQ(table->feeding_count, 1u);
  table = build_at(2, 1000 + config.silent_after + 1);
  EXPECT_TRUE(table->rows[0].silent);
  EXPECT_EQ(table->silent_count, 1u);
  EXPECT_EQ(table->feeding_count, 0u);
  // Still silent on the next build: no second journal event.
  table = build_at(3, 1000 + 2 * config.silent_after);
  EXPECT_TRUE(table->rows[0].silent);
  // Peer comes back, goes quiet again: a fresh episode, a fresh event.
  cell.last_seen = 100000;
  cell.updates = 6;
  table = build_at(4, 100000 + 60);
  EXPECT_FALSE(table->rows[0].silent);
  table = build_at(5, 100000 + config.silent_after + 1);
  EXPECT_TRUE(table->rows[0].silent);

  const auto events = journal.tail(16);
  std::size_t silent_events = 0;
  for (const auto& ev : events) {
    if (ev.type != obs::JournalEventType::kPeerSilent) continue;
    ++silent_events;
    EXPECT_TRUE(ev.has_peer);
    EXPECT_EQ(ev.peer_asn, peer_a().asn);
    EXPECT_GT(ev.a, config.silent_after);  // silent age
  }
  EXPECT_EQ(silent_events, 2u);
  journal.reset();
  journal.set_enabled_categories(saved);
}

TEST(ObsPeerQ, NoisyTransitionsEmitJournalEvents) {
  obs::Journal& journal = obs::Journal::global();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(obs::kCatPeer);
  journal.reset();

  PeerQConfig config;
  config.dwell = 1;
  PeerTableBuilder builder{config};
  const auto snaps_at = [&](std::uint64_t epoch, std::uint64_t stuck) {
    return std::vector<std::shared_ptr<const PeerQShardSnapshot>>{make_snap(
        epoch, 1000, 100,
        {{peer_a(), stuck_cell(0)},
         {PeerKey{64502, IpAddress::parse("192.0.2.3")}, stuck_cell(0)},
         {peer_b(), stuck_cell(stuck)}})};
  };
  (void)builder.build(snaps_at(1, 30), 1000, true, false);  // enter
  (void)builder.build(snaps_at(2, 0), 2000, true, false);   // exit

  const auto events = journal.tail(8);
  std::vector<obs::JournalEvent> peer_events;
  for (const auto& ev : events) {
    if (ev.type == obs::JournalEventType::kPeerNoisyEnter ||
        ev.type == obs::JournalEventType::kPeerNoisyExit) {
      peer_events.push_back(ev);
    }
  }
  ASSERT_EQ(peer_events.size(), 2u);
  EXPECT_EQ(peer_events[0].type, obs::JournalEventType::kPeerNoisyEnter);
  EXPECT_EQ(peer_events[0].peer_asn, peer_b().asn);
  EXPECT_EQ(peer_events[0].a, 300000);  // p = 0.30 in ppm
  EXPECT_EQ(peer_events[0].c, 30);      // stuck routes
  EXPECT_EQ(peer_events[1].type, obs::JournalEventType::kPeerNoisyExit);
  journal.reset();
  journal.set_enabled_categories(saved);
}

TEST(ObsPeerQ, JsonCarriesTableAndNoisyOnlyFiltersSorted) {
  PeerQConfig config;
  config.dwell = 1;
  PeerTableBuilder builder{config};
  PeerCell worst = stuck_cell(40);
  const auto table = builder.build(
      {make_snap(7, 5000, 100,
                 {{peer_a(), stuck_cell(0)},
                  {PeerKey{64503, IpAddress::parse("192.0.2.4")}, stuck_cell(0)},
                  {PeerKey{64504, IpAddress::parse("192.0.2.5")}, stuck_cell(0)},
                  {peer_b(), stuck_cell(30)},
                  {PeerKey{64502, IpAddress::parse("192.0.2.3")}, worst}})},
      5000, true, false);
  const std::string full = peer_table_json(*table, 42, false);
  EXPECT_NE(full.find("\"epoch\":42"), std::string::npos);
  EXPECT_NE(full.find("\"total_cycles\":100"), std::string::npos);
  EXPECT_NE(full.find("\"noisy_count\":2"), std::string::npos);
  EXPECT_NE(full.find("\"address\":\"192.0.2.1\""), std::string::npos);
  EXPECT_NE(full.find("\"wilson_low\":"), std::string::npos);
  EXPECT_NE(full.find("\"probability\":0.300000"), std::string::npos);

  const std::string noisy = peer_table_json(*table, 42, true);
  // Clean peer A excluded; offenders sorted worst-first.
  EXPECT_EQ(noisy.find("\"address\":\"192.0.2.1\""), std::string::npos);
  const auto worst_pos = noisy.find("\"asn\":64502");
  const auto next_pos = noisy.find("\"asn\":64501");
  ASSERT_NE(worst_pos, std::string::npos);
  ASSERT_NE(next_pos, std::string::npos);
  EXPECT_LT(worst_pos, next_pos);
}

TEST(ObsPeerQ, ServicePublishesPeersEndpointAndProvenance) {
  // End-to-end through LiveService: the /peers surface reflects the
  // replayed stream, and /live/zombies carries supporting-peer
  // provenance fields.
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  config.detector.threshold = 90 * kMinute;
  LiveService service(config);
  service.start();
  const Prefix prefix = Prefix::parse("93.175.147.0/24");
  service.expect(cycle_event(prefix, 1000, 1000 + 2 * 3600));
  service.submit(announce(1100, peer_a(), prefix));
  service.submit(announce(1200, peer_b(), prefix));
  // A withdraws in the window; B keeps the route stuck.
  service.submit(withdraw(1000 + 2 * 3600 + 5, peer_a(), prefix));
  service.finalize(1000 + 24 * 3600);

  const auto table = service.peers();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->total_cycles, 1u);
  ASSERT_EQ(table->rows.size(), 2u);
  const PeerRow* a = table->find(peer_a());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->stuck, 0u);
  EXPECT_EQ(a->ann_seen, 1u);
  EXPECT_EQ(a->wd_seen, 1u);
  const PeerRow* b = table->find(peer_b());
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->stuck, 1u);
  EXPECT_EQ(b->wd_seen, 0u);

  const std::string json = service.peers_json(false);
  EXPECT_NE(json.find("\"asn\":64500"), std::string::npos);
  EXPECT_NE(json.find("\"asn\":64501"), std::string::npos);
  const std::string zombies = service.zombies_json();
  EXPECT_NE(zombies.find("\"support_peers\":1"), std::string::npos);
  EXPECT_NE(zombies.find("\"support_non_noisy\":1"), std::string::npos);
  EXPECT_NE(zombies.find("\"confidence\":"), std::string::npos);
  service.stop();
}

TEST(ObsPeerQ, DisabledConfigServesEmptyTable) {
  LiveConfig config;
  config.shards = 1;
  config.block_on_full = true;
  config.peerq.enabled = false;
  LiveService service(config);
  service.start();
  service.submit(announce(1000, peer_a(), Prefix::parse("10.0.0.0/8")));
  service.finalize(2000);
  const auto table = service.peers();
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->rows.empty());
  EXPECT_EQ(service.peers_json(false).find("\"asn\""), std::string::npos);
  service.stop();
}

// ---------------------------------------------------------------------------
// Replay-speed independence
// ---------------------------------------------------------------------------

namespace replay {

struct Expected {
  std::vector<mrt::MrtRecord> records;
  std::vector<BeaconEvent> events;
  std::vector<std::pair<Prefix, PeerKey>> emerged;
};

/// Two beacon cycles over two prefixes and two peers, ~8 simulated
/// seconds total, with peer_b losing every withdrawal: small enough
/// that even a paced replay finishes in about a second.
Expected make_stream() {
  Expected x;
  const TimePoint t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  const auto pa = Prefix::parse("100.64.1.0/24");
  const auto pb = Prefix::parse("100.64.2.0/24");
  for (int cycle = 0; cycle < 2; ++cycle) {
    const TimePoint a = t0 + cycle * 4;
    const TimePoint w = a + 2;
    for (const auto& prefix : {pa, pb}) {
      x.events.push_back({prefix, a, w, false});
      x.records.push_back(announce(a, peer_a(), prefix));
      x.records.push_back(announce(a, peer_b(), prefix));
      x.records.push_back(withdraw(w, peer_a(), prefix)); // peer_b loses its
    }
  }
  x.emerged = {{pa, peer_b()}, {pb, peer_b()}};
  return x;
}

std::vector<std::pair<Prefix, PeerKey>> run(const Expected& x, double speed) {
  LiveConfig config;
  config.shards = 4;
  config.block_on_full = true;
  config.detector.threshold = 1;  // one simulated second
  LiveService service(config);
  service.start();
  for (const auto& event : x.events) service.expect(event);
  ReplayFeedSource feed(x.records, speed);
  const auto stats = feed.run(service);
  EXPECT_EQ(stats.records, x.records.size());
  service.finalize();
  auto pairs = service.emerged_pairs();
  EXPECT_EQ(service.drops(), 0u);
  service.stop();
  return pairs;
}

}  // namespace replay

TEST(ObsLiveReplay, PacedReplayMatchesMaxSpeed) {
  const auto x = replay::make_stream();
  const auto flat_out = replay::run(x, 0.0);
  const auto paced = replay::run(x, 10.0);  // ~0.8 s wall
  EXPECT_EQ(flat_out, paced);
  EXPECT_EQ(flat_out, x.emerged);
}

// ---------------------------------------------------------------------------
// Stage latency tracing and readiness
// ---------------------------------------------------------------------------

TEST(ObsLiveLatency, StageHistogramsPopulateThroughThePipeline) {
  // The LatRegistry cells are process-cumulative (other tests in this
  // binary run services too), so assert on the diff around this run.
  obs::LatRegistry& reg = obs::LatRegistry::global();
  const auto ingest_before = reg.get("live.ingest_enqueue").snapshot();
  const auto wait_before = reg.get("live.queue_wait").snapshot();
  const auto detect_before = reg.get("live.detect").snapshot();
  const auto publish_before = reg.get("live.publish").snapshot();
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  for (int i = 0; i < 64; ++i) {
    const auto prefix = Prefix::parse("10." + std::to_string(i) + ".0.0/16");
    ASSERT_TRUE(service.submit(announce(t0 + i, peer_a(), prefix)));
  }
  service.finalize(t0 + 100);
  service.stop();
  const auto ingest = reg.get("live.ingest_enqueue").snapshot();
  const auto wait = reg.get("live.queue_wait").snapshot();
  const auto detect = reg.get("live.detect").snapshot();
  const auto publish = reg.get("live.publish").snapshot();
  EXPECT_GE(ingest.diff_since(ingest_before).count, 64u);
  // queue_wait also times the expect/advance control items.
  EXPECT_GE(wait.diff_since(wait_before).count, 64u);
  EXPECT_GE(detect.diff_since(detect_before).count, 64u);
  EXPECT_GE(publish.diff_since(publish_before).count, 1u);
}

TEST(ObsLiveLatency, HealthzReadinessTracksSnapshotAge) {
  LiveConfig config;
  config.shards = 1;
  config.block_on_full = true;
  LiveService service(config);
  service.start();
  obs::HttpServer server;
  service.attach_http(server, /*stale_after_seconds=*/0.4);
  ASSERT_TRUE(server.start(0));
  // Workers publish once at startup, then only when records move the
  // state — an idle service goes stale past the threshold.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const std::string stale =
      sse::read_until(server.port(), "/healthz", "\"status\"");
  EXPECT_NE(stale.find("503"), std::string::npos) << stale;
  EXPECT_NE(stale.find("\"status\":\"degraded\""), std::string::npos) << stale;
  EXPECT_NE(stale.find("\"snapshot_age_seconds\""), std::string::npos);
  // One record re-publishes the shard snapshot: ready again.
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  ASSERT_TRUE(
      service.submit(announce(t0, peer_a(), Prefix::parse("10.0.0.0/16"))));
  std::string ok;
  for (int spins = 0; spins < 20; ++spins) {
    ok = sse::read_until(server.port(), "/healthz", "\"status\"");
    if (ok.find("\"status\":\"ok\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_NE(ok.find("200"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos) << ok;
  server.stop();
  service.stop();
}

TEST(ObsLiveLatency, LoopbackClientMeasuresEndToEndDelivery) {
  obs::LatRegistry& reg = obs::LatRegistry::global();
  const auto e2e_before = reg.get("live.e2e").snapshot();
  const auto wait_before = reg.get("live.queue_wait").snapshot();
  LiveConfig config;
  config.shards = 2;
  config.block_on_full = true;
  config.detector.threshold = 5 * kMinute;
  LiveService service(config);
  service.start();
  obs::HttpServer server;
  service.attach_http(server);
  ASSERT_TRUE(server.start(0));
  LoopbackLatencyClient client(server.port());
  ASSERT_TRUE(client.start());

  // Two peers never withdraw inside the window: two emerge transitions
  // carry ingest_ns stamps through the SSE stream back to the client.
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  const auto prefix = Prefix::parse("2a0d:3dc1:1200::/48");
  service.expect({prefix, t0, t0 + 10 * kMinute, false});
  ASSERT_TRUE(service.submit(announce(t0 + 10, peer_a(), prefix)));
  ASSERT_TRUE(service.submit(announce(t0 + 12, peer_b(), prefix)));
  service.finalize(t0 + 16 * kMinute);
  for (int spins = 0; spins < 100 && client.samples() < 2; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GE(client.samples(), 2u);
  EXPECT_GT(client.bytes_read(), 0u);

  // The delivery path surfaces everywhere the issue promises: /latency
  // (JSON and folded), /live/stats stages, and the legacy lag keys.
  const std::string latency =
      sse::read_until(server.port(), "/latency", "live.e2e");
  EXPECT_NE(latency.find("\"live.e2e\""), std::string::npos) << latency;
  EXPECT_NE(latency.find("\"live.queue_wait\""), std::string::npos);
  const std::string folded =
      sse::read_until(server.port(), "/latency?format=folded", "live.e2e;");
  EXPECT_NE(folded.find("live.e2e;count "), std::string::npos) << folded;
  const std::string stats =
      sse::read_until(server.port(), "/live/stats", "\"stages\"");
  EXPECT_NE(stats.find("\"lag_p50\""), std::string::npos);
  EXPECT_NE(stats.find("\"lag_p99\""), std::string::npos);
  EXPECT_NE(stats.find("\"stages\""), std::string::npos);
  EXPECT_NE(stats.find("\"e2e\""), std::string::npos) << stats;

  client.stop();
  server.stop();
  service.stop();
  const auto e2e = reg.get("live.e2e").snapshot().diff_since(e2e_before);
  ASSERT_GE(e2e.count, 2u);
  const double e2e_p50 = e2e.quantile_ns(0.5);
  EXPECT_GT(e2e_p50, 0.0);
  EXPECT_LT(e2e_p50, 5e9);  // sane: well under 5 s on loopback
  // A single hop cannot exceed the journey it is part of.
  const auto wait = reg.get("live.queue_wait").snapshot().diff_since(wait_before);
  ASSERT_FALSE(wait.empty());
  EXPECT_LE(wait.quantile_ns(0.5), e2e_p50);
}

}  // namespace
}  // namespace zombiescope::live

# Empty dependencies file for fuzz_codec_test.
# This may be replaced when dependencies are built.

// ablation_routeviews — quantifies the paper's §5 data-coverage
// caveat: "Due to limited resources, we do not include BGP data from
// RouteViews peers, acknowledging the potential omission of zombie
// routes." The scenario runs with an extra RouteViews-style collector
// whose peers sit on ASes the RIS sessions do not cover; detection is
// run twice — RIS-only vs RIS+RouteViews — and the omitted zombies
// are counted (the §6 "combining collectors" future-work direction).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/longlived.hpp"

using namespace zombiescope;

namespace {

scenarios::LongLived2024Output g_out;

void print_ablation() {
  bench::print_header("Ablation — RIS-only vs RIS+RouteViews coverage",
                      "IMC'25 paper §5 (omission caveat) + §6 (combining collectors)");
  scenarios::LongLived2024Spec spec;
  spec.monitor_until = netbase::utc(2024, 7, 15);  // detection window is June anyway
  spec.routeviews_sessions = 12;
  std::fprintf(stderr, "[sim] running longlived2024 + RouteViews (not cached)\n");
  g_out = scenarios::run_longlived2024(spec);

  // RIS-only view: exclude the RouteViews sessions from detection.
  zombie::LongLivedConfig ris_only;
  for (const auto& peer : g_out.routeviews_peers) ris_only.excluded_peers.insert(peer);
  zombie::LongLivedConfig combined;  // everything

  std::vector<std::vector<std::string>> rows;
  for (netbase::Duration threshold : {90 * netbase::kMinute, 180 * netbase::kMinute}) {
    const auto ris = zombie::LongLivedZombieDetector{ris_only}.detect(
        g_out.updates, g_out.events, threshold);
    const auto all = zombie::LongLivedZombieDetector{combined}.detect(
        g_out.updates, g_out.events, threshold);
    // Outbreaks visible only once RouteViews peers are included.
    std::set<std::pair<netbase::Prefix, netbase::TimePoint>> ris_keys;
    for (const auto& o : ris.outbreaks) ris_keys.insert({o.prefix, o.interval_start});
    int rv_only = 0;
    for (const auto& o : all.outbreaks)
      if (!ris_keys.contains({o.prefix, o.interval_start})) ++rv_only;
    rows.push_back({std::to_string(threshold / netbase::kMinute) + "m",
                    std::to_string(ris.outbreaks.size()),
                    std::to_string(all.outbreaks.size()), std::to_string(rv_only),
                    std::to_string(all.route_count() - ris.route_count())});
  }
  std::fputs(analysis::render_table({"Threshold", "RIS-only outbreaks",
                                     "RIS+RV outbreaks", "RV-only outbreaks",
                                     "extra zombie routes"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("RouteViews sessions: %zu (on ASes RIS does not peer with). Outbreaks\n"
              "visible only from those vantage points are exactly the omission the\n"
              "paper acknowledges; combining platforms (§6) recovers them.\n",
              g_out.routeviews_peers.size());
}

void BM_CombinedDetection(benchmark::State& state) {
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  for (auto _ : state) {
    auto result = detector.detect(g_out.updates, g_out.events, 90 * netbase::kMinute);
    benchmark::DoNotOptimize(result.outbreaks.size());
  }
}
BENCHMARK(BM_CombinedDetection)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "live/peerq.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/journal.hpp"

namespace zombiescope::live {

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z) {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  WilsonInterval out;
  out.low = std::max(0.0, (center - margin) / denom);
  out.high = std::min(1.0, (center + margin) / denom);
  return out;
}

namespace {

bool test_bit(const std::vector<std::uint64_t>& bits, std::uint32_t i) {
  return (i >> 6) < bits.size() && ((bits[i >> 6] >> (i & 63)) & 1) != 0;
}

void set_bit(std::vector<std::uint64_t>& bits, std::uint32_t i) {
  if ((i >> 6) >= bits.size()) bits.resize((i >> 6) + 1, 0);
  bits[i >> 6] |= 1ull << (i & 63);
}

}  // namespace

PeerCell& PeerQAccumulator::cell(const zombie::PeerKey& peer) {
  if (last_cell_ != nullptr && last_peer_ == peer) return *last_cell_;
  auto [it, inserted] = cells_.try_emplace(peer);
  if (inserted) {
    it->second.index = static_cast<std::uint32_t>(cells_.size() - 1);
    publish_due_ = true;
  }
  last_peer_ = peer;
  last_cell_ = &it->second;
  return it->second;
}

void PeerQAccumulator::on_record(const mrt::MrtRecord& record) {
  if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
    // Any BGP4MP message creates the peer, even a prefix-less one —
    // StateTracker::apply does the same, and the classifier's median
    // runs over that exact universe.
    const zombie::PeerKey peer{msg->peer_asn, msg->peer_address};
    PeerCell& c = cell(peer);
    ++c.updates;
    c.announcements += msg->update.announced.size();
    c.withdrawals += msg->update.withdrawn.size();
    c.last_seen = std::max(c.last_seen, msg->timestamp);
    if (by_prefix_.empty()) return;  // no window open anywhere
    for (const auto& prefix : msg->update.announced) {
      const std::uint8_t b = prefix.address().bytes()[0];
      if ((first_byte_filter_[b >> 6] & (1ull << (b & 63))) == 0) continue;
      for (const auto& [open_prefix, cycles] : by_prefix_) {
        if (open_prefix != prefix) continue;
        for (OpenCycle* cycle : cycles) set_bit(cycle->ann_bits, c.index);
        break;
      }
    }
    for (const auto& prefix : msg->update.withdrawn) {
      const std::uint8_t b = prefix.address().bytes()[0];
      if ((first_byte_filter_[b >> 6] & (1ull << (b & 63))) == 0) continue;
      for (const auto& [open_prefix, cycles] : by_prefix_) {
        if (open_prefix != prefix) continue;
        for (OpenCycle* cycle : cycles) {
          // The withdrawal phase of a cycle starts at its scheduled
          // withdraw time; an earlier withdrawal belongs to a previous
          // cycle's window.
          if (msg->timestamp >= cycle->withdraw_time)
            set_bit(cycle->wd_bits, c.index);
        }
        break;
      }
    }
  } else if (const auto* change = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
    // Never creates a peer (StateTracker's rule); resets count only
    // for peers already in the universe.
    auto it = cells_.find({change->peer_asn, change->peer_address});
    if (it == cells_.end()) return;
    if (change->old_state == bgp::SessionState::kEstablished &&
        change->new_state != bgp::SessionState::kEstablished) {
      ++it->second.session_resets;
      publish_due_ = true;
    }
  } else if (const auto* index = std::get_if<mrt::PeerIndexTable>(&record)) {
    last_index_ = *index;
  } else if (const auto* rib = std::get_if<mrt::RibEntryRecord>(&record)) {
    if (last_index_.peers.empty()) return;
    for (const auto& entry : rib->entries) {
      if (entry.peer_index >= last_index_.peers.size()) continue;
      const auto& peer = last_index_.peers[entry.peer_index];
      cell({peer.asn, peer.address});
    }
  }
}

void PeerQAccumulator::on_expect(const beacon::BeaconEvent& event,
                                 netbase::Duration threshold) {
  if (event.superseded) return;
  const std::uint32_t id = next_cycle_++;
  OpenCycle cycle;
  cycle.prefix = event.prefix;
  cycle.withdraw_time = event.withdraw_time;
  cycle.deadline = event.withdraw_time + threshold;
  auto slot = std::find_if(by_prefix_.begin(), by_prefix_.end(),
                           [&](const auto& e) { return e.first == event.prefix; });
  if (slot == by_prefix_.end()) {
    by_prefix_.emplace_back(event.prefix, std::vector<OpenCycle*>{});
    slot = std::prev(by_prefix_.end());
    rebuild_filter();
  }
  due_.emplace(cycle.deadline, id);
  auto [it, inserted] = open_.emplace(id, std::move(cycle));
  slot->second.push_back(&it->second);
}

void PeerQAccumulator::on_stuck(const zombie::ZombieAlert& alert) {
  ++cell(alert.peer).stuck;
  publish_due_ = true;
}

void PeerQAccumulator::advance(netbase::TimePoint now) {
  while (!due_.empty() && due_.top().first < now) {
    const std::uint32_t id = due_.top().second;
    due_.pop();
    auto it = open_.find(id);
    if (it == open_.end()) continue;
    close_cycle(it->second);
    auto by = std::find_if(
        by_prefix_.begin(), by_prefix_.end(),
        [&](const auto& e) { return e.first == it->second.prefix; });
    if (by != by_prefix_.end()) {
      std::erase(by->second, &it->second);
      if (by->second.empty()) {
        by_prefix_.erase(by);
        rebuild_filter();
      }
    }
    open_.erase(it);
  }
}

void PeerQAccumulator::rebuild_filter() {
  first_byte_filter_ = {};
  for (const auto& [prefix, ids] : by_prefix_) {
    const std::uint8_t b = prefix.address().bytes()[0];
    first_byte_filter_[b >> 6] |= 1ull << (b & 63);
  }
}

void PeerQAccumulator::close_cycle(const OpenCycle& cycle) {
  ++cycles_closed_;
  for (auto& entry : cells_) {
    PeerCell& c = entry.second;
    if (test_bit(cycle.ann_bits, c.index)) {
      ++c.ann_seen;
      c.miss_streak = 0;
    } else {
      ++c.miss_streak;
    }
    if (test_bit(cycle.wd_bits, c.index)) ++c.wd_seen;
  }
  publish_due_ = true;
}

std::shared_ptr<const PeerQShardSnapshot> PeerQAccumulator::snapshot(
    netbase::TimePoint clock, std::uint64_t epoch) {
  auto snap = std::make_shared<PeerQShardSnapshot>();
  snap->epoch = epoch;
  snap->clock = clock;
  snap->cycles_closed = cycles_closed_;
  snap->peers = cells_;
  publish_due_ = false;
  return snap;
}

const PeerRow* PeerTable::find(const zombie::PeerKey& peer) const {
  const auto it = std::lower_bound(
      rows.begin(), rows.end(), peer,
      [](const PeerRow& row, const zombie::PeerKey& key) { return row.peer < key; });
  return it != rows.end() && it->peer == peer ? &*it : nullptr;
}

std::set<zombie::PeerKey> PeerTable::noisy_set() const {
  std::set<zombie::PeerKey> out;
  for (const auto& row : rows)
    if (row.noisy) out.insert(row.peer);
  return out;
}

namespace {

std::int64_t ppm(double p) { return std::llround(p * 1e6); }

obs::JournalEvent peer_event(obs::JournalEventType type, netbase::TimePoint time,
                             const zombie::PeerKey& peer) {
  obs::JournalEvent event;
  event.type = type;
  event.time = time;
  event.has_peer = true;
  event.peer_asn = peer.asn;
  event.peer_address = peer.address;
  return event;
}

}  // namespace

std::shared_ptr<const PeerTable> PeerTableBuilder::build(
    const std::vector<std::shared_ptr<const PeerQShardSnapshot>>& shards,
    netbase::TimePoint clock, bool new_data, bool converge) {
  auto table = std::make_shared<PeerTable>();
  table->clock = clock;

  std::map<zombie::PeerKey, PeerRow> merged;
  for (const auto& snap : shards) {
    if (!snap) continue;
    table->fingerprint += snap->epoch;
    table->total_cycles += snap->cycles_closed;
    for (const auto& [peer, c] : snap->peers) {
      PeerRow& row = merged[peer];
      row.peer = peer;
      // Prefix-routed counters are disjoint across shards and sum;
      // broadcast-derived ones (session resets) were seen by every
      // shard holding the peer and take the max.
      row.updates += c.updates;
      row.announcements += c.announcements;
      row.withdrawals += c.withdrawals;
      row.stuck += c.stuck;
      row.ann_seen += c.ann_seen;
      row.wd_seen += c.wd_seen;
      row.last_seen = std::max(row.last_seen, c.last_seen);
      row.session_resets = std::max(row.session_resets, c.session_resets);
      row.miss_streak = std::max(row.miss_streak, c.miss_streak);
    }
  }

  // The raw classification is NoisyPeerFilter verbatim: probability =
  // stuck / total cycles (same denominator for every peer), median
  // over the whole universe averaging the middle two for even counts.
  std::vector<double> probabilities;
  probabilities.reserve(merged.size());
  for (auto& [peer, row] : merged) {
    (void)peer;
    row.probability = table->total_cycles == 0
                          ? 0.0
                          : static_cast<double>(row.stuck) /
                                static_cast<double>(table->total_cycles);
    row.wilson = wilson_interval(row.stuck, table->total_cycles);
    probabilities.push_back(row.probability);
  }
  if (!probabilities.empty()) {
    std::sort(probabilities.begin(), probabilities.end());
    const std::size_t n = probabilities.size();
    table->median_probability = n % 2 == 1
                                    ? probabilities[n / 2]
                                    : (probabilities[n / 2 - 1] + probabilities[n / 2]) / 2.0;
  }

  auto& journal = obs::Journal::global();
  table->rows.reserve(merged.size());
  for (auto& [peer, row] : merged) {
    row.noisy_raw = row.probability > config_.probability_floor &&
                    row.probability >
                        config_.median_multiplier * table->median_probability;

    Published& st = state_[peer];
    bool desired;
    if (converge) {
      // finalize(): the memoryless batch rule, no live stabilizers —
      // this is the point where the live set equals NoisyPeerFilter's.
      desired = row.noisy_raw;
    } else if (st.noisy) {
      desired = row.noisy_raw;  // exit only when the raw verdict clears
    } else {
      // Entry needs statistical weight behind it: enough closed cycles
      // service-wide and a Wilson lower bound already past the floor.
      desired = row.noisy_raw && table->total_cycles >= config_.min_cycles &&
                row.wilson.low > config_.probability_floor;
    }
    if (desired != st.noisy) {
      if (converge) {
        st.streak = config_.dwell;
      } else if (new_data) {
        ++st.streak;
      }
      if (st.streak >= config_.dwell) {
        st.noisy = desired;
        st.streak = 0;
        if (journal.enabled(obs::kCatPeer)) {
          auto event = peer_event(desired ? obs::JournalEventType::kPeerNoisyEnter
                                          : obs::JournalEventType::kPeerNoisyExit,
                                  clock, peer);
          event.a = ppm(row.probability);
          event.b = ppm(table->median_probability);
          event.c = static_cast<std::int64_t>(row.stuck);
          journal.emit<obs::kCatPeer>(event);
        }
      }
    } else {
      st.streak = 0;
    }
    row.noisy = st.noisy;

    row.silent = row.updates > 0 && clock > row.last_seen &&
                 clock - row.last_seen > config_.silent_after;
    if (row.silent && !st.silent_logged) {
      st.silent_logged = true;
      if (journal.enabled(obs::kCatPeer)) {
        auto event =
            peer_event(obs::JournalEventType::kPeerSilent, clock, peer);
        event.a = clock - row.last_seen;
        event.b = row.last_seen;
        journal.emit<obs::kCatPeer>(event);
      }
    } else if (!row.silent) {
      st.silent_logged = false;
    }

    if (row.noisy) ++table->noisy_count;
    if (row.silent) ++table->silent_count;
    if (row.updates > 0 && !row.silent) ++table->feeding_count;
    table->rows.push_back(row);
  }
  return table;
}

namespace {

void append_kv(std::string& out, std::string_view key, const std::string& value,
               bool quote) {
  if (out.back() != '{' && out.back() != '[') out += ',';
  out += '"';
  out += key;
  out += "\":";
  if (quote) out += '"';
  out += value;
  if (quote) out += '"';
}

std::string format_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", p);
  return buf;
}

void append_row(std::string& out, const PeerRow& row, netbase::TimePoint clock) {
  out += out.back() == '[' ? "{" : ",{";
  append_kv(out, "asn", std::to_string(row.peer.asn), false);
  append_kv(out, "address", row.peer.address.to_string(), true);
  append_kv(out, "updates", std::to_string(row.updates), false);
  append_kv(out, "announcements", std::to_string(row.announcements), false);
  append_kv(out, "withdrawals", std::to_string(row.withdrawals), false);
  append_kv(out, "last_seen", std::to_string(row.last_seen), false);
  const netbase::Duration age = row.last_seen == 0 ? -1 : clock - row.last_seen;
  append_kv(out, "age_seconds", std::to_string(age), false);
  append_kv(out, "session_resets", std::to_string(row.session_resets), false);
  append_kv(out, "stuck", std::to_string(row.stuck), false);
  append_kv(out, "probability", format_probability(row.probability), false);
  append_kv(out, "wilson_low", format_probability(row.wilson.low), false);
  append_kv(out, "wilson_high", format_probability(row.wilson.high), false);
  append_kv(out, "ann_seen", std::to_string(row.ann_seen), false);
  append_kv(out, "wd_seen", std::to_string(row.wd_seen), false);
  append_kv(out, "miss_streak", std::to_string(row.miss_streak), false);
  append_kv(out, "noisy", row.noisy ? "true" : "false", false);
  append_kv(out, "noisy_raw", row.noisy_raw ? "true" : "false", false);
  append_kv(out, "silent", row.silent ? "true" : "false", false);
  out += '}';
}

}  // namespace

std::string peer_table_json(const PeerTable& table, std::uint64_t epoch,
                            bool noisy_only) {
  std::string out = "{";
  append_kv(out, "epoch", std::to_string(epoch), false);
  append_kv(out, "clock", std::to_string(table.clock), false);
  append_kv(out, "total_cycles", std::to_string(table.total_cycles), false);
  append_kv(out, "median_probability", format_probability(table.median_probability),
            false);
  append_kv(out, "noisy_count", std::to_string(table.noisy_count), false);
  append_kv(out, "silent_count", std::to_string(table.silent_count), false);
  append_kv(out, "feeding_count", std::to_string(table.feeding_count), false);
  out += ",\"peers\":[";
  if (noisy_only) {
    // Same presentation as NoisyPeerFilter::noisy_peers: worst first.
    std::vector<const PeerRow*> noisy;
    for (const auto& row : table.rows)
      if (row.noisy) noisy.push_back(&row);
    std::sort(noisy.begin(), noisy.end(), [](const PeerRow* a, const PeerRow* b) {
      return a->probability > b->probability;
    });
    for (const PeerRow* row : noisy) append_row(out, *row, table.clock);
  } else {
    for (const auto& row : table.rows) append_row(out, row, table.clock);
  }
  out += "]}";
  return out;
}

}  // namespace zombiescope::live

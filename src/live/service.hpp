// live/service.hpp — the sharded live zombie-detection service.
//
// §6 of the paper sketches real-time detection; zslive is that sketch
// built as a service. A stream of MRT records (from a simnet tap, an
// MRT file replay, or a RIS-Live-style NDJSON feed — live/feed.hpp)
// is partitioned by prefix hash across N shard workers. Each worker
// owns a private zombie::RealTimeZombieDetector plus the
// withdrawal-phase state for its prefixes, so detection needs no
// cross-shard locks; the only sharing is downstream, where each shard
// publishes an epoch-versioned immutable snapshot that the HTTP
// serving layer reads with a single uncontended pointer copy.
//
// Transition vocabulary (what /live/events streams and the journal's
// `live` category records):
//   emerge     the detector's deadline check fired: the route was still
//              announced `threshold` after its withdrawal. raised_at is
//              exactly withdrawn_at + threshold, which makes the
//              cumulative emerge set provably equal to what batch
//              zsdetect computes from the same records
//              (tests/live_e2e_test.cpp asserts this).
//   resurrect  a zombie came back *after* the deadline had already
//              passed clean — a live-only phenomenon batch detection
//              folds into the same outbreak (raised_at > deadline).
//   die        a stuck route finally cleared (withdrawal, session
//              flush, or the next beacon announcement superseding it).
//
// Journal aux fields for the kCatLive events:
//   live_zombie_emerged      a = threshold, b = withdraw time
//   live_zombie_resurrected  a = raised at, b = withdraw time
//   live_zombie_died         a = withdraw time, b = stuck seconds
//   live_ingest_dropped      a = shard, b = total drops so far
//
// Shard routing uses a private FNV-1a over the prefix bytes, NOT
// std::hash — the shard a prefix maps to must be stable across
// processes and runs, because operators correlate per-shard stats
// between a live daemon and an offline replay of the same feed. The
// shard count is frozen at start(): resharding a running service
// would tear withdrawal-phase state mid-interval, so resize() throws
// once workers exist (restart with --shards to change it).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "beacon/schedule.hpp"
#include "live/peerq.hpp"
#include "live/queue.hpp"
#include "mrt/record.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "obs/http.hpp"
#include "obs/lathist.hpp"
#include "obs/metrics.hpp"
#include "zombie/realtime.hpp"

namespace zombiescope::live {

struct LiveConfig {
  std::size_t shards = 4;
  std::size_t queue_depth = 8192;
  /// false: a full shard queue drops the record and counts it (live
  /// feeds must never slow the wire). true: submit() blocks until the
  /// shard has space (replay and bench — zero loss by construction).
  bool block_on_full = false;
  zombie::RealTimeConfig detector;
  /// Per-peer feed-quality accounting and the online noisy-peer
  /// classifier (live/peerq.hpp). Enabled by default; the
  /// peerq_overhead bench gates its hot-path cost against this switch.
  PeerQConfig peerq;
};

/// The stable prefix → shard mapping (FNV-1a over family, address
/// bytes, and length). Identical across processes, platforms, and
/// runs; exposed so tests can assert the partitioning invariants.
std::size_t shard_for(const netbase::Prefix& prefix, std::size_t shards);

/// One feed record plus the monotonic instant the feed layer first saw
/// it. Every stage latency downstream (queue wait, detect, publish,
/// SSE fanout, end-to-end delivery) is measured against this stamp, so
/// feeds should construct the FeedItem as close to the wire read (or
/// the pacing release, for replay) as possible.
struct FeedItem {
  mrt::MrtRecord record;
  std::chrono::steady_clock::time_point ingest{};
};

/// One currently-stuck route in a snapshot, with its live
/// classification.
struct LiveZombie {
  zombie::ZombieAlert alert;
  bool resurrected = false;  // raised after the deadline (live-only)
};

/// What a shard worker publishes after each batch: an immutable value
/// readers access via atomic shared_ptr, never a lock. `epoch`
/// increments on every publish, so pollers can cheaply detect change
/// (the /live/zombies ETag is the sum of shard epochs).
struct ShardSnapshot {
  std::uint64_t epoch = 0;
  netbase::TimePoint clock = 0;  // detector's stream clock
  std::vector<LiveZombie> zombies;
  /// Cumulative (prefix, peer) pairs that ever emerged on this shard —
  /// the batch-equivalent set (resurrections excluded by definition).
  std::vector<std::pair<netbase::Prefix, zombie::PeerKey>> emerged_pairs;
  std::uint64_t processed = 0;
  std::uint64_t emerged = 0;
  std::uint64_t resurrected = 0;
  std::uint64_t died = 0;
};

struct ShardStats {
  std::size_t id = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t submitted = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t epoch = 0;
  std::size_t active_zombies = 0;
  /// CPU seconds this shard's worker thread has consumed
  /// (CLOCK_THREAD_CPUTIME_ID — excludes blocked waits, so it is the
  /// shard's genuine processing cost even on a one-core box).
  double busy_seconds = 0.0;
  /// Ingest-lag (queue-wait) quantiles in seconds from this shard's
  /// mergeable latency histogram; 0 until the shard has processed
  /// anything (or with ZS_LATHIST_ENABLED=0).
  double lag_p50 = 0.0;
  double lag_p99 = 0.0;
};

class LiveService {
 public:
  explicit LiveService(LiveConfig config);
  ~LiveService();
  LiveService(const LiveService&) = delete;
  LiveService& operator=(const LiveService&) = delete;

  /// Spawns the shard workers and freezes the shard count.
  void start();
  /// Closes the queues, joins the workers. Idempotent.
  void stop();
  bool running() const { return started_ && !stopped_; }

  std::size_t shards() const { return config_.shards; }
  const LiveConfig& config() const { return config_; }

  /// Changing the shard count is only legal before start(); throws
  /// std::logic_error afterwards (see file header).
  void resize(std::size_t shards);

  // --- producers (any thread, after start()) -------------------------

  /// Routes the record to its shard(s): BGP4MP messages are split per
  /// shard when their prefixes span several, state changes and peer
  /// index tables broadcast to every shard (a session reset clears
  /// watches everywhere), RIB entries route by prefix. Returns false
  /// if any per-shard piece was dropped (never with block_on_full).
  /// Stamps the ingest instant itself — feeds that want the stamp at
  /// the wire read use the FeedItem overload.
  bool submit(const mrt::MrtRecord& record);
  /// Same routing, but the caller supplies the feed-ingest stamp (the
  /// origin of every downstream stage latency). A default-constructed
  /// stamp is replaced with now.
  bool submit(FeedItem&& item);

  /// Registers an upcoming beacon announce/withdraw pair with the
  /// shard owning the prefix. A whole schedule may be registered
  /// upfront: the shard buffers events and releases each to its
  /// detector only when the stream clock reaches the event's
  /// announce_time, so a later cycle cannot supersede an earlier one
  /// before the earlier deadline fires.
  void expect(const beacon::BeaconEvent& event);

  /// Drains every shard and advances all detectors to `at` (0 = one
  /// second past the latest expected deadline), firing any outstanding
  /// alerts; blocks until every shard acknowledged. Call after a
  /// replay's EOF so the live result is complete.
  void finalize(netbase::TimePoint at = 0);

  // --- readers (any thread; cost is one brief pointer-copy lock) -----

  std::shared_ptr<const ShardSnapshot> snapshot(std::size_t shard) const;
  /// Sum of shard epochs — changes whenever any shard republished.
  std::uint64_t epoch() const;
  /// All currently-stuck routes across shards.
  std::vector<LiveZombie> zombies() const;
  /// Cumulative batch-equivalent emerge set across shards, sorted.
  std::vector<std::pair<netbase::Prefix, zombie::PeerKey>> emerged_pairs() const;
  std::vector<ShardStats> stats() const;
  std::uint64_t drops() const;
  std::uint64_t submitted() const;
  std::uint64_t processed() const;
  /// Largest per-shard worker CPU time — the critical-path cost a
  /// throughput bench divides records by to get capacity updates/sec
  /// on machines with fewer cores than shards.
  double max_worker_busy_seconds() const;
  /// Ingest-lag (queue-wait) quantile in seconds across every shard's
  /// histogram, merged bucket-wise — no sort, no reservoir bound.
  double lag_quantile(double q) const;
  /// Merged queue-wait histogram across shards (the bench captures
  /// before/after snapshots and diffs them per config).
  obs::LatSnapshot lag_snapshot() const;

  /// The merged, classified per-peer feed-quality table (live/peerq.hpp).
  /// Merges the newest per-shard peerq snapshots, runs the online
  /// noisy-peer classifier, refreshes the zs_peer_* gauges, and caches
  /// the result until shard peerq epochs or the stream clock move.
  /// Returns an empty table when config.peerq.enabled is false.
  /// finalize() runs a converge pass first, so after a replay the
  /// noisy set equals batch NoisyPeerFilter's exactly.
  std::shared_ptr<const PeerTable> peers() const;
  /// JSON body of GET /peers (noisy_only: GET /peers/noisy).
  std::string peers_json(bool noisy_only = false) const;

  // --- serving --------------------------------------------------------

  /// The /live/events SSE hub (exposed for tests; publish() is done by
  /// the shard workers).
  obs::SseChannel& events() { return events_; }

  /// Registers /live/zombies, /live/stats, and /live/events on the
  /// server, and installs the SSE fanout latency sink. Must be called
  /// before server.start(); the service must outlive the server.
  /// When `stale_after_seconds` > 0 the built-in /healthz is replaced
  /// with a readiness probe: if the newest shard snapshot is older
  /// than the threshold the probe answers 503 {"status":"degraded"}
  /// with a JSON reason, so a load balancer can eject a wedged
  /// instance (satellite of ISSUE 7; zslived's --stale-after).
  /// `extra_degraded` (optional) composes additional degraded states
  /// into the same probe: polled per request, it returns a reason
  /// string, empty meaning healthy — zslived wires the zstsdb alert
  /// engine in here so firing alerts also flip /healthz to 503.
  void attach_http(obs::HttpServer& server, double stale_after_seconds = 0.0,
                   std::function<std::string()> extra_degraded = {});

  /// Seconds since the most recent shard snapshot publish (any shard).
  /// Large values mean every worker is wedged or the service stopped.
  double newest_publish_age_seconds() const;

  /// JSON bodies of the two snapshot endpoints (exposed so the daemon's
  /// --print-zombies exit dump and the tests share the serializer).
  std::string zombies_json() const;
  std::string stats_json() const;

 private:
  struct ShardItem {
    enum class Kind : std::uint8_t { kRecord, kExpect, kAdvance };
    Kind kind = Kind::kRecord;
    mrt::MrtRecord record;
    beacon::BeaconEvent event;
    netbase::TimePoint advance_to = 0;
    /// Feed-ingest stamp (stage-latency origin; push_to backfills it
    /// with the enqueue instant when the producer didn't set one).
    std::chrono::steady_clock::time_point ingest{};
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// One pipeline stage's latency surface: the mergeable ns histogram
  /// in LatRegistry (drives /latency, /live/stats "stages", and the
  /// BENCH latency section) plus a registry seconds histogram whose
  /// exporter already emits p50/p95/p99 _quantile gauges
  /// (zs_live_stage_seconds_<stage>). Recording is two lock-free
  /// paths; with ZS_LATHIST_ENABLED=0 stage timing is not taken at
  /// all and both stay empty.
  struct StageLat {
    obs::LatHist* hist = nullptr;
    obs::Histogram seconds;
    void record_ns(std::uint64_t ns) noexcept {
      if constexpr (obs::kLatHistCompiledIn) {
        if (hist != nullptr) hist->record(ns);
        seconds.observe(static_cast<double>(ns) * 1e-9);
      }
    }
  };

  struct Shard {
    explicit Shard(std::size_t depth) : queue(depth) {}
    BoundedMpscQueue<ShardItem> queue;
    std::thread worker;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> finalize_acks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    /// Published snapshot. A plain mutex around a shared_ptr swap, not
    /// std::atomic<shared_ptr>: libstdc++'s _Sp_atomic guards its
    /// pointer with a lock bit TSan cannot model, so every load/store
    /// pair reports a false race. Readers hold the lock only for the
    /// pointer copy; the snapshot itself is immutable.
    mutable std::mutex snap_mu;
    std::shared_ptr<const ShardSnapshot> snap;
    /// Queue-wait (ingest-lag) histogram: lock-free record from the
    /// worker, snapshot-merge reads from any scrape thread — replaces
    /// the old atomic-double ring whose every /live/stats scrape paid
    /// an O(n log n) sort.
    obs::LatHist lag_hist;
    /// steady_clock ns of the last snapshot publish (0 = never);
    /// drives the /healthz staleness probe.
    std::atomic<std::uint64_t> last_publish_ns{0};
    /// The peer-quality side of the publication, same locking story as
    /// `snap`. Published on classifier-relevant changes or at most 1 s
    /// behind, not on every batch — peers() tolerates the staleness,
    /// the hot path keeps the copy off its per-batch cost.
    std::shared_ptr<const PeerQShardSnapshot> peerq_snap;
    obs::Gauge m_depth;
    obs::Gauge m_active;
  };

  bool push_to(std::size_t shard, ShardItem&& item);
  void worker_loop(std::size_t shard);
  /// peers() body; peer_mu_ must be held. `converge` applies the raw
  /// batch rule (finalize's equivalence pass).
  std::shared_ptr<const PeerTable> peers_locked(bool converge) const;

  LiveConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<netbase::TimePoint> max_deadline_{0};
  obs::SseChannel events_;
  obs::Counter m_records_;
  obs::Counter m_drops_;
  obs::Counter m_transitions_;
  obs::Histogram m_lag_;
  // Per-stage pipeline latency (see DESIGN.md §7 zslat): feed ingest →
  // enqueue, queue wait, detector processing, snapshot publish, SSE
  // fanout copy-out. End-to-end ("live.e2e") is recorded by the
  // loopback subscriber (live/loopback.hpp), not here.
  StageLat stage_ingest_enqueue_;
  StageLat stage_queue_wait_;
  StageLat stage_detect_;
  StageLat stage_publish_;
  StageLat stage_fanout_;
  // Peer-table merge + classifier state (live/peerq.hpp). One mutex
  // serializes the builder (it owns the dwell/silence hysteresis) and
  // the cached table readers share.
  mutable std::mutex peer_mu_;
  mutable PeerTableBuilder peer_builder_;
  mutable std::shared_ptr<const PeerTable> peer_table_;
  // Bounded-cardinality peer gauges (auto-swept into the TSDB as
  // peer.*): aggregates plus top-K offender slots.
  mutable obs::Gauge m_peer_count_;
  mutable obs::Gauge m_peer_noisy_;
  mutable obs::Gauge m_peer_silent_;
  mutable obs::Gauge m_peer_feeding_;
  mutable std::vector<obs::Gauge> m_peer_topk_ppm_;
  mutable std::vector<obs::Gauge> m_peer_topk_asn_;
};

}  // namespace zombiescope::live

// obs/tsdb.hpp — zstsdb, the embedded metrics time-series store.
//
// Everything else in src/obs/ answers "what is the value now"; this
// module answers "what was it over the last N minutes" — the question
// a paper about *long-lived* zombies keeps asking. A sampler thread
// snapshots the metrics registry (counters and gauges), the zslat
// latency registry (as interval p50/p95/p99), and any caller-supplied
// probes on a fixed cadence, and feeds every sample into multi-tier
// downsampling rings:
//
//   tier 0:  1 s step × 900 slots  (15 min at full resolution)
//   tier 1: 10 s step × 720 slots  (2 h)
//   tier 2: 60 s step × 1440 slots (24 h)
//
// Memory is fixed at construction (~49 KB per series with the default
// tiers, capped at max_series), and the rings follow the house
// concurrency discipline: one writer (the sampler), lock-free
// snapshot readers. Each slot is a (timestamp, value) pair of relaxed
// atomics published by a release store of the ring head; a reader
// copies the window, re-reads the head, and discards any slot the
// writer could have reused in between — no locks on the data path.
// Counters keep their cumulative value in the ring; rate() derivation
// happens at query time and is counter-reset-aware (a restarted
// process does not produce a huge negative spike, it produces
// value/dt like Prometheus).
//
// On top of the store sits a declarative alert-rule engine evaluated
// in the sampler tick: threshold (value, rate, or ratio-to-own-
// baseline), sustained-duration ("for 30s"), and hysteresis (separate
// clear threshold + clear duration, so a value hovering at the edge
// cannot flap). Transitions emit kAlertFiring / kAlertResolved
// journal events and maintain the zs_alerts_active gauge.
//
// HTTP surface (attach_http):
//   GET /tsdb/query?metric=&range=&step=[&agg=rate]  JSON series
//   GET /tsdb/metrics                                stored names
//   GET /alerts                                      rule states
//
// Compiling with ZS_TSDB_ENABLED=0 (cmake -DZS_TSDB=OFF) turns every
// member into an empty inline body, like ZS_PROF / ZS_HEAP /
// ZS_LATHIST — enforced by tsdb_compileout_test.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZS_TSDB_ENABLED
#define ZS_TSDB_ENABLED 1
#endif

#if ZS_TSDB_ENABLED
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#endif

#include "obs/lathist.hpp"
#include "obs/metrics.hpp"

namespace zombiescope::obs {

class HttpServer;
struct HttpResponse;

/// True when the time-series store is compiled in. Call sites guard
/// with `if constexpr (kTsdbCompiledIn)` when a ZS_TSDB=OFF build must
/// execute exactly zero code.
inline constexpr bool kTsdbCompiledIn = ZS_TSDB_ENABLED != 0;

/// How a series aggregates when a tier's step covers several samples,
/// and whether rate() applies: counters keep the last cumulative value
/// per bucket and may be queried as a rate; gauges average.
enum class SeriesKind { kCounter, kGauge };

/// One downsampling tier: fixed step, fixed slot count, so span =
/// step_ms * slots and memory never grows.
struct TsdbTier {
  std::int64_t step_ms;
  std::size_t slots;
};

/// One stored or derived sample. t_ms is wall-clock Unix milliseconds
/// aligned to the owning tier's bucket start.
struct TsdbPoint {
  std::int64_t t_ms;
  double v;
};

/// Declarative alert rule, evaluated once per sampler tick.
///
///   {"queue_drops", "live.ingest_dropped_total", kRate, kGt, 0, ...}
///     -> "ingest drop rate > 0 sustained for 30 s"
///   {"e2e_p99", "latency:live.e2e:p99", kBaselineRatio, kGt, 2.0, ...}
///     -> "p99 above 2x its own trailing baseline for 60 s"
///
/// Hysteresis: a breach must hold for `for_seconds` before the rule
/// fires, and once firing it must stay at-or-below `clear_threshold`
/// for `clear_for_seconds` before it resolves. Values between
/// clear_threshold and threshold hold the current state (and reset
/// the opposing timer), so a single spike or dip cannot flap.
struct AlertRule {
  enum class Mode {
    kValue,          // compare the sampled value
    kRate,           // compare the counter-reset-aware rate
    kBaselineRatio,  // compare value / trailing-baseline-mean
  };
  /// Threshold direction. kAbove/kBelow are the descriptive spellings
  /// (a floor rule like "feeding peers dropped below 1" reads as
  /// kBelow); kGt/kLt remain for existing rules.
  enum class Op { kGt, kLt, kAbove = kGt, kBelow = kLt };

  std::string name;    // stable identifier (journal c = index, not name)
  std::string metric;  // series the rule watches
  Mode mode = Mode::kValue;
  Op op = Op::kGt;
  double threshold = 0.0;
  /// Clear side of the hysteresis band; NaN (default) means equal to
  /// `threshold` (no band).
  double clear_threshold = kUnsetThreshold;
  double for_seconds = 0.0;
  double clear_for_seconds = 0.0;
  /// kBaselineRatio only: the trailing window the baseline mean is
  /// computed over (excluding the most recent `for_seconds`, so the
  /// anomaly being judged does not drag its own baseline up).
  double baseline_window_seconds = 300.0;
  std::size_t baseline_min_samples = 30;

  static constexpr double kUnsetThreshold = -1e308;
};

enum class AlertState { kOk, kPending, kFiring };

/// Sampler configuration. `tiers` empty means Tsdb::default_tiers().
struct TsdbConfig {
  std::int64_t cadence_ms = 1000;
  std::size_t max_series = 512;
  std::vector<TsdbTier> tiers;
};

/// Point-in-time view of one rule, as served by GET /alerts.
struct AlertStatus {
  std::string name;
  std::string metric;
  AlertState state = AlertState::kOk;
  double value = 0.0;      // last evaluated comparison value
  double threshold = 0.0;  // effective threshold (baseline-scaled)
  double for_seconds = 0.0;
  std::int64_t since_ms = 0;  // when the current state was entered
};

#if ZS_TSDB_ENABLED

/// The store + sampler + alert engine. One instance per process is
/// the expected shape (the tools create one next to their
/// HttpServer), but nothing is global: tests build as many as they
/// like and drive sample_once() with synthetic clocks.
class Tsdb {
 public:
  using Config = TsdbConfig;

  /// {1 s × 900, 10 s × 720, 60 s × 1440}.
  static std::vector<TsdbTier> default_tiers();

  explicit Tsdb(Config cfg = {});
  ~Tsdb();
  Tsdb(const Tsdb&) = delete;
  Tsdb& operator=(const Tsdb&) = delete;

  /// Registers a caller-supplied sample source, polled once per tick
  /// on the sampler thread. Must be called before start(). The name
  /// is used verbatim (probes are not subject to the zs_-prefix
  /// mapping applied to registry metrics).
  void add_probe(std::string name, SeriesKind kind,
                 std::function<double()> fn);

  /// Adds a rule. Must be called before start().
  void add_rule(AlertRule rule);

  /// Starts the sampler thread. Returns false if already running.
  bool start();
  /// Stops and joins the sampler. Idempotent.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// One sampler tick at wall-clock time `now_ms`: snapshot every
  /// source, feed the rings, evaluate the rules. The sampler thread
  /// calls this on its cadence; tests call it directly with a
  /// synthetic clock (never concurrently with a running sampler).
  void sample_once(std::int64_t now_ms);

  /// Sorted names of every stored series.
  std::vector<std::string> metric_names() const;

  enum class QueryStatus { kOk, kNotFound, kBadRequest };
  struct QueryResult {
    QueryStatus status = QueryStatus::kOk;
    std::string error;  // set when status != kOk
    SeriesKind kind = SeriesKind::kGauge;
    std::int64_t step_ms = 0;  // effective (tier-clamped) step
    std::vector<TsdbPoint> points;
  };

  /// Core query: the trailing `range_ms` of `metric`, grouped to
  /// `step_ms` (clamped up to the chosen tier's step; 0 = tier step),
  /// optionally derived as a per-second rate (counters only). "Now"
  /// is the newest stored timestamp of the series, which makes
  /// replayed/test clocks deterministic.
  QueryResult query(std::string_view metric, std::int64_t range_ms,
                    std::int64_t step_ms, bool as_rate) const;

  /// Current state of every rule, in registration order.
  std::vector<AlertStatus> alert_statuses() const;
  std::size_t firing_count() const;
  /// Comma-joined names of firing rules ("" when healthy) — the
  /// fragment /healthz embeds when degraded.
  std::string firing_names() const;

  /// {"firing":N,"rules":[...]} as served by GET /alerts.
  std::string alerts_json() const;

  /// Registers /tsdb/query, /tsdb/metrics and /alerts on `server`.
  /// Call before server.start(). Does NOT register /healthz — the
  /// owning daemon composes degraded-health itself (see
  /// LiveService::attach_http's extra_degraded hook).
  void attach_http(HttpServer& server);

  /// HTTP handler bodies, exposed for tests that want to exercise
  /// param validation without a socket.
  HttpResponse handle_query(std::string_view target) const;
  HttpResponse handle_metrics(std::string_view target) const;
  HttpResponse handle_alerts(std::string_view target) const;

 private:
  struct Ring;
  struct Series;
  struct RuleState;

  Series* find_or_create(std::string_view name, SeriesKind kind);
  const Series* find(std::string_view name) const;
  void evaluate_rules(std::int64_t now_ms);
  /// Trailing-mean baseline for a kBaselineRatio rule; *have = false
  /// when the window holds too few points (or a zero mean).
  double baseline_for(const AlertRule& rule, std::int64_t now_ms,
                      bool* have) const;
  void sampler_loop();

  Config cfg_;
  mutable std::mutex series_mutex_;  // guards the map, not the rings
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;

  std::vector<std::pair<std::string, LatSnapshot>> lat_prev_;

  struct Probe {
    std::string name;
    SeriesKind kind;
    std::function<double()> fn;
  };
  std::vector<Probe> probes_;

  mutable std::mutex alert_mutex_;  // guards rules_ state fields
  std::vector<AlertRule> rules_;
  std::vector<std::unique_ptr<RuleState>> rule_states_;

  // Sampler-tick scratch: name -> value sampled this tick.
  std::map<std::string, std::pair<double, SeriesKind>, std::less<>>
      tick_values_;

  Counter m_samples_;
  Counter m_fired_;
  Counter m_dropped_series_;
  Gauge m_active_;

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
};

#else  // !ZS_TSDB_ENABLED — every body inline and empty.

class Tsdb {
 public:
  using Config = TsdbConfig;

  static std::vector<TsdbTier> default_tiers() { return {}; }

  explicit Tsdb(Config = {}) {}
  Tsdb(const Tsdb&) = delete;
  Tsdb& operator=(const Tsdb&) = delete;

  void add_probe(std::string, SeriesKind, std::function<double()>) {}
  void add_rule(AlertRule) {}
  bool start() { return false; }
  void stop() {}
  bool running() const { return false; }
  void sample_once(std::int64_t) {}

  std::vector<std::string> metric_names() const { return {}; }

  enum class QueryStatus { kOk, kNotFound, kBadRequest };
  struct QueryResult {
    QueryStatus status = QueryStatus::kNotFound;
    std::string error;
    SeriesKind kind = SeriesKind::kGauge;
    std::int64_t step_ms = 0;
    std::vector<TsdbPoint> points;
  };
  QueryResult query(std::string_view, std::int64_t, std::int64_t,
                    bool) const {
    return {};
  }

  std::vector<AlertStatus> alert_statuses() const { return {}; }
  std::size_t firing_count() const { return 0; }
  std::string firing_names() const { return {}; }
  std::string alerts_json() const { return "{}"; }

  void attach_http(HttpServer&) {}
};

#endif  // ZS_TSDB_ENABLED

/// "12s" / "5m" / "2h" / bare seconds -> milliseconds; 0 on parse
/// failure or non-positive input. Shared by the query handler and the
/// tools' flag parsing.
std::int64_t parse_duration_ms(std::string_view text);

}  // namespace zombiescope::obs

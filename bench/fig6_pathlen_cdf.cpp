// fig6_pathlen_cdf — reproduces Figure 6 (App. B.2): the CDF of AS
// path lengths of (i) normal paths at peers that withdrew (normal
// peers), (ii) normal paths at peers that got stuck (zombie peers),
// and (iii) the zombie (stuck) paths themselves — with and without
// double-counting. Shape to reproduce: zombie paths are longer than
// normal paths (they emerge from path hunting), and the vast majority
// of zombie paths differ from the pre-withdrawal path (paper: 96.1 %
// for IPv4 / 90.03 % for IPv6 with dc; 95.54 % / 79.61 % without).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/analyzer.hpp"
#include "zombie/interval_detector.hpp"

using namespace zombiescope;

namespace {

zombie::IntervalDetectionResult g_result;

void print_figure() {
  bench::print_header("Figure 6 — CDFs of AS path lengths (normal vs zombie paths)",
                      "IMC'25 paper Fig. 6 (App. B.2)");
  std::vector<zombie::IntervalDetectionResult> results;
  for (int which = 0; which < 3; ++which) {
    auto out = bench::load_ris_period(which);
    zombie::IntervalDetectorConfig config;
    for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
    zombie::IntervalZombieDetector detector(config);
    results.push_back(detector.detect(out.updates, out.events));
    if (which == 0) g_result = results.back();
  }

  for (bool dedup : {false, true}) {
    std::printf("\n--- %s ---\n", dedup ? "Without double-counting" : "With double-counting");
    for (auto family : {netbase::AddressFamily::kIpv4, netbase::AddressFamily::kIpv6}) {
      zombie::PathLengthPopulations merged;
      double changed_sum = 0;
      int changed_n = 0;
      for (const auto& result : results) {
        auto pops = zombie::path_length_populations(result, family, dedup);
        auto append = [](std::vector<int>& into, const std::vector<int>& from) {
          into.insert(into.end(), from.begin(), from.end());
        };
        append(merged.normal_at_normal_peers, pops.normal_at_normal_peers);
        append(merged.normal_at_zombie_peers, pops.normal_at_zombie_peers);
        append(merged.zombie_paths, pops.zombie_paths);
        if (!pops.zombie_paths.empty()) {
          changed_sum += pops.changed_path_fraction * pops.zombie_paths.size();
          changed_n += static_cast<int>(pops.zombie_paths.size());
        }
      }
      const auto normal = analysis::Cdf::of<int>(merged.normal_at_normal_peers);
      const auto at_zombie = analysis::Cdf::of<int>(merged.normal_at_zombie_peers);
      const auto zombie_paths = analysis::Cdf::of<int>(merged.zombie_paths);
      std::printf("%s:\n", std::string(netbase::to_string(family)).c_str());
      std::printf("  normal path @ normal peers: n=%zu mean=%.2f median=%.0f\n",
                  normal.size(), normal.mean(), normal.median());
      std::printf("  normal path @ zombie peers: n=%zu mean=%.2f median=%.0f\n",
                  at_zombie.size(), at_zombie.mean(), at_zombie.median());
      std::printf("  zombie (stuck) paths:       n=%zu mean=%.2f median=%.0f\n",
                  zombie_paths.size(), zombie_paths.mean(), zombie_paths.median());
      if (changed_n > 0)
        std::printf("  zombie paths differing from pre-withdrawal path: %s\n",
                    analysis::pct(changed_sum / changed_n).c_str());
      if (!zombie_paths.empty() && !normal.empty())
        std::printf("  zombie paths longer than normal paths: %s\n",
                    zombie_paths.mean() > normal.mean() ? "yes (path hunting)" : "NO");
    }
  }
  std::printf("\nPaper: zombie paths are longer (elected during path hunting after the\n"
              "withdrawal); 96.1%%/90.03%% (v4/v6, with dc) of zombie paths differ from\n"
              "the pre-withdrawal path (95.54%%/79.61%% without dc).\n");
}

void BM_PathPopulations(benchmark::State& state) {
  for (auto _ : state) {
    auto pops =
        zombie::path_length_populations(g_result, netbase::AddressFamily::kIpv6, true);
    benchmark::DoNotOptimize(pops.zombie_paths.size());
  }
}
BENCHMARK(BM_PathPopulations)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

file(REMOVE_RECURSE
  "libzs_mrt.a"
)

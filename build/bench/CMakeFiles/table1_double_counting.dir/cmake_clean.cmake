file(REMOVE_RECURSE
  "CMakeFiles/table1_double_counting.dir/table1_double_counting.cpp.o"
  "CMakeFiles/table1_double_counting.dir/table1_double_counting.cpp.o.d"
  "table1_double_counting"
  "table1_double_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_double_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

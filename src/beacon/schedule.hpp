// beacon/schedule.hpp — beacon schedules: the classic RIPE RIS
// 4-hour/2-hour cycle and the paper's new 15-minute methodology with
// 24-hour or 15-day prefix recycling.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::beacon {

/// One scheduled announce/withdraw pair for one prefix.
struct BeaconEvent {
  netbase::Prefix prefix;
  netbase::TimePoint announce_time = 0;
  netbase::TimePoint withdraw_time = 0;
  /// Approach-2 collision bug: two slots of the same day map to the
  /// same prefix; the paper studies only the latter. The earlier slot
  /// is marked superseded (it still happens on the wire).
  bool superseded = false;
};

/// The RIPE RIS beacon schedule: every beacon prefix is announced at
/// 00:00/04:00/.../20:00 UTC and withdrawn two hours later. Every
/// announcement carries the Aggregator clock.
class RisBeaconSchedule {
 public:
  /// Default beacon set resembling the era of [Fontugne et al. 2019]:
  /// 13 IPv4 /24s (84.205.64+i.0/24) and 14 IPv6 /48s
  /// (2001:7fb:fe00+i::/48).
  static RisBeaconSchedule classic();

  RisBeaconSchedule(std::vector<netbase::Prefix> prefixes) : prefixes_(std::move(prefixes)) {}

  const std::vector<netbase::Prefix>& prefixes() const { return prefixes_; }

  /// All events with announce_time in [start, end).
  std::vector<BeaconEvent> events(netbase::TimePoint start, netbase::TimePoint end) const;

  static constexpr netbase::Duration kPeriod = 4 * netbase::kHour;
  static constexpr netbase::Duration kUpTime = 2 * netbase::kHour;

 private:
  std::vector<netbase::Prefix> prefixes_;
};

/// The paper's beacon methodology (§4): a different /48 announced
/// every 15 minutes (at :00, :15, :30, :45), withdrawn 15 minutes
/// later; prefixes recycle after 24 hours (approach 1) or 15 days
/// (approach 2, with the documented encoding-collision bug).
class LongLivedBeaconSchedule {
 public:
  enum class Approach {
    kDaily,       // "2a0d:3dc1:(HHMM)::/48", recycled every 24 h
    kFifteenDay,  // "2a0d:3dc1:(HH)(minute+day%15)::/48", recycled every 15 days
  };

  LongLivedBeaconSchedule(Approach approach, netbase::Prefix covering)
      : approach_(approach), covering_(covering) {}

  /// The paper's deployment: beacons under 2a0d:3dc1::/32.
  static LongLivedBeaconSchedule paper_deployment(Approach approach);

  Approach approach() const { return approach_; }
  const netbase::Prefix& covering() const { return covering_; }

  /// The beacon prefix for the slot starting at `slot_time` (must be
  /// on a 15-minute boundary). This is where the approach-2 collision
  /// bug lives: distinct slots can map to the same prefix.
  netbase::Prefix prefix_for(netbase::TimePoint slot_time) const;

  /// All events with announce_time in [start, end), slot every 15
  /// minutes; approach-2 same-day collisions are resolved by marking
  /// the earlier event superseded (footnote 3: "we study only the
  /// latter prefix").
  std::vector<BeaconEvent> events(netbase::TimePoint start, netbase::TimePoint end) const;

  static constexpr netbase::Duration kSlot = 15 * netbase::kMinute;
  static constexpr netbase::Duration kUpTime = 15 * netbase::kMinute;

 private:
  Approach approach_;
  netbase::Prefix covering_;
};

}  // namespace zombiescope::beacon

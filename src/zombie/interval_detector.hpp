// zombie/interval_detector.hpp — the paper's §3 replication
// methodology for RIPE RIS beacons.
//
// Messages are divided into 4-hour intervals starting at the beacon
// announcement times; each interval is processed independently with
// no prior routing state. A beacon is a zombie at a peer if, at
// withdraw_time + threshold, the last in-interval update for it is an
// announcement. The *revised* methodology additionally decodes the
// Aggregator IP clock of the stuck announcement: if it predates this
// interval's announcement, the zombie belongs to a previous interval
// and is a duplicate (double-counting elimination). Noisy peers can
// be excluded.

#pragma once

#include <set>
#include <span>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "zombie/state.hpp"
#include "zombie/types.hpp"

namespace zombiescope::zombie {

struct IntervalDetectorConfig {
  /// Stuck threshold after the withdrawal (the paper: 90 minutes).
  netbase::Duration threshold = 90 * netbase::kMinute;
  /// Peer sessions to ignore entirely (noisy peers).
  std::set<PeerKey> excluded_peers;
  /// Exclude whole peer ASes (the paper excludes AS16347).
  std::set<bgp::Asn> excluded_peer_asns;
};

struct IntervalDetectionResult {
  /// Every stuck route found, including duplicates (flagged).
  std::vector<ZombieRoute> routes;
  /// Outbreaks including duplicates — "with double-counting".
  std::vector<ZombieOutbreak> outbreaks_with_duplicates;
  /// Outbreaks after the Aggregator filter — "without double-counting".
  std::vector<ZombieOutbreak> outbreaks_deduplicated;
  /// ⟨beacon, interval⟩ pairs visible at >= 1 peer (Table 1's
  /// "#visible prefixes").
  int visible_prefixes = 0;
  /// Per ⟨beacon, interval⟩ peer-AS visibility, for emergence rates:
  /// pairs (prefix, interval_start, set of peer ASNs that announced).
  struct Visibility {
    netbase::Prefix prefix;
    netbase::TimePoint interval_start;
    std::set<bgp::Asn> announcing_asns;
  };
  std::vector<Visibility> visibility;

  /// Per ⟨beacon, interval, peer⟩ path observation for the Fig. 6
  /// analysis: the "normal" path held when the beacon was withdrawn
  /// and, if the peer became a zombie, the stuck path.
  struct PathObservation {
    netbase::Prefix prefix;
    netbase::TimePoint interval_start = 0;
    PeerKey peer;
    std::optional<bgp::AsPath> normal_path;  // best path at withdraw time
    std::optional<bgp::AsPath> zombie_path;  // stuck path at check time
    bool duplicate = false;                  // zombie flagged by the Aggregator filter
    bool is_zombie() const { return zombie_path.has_value(); }
  };
  std::vector<PathObservation> observations;
};

class IntervalZombieDetector {
 public:
  explicit IntervalZombieDetector(IntervalDetectorConfig config) : config_(config) {}

  /// Runs detection over a time-sorted record stream for the given
  /// beacon events (from RisBeaconSchedule::events).
  IntervalDetectionResult detect(std::span<const mrt::MrtRecord> records,
                                 std::span<const beacon::BeaconEvent> events) const;

 private:
  bool peer_excluded(const PeerKey& peer) const {
    return config_.excluded_peers.contains(peer) ||
           config_.excluded_peer_asns.contains(peer.asn);
  }

  IntervalDetectorConfig config_;
};

/// Convenience filters over outbreak lists.
std::vector<ZombieOutbreak> filter_family(std::span<const ZombieOutbreak> outbreaks,
                                          netbase::AddressFamily family);

}  // namespace zombiescope::zombie

// zombie/noisy.hpp — identifying noisy collector peers.
//
// §3.2 and §5 of the paper: a handful of peers are stuck orders of
// magnitude more often than the rest (AS16347 at ~42.8 % vs a 1.58 %
// average; the three RRC25 routers at 6.9–9.9 %). Counting them would
// grossly overestimate zombies, so they are detected statistically and
// excluded.

#pragma once

#include <map>
#include <set>
#include <span>
#include <vector>

#include "zombie/types.hpp"

namespace zombiescope::zombie {

/// Per-peer stuck statistics over a set of beacon announcements.
struct PeerStats {
  PeerKey peer;
  int zombie_routes = 0;     // announcements this peer kept stuck
  int announcements = 0;     // announcements the peer saw (denominator)
  double probability() const {
    return announcements == 0 ? 0.0
                              : static_cast<double>(zombie_routes) / announcements;
  }
};

struct NoisyPeerConfig {
  /// A peer is noisy if its stuck probability exceeds both the floor
  /// and `multiplier` x the median probability of all peers.
  double probability_floor = 0.05;
  double median_multiplier = 4.0;
};

class NoisyPeerFilter {
 public:
  explicit NoisyPeerFilter(NoisyPeerConfig config = {}) : config_(config) {}

  /// Builds per-peer stats. `total_announcements` is the number of
  /// studied beacon announcements (every session is assumed to have
  /// seen each announcement — full-feed peers); `routes` are all
  /// zombie routes found at the reference threshold.
  std::vector<PeerStats> stats(std::span<const ZombieRoute> routes,
                               std::span<const PeerKey> peers,
                               int total_announcements) const;

  /// The peers classified noisy.
  std::vector<PeerStats> noisy_peers(std::span<const PeerStats> stats) const;

  /// Convenience: the PeerKey set of noisy peers.
  std::set<PeerKey> noisy_peer_keys(std::span<const ZombieRoute> routes,
                                    std::span<const PeerKey> peers,
                                    int total_announcements) const;

  /// Mean/median stuck probability of the given peers (Table 4).
  static double mean_probability(std::span<const PeerStats> stats);
  static double median_probability(std::span<const PeerStats> stats);

 private:
  NoisyPeerConfig config_;
};

}  // namespace zombiescope::zombie

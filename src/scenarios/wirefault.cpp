#include "scenarios/wirefault.hpp"

#include <algorithm>
#include <utility>

#include "bgp/session_fsm.hpp"
#include "zombie/realtime.hpp"

namespace zombiescope::scenarios {

std::string to_string(WireFaultKind kind) {
  switch (kind) {
    case WireFaultKind::kHoldExpiry:
      return "hold_expiry";
    case WireFaultKind::kSendHoldStall:
      return "send_hold_stall";
    case WireFaultKind::kGrStaleRetention:
      return "gr_stale_retention";
    case WireFaultKind::kLlgrLongRetention:
      return "llgr_long_retention";
  }
  return "unknown";
}

std::string WireScenarioSpec::name() const {
  return to_string(kind) + "/seed" + std::to_string(seed);
}

namespace {

struct SessionRun {
  netbase::TimePoint drop_time = 0;
  std::string reason;
};

/// Drives a real collector/peer SessionFsm pair second by second: a
/// full handshake, a healthy phase, then the fault. kHoldExpiry goes
/// silent (nothing more arrives from the peer); kSendHoldStall keeps
/// the peer's KEEPALIVEs coming but stops draining the collector's out
/// queue (the zero-window wedge of RFC 9687). Returns when — and why —
/// the collector's side leaves Established.
SessionRun run_session_pair(const WireScenarioSpec& spec, netbase::TimePoint start,
                            netbase::TimePoint fault_time,
                            netbase::TimePoint give_up) {
  bgp::FsmConfig collector_config;
  collector_config.hold_time = spec.hold_time;
  collector_config.keepalive_interval = spec.hold_time / 3;
  collector_config.send_hold_time =
      spec.kind == WireFaultKind::kSendHoldStall ? spec.send_hold_time : 0;
  bgp::FsmConfig peer_config;
  peer_config.hold_time = spec.hold_time;
  peer_config.keepalive_interval = spec.hold_time / 3;

  bgp::SessionFsm collector(collector_config);
  bgp::SessionFsm peer(peer_config);
  collector.start(start);
  peer.start(start);
  collector.connected(start);
  peer.connected(start);

  const bgp::FsmOpen collector_open{spec.hold_time, 0xc0000201, 64999};
  const bgp::FsmOpen peer_open{spec.hold_time, 0xc0000202, 65000};

  SessionRun run;
  netbase::TimePoint wedged_keepalive_due = fault_time;
  for (netbase::TimePoint t = start; t <= give_up; ++t) {
    collector.tick(t);
    const bool wedged =
        spec.kind == WireFaultKind::kSendHoldStall && t >= fault_time;
    const bool silent = spec.kind == WireFaultKind::kHoldExpiry && t >= fault_time;
    if (!wedged) {
      for (bgp::FsmMessage& message : collector.drain(t, 16)) {
        if (message.type == bgp::MessageType::kOpen && !message.open.has_value())
          message.open = collector_open;
        peer.receive(t, message);
      }
    }
    if (wedged) {
      // The RFC 9687 pathology: the peer's control plane is stuck —
      // its FSM no longer runs (so its own hold timer cannot save us)
      // — yet KEEPALIVEs keep flowing from a part of the box that
      // still works. Only send progress can expose this peer.
      if (t >= wedged_keepalive_due) {
        collector.receive(t, bgp::FsmMessage{bgp::MessageType::kKeepalive,
                                             std::nullopt, std::nullopt});
        wedged_keepalive_due = t + std::max<netbase::Duration>(spec.hold_time / 3, 1);
      }
    } else {
      peer.tick(t);
      if (!silent) {
        for (bgp::FsmMessage& message : peer.drain(t, 16)) {
          if (message.type == bgp::MessageType::kOpen && !message.open.has_value())
            message.open = peer_open;
          collector.receive(t, message);
        }
      }
    }
    if (t >= fault_time && collector.state() != bgp::FsmState::kEstablished) {
      run.drop_time = t;
      run.reason = collector.last_error();
      return run;
    }
  }
  return run;  // drop_time 0: the session survived (should not happen)
}

mrt::Bgp4mpMessage make_announce(const WireScenarioResult& result,
                                 netbase::TimePoint t) {
  mrt::Bgp4mpMessage message;
  message.timestamp = t;
  message.peer_asn = result.peer.asn;
  message.local_asn = 64999;
  message.peer_address = result.peer.address;
  message.update.announced = {result.prefix};
  message.update.attributes.as_path =
      bgp::AsPath{result.peer.asn, 64511, 64496};
  return message;
}

mrt::Bgp4mpMessage make_withdraw(const WireScenarioResult& result,
                                 netbase::TimePoint t) {
  mrt::Bgp4mpMessage message;
  message.timestamp = t;
  message.peer_asn = result.peer.asn;
  message.local_asn = 64999;
  message.peer_address = result.peer.address;
  message.update.withdrawn = {result.prefix};
  return message;
}

mrt::Bgp4mpStateChange make_state_change(const WireScenarioResult& result,
                                         netbase::TimePoint t) {
  mrt::Bgp4mpStateChange change;
  change.timestamp = t;
  change.peer_asn = result.peer.asn;
  change.local_asn = 64999;
  change.peer_address = result.peer.address;
  change.old_state = bgp::SessionState::kEstablished;
  change.new_state = bgp::SessionState::kIdle;
  return change;
}

}  // namespace

WireScenarioResult run_wire_scenario(const WireScenarioSpec& spec) {
  WireScenarioResult result;
  result.spec = spec;

  const auto kind_index = static_cast<std::uint64_t>(spec.kind);
  result.prefix = netbase::Prefix(
      netbase::IpAddress::v4(
          (10u << 24) | (static_cast<std::uint32_t>(kind_index) << 16) |
          (static_cast<std::uint32_t>(spec.seed % 250) << 8)),
      24);
  result.peer.asn = static_cast<bgp::Asn>(65000 + spec.seed);
  result.peer.address =
      netbase::IpAddress::v4((192u << 24) | (0u << 16) | (2u << 8) |
                             static_cast<std::uint32_t>(10 + spec.seed % 200));

  const netbase::TimePoint announce = 1000000 + static_cast<netbase::TimePoint>(
                                                    spec.seed) * 10000;
  const netbase::TimePoint withdraw = announce + 2 * netbase::kHour;
  result.beacon = {result.prefix, announce, withdraw, false};

  // Seed jitter keeps fault instants off round numbers without ever
  // moving them across a deadline boundary.
  const netbase::TimePoint jitter = static_cast<netbase::TimePoint>(spec.seed % 60);

  switch (spec.kind) {
    case WireFaultKind::kHoldExpiry: {
      // Peer goes silent 15 min before the withdrawal; the negotiated
      // hold timer must kill the session long before the threshold.
      result.fault_time = withdraw - 15 * netbase::kMinute + jitter;
      const SessionRun run = run_session_pair(spec, announce, result.fault_time,
                                              withdraw + spec.threshold);
      result.session_drop_time = run.drop_time;
      result.drop_reason = run.reason;
      result.records.push_back(make_announce(result, announce));
      result.records.push_back(make_state_change(result, run.drop_time));
      result.expect_zombie = false;
      break;
    }
    case WireFaultKind::kSendHoldStall: {
      // Peer wedges 10 min before the withdrawal: KEEPALIVEs keep the
      // hold timer quiet, the lost withdrawal makes the zombie, and
      // only the send-hold teardown resolves it.
      result.fault_time = withdraw - 10 * netbase::kMinute + jitter;
      const SessionRun run =
          run_session_pair(spec, announce, result.fault_time,
                           result.fault_time + spec.send_hold_time +
                               2 * spec.hold_time);
      result.session_drop_time = run.drop_time;
      result.drop_reason = run.reason;
      result.records.push_back(make_announce(result, announce));
      result.records.push_back(make_state_change(result, run.drop_time));
      result.expect_zombie = true;
      result.expected_emergence = withdraw + spec.threshold;
      result.expect_resolution = true;
      result.expected_resolution = run.drop_time;
      break;
    }
    case WireFaultKind::kGrStaleRetention: {
      // Session drops 5 min before the withdrawal with GR negotiated:
      // the state change is suppressed (the RIB kept the routes), the
      // withdrawal never arrives, and the restart-time expiry emits
      // the synthetic withdrawal that resolves the zombie.
      result.fault_time = withdraw - 5 * netbase::kMinute + jitter;
      wire::RetentionConfig config;
      config.gr_enabled = true;
      wire::StaleRetention retention(config);
      retention.set_peer_times(spec.restart_time, 0);
      retention.route_announced(result.prefix);
      const bool retained = retention.session_down(result.fault_time);
      netbase::TimePoint flush_time = 0;
      std::vector<netbase::Prefix> flushed;
      for (netbase::TimePoint t = result.fault_time;
           retained && flushed.empty() &&
           t <= result.fault_time + spec.restart_time + 60;
           ++t) {
        flushed = retention.tick(t);
        if (!flushed.empty()) flush_time = t;
      }
      result.flush_reason = retention.last_flush_reason();
      result.records.push_back(make_announce(result, announce));
      result.records.push_back(make_withdraw(result, flush_time));
      result.expect_zombie = true;
      result.expected_emergence = withdraw + spec.threshold;
      result.expect_resolution = true;
      result.expected_resolution = flush_time;
      break;
    }
    case WireFaultKind::kLlgrLongRetention: {
      // Same drop, but LLGR stretches retention to ~a day: the
      // restart window hands over to the LLGR window, and the flush —
      // and the zombie's resolution — happens ~24h later. This is the
      // paper's long-lived zombie, manufactured to order.
      result.fault_time = withdraw - 5 * netbase::kMinute + jitter;
      wire::RetentionConfig config;
      config.gr_enabled = true;
      config.llgr_enabled = true;
      wire::StaleRetention retention(config);
      retention.set_peer_times(600, spec.llgr_stale_time);
      retention.route_announced(result.prefix);
      const bool retained = retention.session_down(result.fault_time);
      // Step through both deadlines without walking every second of a
      // day: probe just before and at each boundary.
      netbase::TimePoint flush_time = 0;
      std::vector<netbase::Prefix> flushed;
      const netbase::TimePoint first_deadline = result.fault_time + 600;
      const netbase::TimePoint second_deadline =
          first_deadline + spec.llgr_stale_time;
      for (const netbase::TimePoint t :
           {first_deadline - 1, first_deadline, second_deadline - 1,
            second_deadline}) {
        if (!retained || !flushed.empty()) break;
        flushed = retention.tick(t);
        if (!flushed.empty()) flush_time = t;
      }
      result.flush_reason = retention.last_flush_reason();
      result.records.push_back(make_announce(result, announce));
      result.records.push_back(make_withdraw(result, flush_time));
      result.expect_zombie = true;
      result.expected_emergence = withdraw + spec.threshold;
      result.expect_resolution = true;
      result.expected_resolution = flush_time;
      break;
    }
  }

  // Score: the detector sees exactly what the collector archived.
  zombie::RealTimeConfig detector_config;
  detector_config.threshold = spec.threshold;
  zombie::RealTimeZombieDetector detector(detector_config);
  detector.on_alert([&result](const zombie::ZombieAlert& alert) {
    result.measured_emergence = alert.raised_at;
  });
  detector.on_resolution([&result](const zombie::ZombieResolution& resolution) {
    result.measured_resolution = resolution.resolved_at;
  });
  detector.expect(result.beacon);
  std::sort(result.records.begin(), result.records.end(),
            [](const mrt::MrtRecord& a, const mrt::MrtRecord& b) {
              return mrt::record_timestamp(a) < mrt::record_timestamp(b);
            });
  for (const mrt::MrtRecord& record : result.records) detector.ingest(record);
  detector.advance(withdraw + spec.threshold + spec.llgr_stale_time +
                   2 * netbase::kHour);
  result.alerts = detector.alerts_raised();
  result.resolutions = detector.resolutions();

  auto fail = [&result](std::string why) {
    if (result.failure.empty()) result.failure = std::move(why);
  };
  if (result.expect_zombie) {
    if (result.alerts != 1) fail("expected exactly one alert");
    if (result.measured_emergence != result.expected_emergence)
      fail("emergence time mismatch");
    if (result.expect_resolution) {
      if (result.resolutions != 1) fail("expected exactly one resolution");
      if (result.measured_resolution != result.expected_resolution)
        fail("resolution time mismatch");
    }
  } else {
    if (result.alerts != 0) fail("expected no alert");
  }
  if (spec.kind == WireFaultKind::kHoldExpiry &&
      result.drop_reason.find("hold timer") == std::string::npos)
    fail("expected a hold-timer drop, got: " + result.drop_reason);
  if (spec.kind == WireFaultKind::kSendHoldStall &&
      result.drop_reason.find("send hold") == std::string::npos)
    fail("expected a send-hold drop, got: " + result.drop_reason);
  if (spec.kind == WireFaultKind::kGrStaleRetention &&
      result.flush_reason != wire::FlushReason::kRestartExpired)
    fail("expected a restart-time flush");
  if (spec.kind == WireFaultKind::kLlgrLongRetention &&
      result.flush_reason != wire::FlushReason::kLlgrExpired)
    fail("expected an LLGR flush");
  result.passed = result.failure.empty();
  return result;
}

std::vector<WireScenarioSpec> default_wire_suite(int seeds) {
  std::vector<WireScenarioSpec> specs;
  for (int seed = 0; seed < std::max(seeds, 1); ++seed) {
    for (const WireFaultKind kind :
         {WireFaultKind::kHoldExpiry, WireFaultKind::kSendHoldStall,
          WireFaultKind::kGrStaleRetention, WireFaultKind::kLlgrLongRetention}) {
      WireScenarioSpec spec;
      spec.seed = static_cast<std::uint64_t>(seed);
      spec.kind = kind;
      specs.push_back(spec);
    }
  }
  return specs;
}

WireSuiteSummary summarize_wire(const std::vector<WireScenarioResult>& results) {
  WireSuiteSummary summary;
  for (const WireScenarioResult& result : results) {
    ++summary.total;
    if (result.passed) ++summary.passed;
    if (result.expect_zombie) ++summary.zombies_expected;
    summary.zombies_detected += result.alerts;
    if (result.expect_resolution) ++summary.resolutions_expected;
    summary.resolutions_detected += result.resolutions;
  }
  return summary;
}

}  // namespace zombiescope::scenarios

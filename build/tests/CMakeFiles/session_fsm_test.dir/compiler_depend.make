# Empty compiler generated dependencies file for session_fsm_test.
# This may be replaced when dependencies are built.

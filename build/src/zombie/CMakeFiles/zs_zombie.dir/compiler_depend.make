# Empty compiler generated dependencies file for zs_zombie.
# This may be replaced when dependencies are built.

#include "scenarios/ris_replication.hpp"

#include <algorithm>
#include <optional>

#include "beacon/driver.hpp"
#include "obs/trace.hpp"
#include "zombie/state.hpp"

namespace zombiescope::scenarios {

namespace {

using beacon::RisBeaconSchedule;
using netbase::AddressFamily;
using netbase::kHour;
using netbase::kMinute;
using netbase::Rng;
using netbase::TimePoint;
using netbase::utc;
using topology::Relationship;

constexpr bgp::Asn kBeaconOrigin = 12654;  // the RIS routing beacon AS

}  // namespace

RisPeriodSpec period_2018jul() {
  RisPeriodSpec spec;
  spec.label = "2018-07-19 - 2018-08-31";
  spec.start = utc(2018, 7, 19);
  spec.end = utc(2018, 9, 1);
  spec.longlived_v4 = 5;
  spec.longlived_v6 = 2;
  spec.span_min_intervals = 9;
  spec.span_max_intervals = 16;
  spec.sessionwide_v4 = 4;
  spec.sessionwide_v6 = 5;
  spec.single_loss_v4 = 0.0030;
  spec.single_loss_v6 = 0.0080;
  spec.seed = 20180719;
  return spec;
}

RisPeriodSpec period_2017oct() {
  RisPeriodSpec spec;
  spec.label = "2017-10-01 - 2017-12-28";
  spec.start = utc(2017, 10, 1);
  spec.end = utc(2017, 12, 29);
  spec.longlived_v4 = 10;
  spec.longlived_v6 = 0;
  spec.span_min_intervals = 8;
  spec.span_max_intervals = 14;
  spec.sessionwide_v4 = 6;
  spec.sessionwide_v6 = 8;
  spec.single_loss_v4 = 0.0012;
  spec.single_loss_v6 = 0.0115;
  spec.seed = 20171001;
  return spec;
}

RisPeriodSpec period_2017mar() {
  RisPeriodSpec spec;
  spec.label = "2017-03-01 - 2017-04-28";
  spec.start = utc(2017, 3, 1);
  spec.end = utc(2017, 4, 29);
  spec.longlived_v4 = 9;
  spec.longlived_v6 = 0;
  spec.span_min_intervals = 10;
  spec.span_max_intervals = 15;
  spec.sessionwide_v4 = 4;
  spec.sessionwide_v6 = 3;
  spec.single_loss_v4 = 0.0205;
  spec.single_loss_v6 = 0.0085;
  spec.seed = 20170301;
  return spec;
}

ScenarioOutput run_ris_period(const RisPeriodSpec& spec) {
  Rng rng(spec.seed);

  // Stage spans (see longlived2024.cpp for the emplace() idiom).
  obs::ScopedSpan run_span("scenario.ris_period");
  std::optional<obs::ScopedSpan> stage;
  stage.emplace("scenario.topology_build");

  // --- topology ------------------------------------------------------
  topology::GeneratorParams params;
  params.tier1_count = 5;
  params.tier2_count = 20;
  params.tier3_count = 70;
  params.first_asn = 50000;
  Rng topo_rng = rng.fork();
  topology::Topology topo = topology::generate_hierarchical(params, topo_rng);

  // Beacon origin: a stub multihomed to two mid-tier providers.
  std::vector<bgp::Asn> tier2;
  for (bgp::Asn asn : topo.all_asns())
    if (topo.info(asn).tier == 2) tier2.push_back(asn);
  topo.add_as({kBeaconOrigin, 3, "RIS-beacons"});
  topo.add_link(tier2[0], kBeaconOrigin, Relationship::kCustomer);
  topo.add_link(tier2[1], kBeaconOrigin, Relationship::kCustomer);

  // The noisy peer AS16347 (Inherenet-style): an ordinary stub; its
  // *collector session* is what misbehaves.
  topo.add_as({kNoisyRisPeerAsn, 3, "noisy-rrc21-peer"});
  topo.add_link(tier2[2], kNoisyRisPeerAsn, Relationship::kCustomer);
  topo.add_link(tier2[3], kNoisyRisPeerAsn, Relationship::kCustomer);

  stage.emplace("scenario.setup");

  // --- simulation ------------------------------------------------------
  simnet::SimConfig sim_config;
  sim_config.min_link_delay = 2;
  sim_config.max_link_delay = 40;
  simnet::Simulation sim(topo, sim_config, rng.fork());

  // --- collectors & sessions -------------------------------------------
  collector::Collector rrc00("rrc00", 12654, netbase::IpAddress::parse("193.0.4.28"));
  collector::Collector rrc21("rrc21", 12654, netbase::IpAddress::parse("193.0.19.28"),
                             netbase::IpAddress::parse("2001:7f8:fff::21"));

  Rng pick_rng = rng.fork();
  const auto monitor_asns =
      pick_monitor_asns(topo, spec.monitor_sessions, pick_rng,
                        {kBeaconOrigin, kNoisyRisPeerAsn});

  ScenarioOutput output;
  int session_index = 0;
  for (bgp::Asn asn : monitor_asns) {
    collector::SessionConfig config;
    config.peer_asn = asn;
    config.peer_address = peer_address_for(asn, session_index, session_index % 2 == 0);
    config.withdrawal_loss_probability_v4 = spec.single_loss_v4;
    config.withdrawal_loss_probability_v6 = spec.single_loss_v6;
    // Boundary-timed artifacts that make the raw and looking-glass
    // pipelines disagree (Tables 2/3): withdrawals that land within
    // the service lag of the 90-minute check, and phantom late
    // re-announcements the lagged service never sees.
    config.withdrawal_delay_probability = spec.boundary_delay_probability;
    config.withdrawal_delay_min = 75 * kMinute;
    config.withdrawal_delay_max = 90 * kMinute;
    config.phantom_reannounce_probability = spec.phantom_reannounce_probability;
    rrc00.add_peer(sim, config, rng.fork());
    output.all_peers.push_back({asn, config.peer_address});
    ++session_index;
  }
  {
    collector::SessionConfig config;
    config.peer_asn = kNoisyRisPeerAsn;
    config.peer_address = peer_address_for(kNoisyRisPeerAsn, 0, true);
    config.withdrawal_loss_probability_v4 = spec.noisy_loss_v4;
    config.withdrawal_loss_probability_v6 = spec.noisy_loss_v6;
    rrc21.add_peer(sim, config, rng.fork());
    const zombie::PeerKey key{kNoisyRisPeerAsn, config.peer_address};
    output.all_peers.push_back(key);
    output.noisy_peers.insert(key);
  }

  // --- fault injection ---------------------------------------------------
  const auto schedule = RisBeaconSchedule::classic();
  const auto interval_count =
      static_cast<int>((spec.end - spec.start) / RisBeaconSchedule::kPeriod);

  Rng fault_rng = rng.fork();
  auto inject_longlived = [&](AddressFamily family, int count) {
    for (int i = 0; i < count; ++i) {
      // Pick a monitored stub with >= 2 providers; stall one provider.
      // The first IPv4 stall sits upstream of the noisy peer: its v4
      // zombies are then mostly *duplicates*, reproducing Table 4's
      // dc/nd asymmetry (0.044 vs 0.0018).
      bgp::Asn victim = 0, stalled = 0;
      if (family == AddressFamily::kIpv4 && i == 0) stalled = tier2[2];
      for (int attempt = 0; attempt < 200 && stalled == 0; ++attempt) {
        const bgp::Asn candidate = monitor_asns[fault_rng.index(monitor_asns.size())];
        std::vector<bgp::Asn> providers;
        for (const auto& [neighbor, rel] : topo.neighbors(candidate))
          if (rel == Relationship::kProvider) providers.push_back(neighbor);
        if (providers.size() < 2) continue;
        victim = candidate;
        stalled = providers[fault_rng.index(providers.size())];
      }
      if (stalled == 0) continue;
      (void)victim;
      const int start_interval =
          static_cast<int>(fault_rng.uniform_int(1, std::max(1, interval_count * 3 / 5)));
      const int span = static_cast<int>(
          fault_rng.uniform_int(spec.span_min_intervals, spec.span_max_intervals));
      simnet::ReceiveStall stall;
      stall.asn = stalled;
      stall.family = family;
      stall.window.start =
          spec.start + start_interval * RisBeaconSchedule::kPeriod + 30 * kMinute;
      stall.window.end = spec.start + (start_interval + span) * RisBeaconSchedule::kPeriod +
                         30 * kMinute;
      sim.add_receive_stall(stall);
    }
  };
  inject_longlived(AddressFamily::kIpv4, spec.longlived_v4);
  inject_longlived(AddressFamily::kIpv6, spec.longlived_v6);

  auto inject_sessionwide = [&](AddressFamily family, int count) {
    for (int i = 0; i < count; ++i) {
      const bgp::Asn victim = monitor_asns[fault_rng.index(monitor_asns.size())];
      const int interval =
          static_cast<int>(fault_rng.uniform_int(1, std::max(1, interval_count - 2)));
      simnet::ReceiveStall stall;
      stall.asn = victim;
      stall.family = family;
      stall.window.start = spec.start + interval * RisBeaconSchedule::kPeriod + 30 * kMinute;
      stall.window.end = spec.start + (interval + 1) * RisBeaconSchedule::kPeriod;
      sim.add_receive_stall(stall);
    }
  };
  inject_sessionwide(AddressFamily::kIpv4, spec.sessionwide_v4);
  inject_sessionwide(AddressFamily::kIpv6, spec.sessionwide_v6);

  // --- beacons -------------------------------------------------------------
  beacon::BeaconDriver driver(sim, kBeaconOrigin, /*with_aggregator_clock=*/true);
  driver.drive(schedule.events(spec.start, spec.end));
  output.events = driver.ground_truth();
  output.studied_announcements = static_cast<int>(output.events.size());

  // --- run ------------------------------------------------------------------
  stage.emplace("scenario.simulate");
  sim.run_until(spec.end + 6 * kHour);
  output.sim_stats = sim.stats();

  stage.emplace("scenario.collect");
  // Merge archives, then round-trip through the binary codec so the
  // detectors read exactly what the MRT files would contain.
  const std::vector<const std::vector<mrt::MrtRecord>*> archives{&rrc00.updates(),
                                                                 &rrc21.updates()};
  output.updates = through_mrt_codec(zombie::merge_archives(archives));
  return output;
}

}  // namespace zombiescope::scenarios

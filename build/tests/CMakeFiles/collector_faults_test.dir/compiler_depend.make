# Empty compiler generated dependencies file for collector_faults_test.
# This may be replaced when dependencies are built.

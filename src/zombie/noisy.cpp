#include "zombie/noisy.hpp"

#include <algorithm>

#include "zombie/detector_metrics.hpp"

namespace zombiescope::zombie {

std::vector<PeerStats> NoisyPeerFilter::stats(std::span<const ZombieRoute> routes,
                                              std::span<const PeerKey> peers,
                                              int total_announcements) const {
  std::map<PeerKey, PeerStats> by_peer;
  for (const PeerKey& peer : peers) {
    PeerStats s;
    s.peer = peer;
    s.announcements = total_announcements;
    by_peer.emplace(peer, s);
  }
  for (const auto& route : routes) {
    auto it = by_peer.find(route.peer);
    if (it == by_peer.end()) {
      PeerStats s;
      s.peer = route.peer;
      s.announcements = total_announcements;
      it = by_peer.emplace(route.peer, s).first;
    }
    ++it->second.zombie_routes;
  }
  std::vector<PeerStats> out;
  out.reserve(by_peer.size());
  for (auto& [peer, s] : by_peer) {
    (void)peer;
    out.push_back(s);
  }
  return out;
}

std::vector<PeerStats> NoisyPeerFilter::noisy_peers(std::span<const PeerStats> stats) const {
  const double median = median_probability(stats);
  std::vector<PeerStats> out;
  for (const auto& s : stats) {
    if (s.probability() > config_.probability_floor &&
        s.probability() > config_.median_multiplier * median)
      out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const PeerStats& a, const PeerStats& b) {
    return a.probability() > b.probability();
  });
  internal::detector_metrics().noisy_hits.inc(out.size());
  return out;
}

std::set<PeerKey> NoisyPeerFilter::noisy_peer_keys(std::span<const ZombieRoute> routes,
                                                   std::span<const PeerKey> peers,
                                                   int total_announcements) const {
  const auto all = stats(routes, peers, total_announcements);
  std::set<PeerKey> out;
  for (const auto& s : noisy_peers(all)) out.insert(s.peer);
  return out;
}

double NoisyPeerFilter::mean_probability(std::span<const PeerStats> stats) {
  if (stats.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : stats) sum += s.probability();
  return sum / static_cast<double>(stats.size());
}

double NoisyPeerFilter::median_probability(std::span<const PeerStats> stats) {
  if (stats.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(stats.size());
  for (const auto& s : stats) values.push_back(s.probability());
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace zombiescope::zombie

#!/usr/bin/env bash
# The benchmark regression gate: builds and runs the bench harness at a
# baseline git ref and at the current HEAD (working tree), then lets
# zsbenchdiff decide whether HEAD regressed. Exit 0 = no regression,
# 1 = the gate tripped, anything else = the harness itself failed.
#
# Usage: scripts/check_bench_regression.sh [baseline-ref] [bench ...]
#   scripts/check_bench_regression.sh               # HEAD~1, all benches
#   scripts/check_bench_regression.sh main micro_hotpaths
#
# Environment:
#   ZS_BENCH_REPEATS     runs per side (default 3; min-of-N + IQR
#                        outlier rejection want repeats)
#   ZS_BENCH_THRESHOLD   gate threshold in percent (default 5)
#   ZS_BENCH_NOISE       noise floor in percent (default 1)
#
# The baseline is built from a detached git worktree so the working
# tree (including uncommitted changes) is never touched. Both sides
# share the scenario cache: the first run pays the simulation cost,
# every other run loads MRT archives from disk.

set -euo pipefail
cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BASELINE_REF="${1:-HEAD~1}"
shift $(( $# > 0 ? 1 : 0 ))
if [ "$#" -gt 0 ]; then
  BENCHES=("$@")
else
  # Default gate set: the decode/detect hot paths AND the sharded live
  # service (so its shard-scaling throughput can't silently regress),
  # AND its delivery latency (so the e2e p99 can't either — that is
  # what --gate-latency below turns into a tripping metric), AND the
  # zstsdb sampler-on/off A/B (so the metrics store can't quietly tax
  # the pipeline it observes), AND the zspeerq on/off A/B (same
  # contract for the per-peer feed-quality accounting), AND the zswire
  # socket replay (so the BGP-4 speaker's end-to-end ingest rate and
  # per-session handshake cost stay gated too).
  BENCHES=(micro_hotpaths live_throughput live_latency tsdb_overhead peerq_overhead wire_session)
fi

REPEATS="${ZS_BENCH_REPEATS:-3}"
THRESHOLD="${ZS_BENCH_THRESHOLD:-5}"
NOISE="${ZS_BENCH_NOISE:-1}"

WORK_DIR="$(mktemp -d "${TMPDIR:-/tmp}/zs_bench_gate.XXXXXX")"
BASELINE_TREE="${WORK_DIR}/baseline-src"
trap 'git worktree remove --force "${BASELINE_TREE}" >/dev/null 2>&1 || true;
      rm -rf "${WORK_DIR}"' EXIT

export ZS_CACHE_DIR="${ZS_CACHE_DIR:-${WORK_DIR}/cache}"
export ZS_NO_BENCH_HISTORY=1

run_side() {  # run_side <src-dir> <build-dir> <json-dir>
  local src="$1" build="$2" json="$3"
  cmake -B "${build}" -S "${src}" >/dev/null
  cmake --build "${build}" -j --target "${BENCHES[@]}" >/dev/null
  local i
  for i in $(seq 1 "${REPEATS}"); do
    local run_dir="${json}/run${i}"
    mkdir -p "${run_dir}"
    local bench
    for bench in "${BENCHES[@]}"; do
      ZS_BENCH_JSON_DIR="${run_dir}" "${build}/bench/${bench}" >/dev/null
    done
  done
}

echo "== gate: baseline ${BASELINE_REF} vs HEAD (${REPEATS} run(s)/side, threshold ${THRESHOLD}%)"
git worktree add --force --detach "${BASELINE_TREE}" "${BASELINE_REF}" >/dev/null

echo "== gate: running baseline"
run_side "${BASELINE_TREE}" "${WORK_DIR}/baseline-build" "${WORK_DIR}/baseline-json"
echo "== gate: running candidate (HEAD)"
run_side "${REPO_ROOT}" "${WORK_DIR}/candidate-build" "${WORK_DIR}/candidate-json"

# The candidate build definitely has zsbenchdiff; the baseline may
# predate it.
cmake --build "${WORK_DIR}/candidate-build" -j --target zsbenchdiff >/dev/null

# Build identities legitimately differ in git sha (that is the point);
# zsbenchdiff only refuses on compiler/build-type/sanitizer/arch
# mismatches, which a same-machine A/B never produces.
"${WORK_DIR}/candidate-build/tools/zsbenchdiff" \
  "${WORK_DIR}"/baseline-json/run*/BENCH_*.json \
  --vs "${WORK_DIR}"/candidate-json/run*/BENCH_*.json \
  --threshold "${THRESHOLD}" --noise "${NOISE}" --gate-latency

file(REMOVE_RECURSE
  "CMakeFiles/zs_collector.dir/collector.cpp.o"
  "CMakeFiles/zs_collector.dir/collector.cpp.o.d"
  "libzs_collector.a"
  "libzs_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

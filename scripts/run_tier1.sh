#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the obs
# subsystem's concurrency tests again under ThreadSanitizer (its hot
# path is the only code that promises lock-free cross-thread use).
#
# Usage: scripts/run_tier1.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"

echo "== tier-1: plain build + ctest (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== tier-1: obs_test under ThreadSanitizer (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DZS_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j --target obs_test
ctest --test-dir "${TSAN_DIR}" --output-on-failure -R '^Obs'

echo "== tier-1: OK"

// wire_session — what the BGP-4 wire speaker costs, end to end and in
// its hot paths:
//
//   * the headline table: the longlived2024 archive replayed into the
//     live service twice — once directly (ReplayFeedSource, the
//     in-process archive path) and once through real loopback sockets
//     (replay_over_wire → BgpSpeaker → BgpFeedSource). Both must land
//     the same emerged count with zero drops; the wire row's updates/s
//     and bytes/s are the speaker's end-to-end ingest capacity, and
//     the direct row is the ceiling the socket hop is measured
//     against (README's wire-vs-archive ingest comparison).
//   * BM_SessionEstablish: full loopback TCP connect + OPEN/KEEPALIVE
//     handshake + teardown — the per-peer session setup cost.
//   * BM_EncodeUpdate / BM_DecodeUpdate: the wire framing codec around
//     the bgp/update body (per-message cost on the speaker hot path).
//   * BM_FrameReader: header-validated reassembly at KEEPALIVE size,
//     the per-message floor every inbound byte pays.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "live/bgp_feed.hpp"
#include "live/feed.hpp"
#include "live/service.hpp"
#include "obs/metrics.hpp"
#include "wire/bridge.hpp"
#include "wire/message.hpp"
#include "wire/speaker.hpp"

using namespace zombiescope;

namespace {

struct RunResult {
  double wall_seconds = 0.0;
  double wall_ups = 0.0;
  std::uint64_t drops = 0;
  std::uint64_t emerged = 0;
  wire::BridgeStats bridge;
};

live::LiveConfig service_config() {
  live::LiveConfig config;
  config.shards = 4;
  config.block_on_full = true;
  config.detector.threshold = 90 * netbase::kMinute;
  return config;
}

RunResult replay_direct(const scenarios::LongLived2024Output& data) {
  live::LiveService service(service_config());
  service.start();
  for (const auto& event : data.events) service.expect(event);
  const auto start = std::chrono::steady_clock::now();
  live::ReplayFeedSource feed(data.updates, /*speed=*/0.0);
  feed.run(service);
  service.finalize();
  RunResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.wall_ups = r.wall_seconds > 0
                   ? static_cast<double>(data.updates.size()) / r.wall_seconds
                   : 0.0;
  r.drops = service.drops();
  r.emerged = static_cast<std::uint64_t>(service.emerged_pairs().size());
  service.stop();
  return r;
}

RunResult replay_wire(const scenarios::LongLived2024Output& data) {
  live::LiveService service(service_config());
  service.start();
  for (const auto& event : data.events) service.expect(event);

  wire::SpeakerConfig speaker_config;
  speaker_config.hold_time = 3600;  // replay pacing is bursty
  speaker_config.keepalive_interval = 1200;
  live::BgpFeedSource feed(speaker_config, /*port=*/0);
  std::thread feeder([&] { feed.run(service); });

  const auto start = std::chrono::steady_clock::now();
  wire::BridgeOptions options;
  options.hold_time = 3600;
  RunResult r;
  r.bridge = wire::replay_over_wire(data.updates, "127.0.0.1", feed.port(),
                                    options);
  // Sessions end with Cease; the snapshot drains once the speaker has
  // digested every byte.
  while (!feed.speaker().snapshot().empty())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  feed.stop();
  feeder.join();
  service.finalize();
  r.wall_ups = r.wall_seconds > 0
                   ? static_cast<double>(data.updates.size()) / r.wall_seconds
                   : 0.0;
  r.drops = service.drops();
  r.emerged = static_cast<std::uint64_t>(service.emerged_pairs().size());
  service.stop();
  return r;
}

void print_table() {
  bench::print_header(
      "zswire session cost — archive replay direct vs over BGP-4 sockets",
      "the wire speaker as a collector (§2 data collection, live ingest)");
  const auto data = bench::load_longlived2024();
  std::printf("  %zu update records, %zu beacon events\n\n",
              data.updates.size(), data.events.size());
  (void)replay_direct(data);  // warm the page cache / allocators
  const RunResult direct = replay_direct(data);
  const RunResult wired = replay_wire(data);

  std::printf("  %-8s %12s %10s %8s %9s %10s %9s\n", "path", "upd/s", "wall s",
              "drops", "emerged", "sessions", "MB sent");
  std::printf("  %-8s %12.0f %10.2f %8llu %9llu %10s %9s\n", "direct",
              direct.wall_ups, direct.wall_seconds,
              static_cast<unsigned long long>(direct.drops),
              static_cast<unsigned long long>(direct.emerged), "-", "-");
  std::printf("  %-8s %12.0f %10.2f %8llu %9llu %10zu %9.1f\n", "wire",
              wired.wall_ups, wired.wall_seconds,
              static_cast<unsigned long long>(wired.drops),
              static_cast<unsigned long long>(wired.emerged),
              wired.bridge.sessions,
              static_cast<double>(wired.bridge.bytes_sent) / 1e6);
  const double slowdown = wired.wall_ups > 0
                              ? direct.wall_ups / wired.wall_ups
                              : 0.0;
  std::printf("\n  socket hop cost: %.2fx the direct path (%zu msgs, %zu"
              " splits)\n",
              slowdown, wired.bridge.messages_sent, wired.bridge.splits);
  if (direct.emerged != wired.emerged)
    std::printf("  WARNING: emerged sets differ — the wire path is broken\n");

  auto& registry = obs::Registry::global();
  registry.gauge("zs_bench_wire_replay_ups")
      .set(static_cast<std::int64_t>(wired.wall_ups));
  registry.gauge("zs_bench_wire_direct_ups")
      .set(static_cast<std::int64_t>(direct.wall_ups));
  registry.gauge("zs_bench_wire_slowdown_x100")
      .set(static_cast<std::int64_t>(slowdown * 100.0));
  registry.gauge("zs_bench_wire_sessions")
      .set(static_cast<std::int64_t>(wired.bridge.sessions));
  registry.gauge("zs_bench_wire_bytes_sent")
      .set(static_cast<std::int64_t>(wired.bridge.bytes_sent));
  registry.gauge("zs_bench_wire_emerged")
      .set(static_cast<std::int64_t>(wired.emerged));
}

void BM_SessionEstablish(benchmark::State& state) {
  wire::SpeakerConfig config;
  wire::BgpSpeaker speaker(config, /*listen=*/true, /*port=*/0);
  std::thread runner([&] { speaker.run(); });
  for (auto _ : state) {
    const int fd = wire::wire_connect("127.0.0.1", speaker.port());
    wire::wire_handshake(fd, 65001, 0xc0000201, 90, std::nullopt);
    ::close(fd);
  }
  speaker.stop();
  runner.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SessionEstablish)->Unit(benchmark::kMicrosecond);

bgp::UpdateMessage sample_update() {
  bgp::UpdateMessage update;
  update.attributes.as_path = bgp::AsPath{65001, 64511, 210312};
  update.attributes.next_hop = netbase::IpAddress::parse("192.0.2.1");
  for (std::uint32_t i = 0; i < 8; ++i)
    update.announced.push_back(
        netbase::Prefix(netbase::IpAddress::v4((10u << 24) | (i << 8)), 24));
  return update;
}

void BM_EncodeUpdate(benchmark::State& state) {
  const auto update = sample_update();
  for (auto _ : state) {
    auto wire_bytes = wire::encode_update(update);
    benchmark::DoNotOptimize(wire_bytes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeUpdate);

void BM_DecodeUpdate(benchmark::State& state) {
  const auto wire_bytes = wire::encode_update(sample_update());
  for (auto _ : state) {
    auto update = wire::decode_update(wire_bytes);
    benchmark::DoNotOptimize(update.announced.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeUpdate);

void BM_FrameReader(benchmark::State& state) {
  // 64 KEEPALIVEs per batch: the per-message floor of header-validated
  // reassembly, without codec or socket cost.
  std::vector<std::uint8_t> batch;
  for (int i = 0; i < 64; ++i) {
    const auto ka = wire::encode_keepalive();
    batch.insert(batch.end(), ka.begin(), ka.end());
  }
  for (auto _ : state) {
    wire::FrameReader reader;
    reader.append(batch.data(), batch.size());
    std::size_t frames = 0;
    while (reader.next().has_value()) ++frames;
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_FrameReader);

}  // namespace

// Expanded BENCHMARK_MAIN so the run ends with the BENCH_wire_session
// telemetry snapshot for the regression gate.
int main(int argc, char** argv) {
  zombiescope::bench::begin_bench_session();
  print_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  zombiescope::bench::emit_metrics_snapshot("wire_session");
  // print_header's atexit snapshot would write a duplicate under the
  // binary name; the canonical BENCH_wire_session.json is already out.
  setenv("ZS_NO_BENCH_JSON", "1", 1);
  return 0;
}

// quickstart — the smallest end-to-end zombiescope pipeline:
//
//   1. build a toy AS topology and a BGP simulation;
//   2. announce and withdraw a beacon prefix, with one router failing
//      to propagate the withdrawal (the zombie seed);
//   3. archive what a route collector saw, as real MRT bytes;
//   4. run the zombie detector on the archive and print the outbreak
//      with its root-cause inference.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "collector/collector.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/rootcause.hpp"

using namespace zombiescope;

int main() {
  using topology::Relationship;

  // A diamond: the origin is multihomed; T1b will keep the zombie.
  //
  //        T1a ---- T1b        (Tier-1 peering)
  //        /  \      |
  //      M1    M2   M3
  //       \    |    /
  //         origin (AS65000)
  topology::Topology topo;
  topo.add_as({1, 1, "T1a"});
  topo.add_as({2, 1, "T1b"});
  topo.add_as({11, 2, "M1"});
  topo.add_as({12, 2, "M2"});
  topo.add_as({13, 2, "M3"});
  topo.add_as({65000, 3, "origin"});
  topo.add_link(1, 2, Relationship::kPeer);
  topo.add_link(1, 11, Relationship::kCustomer);
  topo.add_link(1, 12, Relationship::kCustomer);
  topo.add_link(2, 13, Relationship::kCustomer);
  topo.add_link(11, 65000, Relationship::kCustomer);
  topo.add_link(12, 65000, Relationship::kCustomer);
  topo.add_link(13, 65000, Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(42));

  // A collector peers with T1b — that's what RIPE RIS would see.
  collector::Collector rrc("rrc99", 12654, netbase::IpAddress::parse("193.0.4.28"));
  collector::SessionConfig session;
  session.peer_asn = 2;
  session.peer_address = netbase::IpAddress::parse("2001:7f8::2:1");
  rrc.add_peer(sim, session, netbase::Rng(7));

  // The fault: M3 fails to propagate withdrawals to T1b.
  simnet::WithdrawalSuppression fault;
  fault.from_asn = 13;
  fault.to_asn = 2;
  fault.window = {0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  // One beacon cycle: announce at 12:00, withdraw at 12:15.
  const auto t0 = netbase::utc(2024, 6, 4, 12, 0, 0);
  const auto beacon = netbase::Prefix::parse("2a0d:3dc1:1200::/48");
  sim.announce(t0, 65000, beacon);
  sim.withdraw(t0 + 15 * netbase::kMinute, 65000, beacon);
  sim.run_until(t0 + 4 * netbase::kHour);

  std::printf("--- collector archive (%zu MRT records) ---\n", rrc.updates().size());
  for (const auto& record : rrc.updates())
    std::printf("  %s\n", mrt::record_summary(record).c_str());

  // Round-trip through binary MRT, exactly like reading RIS raw data.
  const auto archive = mrt::decode_all(mrt::encode_all(rrc.updates()));

  // Detect: is the beacon still present 90 minutes past the withdrawal?
  std::vector<beacon::BeaconEvent> events{
      {beacon, t0, t0 + 15 * netbase::kMinute, false}};
  zombie::IntervalZombieDetector detector({});
  const auto result = detector.detect(archive, events);

  std::printf("\n--- detection (threshold 90 min) ---\n");
  if (result.outbreaks_with_duplicates.empty()) {
    std::printf("no zombies — try removing the withdrawal suppression!\n");
    return 0;
  }
  for (const auto& outbreak : result.outbreaks_with_duplicates) {
    std::printf("ZOMBIE OUTBREAK: %s, %d stuck peer(s)\n",
                outbreak.prefix.to_string().c_str(), outbreak.route_count());
    for (const auto& route : outbreak.routes)
      std::printf("  stuck at %s  path [%s]\n", zombie::to_string(route.peer).c_str(),
                  route.path.to_string().c_str());
    const auto cause = zombie::infer_root_cause(outbreak);
    std::printf("  root-cause suspect: AS%u (chain: %s)\n", cause.suspect.value_or(0),
                cause.common_subpath().c_str());
  }
  return 0;
}

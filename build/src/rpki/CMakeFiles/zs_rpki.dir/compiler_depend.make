# Empty compiler generated dependencies file for zs_rpki.
# This may be replaced when dependencies are built.

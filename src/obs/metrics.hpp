// obs/metrics.hpp — the zsobs metrics registry.
//
// Named counters, gauges, and fixed-bucket histograms for auditing the
// pipeline (how many MRT records each stage emitted, how long a
// detector pass took). Handles are cheap trivially-copyable wrappers
// around a pointer to the registered cell: registration (the name
// lookup) takes a mutex once at setup time, after which inc() / set()
// / observe() are plain relaxed std::atomic operations — safe from any
// thread, lock-free, and entirely passive until an exporter walks the
// registry. A default-constructed handle is unbound and every
// operation on it is a no-op, so instrumented call sites cost nothing
// when telemetry is not wired up.
//
// Naming convention: zs_<module>_<name>[_<unit>], e.g.
// zs_simnet_events_processed_total, zs_zombie_detect_seconds (see the
// "Observability" section of DESIGN.md).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zombiescope::obs {

/// Monotonically increasing count. Handle to a registry cell.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }
  bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// A value that can go up and down (queue depths, table sizes).
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }
  bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Backing storage of one histogram: fixed upper bounds plus an
/// implicit +Inf bucket, cumulative sum and count.
struct HistogramCells {
  std::vector<double> bounds;  // strictly increasing upper bounds (le)
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

/// Fixed-bucket histogram. observe() is a bucket scan plus three
/// relaxed atomic adds — lock-free and wait-free for realistic bucket
/// counts.
class Histogram {
 public:
  Histogram() = default;

  void observe(double v) const noexcept {
    if (cells_ == nullptr) return;
    std::size_t i = 0;
    while (i < cells_->bounds.size() && v > cells_->bounds[i]) ++i;
    cells_->counts[i].fetch_add(1, std::memory_order_relaxed);
    cells_->count.fetch_add(1, std::memory_order_relaxed);
    cells_->sum.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return cells_ == nullptr ? 0 : cells_->count.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return cells_ == nullptr ? 0.0 : cells_->sum.load(std::memory_order_relaxed);
  }
  bool bound() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramCells* cells) : cells_(cells) {}
  HistogramCells* cells_ = nullptr;
};

/// Point-in-time copy of one histogram, with Prometheus-style quantile
/// estimation (linear interpolation inside the target bucket).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // per-bucket, bounds.size() + 1 (+Inf last)
  double sum = 0.0;
  std::uint64_t count = 0;

  double quantile(double q) const;
};

/// Point-in-time copy of the whole registry, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  const std::uint64_t* counter(std::string_view name) const;
  const std::int64_t* gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Owns the metric cells. Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime; registering the
/// same name again returns a handle to the same cell. reset() zeroes
/// every cell but keeps registrations (and outstanding handles) valid.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the instrumented modules report to.
  static Registry& global();

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be strictly increasing; re-registration ignores the
  /// bounds of later calls.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramCells>, std::less<>> histograms_;
};

/// Default duration buckets (seconds) for pass/stage timing histograms.
std::vector<double> duration_buckets();
/// Default size buckets (bytes) for record-size histograms.
std::vector<double> byte_buckets();

}  // namespace zombiescope::obs

#include "zombie/propagation.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace zombiescope::zombie {

std::vector<PropagationTrace> group_traces(const std::vector<obs::HopRecord>& records) {
  std::map<std::uint64_t, PropagationTrace> by_id;
  for (const obs::HopRecord& record : records) {
    if (record.trace_id == 0) continue;
    PropagationTrace& trace = by_id[record.trace_id];
    if (trace.hops.empty()) {
      trace.trace_id = record.trace_id;
      trace.prefix = record.prefix;
    }
    if (record.decision == obs::HopDecision::kOriginated && !trace.root_kind.has_value()) {
      trace.root_kind = record.kind;
      trace.origin_asn = record.to_asn;
    }
    trace.hops.push_back(record);
  }

  std::vector<PropagationTrace> out;
  out.reserve(by_id.size());
  for (auto& [id, trace] : by_id) {
    (void)id;
    std::sort(trace.hops.begin(), trace.hops.end(),
              [](const obs::HopRecord& a, const obs::HopRecord& b) {
                if (a.hop != b.hop) return a.hop < b.hop;
                if (a.time != b.time) return a.time < b.time;
                return a.to_asn < b.to_asn;
              });
    out.push_back(std::move(trace));
  }
  return out;
}

FrontierResult localize_frontier(const PropagationTrace& trace) {
  FrontierResult result;
  result.trace_id = trace.trace_id;
  result.prefix = trace.prefix;

  std::set<std::uint32_t> reached;
  for (const obs::HopRecord& hop : trace.hops) {
    switch (hop.decision) {
      case obs::HopDecision::kOriginated:
      case obs::HopDecision::kForwarded:
      case obs::HopDecision::kImplicitlyWithdrawn:
      case obs::HopDecision::kPolicyFiltered:
        // Delivered (or locally rooted): the AS saw the update, even
        // if it chose not to act on it.
        reached.insert(hop.to_asn);
        break;
      case obs::HopDecision::kSuppressedByFault:
      case obs::HopDecision::kStalled:
        if (hop.kind == obs::TraceKind::kWithdrawal)
          result.culprits.push_back(
              CulpritLink{hop.from_asn, hop.to_asn, hop.decision, hop.time});
        break;
    }
  }
  result.reached.assign(reached.begin(), reached.end());
  std::sort(result.culprits.begin(), result.culprits.end(),
            [](const CulpritLink& a, const CulpritLink& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.from_asn != b.from_asn) return a.from_asn < b.from_asn;
              return a.to_asn < b.to_asn;
            });
  return result;
}

std::vector<FrontierResult> localize_frontiers(
    const std::vector<obs::HopRecord>& records) {
  std::vector<FrontierResult> out;
  for (const PropagationTrace& trace : group_traces(records)) {
    if (!trace.is_withdrawal_rooted()) continue;
    out.push_back(localize_frontier(trace));
  }
  return out;
}

}  // namespace zombiescope::zombie

// netbase/trie.hpp — binary prefix trie with longest-prefix match.
//
// A per-family bit trie keyed by Prefix. Used by the simulator's FIB
// (longest-prefix matching of traffic to routes, as in the paper's
// Fig. 1 loop example) and by the detectors to group more-specifics
// under covering beacons.

#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <utility>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/ip.hpp"

namespace zombiescope::netbase {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : v4_root_(std::make_unique<Node>()), v6_root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at `prefix`. Returns true if a new
  /// entry was created (false if replaced).
  bool insert(const Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Removes the entry at `prefix` exactly. Returns true if removed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  Value* find(const Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for an address: the most specific entry
  /// whose prefix contains `address`, or nullptr.
  const Value* longest_match(const IpAddress& address, Prefix* matched = nullptr) const {
    const Node* node = root_for(address.family());
    const Value* best = nullptr;
    int best_len = -1;
    for (int depth = 0;; ++depth) {
      if (node->value.has_value()) {
        best = &*node->value;
        best_len = depth;
      }
      if (depth == address.bit_length()) break;
      const Node* next = node->child[address.bit(depth) ? 1 : 0].get();
      if (next == nullptr) break;
      node = next;
    }
    if (best != nullptr && matched != nullptr)
      *matched = Prefix(address, best_len);
    return best;
  }

  /// Visits every ⟨prefix, value⟩ covered by `covering` (including an
  /// exact match), in depth-first order.
  void visit_covered(const Prefix& covering,
                     const std::function<void(const Prefix&, const Value&)>& fn) const {
    const Node* node = descend(covering);
    if (node == nullptr) return;
    visit_subtree(node, covering, fn);
  }

  /// Visits every entry in the trie (both families).
  void visit_all(const std::function<void(const Prefix&, const Value&)>& fn) const {
    visit_subtree(v4_root_.get(), Prefix(IpAddress::v4(0u), 0), fn);
    std::array<std::uint8_t, 16> zero{};
    visit_subtree(v6_root_.get(), Prefix(IpAddress::v6(zero), 0), fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> child[2];
  };

  const Node* root_for(AddressFamily family) const {
    return family == AddressFamily::kIpv4 ? v4_root_.get() : v6_root_.get();
  }
  Node* root_for(AddressFamily family) {
    return family == AddressFamily::kIpv4 ? v4_root_.get() : v6_root_.get();
  }

  const Node* descend(const Prefix& prefix) const {
    const Node* node = root_for(prefix.family());
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = node->child[prefix.address().bit(depth) ? 1 : 0].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }
  Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend(prefix));
  }

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_for(prefix.family());
    for (int depth = 0; depth < prefix.length(); ++depth) {
      auto& slot = node->child[prefix.address().bit(depth) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
    }
    return node;
  }

  void visit_subtree(const Node* node, const Prefix& at,
                     const std::function<void(const Prefix&, const Value&)>& fn) const {
    if (node->value.has_value()) fn(at, *node->value);
    for (int b = 0; b < 2; ++b) {
      const Node* child = node->child[b].get();
      if (child == nullptr) continue;
      // Extend the current prefix by one bit b.
      auto bytes = at.address().bytes();
      if (b == 1) {
        const auto byte = static_cast<std::size_t>(at.length() / 8);
        bytes[byte] = static_cast<std::uint8_t>(bytes[byte] | (1u << (7 - at.length() % 8)));
      }
      IpAddress addr = at.is_v4() ? IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]})
                                  : IpAddress::v6(bytes);
      visit_subtree(child, Prefix(addr, at.length() + 1), fn);
    }
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace zombiescope::netbase

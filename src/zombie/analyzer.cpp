#include "zombie/analyzer.hpp"

#include <algorithm>
#include <map>

namespace zombiescope::zombie {

std::vector<EmergenceRate> emergence_rates(const IntervalDetectionResult& result,
                                           netbase::AddressFamily family,
                                           bool deduplicated) {
  // Denominators: how many intervals each ⟨beacon, peerAS⟩ saw.
  std::map<std::pair<netbase::Prefix, bgp::Asn>, EmergenceRate> rates;
  for (const auto& vis : result.visibility) {
    if (vis.prefix.family() != family) continue;
    for (bgp::Asn asn : vis.announcing_asns) {
      EmergenceRate& r = rates[{vis.prefix, asn}];
      r.beacon = vis.prefix;
      r.peer_asn = asn;
      ++r.announcements;
    }
  }
  // Numerators: distinct ⟨beacon, interval, peerAS⟩ zombie hits (a
  // peer AS with two stuck routers still counts once per interval).
  std::map<std::tuple<netbase::Prefix, netbase::TimePoint, bgp::Asn>, bool> hits;
  for (const auto& route : result.routes) {
    if (route.prefix.family() != family) continue;
    if (deduplicated && route.duplicate) continue;
    hits[{route.prefix, route.interval_start, route.peer.asn}] = true;
  }
  for (const auto& [key, flag] : hits) {
    (void)flag;
    auto it = rates.find({std::get<0>(key), std::get<2>(key)});
    if (it == rates.end()) {
      EmergenceRate& r = rates[{std::get<0>(key), std::get<2>(key)}];
      r.beacon = std::get<0>(key);
      r.peer_asn = std::get<2>(key);
      r.announcements = 1;  // seen only as a zombie
      r.zombies = 1;
    } else {
      ++it->second.zombies;
    }
  }
  std::vector<EmergenceRate> out;
  out.reserve(rates.size());
  for (auto& [key, r] : rates) {
    (void)key;
    out.push_back(r);
  }
  return out;
}

PathLengthPopulations path_length_populations(const IntervalDetectionResult& result,
                                              netbase::AddressFamily family,
                                              bool deduplicated) {
  PathLengthPopulations out;
  int zombies = 0;
  int changed = 0;
  for (const auto& obs : result.observations) {
    if (obs.prefix.family() != family) continue;
    if (obs.is_zombie()) {
      if (deduplicated && obs.duplicate) continue;
      out.zombie_paths.push_back(obs.zombie_path->length());
      if (obs.normal_path.has_value())
        out.normal_at_zombie_peers.push_back(obs.normal_path->length());
      ++zombies;
      if (!obs.normal_path.has_value() || !(*obs.normal_path == *obs.zombie_path)) ++changed;
    } else if (obs.normal_path.has_value()) {
      out.normal_at_normal_peers.push_back(obs.normal_path->length());
    }
  }
  out.changed_path_fraction =
      zombies == 0 ? 0.0 : static_cast<double>(changed) / static_cast<double>(zombies);
  return out;
}

std::vector<int> concurrent_outbreaks(std::span<const ZombieOutbreak> outbreaks,
                                      netbase::AddressFamily family) {
  std::map<netbase::TimePoint, int> per_interval;
  for (const auto& outbreak : outbreaks)
    if (outbreak.prefix.family() == family) ++per_interval[outbreak.interval_start];
  std::vector<int> out;
  for (const auto& outbreak : outbreaks)
    if (outbreak.prefix.family() == family)
      out.push_back(per_interval[outbreak.interval_start]);
  return out;
}

}  // namespace zombiescope::zombie

file(REMOVE_RECURSE
  "CMakeFiles/zs_mrt.dir/codec.cpp.o"
  "CMakeFiles/zs_mrt.dir/codec.cpp.o.d"
  "CMakeFiles/zs_mrt.dir/record.cpp.o"
  "CMakeFiles/zs_mrt.dir/record.cpp.o.d"
  "libzs_mrt.a"
  "libzs_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

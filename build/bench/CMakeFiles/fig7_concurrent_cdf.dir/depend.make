# Empty dependencies file for fig7_concurrent_cdf.
# This may be replaced when dependencies are built.

#!/usr/bin/env bash
# Builds and runs the experiment harness (bench/): one binary per paper
# table/figure. Each binary leaves a BENCH_<tool>.json telemetry
# snapshot behind (build identity, wall time, peak RSS, per-phase
# zsprof profile, and every zsobs counter); this script collects them
# in the repo root so successive runs can be diffed with zsbenchdiff
# (ZS_BENCH_JSON_DIR overridable), and archives a timestamped copy of
# each run under bench/history/<UTC>-<sha>/ for `zsbenchdiff --history`
# (ZS_BENCH_HISTORY_DIR overrides the location; ZS_NO_BENCH_HISTORY=1
# disables archiving).
#
# Usage: scripts/run_bench.sh [build-dir] [bench ...]
#   scripts/run_bench.sh                      # all benches, build/
#   scripts/run_bench.sh build micro_hotpaths # just one

set -euo pipefail
cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))

# Bench targets = every .cpp in bench/ except the shared library.
if [ "$#" -gt 0 ]; then
  BENCHES=("$@")
else
  BENCHES=()
  for src in bench/*.cpp; do
    name="$(basename "${src}" .cpp)"
    case "${name}" in bench_common) continue ;; esac
    BENCHES+=("${name}")
  done
fi

echo "== bench: building ${#BENCHES[@]} harness binarie(s) (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j --target "${BENCHES[@]}"

export ZS_BENCH_JSON_DIR="${ZS_BENCH_JSON_DIR:-${REPO_ROOT}}"
export ZS_CACHE_DIR="${ZS_CACHE_DIR:-${REPO_ROOT}/zs_bench_cache}"

# Each bench's wall time is also measured here, from the outside: the
# in-process wall_time_s only covers print_header..exit, and a bench
# that dies before its at-exit snapshot still gets a timing line.
failed=()
for bench in "${BENCHES[@]}"; do
  echo "== bench: ${bench}"
  start_s="$(date +%s)"
  if ! "${BUILD_DIR}/bench/${bench}"; then
    failed+=("${bench}")
  fi
  echo "== bench: ${bench} took $(( $(date +%s) - start_s ))s"
done

echo "== bench: telemetry snapshots in ${ZS_BENCH_JSON_DIR}"
ls -1 "${ZS_BENCH_JSON_DIR}"/BENCH_*.json 2>/dev/null || true

# Archive this run for trend analysis / the regression gate. The
# directory name sorts chronologically, which is what zsbenchdiff
# --history relies on to pick the newest run as the candidate.
if [ -z "${ZS_NO_BENCH_HISTORY:-}" ]; then
  sha="$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)"
  HISTORY_DIR="${ZS_BENCH_HISTORY_DIR:-${REPO_ROOT}/bench/history}"
  run_dir="${HISTORY_DIR}/$(date -u +%Y%m%dT%H%M%SZ)-${sha}"
  if compgen -G "${ZS_BENCH_JSON_DIR}/BENCH_*.json" >/dev/null; then
    mkdir -p "${run_dir}"
    cp "${ZS_BENCH_JSON_DIR}"/BENCH_*.json "${run_dir}/"
    echo "== bench: archived run to ${run_dir}"
  fi
fi

if [ "${#failed[@]}" -gt 0 ]; then
  echo "== bench: FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "== bench: OK"

// mrt_inspect — a bgpdump-style inspector for this library's MRT
// files. With no arguments it generates a small demo archive, writes
// it to a temporary file, reads it back and dumps it; with a path it
// dumps that file.
//
// Usage:  ./build/examples/mrt_inspect [file.mrt]

#include <cstdio>
#include <filesystem>

#include "collector/collector.hpp"
#include "mrt/codec.hpp"
#include "netbase/rng.hpp"

using namespace zombiescope;

namespace {

std::string make_demo_archive() {
  using topology::Relationship;
  topology::Topology topo;
  topo.add_as({10, 2, "transit"});
  topo.add_as({20, 2, "peer"});
  topo.add_as({210312, 3, "origin"});
  topo.add_link(10, 210312, Relationship::kCustomer);
  topo.add_link(10, 20, Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(1));
  collector::Collector rrc("rrc25", 12654, netbase::IpAddress::parse("193.0.29.28"));
  collector::SessionConfig session;
  session.peer_asn = 20;
  session.peer_address = netbase::IpAddress::parse("2001:678:3f4:5::1");
  auto& peer = rrc.add_peer(sim, session, netbase::Rng(2));

  const auto t0 = netbase::utc(2024, 6, 21, 18, 45, 0);
  sim.announce(t0, 210312, netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  sim.withdraw(t0 + 15 * netbase::kMinute, 210312, netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  peer.schedule_reset(sim, t0 + 30 * netbase::kMinute, t0 + 40 * netbase::kMinute);
  sim.run_until(t0 + netbase::kHour);
  rrc.dump_ribs(sim.now());

  auto records = rrc.updates();
  const auto& dumps = rrc.rib_dumps();
  records.insert(records.end(), dumps.begin(), dumps.end());

  const auto path =
      (std::filesystem::temp_directory_path() / "zombiescope_demo.mrt").string();
  mrt::write_file(path, records);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = make_demo_archive();
    std::printf("(no file given — generated demo archive %s)\n\n", path.c_str());
  }

  std::vector<mrt::MrtRecord> records;
  try {
    records = mrt::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s: %zu MRT records\n", path.c_str(), records.size());
  int messages = 0, states = 0, tables = 0, ribs = 0;
  for (const auto& record : records) {
    std::printf("%s\n", mrt::record_summary(record).c_str());
    if (std::holds_alternative<mrt::Bgp4mpMessage>(record)) ++messages;
    if (std::holds_alternative<mrt::Bgp4mpStateChange>(record)) ++states;
    if (std::holds_alternative<mrt::PeerIndexTable>(record)) ++tables;
    if (std::holds_alternative<mrt::RibEntryRecord>(record)) ++ribs;
  }
  std::printf("\nsummary: %d updates, %d state changes, %d peer-index tables, %d rib records\n",
              messages, states, tables, ribs);
  return 0;
}

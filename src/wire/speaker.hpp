// wire/speaker.hpp — the BGP-4 speaker: real sockets, driven by the
// bgp/session_fsm.
//
// One poll(2) loop owns every session: a passive listener (zslived
// --bgp-listen, the RIS-collector role), active outbound peers with
// ConnectRetry (--bgp-peer), or both. Each session pairs a TCP socket
// with a SessionFsm — the FSM owns states and timers (hold-time
// negotiated to min(ours, theirs), KEEPALIVE cadence, ConnectRetry),
// the speaker owns the bytes: frames inbound traffic through
// wire/message.hpp, serializes the FSM's outbound queue, answers
// malformed input with the NOTIFICATION its WireError names, resolves
// §6.8 connection collisions by BGP Identifier, and implements the
// RFC 9687 send-hold check at the socket (a peer that stops draining
// our socket keeps its session only until send_hold_time of zero write
// progress).
//
// Graceful restart rides on wire/retention.hpp: each session tracks
// the peer's announced prefixes; when a GR-negotiated session drops,
// the routes go stale instead of flushed and the session lives on as a
// "ghost" awaiting the peer's return (End-of-RIB sweep) or the
// restart/LLGR deadline. The owner observes everything through three
// callbacks (update / state / flush) and the sessions_json() snapshot
// that backs GET /sessions and the zstop SESSIONS panel.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bgp/session_fsm.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "wire/message.hpp"
#include "wire/retention.hpp"

namespace zombiescope::wire {

struct SpeakerConfig {
  bgp::Asn local_asn = 64999;
  std::uint32_t bgp_id = 0xc0000263;  // 192.0.2.99
  /// Offered hold time; the FSM negotiates min(ours, theirs).
  netbase::Duration hold_time = 90;
  /// Pre-negotiation KEEPALIVE cadence (hold/3 once negotiated).
  netbase::Duration keepalive_interval = 30;
  /// RFC 9687 socket send-hold; 0 disables.
  netbase::Duration send_hold_time = 0;
  /// Re-dial cadence for active peers.
  netbase::Duration connect_retry = 5;
  /// Stale-path retention policy (gr_enabled makes the speaker
  /// advertise the GR capability; llgr_enabled adds LLGR).
  RetentionConfig retention;
  /// Restart/stale windows *we* advertise in our OPEN.
  netbase::Duration advertised_restart_time = 120;
  netbase::Duration advertised_llgr_stale_time = 0;
  bool advertise_route_refresh = true;
};

/// Stable identity of a session as the callbacks see it. The address
/// is the *logical* peer address: capability 240 when the peer is a
/// replay bridge, the socket address otherwise.
struct SessionRef {
  std::uint64_t id = 0;
  bgp::Asn peer_asn = 0;
  netbase::IpAddress peer_address;
  bool bridged = false;
};

/// One row of GET /sessions.
struct SessionSnapshot {
  std::uint64_t id = 0;
  bool passive = true;
  bool bridged = false;
  std::string state;
  bgp::Asn peer_asn = 0;
  std::string peer_address;
  std::uint32_t peer_bgp_id = 0;
  netbase::Duration negotiated_hold = 0;
  bool gr = false;
  bool llgr = false;
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t updates_in = 0;
  std::uint64_t updates_out = 0;
  std::size_t routes = 0;
  std::size_t stale_routes = 0;
  std::string last_event;
};

class BgpSpeaker {
 public:
  /// ingest is the steady-clock instant the complete frame left the
  /// socket — the stamp the live pipeline's latency accounting wants.
  using UpdateHandler =
      std::function<void(const SessionRef&, bgp::UpdateMessage&&,
                         std::chrono::steady_clock::time_point ingest)>;
  /// retained: the session dropped but GR kept its routes — the
  /// collector's RIB did NOT flush (the zombie-manufacturing case).
  using StateHandler =
      std::function<void(const SessionRef&, bgp::SessionState old_state,
                         bgp::SessionState new_state, bool retained)>;
  /// Routes leaving the RIB outside a peer's own withdrawal: End-of-RIB
  /// sweep, restart-time expiry, LLGR expiry, or plain session loss.
  using FlushHandler = std::function<void(
      const SessionRef&, std::vector<netbase::Prefix>&&, FlushReason)>;

  /// listen = true binds 0.0.0.0:port immediately (0 = ephemeral), so
  /// port() is valid before run(). Throws std::runtime_error when the
  /// socket cannot be bound.
  BgpSpeaker(SpeakerConfig config, bool listen, std::uint16_t port);
  ~BgpSpeaker();

  BgpSpeaker(const BgpSpeaker&) = delete;
  BgpSpeaker& operator=(const BgpSpeaker&) = delete;

  std::uint16_t port() const { return port_; }

  /// Registers an active peer, dialed from run() with ConnectRetry.
  void connect_to(const std::string& host, std::uint16_t port);

  void on_update(UpdateHandler fn) { on_update_ = std::move(fn); }
  void on_state(StateHandler fn) { on_state_ = std::move(fn); }
  void on_flush(FlushHandler fn) { on_flush_ = std::move(fn); }

  /// The poll loop; blocking until stop(). Callbacks fire on this
  /// thread.
  void run();
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// One loop iteration (run() calls this); exposed for deterministic
  /// single-threaded tests.
  void poll_once(int timeout_ms);

  /// Thread-safe snapshot of every live session and GR ghost; rebuilt
  /// each poll iteration.
  std::vector<SessionSnapshot> snapshot() const;
  /// The GET /sessions body built from snapshot().
  std::string sessions_json() const;
  std::size_t established_count() const;

 private:
  struct Session;
  struct Ghost;
  struct ActivePeer;

  netbase::TimePoint wall_now() const;
  void dial_due_peers(netbase::TimePoint now);
  void handle_readable(Session& session, netbase::TimePoint now);
  void handle_frame(Session& session, std::vector<std::uint8_t> frame,
                    netbase::TimePoint now,
                    std::chrono::steady_clock::time_point ingest);
  void handle_open(Session& session, OpenMessage open, netbase::TimePoint now);
  void sync_fsm_state(Session& session, netbase::TimePoint now);
  void pump_fsm_out(Session& session, netbase::TimePoint now);
  void flush_socket(Session& session, netbase::TimePoint now);
  void send_notification(Session& session, NotifyCode code, std::uint8_t subcode,
                         netbase::TimePoint now);
  void teardown(Session& session, const std::string& reason,
                netbase::TimePoint now);
  void adopt_or_create_retention(Session& session);
  void tick_ghosts(netbase::TimePoint now);
  void rebuild_snapshot();
  SessionRef ref_of(const Session& session) const;
  std::vector<std::uint8_t> encode_local_open() const;

  SpeakerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::uint64_t next_session_id_ = 1;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<Ghost> ghosts_;
  std::vector<ActivePeer> active_peers_;
  std::mutex active_mutex_;  // connect_to() may race run()

  UpdateHandler on_update_;
  StateHandler on_state_;
  FlushHandler on_flush_;

  mutable std::mutex snap_mutex_;
  std::vector<SessionSnapshot> snap_;
  std::size_t snap_established_ = 0;
};

}  // namespace zombiescope::wire

// Tests for the statistics/rendering toolkit.

#include <gtest/gtest.h>

#include "analysis/stats.hpp"

namespace zombiescope::analysis {
namespace {

TEST(Cdf, BasicQuantiles) {
  Cdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(cdf.min(), 1.0);
  EXPECT_EQ(cdf.max(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.5);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Cdf, AtIsRightContinuousFraction) {
  Cdf cdf({1.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(Cdf, EmptySampleIsSafe) {
  Cdf cdf({});
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(Cdf, PointsSpanRange) {
  Cdf cdf({0.0, 10.0});
  auto points = cdf.points(10);
  ASSERT_EQ(points.size(), 11u);
  EXPECT_DOUBLE_EQ(points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(points.back().first, 10.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Cdf, OfSpanOfInts) {
  std::vector<int> values{1, 2, 3};
  auto cdf = Cdf::of(std::span<const int>(values));
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.median(), 2.0);
}

TEST(Render, TablePadsColumns) {
  const std::string table =
      render_table({"Period", "IPv4", "IPv6"}, {{"2018-07", "536", "745"},
                                                {"2017-10", "705", "1378"}});
  EXPECT_NE(table.find("| Period  | IPv4 | IPv6 |"), std::string::npos);
  EXPECT_NE(table.find("| 2018-07 | 536  | 745  |"), std::string::npos);
}

TEST(Render, CdfShowsSummary) {
  Cdf cdf({1.0, 2.0, 3.0});
  const std::string text = render_cdf(cdf, "days");
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("days"), std::string::npos);
}

TEST(Render, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.0658, 1), "6.6%");
  EXPECT_EQ(pct(0.314), "31.40%");
}

}  // namespace
}  // namespace zombiescope::analysis

// Integration tests for the scenario builders, on trimmed-down specs
// so they run in seconds. These validate the full pipeline: simulate →
// archive MRT → detect.

#include <gtest/gtest.h>

#include "scenarios/longlived2024.hpp"
#include "scenarios/ris_replication.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"
#include "zombie/rootcause.hpp"

namespace zombiescope::scenarios {
namespace {

using netbase::kDay;
using netbase::kMinute;
using netbase::utc;

RisPeriodSpec short_ris_spec() {
  RisPeriodSpec spec = period_2018jul();
  spec.end = spec.start + 5 * kDay;  // 30 intervals
  // Several stall injections so at least one lands on a transit AS
  // that downstream monitors actually route through (the injection
  // sites are drawn randomly).
  spec.longlived_v4 = 4;
  spec.longlived_v6 = 4;
  spec.span_min_intervals = 3;
  spec.span_max_intervals = 6;
  spec.sessionwide_v4 = 1;
  spec.sessionwide_v6 = 1;
  return spec;
}

TEST(RisScenario, ProducesCoherentArchive) {
  const auto spec = short_ris_spec();
  const auto out = run_ris_period(spec);
  ASSERT_FALSE(out.updates.empty());
  ASSERT_FALSE(out.events.empty());
  EXPECT_EQ(out.events.size(), 30u * 27u);
  // Archive is time-sorted.
  for (std::size_t i = 1; i < out.updates.size(); ++i)
    ASSERT_LE(mrt::record_timestamp(out.updates[i - 1]),
              mrt::record_timestamp(out.updates[i]));
  // The noisy session is among the peers.
  bool noisy_seen = false;
  for (const auto& record : out.updates) {
    const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record);
    if (msg != nullptr && msg->peer_asn == kNoisyRisPeerAsn) noisy_seen = true;
  }
  EXPECT_TRUE(noisy_seen);
}

TEST(RisScenario, DetectorFindsZombiesAndDuplicates) {
  const auto out = run_ris_period(short_ris_spec());
  zombie::IntervalZombieDetector detector({});
  const auto result = detector.detect(out.updates, out.events);
  EXPECT_GT(result.outbreaks_with_duplicates.size(), 0u);
  EXPECT_GE(result.outbreaks_with_duplicates.size(), result.outbreaks_deduplicated.size());
  // The long-lived stall must produce at least one Aggregator-flagged
  // duplicate.
  bool duplicate_found = false;
  for (const auto& route : result.routes)
    if (route.duplicate) duplicate_found = true;
  EXPECT_TRUE(duplicate_found);
  // Every announced beacon interval is visible at some peer.
  EXPECT_GT(result.visible_prefixes, 700);
}

TEST(RisScenario, NoisyPeerHasOutlierProbability) {
  const auto out = run_ris_period(short_ris_spec());
  zombie::IntervalZombieDetector detector({});
  const auto result = detector.detect(out.updates, out.events);
  int noisy_routes = 0, other_routes = 0;
  for (const auto& route : result.routes)
    (route.peer.asn == kNoisyRisPeerAsn ? noisy_routes : other_routes)++;
  // v6 events: 14/27 of 810, noisy loses ~43%.
  EXPECT_GT(noisy_routes, 100);
}

TEST(RisScenario, DeterministicAcrossRuns) {
  const auto a = run_ris_period(short_ris_spec());
  const auto b = run_ris_period(short_ris_spec());
  ASSERT_EQ(a.updates.size(), b.updates.size());
  EXPECT_EQ(a.sim_stats.messages_delivered, b.sim_stats.messages_delivered);
  for (std::size_t i = 0; i < a.updates.size(); i += 997)
    EXPECT_EQ(mrt::record_timestamp(a.updates[i]), mrt::record_timestamp(b.updates[i]));
}

LongLived2024Spec short_longlived_spec() {
  LongLived2024Spec spec;
  spec.monitor_until = utc(2024, 7, 1);  // June only
  return spec;
}

TEST(LongLivedScenario, AnecdotePrefixesAreCorrect) {
  const auto out = run_longlived2024(short_longlived_spec());
  EXPECT_EQ(out.resurrected_prefix.to_string(), "2a0d:3dc1:1851::/48");
  EXPECT_EQ(out.impactful_prefix.to_string(), "2a0d:3dc1:2233::/48");
  EXPECT_EQ(out.longest_prefix.to_string(), "2a0d:3dc1:163::/48");
  EXPECT_EQ(out.rrc25_noisy_routers.size(), 3u);
  EXPECT_GT(out.studied_announcements, 1600);
  EXPECT_LT(out.studied_announcements, 1760);
}

TEST(LongLivedScenario, ImpactfulOutbreakDetectedWithRootCause) {
  const auto out = run_longlived2024(short_longlived_spec());
  zombie::LongLivedConfig config;
  for (const auto& peer : out.noisy_peers) config.excluded_peers.insert(peer);
  zombie::LongLivedZombieDetector detector{config};
  const auto result = detector.detect(out.updates, out.events, 180 * kMinute);

  const zombie::ZombieOutbreak* impactful = nullptr;
  for (const auto& outbreak : result.outbreaks)
    if (outbreak.prefix == out.impactful_prefix) impactful = &outbreak;
  ASSERT_NE(impactful, nullptr);
  EXPECT_GT(impactful->peer_as_count(), 5);
  const auto cause = zombie::infer_root_cause(*impactful);
  ASSERT_TRUE(cause.suspect.has_value());
  EXPECT_EQ(*cause.suspect, Cast::kCoreBackbone);
  EXPECT_EQ(cause.common_subpath(), "33891 25091 8298 210312");
}

TEST(LongLivedScenario, TwoNoisyRoutersOfSameAsAreIdentical) {
  const auto out = run_longlived2024(short_longlived_spec());
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(out.updates, out.events, 90 * kMinute);
  int a = 0, b = 0;
  for (const auto& outbreak : result.outbreaks) {
    for (const auto& route : outbreak.routes) {
      if (route.peer == out.rrc25_noisy_routers[0]) ++a;
      if (route.peer == out.rrc25_noisy_routers[1]) ++b;
    }
  }
  EXPECT_GT(a, 50);
  EXPECT_EQ(a, b) << "the two AS211509 transports must report identical stuck sets";
}

TEST(LongLivedScenario, NoisyFilterDiscoversInjectedSessions) {
  const auto out = run_longlived2024(short_longlived_spec());
  zombie::LongLivedZombieDetector detector{zombie::LongLivedConfig{}};
  const auto result = detector.detect(out.updates, out.events, 90 * kMinute);
  std::vector<zombie::ZombieRoute> routes;
  for (const auto& outbreak : result.outbreaks)
    for (const auto& route : outbreak.routes) routes.push_back(route);
  zombie::NoisyPeerFilter filter;
  const auto detected =
      filter.noisy_peer_keys(routes, out.all_peers, out.studied_announcements);
  EXPECT_EQ(detected, out.noisy_peers);
}

TEST(LongLivedScenario, RibDumpsCoverJune) {
  const auto out = run_longlived2024(short_longlived_spec());
  int tables = 0;
  for (const auto& record : out.rib_dumps)
    if (std::holds_alternative<mrt::PeerIndexTable>(record)) ++tables;
  // 27 days x 3 dumps x 2 collectors.
  EXPECT_GT(tables, 150);
}

}  // namespace
}  // namespace zombiescope::scenarios

// mrt/codec.hpp — binary MRT encoding/decoding (RFC 6396).
//
// MrtWriter serializes records into a byte stream with the standard
// 12-byte MRT common header; MrtReader parses a stream back into
// records. File-level helpers read/write whole archives, which is how
// scenario runs hand their "RIS raw data" to the detectors.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mrt/record.hpp"
#include "netbase/bytes.hpp"

namespace zombiescope::mrt {

class MrtWriter {
 public:
  void write(const MrtRecord& record);

  const std::vector<std::uint8_t>& data() const { return out_.data(); }
  std::vector<std::uint8_t> take() { return out_.take(); }
  std::size_t size() const { return out_.size(); }

 private:
  netbase::ByteWriter out_;
};

class MrtReader {
 public:
  explicit MrtReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// True if at least one more record follows.
  bool has_next() const { return !reader_.done(); }

  /// Decodes the next record. Throws netbase::DecodeError on malformed
  /// or unsupported input.
  MrtRecord next();

 private:
  netbase::ByteReader reader_;
};

/// Decodes an entire buffer into records.
std::vector<MrtRecord> decode_all(std::span<const std::uint8_t> data);

/// Encodes all records into one buffer.
std::vector<std::uint8_t> encode_all(std::span<const MrtRecord> records);

/// Writes records to an MRT file on disk; throws std::runtime_error on
/// I/O failure.
void write_file(const std::string& path, std::span<const MrtRecord> records);

/// Reads an MRT file from disk.
std::vector<MrtRecord> read_file(const std::string& path);

}  // namespace zombiescope::mrt

# Empty dependencies file for zs_rost.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for zssim.
# This may be replaced when dependencies are built.

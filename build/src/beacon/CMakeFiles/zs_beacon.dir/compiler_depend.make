# Empty compiler generated dependencies file for zs_beacon.
# This may be replaced when dependencies are built.

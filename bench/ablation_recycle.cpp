// ablation_recycle — ablates the paper's central beacon design choice
// (§4 "Periodicity"): how the prefix recycle interval bounds the
// zombie lifetimes a beacon infrastructure can observe.
//
// RIPE RIS beacons re-announce the same prefix every 4 hours, so a
// stuck route is refreshed (and its zombie lifetime capped) after at
// most 4 hours. The paper's beacons recycle after 24 hours (approach
// 1) or 15 days (approach 2): "an announcement (and withdrawal) of a
// beacon prefix can wipe out a stuck route only after 15 days, thus
// allowing us to detect and analyze zombie routes that persist for a
// week or more."
//
// The experiment injects the same 5-day-long stuck route under each
// schedule and reports the zombie lifetime each one can observe.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "beacon/driver.hpp"
#include "collector/collector.hpp"
#include "netbase/rng.hpp"
#include "zombie/state.hpp"

using namespace zombiescope;

namespace {

struct RunResult {
  double observed_days = 0.0;  // how long the stuck route stayed visible
  int refreshes = 0;           // how many times a re-announcement wiped it
};

// Runs one schedule with a withdrawal-suppression fault lasting 5 days
// on the route of the slot at `slot_time`, and measures how long the
// collector kept seeing the stale route.
RunResult run_with_schedule(bool ris_style, netbase::Duration recycle,
                            std::uint64_t seed) {
  using topology::Relationship;
  topology::Topology topo;
  topo.add_as({10, 2, "transit"});
  topo.add_as({20, 2, "peer"});
  topo.add_as({210312, 3, "origin"});
  topo.add_link(10, 210312, Relationship::kCustomer);
  topo.add_link(10, 20, Relationship::kCustomer);

  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(seed));
  collector::Collector rrc("rrc", 12654, netbase::IpAddress::parse("193.0.4.28"));
  collector::SessionConfig session;
  session.peer_asn = 20;
  session.peer_address = netbase::IpAddress::parse("2001:7f8::1");
  rrc.add_peer(sim, session, netbase::Rng(seed + 1));

  const auto start = netbase::utc(2024, 6, 10);
  const auto end = start + 7 * netbase::kDay;
  netbase::Prefix target = netbase::Prefix::parse("2a0d:3dc1::/48");
  std::vector<beacon::BeaconEvent> events;
  if (ris_style) {
    // Same prefix re-announced every `recycle`; up half the time.
    for (netbase::TimePoint t = start; t < end; t += recycle)
      events.push_back({target, t, t + recycle / 2, false});
  } else {
    // Paper-style: a distinct prefix per slot; the target slot's
    // prefix recycles only after `recycle`.
    const auto schedule = beacon::LongLivedBeaconSchedule::paper_deployment(
        recycle >= 15 * netbase::kDay
            ? beacon::LongLivedBeaconSchedule::Approach::kFifteenDay
            : beacon::LongLivedBeaconSchedule::Approach::kDaily);
    events = schedule.events(start, end);
    target = schedule.prefix_for(start);
  }

  // The fault: the peer's upstream drops withdrawals of the target
  // prefix for 5 days.
  simnet::WithdrawalSuppression fault;
  fault.from_asn = 10;
  fault.to_asn = 20;
  fault.prefix_filter = target;
  fault.window = {start, start + 5 * netbase::kDay};
  sim.add_withdrawal_suppression(fault);

  beacon::BeaconDriver driver(sim, 210312, ris_style);
  driver.drive(events);
  sim.run_until(end + netbase::kDay);

  // Measure the *attributable* zombie time. After a scheduled
  // withdrawal, the route staying visible is a zombie — but only until
  // the next scheduled announcement of the same prefix: from then on a
  // visible route is indistinguishable from the fresh announcement, so
  // the re-announcement ends the observation (and wipes the zombie).
  // This is exactly the paper's argument for slow recycling.
  std::vector<netbase::TimePoint> withdraw_times, announce_times;
  for (const auto& event : driver.ground_truth()) {
    if (event.prefix != target) continue;
    announce_times.push_back(event.announce_time);
    withdraw_times.push_back(event.withdraw_time);
  }

  // Reconstruct the peer's view of the target prefix over time.
  struct Toggle {
    netbase::TimePoint at;
    bool present;
  };
  std::vector<Toggle> toggles;
  for (const auto& record : rrc.updates()) {
    const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record);
    if (msg == nullptr) continue;
    for (const auto& prefix : msg->update.announced)
      if (prefix == target) toggles.push_back({msg->timestamp, true});
    for (const auto& prefix : msg->update.withdrawn)
      if (prefix == target) toggles.push_back({msg->timestamp, false});
  }
  auto present_at = [&](netbase::TimePoint t) {
    bool present = false;
    for (const auto& toggle : toggles) {
      if (toggle.at > t) break;
      present = toggle.present;
    }
    return present;
  };

  RunResult result;
  for (netbase::TimePoint w : withdraw_times) {
    // Still visible 10 minutes after the scheduled withdrawal?
    if (!present_at(w + 10 * netbase::kMinute)) continue;
    // The observation window closes at the next scheduled announcement.
    netbase::TimePoint cap = sim.now();
    for (netbase::TimePoint a : announce_times)
      if (a > w) {
        cap = std::min(cap, a);
        break;
      }
    // When did the route actually disappear within the window?
    netbase::TimePoint gone = cap;
    for (const auto& toggle : toggles)
      if (!toggle.present && toggle.at > w && toggle.at < cap) {
        gone = toggle.at;
        break;
      }
    if (gone == cap && cap != sim.now()) ++result.refreshes;  // wiped by re-announcement
    result.observed_days = std::max(
        result.observed_days, static_cast<double>(gone - w) / netbase::kDay);
  }
  return result;
}

void print_ablation() {
  bench::print_header("Ablation — beacon prefix recycle interval vs observable lifetime",
                      "IMC'25 paper §4 (periodicity) — why the new beacons recycle slowly");
  struct Row {
    const char* label;
    bool ris;
    netbase::Duration recycle;
  };
  const Row rows[] = {
      {"RIS-style, 4h cycle (same prefix)", true, 4 * netbase::kHour},
      {"paper approach 1, 24h recycle", false, netbase::kDay},
      {"paper approach 2, 15d recycle", false, 15 * netbase::kDay},
  };
  std::vector<std::vector<std::string>> table;
  for (const auto& row : rows) {
    const auto result = run_with_schedule(row.ris, row.recycle, 99);
    table.push_back({row.label, analysis::fmt(result.observed_days, 2) + " days",
                     std::to_string(result.refreshes)});
  }
  std::fputs(analysis::render_table(
                 {"Schedule", "Longest observable stuck period", "wipes by re-announcement"},
                 table)
                 .c_str(),
             stdout);
  std::printf("A 5-day fault is injected in every run. Fast-recycling schedules keep\n"
              "wiping the stuck route, capping the observable zombie lifetime at the\n"
              "recycle interval; the paper's 15-day recycle observes the full fault.\n");
}

void BM_RecycleRun(benchmark::State& state) {
  for (auto _ : state) {
    auto result = run_with_schedule(false, 15 * netbase::kDay, 99);
    benchmark::DoNotOptimize(result.observed_days);
  }
}
BENCHMARK(BM_RecycleRun)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

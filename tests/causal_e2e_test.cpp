// End-to-end causal tracing: the seeded fault scenarios must localize
// the exact injected link from the tracer's hop records, the
// palm-tree heuristic must score as designed, and a journal round-trip
// (what zsroot consumes offline) must preserve the localization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "obs/causal.hpp"
#include "obs/journal.hpp"
#include "scenarios/faultlab.hpp"
#include "simnet/simulation.hpp"
#include "topology/topology.hpp"
#include "zombie/propagation.hpp"

namespace zombiescope::scenarios {
namespace {

static_assert(obs::kCausalCompiledIn, "e2e tracing needs the tracer compiled in");

TEST(ObsCausalE2E, SuiteLocalizesEveryInjectedFaultAcrossSeeds) {
  const auto suite = default_fault_suite(5);
  ASSERT_GE(suite.size(), 5u * 2u);  // >= 5 seeds x both fault kinds
  for (const FaultScenarioSpec& spec : suite) {
    const FaultScenarioResult result = run_fault_scenario(spec);

    // The simulator produced the zombie set the topology predicts.
    EXPECT_EQ(result.zombie_asns, result.expected_zombie_asns) << spec.name();

    // Causal localization: exactly the injected link, nothing else.
    EXPECT_TRUE(result.localized_exact) << spec.name();
    ASSERT_EQ(result.frontier.culprits.size(), 1u) << spec.name();
    const zombie::CulpritLink& culprit = result.frontier.culprits.front();
    EXPECT_EQ(culprit.from_asn, result.injected_from) << spec.name();
    EXPECT_EQ(culprit.to_asn, result.injected_to) << spec.name();
    EXPECT_EQ(culprit.decision, spec.kind == FaultKind::kWithdrawalSuppression
                                    ? obs::HopDecision::kSuppressedByFault
                                    : obs::HopDecision::kStalled)
        << spec.name();

    // Everyone upstream of the fault saw the withdraw; no zombie did.
    for (const std::uint32_t asn : result.frontier.reached)
      EXPECT_FALSE(std::binary_search(result.zombie_asns.begin(),
                                      result.zombie_asns.end(), asn))
          << spec.name() << ": AS" << asn << " both saw the withdraw and kept the route";

    // The palm-tree heuristic behaves exactly as §5.2 predicts: a
    // receive-side fault is named exactly; a send-side suppression is
    // pinned one AS downstream (the heuristic's documented blind spot).
    EXPECT_EQ(result.rootcause_score, spec.kind == FaultKind::kReceiveStall
                                          ? RootCauseScore::kExact
                                          : RootCauseScore::kOffByOneUpstream)
        << spec.name();
    ASSERT_TRUE(result.rootcause.suspect.has_value()) << spec.name();
    EXPECT_EQ(*result.rootcause.suspect, result.injected_to) << spec.name();
  }

  const FaultSuiteSummary summary = [&] {
    std::vector<FaultScenarioResult> results;
    for (const FaultScenarioSpec& spec : default_fault_suite(2))
      results.push_back(run_fault_scenario(spec));
    return summarize(results);
  }();
  EXPECT_EQ(summary.localized_exact, summary.total);
  EXPECT_EQ(summary.rootcause_wrong, 0);
  EXPECT_DOUBLE_EQ(summary.localization_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(summary.rootcause_link_rate(), 1.0);
}

TEST(ObsCausalE2E, CleanWithdrawalReachesEveryoneAndHasNoCulprits) {
  // No fault injected: the withdrawal reaches the whole tree, leaves no
  // zombies, and the frontier reports no dead links.
  topology::Topology topo;
  topo.add_as({65000, 3, "origin"});
  topo.add_as({65001, 2, "mid"});
  topo.add_as({65002, 1, "top"});
  topo.add_as({65003, 2, "fan"});
  topo.add_link(65000, 65001, topology::Relationship::kProvider);
  topo.add_link(65001, 65002, topology::Relationship::kProvider);
  topo.add_link(65002, 65003, topology::Relationship::kCustomer);

  obs::CausalTracer::global().reset();
  simnet::Simulation sim(topo, simnet::SimConfig{}, netbase::Rng(1));
  const netbase::Prefix prefix = netbase::Prefix::parse("203.0.113.0/24");
  sim.announce(1'000, 65000, prefix);
  sim.withdraw(10'000, 65000, prefix);
  sim.run_all();

  for (const bgp::Asn asn : {65001u, 65002u, 65003u})
    EXPECT_EQ(sim.router(asn).best(prefix), nullptr) << "AS" << asn << " kept a zombie";

  obs::CausalTracer& tracer = obs::CausalTracer::global();
  const auto frontiers = zombie::localize_frontiers(tracer.records_for(prefix));
  ASSERT_EQ(frontiers.size(), 1u);
  EXPECT_TRUE(frontiers[0].culprits.empty());
  EXPECT_EQ(frontiers[0].reached,
            (std::vector<std::uint32_t>{65000, 65001, 65002, 65003}));

  // Well-formed trace: rooted at hop 0 / pseudo-sender AS0, one id.
  const auto traces = zombie::group_traces(tracer.records_for(prefix));
  bool saw_withdrawal_trace = false;
  for (const zombie::PropagationTrace& trace : traces) {
    if (!trace.is_withdrawal_rooted()) continue;
    saw_withdrawal_trace = true;
    ASSERT_FALSE(trace.hops.empty());
    EXPECT_EQ(trace.hops.front().hop, 0u);
    EXPECT_EQ(trace.hops.front().from_asn, 0u);
    for (const obs::HopRecord& hop : trace.hops) EXPECT_EQ(hop.trace_id, trace.trace_id);
  }
  EXPECT_TRUE(saw_withdrawal_trace);
  tracer.reset();
}

TEST(ObsCausalE2E, JournalRoundTripPreservesLocalization) {
  // The offline path zsroot uses: mirror hops into the journal, write
  // an NDJSON file, read it back, and localize from the file alone.
  const std::string path = ::testing::TempDir() + "causal_e2e_journal.ndjson";

  obs::Journal& journal = obs::Journal::global();
  journal.reset();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(obs::kCatPropagation);
  journal.attach_writer(
      std::make_unique<obs::JournalWriter>(path, obs::JournalFormat::kNdjson));

  FaultScenarioSpec spec;
  spec.seed = 3;
  spec.kind = FaultKind::kReceiveStall;
  spec.chain_len = 2;
  spec.fanout = 3;
  spec.leaves_per_fan = 1;
  const FaultScenarioResult live = run_fault_scenario(spec);
  ASSERT_TRUE(live.localized_exact);

  journal.close_writer();
  journal.set_enabled_categories(saved);

  std::vector<obs::HopRecord> hops;
  for (const obs::JournalEvent& event : obs::read_journal_file(path)) {
    const auto hop = obs::hop_from_event(event);
    if (hop.has_value() && hop->prefix == live.prefix) hops.push_back(*hop);
  }
  ASSERT_FALSE(hops.empty());

  const auto frontiers = zombie::localize_frontiers(hops);
  ASSERT_EQ(frontiers.size(), 1u);
  ASSERT_EQ(frontiers[0].culprits.size(), 1u);
  EXPECT_EQ(frontiers[0].culprits[0].from_asn, live.injected_from);
  EXPECT_EQ(frontiers[0].culprits[0].to_asn, live.injected_to);
  EXPECT_EQ(frontiers[0].culprits[0].decision, obs::HopDecision::kStalled);
  EXPECT_EQ(frontiers[0].reached, live.frontier.reached);

  std::remove(path.c_str());
  journal.reset();
}

}  // namespace
}  // namespace zombiescope::scenarios

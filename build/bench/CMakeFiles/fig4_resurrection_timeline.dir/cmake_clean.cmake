file(REMOVE_RECURSE
  "CMakeFiles/fig4_resurrection_timeline.dir/fig4_resurrection_timeline.cpp.o"
  "CMakeFiles/fig4_resurrection_timeline.dir/fig4_resurrection_timeline.cpp.o.d"
  "fig4_resurrection_timeline"
  "fig4_resurrection_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resurrection_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// obs/export.hpp — turning registry/tracer state into artifacts.
//
// Two formats:
//  * Prometheus text exposition (counters, gauges, histograms with
//    _bucket{le=...}/_sum/_count series) — scrape-ready;
//  * a JSON snapshot ("zsobs-v1") — the schema of the repo's
//    BENCH_*.json perf-trajectory files, with optional span data so
//    one file carries both counts and per-stage wall time.
//
// Exporting is strictly pull: nothing here runs unless called, which
// is what keeps the instrumented hot paths free of I/O.

#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zombiescope::obs {

enum class Format { kPrometheus, kJson };

/// Parses "prom" / "json" (the CLI --metrics-format values).
std::optional<Format> parse_format(std::string_view text);

/// Escapes a Prometheus label value: `\` -> `\\`, `"` -> `\"`, and a
/// newline -> `\n` (the exposition-format escaping rules).
std::string prometheus_escape_label(std::string_view value);

/// Escapes a HELP text line: `\` -> `\\` and a newline -> `\n` (HELP
/// text keeps literal double quotes).
std::string prometheus_escape_help(std::string_view text);

/// Prometheus text exposition format. Includes the `zs_build_info`
/// gauge (value 1, build identity in labels).
std::string to_prometheus(const Snapshot& snapshot);

/// Extra top-level sections appended to the zsobs-v1 JSON object: each
/// entry is (key, raw JSON value). The bench harness uses this for
/// wall time, peak RSS, and the zsprof profile section.
using JsonSections = std::vector<std::pair<std::string, std::string>>;

/// The zsobs-v1 JSON snapshot: build info, counters, gauges,
/// histograms, optional extra sections, and (if given) completed spans
/// with their parent links.
std::string to_json(const Snapshot& snapshot, std::span<const SpanRecord> spans = {},
                    const JsonSections& extra = {});

/// Span-only JSON ("zsobs-trace-v1") for --trace-out files.
std::string trace_to_json(std::span<const SpanRecord> spans);

/// Sanity-checks Prometheus text format: every line is a comment or
/// `name[{labels}] value` with a valid metric name and numeric value,
/// and every histogram has consistent _bucket/_sum/_count series.
bool prometheus_format_ok(std::string_view text);

/// Writes `content` to `path`; throws std::runtime_error on failure.
void write_text_file(const std::string& path, std::string_view content);

/// Snapshot the global registry (and, for JSON, the global tracer) to
/// a file in the given format.
void write_metrics_file(const std::string& path, Format format);

/// Snapshot the global tracer's spans to a JSON trace file.
void write_trace_file(const std::string& path);

}  // namespace zombiescope::obs

#!/usr/bin/env bash
# The full CI pipeline, in the order a reviewer wants failures
# reported:
#
#   1. tier-1: plain build + all tests, then the obs subsystem under
#      TSan and ASan+UBSan (scripts/run_tier1.sh);
#   2. the causal ground-truth gate: zsroot must localize the injected
#      fault link on 100% of the seeded scenarios (exit 1 otherwise);
#      the JSON accuracy report is archived as SCORE_zsroot.json;
#   3. the bench snapshot gate: every bench rebuilt and re-run fresh,
#      then zsbenchdiff compares the committed BENCH_*.json baselines
#      against the fresh run — disable with ZS_CI_NO_BENCH_GATE=1
#      (e.g. on hardware unlike the one the baselines were recorded
#      on, where build-identity or raw-speed differences are noise);
#   4. optionally, the benchmark regression gate against a baseline
#      ref (scripts/check_bench_regression.sh, default bench set:
#      micro_hotpaths + live_throughput + live_latency +
#      tsdb_overhead, so the decode/detect hot paths, the sharded
#      live service, its delivery latency, and the zstsdb sampler's
#      cost on the pipeline it observes are all gated) — enabled by
#      setting ZS_CI_BENCH_BASELINE to a git ref (e.g. origin/main).
#
# Both zsbenchdiff gates pass --gate-latency: a latency:*:p99_ns
# regression past the threshold fails CI like a wall-time regression.
#
# Usage: scripts/ci.sh [build-dir]
#   ZS_CI_BENCH_BASELINE=origin/main scripts/ci.sh
#   ZS_CI_NO_BENCH_GATE=1 scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BUILD_DIR="${1:-build}"

scripts/run_tier1.sh "${BUILD_DIR}"

echo "== ci: causal ground-truth gate (zsroot score)"
cmake --build "${BUILD_DIR}" -j --target zsroot >/dev/null
"${BUILD_DIR}/tools/zsroot" score --seeds 5 --out SCORE_zsroot.json
echo "== ci: accuracy report archived to SCORE_zsroot.json"

if [ -z "${ZS_CI_NO_BENCH_GATE:-}" ]; then
  echo "== ci: bench snapshot gate vs committed BENCH_*.json"
  FRESH_DIR="$(mktemp -d "${TMPDIR:-/tmp}/zs_ci_bench.XXXXXX")"
  trap 'rm -rf "${FRESH_DIR}"' EXIT
  ZS_BENCH_JSON_DIR="${FRESH_DIR}" ZS_NO_BENCH_HISTORY=1 \
    scripts/run_bench.sh "${BUILD_DIR}"
  cmake --build "${BUILD_DIR}" -j --target zsbenchdiff >/dev/null
  "${BUILD_DIR}/tools/zsbenchdiff" \
    "${REPO_ROOT}"/BENCH_*.json --vs "${FRESH_DIR}"/BENCH_*.json \
    --gate-latency
else
  echo "== ci: bench snapshot gate skipped (ZS_CI_NO_BENCH_GATE set)"
fi

if [ -n "${ZS_CI_BENCH_BASELINE:-}" ]; then
  echo "== ci: bench regression gate vs ${ZS_CI_BENCH_BASELINE}"
  scripts/check_bench_regression.sh "${ZS_CI_BENCH_BASELINE}"
else
  echo "== ci: bench ref gate skipped (set ZS_CI_BENCH_BASELINE=<ref> to enable)"
fi

echo "== ci: OK"

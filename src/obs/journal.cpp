#include "obs/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "netbase/bytes.hpp"

namespace zombiescope::obs {

namespace {

struct CategoryName {
  std::uint32_t bit;
  std::string_view name;
};

constexpr CategoryName kCategoryNames[] = {
    {kCatRun, "run"},           {kCatState, "state"},
    {kCatDetector, "detector"}, {kCatNoise, "noise"},
    {kCatLifespan, "lifespan"}, {kCatCollector, "collector"},
    {kCatFault, "fault"},       {kCatPropagation, "propagation"},
    {kCatLive, "live"},     {kCatAlert, "alert"},
    {kCatPeer, "peer"},     {kCatSession, "session"},
};

}  // namespace

std::string_view category_name(std::uint32_t category) {
  for (const auto& entry : kCategoryNames) {
    if (entry.bit == category) return entry.name;
  }
  return {};
}

std::optional<std::uint32_t> parse_categories(std::string_view text) {
  std::uint32_t mask = 0;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view token = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (token.empty()) continue;
    if (token == "all") {
      mask |= kCatAll;
      continue;
    }
    bool found = false;
    for (const auto& entry : kCategoryNames) {
      if (entry.name == token) {
        mask |= entry.bit;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return mask;
}

namespace {

struct EventTypeName {
  JournalEventType type;
  std::string_view name;
  std::uint32_t category;
};

constexpr EventTypeName kEventTypeNames[] = {
    {JournalEventType::kRunMeta, "run_meta", kCatRun},
    {JournalEventType::kAnnounceSeen, "announce_seen", kCatState},
    {JournalEventType::kWithdrawSeen, "withdraw_seen", kCatState},
    {JournalEventType::kSessionFlush, "session_flush", kCatState},
    {JournalEventType::kThresholdCrossed, "threshold_crossed", kCatDetector},
    {JournalEventType::kZombieDeclared, "zombie_declared", kCatDetector},
    {JournalEventType::kZombieCleared, "zombie_cleared", kCatDetector},
    {JournalEventType::kDuplicateSuppressed, "duplicate_suppressed", kCatDetector},
    {JournalEventType::kNoisyPeerExcluded, "noisy_peer_excluded", kCatNoise},
    {JournalEventType::kWithdrawalLost, "withdrawal_lost", kCatNoise},
    {JournalEventType::kWithdrawalDelayed, "withdrawal_delayed", kCatNoise},
    {JournalEventType::kPhantomReannounce, "phantom_reannounce", kCatNoise},
    {JournalEventType::kResurrectionDetected, "resurrection_detected", kCatLifespan},
    {JournalEventType::kLifespanClosed, "lifespan_closed", kCatLifespan},
    {JournalEventType::kCollectorSessionDown, "collector_session_down", kCatCollector},
    {JournalEventType::kCollectorSessionUp, "collector_session_up", kCatCollector},
    {JournalEventType::kFaultWithdrawalSuppressed, "fault_withdrawal_suppressed", kCatFault},
    {JournalEventType::kFaultReceiveStall, "fault_receive_stall", kCatFault},
    {JournalEventType::kSimSessionDown, "sim_session_down", kCatFault},
    {JournalEventType::kSimSessionUp, "sim_session_up", kCatFault},
    {JournalEventType::kPrefixEvicted, "prefix_evicted", kCatFault},
    {JournalEventType::kPropagationHop, "propagation_hop", kCatPropagation},
    {JournalEventType::kLiveZombieEmerged, "live_zombie_emerged", kCatLive},
    {JournalEventType::kLiveZombieResurrected, "live_zombie_resurrected", kCatLive},
    {JournalEventType::kLiveZombieDied, "live_zombie_died", kCatLive},
    {JournalEventType::kLiveIngestDropped, "live_ingest_dropped", kCatLive},
    {JournalEventType::kLiveClientEvicted, "live_client_evicted", kCatLive},
    {JournalEventType::kAlertFiring, "alert_firing", kCatAlert},
    {JournalEventType::kAlertResolved, "alert_resolved", kCatAlert},
    {JournalEventType::kPeerNoisyEnter, "peer_noisy_enter", kCatPeer},
    {JournalEventType::kPeerNoisyExit, "peer_noisy_exit", kCatPeer},
    {JournalEventType::kPeerSilent, "peer_silent", kCatPeer},
    {JournalEventType::kWireSessionState, "wire_session_state", kCatSession},
    {JournalEventType::kWireNotifySent, "wire_notify_sent", kCatSession},
    {JournalEventType::kWireNotifyReceived, "wire_notify_received", kCatSession},
    {JournalEventType::kWireGrRetained, "wire_gr_retained", kCatSession},
    {JournalEventType::kWireGrFlushed, "wire_gr_flushed", kCatSession},
    {JournalEventType::kWireCollision, "wire_collision", kCatSession},
};

}  // namespace

std::string_view to_string(JournalEventType type) {
  for (const auto& entry : kEventTypeNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

std::optional<JournalEventType> parse_event_type(std::string_view name) {
  for (const auto& entry : kEventTypeNames) {
    if (entry.name == name) return entry.type;
  }
  return std::nullopt;
}

std::uint32_t category_of(JournalEventType type) {
  for (const auto& entry : kEventTypeNames) {
    if (entry.type == type) return entry.category;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// NDJSON codec.

std::string to_ndjson(const JournalEvent& event) {
  std::string out;
  out.reserve(128);
  out += "{\"ev\":\"";
  out += to_string(event.type);
  out += "\",\"t\":";
  out += std::to_string(event.time);
  if (event.has_prefix) {
    out += ",\"prefix\":\"";
    out += event.prefix.to_string();
    out += '"';
  }
  if (event.has_peer) {
    out += ",\"peer_asn\":";
    out += std::to_string(event.peer_asn);
    out += ",\"peer\":\"";
    out += event.peer_address.to_string();
    out += '"';
  }
  out += ",\"a\":";
  out += std::to_string(event.a);
  out += ",\"b\":";
  out += std::to_string(event.b);
  out += ",\"c\":";
  out += std::to_string(event.c);
  out += '}';
  return out;
}

namespace {

// The journal controls its own serialization, so field extraction can
// scan for `"key":` directly: no journal value ever contains a quote,
// which is the only character that could fool the scan.
std::optional<std::string_view> json_field(std::string_view line,
                                           std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(at + pattern.size());
  if (rest.empty()) return std::nullopt;
  if (rest.front() == '"') {
    rest.remove_prefix(1);
    const std::size_t end = rest.find('"');
    if (end == std::string_view::npos) return std::nullopt;
    return rest.substr(0, end);
  }
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ',' && rest[end] != '}') ++end;
  return rest.substr(0, end);
}

std::optional<std::int64_t> json_int(std::string_view line,
                                     std::string_view key) {
  const auto field = json_field(line, key);
  if (!field.has_value() || field->empty()) return std::nullopt;
  const std::string text(*field);
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

}  // namespace

std::optional<JournalEvent> parse_ndjson(std::string_view line) {
  const auto name = json_field(line, "ev");
  if (!name.has_value()) return std::nullopt;
  const auto type = parse_event_type(*name);
  if (!type.has_value()) return std::nullopt;

  JournalEvent event;
  event.type = *type;
  const auto time = json_int(line, "t");
  if (!time.has_value()) return std::nullopt;
  event.time = *time;

  if (const auto prefix = json_field(line, "prefix"); prefix.has_value()) {
    const auto parsed = netbase::Prefix::try_parse(*prefix);
    if (!parsed.has_value()) return std::nullopt;
    event.has_prefix = true;
    event.prefix = *parsed;
  }
  if (const auto peer = json_field(line, "peer"); peer.has_value()) {
    const auto parsed = netbase::IpAddress::try_parse(*peer);
    if (!parsed.has_value()) return std::nullopt;
    event.has_peer = true;
    event.peer_address = *parsed;
    const auto asn = json_int(line, "peer_asn");
    if (!asn.has_value() || *asn < 0) return std::nullopt;
    event.peer_asn = static_cast<std::uint32_t>(*asn);
  }
  event.a = json_int(line, "a").value_or(0);
  event.b = json_int(line, "b").value_or(0);
  event.c = json_int(line, "c").value_or(0);
  return event;
}

// ---------------------------------------------------------------------------
// Binary codec: u32 record length, then a fixed 74-byte big-endian
// payload (type, time, flags, prefix, peer, a/b/c). The length prefix
// leaves room for future record growth without breaking old readers.

namespace {

constexpr std::uint8_t kFlagHasPrefix = 0x01;
constexpr std::uint8_t kFlagHasPeer = 0x02;

void append_address(netbase::ByteWriter& w, const netbase::IpAddress& address) {
  w.u8(static_cast<std::uint8_t>(address.family()));
  w.bytes(address.bytes());
}

netbase::IpAddress read_address(netbase::ByteReader& r) {
  const std::uint8_t family = r.u8();
  const auto raw = r.bytes(16);
  std::array<std::uint8_t, 16> bytes{};
  std::copy(raw.begin(), raw.end(), bytes.begin());
  if (family == 4) {
    return netbase::IpAddress::v4(
        std::array<std::uint8_t, 4>{bytes[0], bytes[1], bytes[2], bytes[3]});
  }
  if (family == 6) return netbase::IpAddress::v6(bytes);
  throw netbase::DecodeError("journal: bad address family " +
                             std::to_string(family));
}

JournalEvent decode_binary_payload(netbase::ByteReader& r) {
  JournalEvent event;
  event.type = static_cast<JournalEventType>(r.u16());
  event.time = static_cast<netbase::TimePoint>(r.u64());
  const std::uint8_t flags = r.u8();
  event.has_prefix = (flags & kFlagHasPrefix) != 0;
  event.has_peer = (flags & kFlagHasPeer) != 0;
  const netbase::IpAddress prefix_address = read_address(r);
  const int prefix_length = r.u8();
  if (event.has_prefix) event.prefix = netbase::Prefix(prefix_address, prefix_length);
  event.peer_asn = r.u32();
  const netbase::IpAddress peer_address = read_address(r);
  if (event.has_peer) event.peer_address = peer_address;
  event.a = static_cast<std::int64_t>(r.u64());
  event.b = static_cast<std::int64_t>(r.u64());
  event.c = static_cast<std::int64_t>(r.u64());
  return event;
}

}  // namespace

void append_binary(std::vector<std::uint8_t>& out, const JournalEvent& event) {
  netbase::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(event.type));
  w.u64(static_cast<std::uint64_t>(event.time));
  std::uint8_t flags = 0;
  if (event.has_prefix) flags |= kFlagHasPrefix;
  if (event.has_peer) flags |= kFlagHasPeer;
  w.u8(flags);
  append_address(w, event.prefix.address());
  w.u8(static_cast<std::uint8_t>(event.prefix.length()));
  w.u32(event.peer_asn);
  append_address(w, event.peer_address);
  w.u64(static_cast<std::uint64_t>(event.a));
  w.u64(static_cast<std::uint64_t>(event.b));
  w.u64(static_cast<std::uint64_t>(event.c));

  netbase::ByteWriter framed;
  framed.u32(static_cast<std::uint32_t>(w.size()));
  framed.bytes(w.data());
  const auto& bytes = framed.data();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::optional<JournalFormat> parse_journal_format(std::string_view text) {
  if (text == "ndjson" || text == "json") return JournalFormat::kNdjson;
  if (text == "bin" || text == "binary") return JournalFormat::kBinary;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// File I/O.

JournalWriter::JournalWriter(const std::string& path, JournalFormat format)
    : path_(path), format_(format) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    throw std::runtime_error("journal: cannot open " + path + " for writing");
  }
  if (format_ == JournalFormat::kBinary) {
    out_.write(kJournalBinaryMagic.data(),
               static_cast<std::streamsize>(kJournalBinaryMagic.size()));
  }
}

void JournalWriter::write(const JournalEvent& event) {
  if (format_ == JournalFormat::kNdjson) {
    const std::string line = to_ndjson(event);
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    out_.put('\n');
  } else {
    std::vector<std::uint8_t> buf;
    append_binary(buf, event);
    out_.write(reinterpret_cast<const char*>(buf.data()),
               static_cast<std::streamsize>(buf.size()));
  }
}

void JournalWriter::flush() { out_.flush(); }

std::vector<JournalEvent> read_journal_file(const std::string& path) {
  std::vector<std::uint8_t> raw;
  if (path == "-") {
    // Piped journals ("zsdetect ... | zsreport -"): slurp stdin. The
    // auto-detection below works unchanged since both formats are
    // identified from the leading bytes.
    raw.assign(std::istreambuf_iterator<char>(std::cin),
               std::istreambuf_iterator<char>());
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      throw std::runtime_error("journal: cannot open " + path);
    }
    raw.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }

  std::vector<JournalEvent> events;
  const std::string_view magic = kJournalBinaryMagic;
  const bool binary =
      raw.size() >= magic.size() &&
      std::equal(magic.begin(), magic.end(), raw.begin(),
                 [](char m, std::uint8_t b) {
                   return static_cast<std::uint8_t>(m) == b;
                 });
  if (binary) {
    netbase::ByteReader r{std::span<const std::uint8_t>(raw)};
    r.bytes(magic.size());
    try {
      while (!r.done()) {
        const std::uint32_t length = r.u32();
        netbase::ByteReader payload = r.sub(length);
        events.push_back(decode_binary_payload(payload));
      }
    } catch (const netbase::DecodeError& e) {
      throw std::runtime_error("journal: corrupt binary file " + path + ": " +
                               e.what());
    }
    return events;
  }

  std::string_view rest(reinterpret_cast<const char*>(raw.data()), raw.size());
  while (!rest.empty()) {
    const std::size_t newline = rest.find('\n');
    const std::string_view line = rest.substr(0, newline);
    rest = newline == std::string_view::npos ? std::string_view{}
                                             : rest.substr(newline + 1);
    if (line.empty()) continue;
    if (const auto event = parse_ndjson(line); event.has_value()) {
      events.push_back(*event);
    }
  }
  return events;
}

// ---------------------------------------------------------------------------
// The ring.

Journal::Journal(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  capacity_ = cap;
  slots_ = std::make_unique<Slot[]>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

Journal& Journal::global() {
  static Journal* journal = [] {
    auto* j = new Journal();
    j->bind_counters(
        Registry::global().counter("zs_journal_events_emitted_total"),
        Registry::global().counter("zs_journal_events_dropped_total"));
    return j;
  }();
  return *journal;
}

void Journal::bind_counters(Counter emitted, Counter dropped) {
  m_emitted_ = emitted;
  m_dropped_ = dropped;
}

bool Journal::try_enqueue(const JournalEvent& event) {
  const std::size_t mask = capacity_ - 1;
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        slot.event = event;
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool Journal::try_dequeue(JournalEvent& out) {
  const std::size_t mask = capacity_ - 1;
  std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::int64_t>(seq) -
                     static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        out = slot.event;
        slot.seq.store(pos + capacity_, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

void Journal::emit_runtime(std::uint32_t category, const JournalEvent& event) {
  if ((mask_.load(std::memory_order_relaxed) & category) == 0) return;
  if (try_enqueue(event)) {
    emitted_.fetch_add(1, std::memory_order_relaxed);
    m_emitted_.inc();
    if (autopump_.load(std::memory_order_relaxed) &&
        approx_size() > capacity_ / 2) {
      pump();
    }
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    m_dropped_.inc();
  }
}

std::size_t Journal::approx_size() const {
  const std::uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
  const std::uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
  return tail > head ? static_cast<std::size_t>(tail - head) : 0;
}

std::size_t Journal::pump() {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  std::size_t moved = 0;
  JournalEvent event;
  while (try_dequeue(event)) {
    if (writer_ != nullptr) writer_->write(event);
    recent_.push_back(event);
    while (recent_.size() > kRecentCapacity) recent_.pop_front();
    ++moved;
  }
  if (moved > 0 && writer_ != nullptr) writer_->flush();
  return moved;
}

std::vector<JournalEvent> Journal::tail(std::size_t n) {
  pump();
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  const std::size_t count = std::min(n, recent_.size());
  return std::vector<JournalEvent>(recent_.end() - static_cast<std::ptrdiff_t>(count),
                                   recent_.end());
}

void Journal::attach_writer(std::unique_ptr<JournalWriter> writer) {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  writer_ = std::move(writer);
}

void Journal::close_writer() {
  pump();
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  if (writer_ != nullptr) {
    writer_->flush();
    writer_.reset();
  }
}

void Journal::reset() {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  JournalEvent discard;
  while (try_dequeue(discard)) {
  }
  recent_.clear();
  emitted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace zombiescope::obs

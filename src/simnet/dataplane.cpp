#include "simnet/dataplane.hpp"

#include <set>

namespace zombiescope::simnet {

std::string ForwardingResult::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += " -> ";
    out += "AS" + std::to_string(hops[i]);
  }
  switch (outcome) {
    case Outcome::kDelivered:
      out += " [delivered]";
      break;
    case Outcome::kLoop:
      out += " [LOOP at AS" + std::to_string(loop_at) + ", packets dropped]";
      break;
    case Outcome::kBlackhole:
      out += " [blackhole]";
      break;
  }
  return out;
}

DataPlane::DataPlane(const Simulation& sim) {
  for (bgp::Asn asn : sim.topo().all_asns()) {
    auto& fib = fibs_[asn];
    for (const auto& [prefix, neighbor] : sim.router(asn).fib_entries())
      fib.insert(prefix, FibEntry{neighbor});
  }
}

bgp::Asn DataPlane::next_hop(bgp::Asn asn, const netbase::IpAddress& destination) const {
  auto it = fibs_.find(asn);
  if (it == fibs_.end()) return 0;
  const FibEntry* entry = it->second.longest_match(destination);
  if (entry == nullptr) return 0;
  return entry->next_hop == 0 ? asn : entry->next_hop;
}

ForwardingResult DataPlane::forward(bgp::Asn source,
                                    const netbase::IpAddress& destination) const {
  ForwardingResult result;
  std::set<bgp::Asn> visited;
  bgp::Asn current = source;
  // An AS-path longer than any sane Internet path means trouble anyway;
  // the visited-set catches loops well before this bound.
  for (int ttl = 0; ttl < 64; ++ttl) {
    result.hops.push_back(current);
    if (!visited.insert(current).second) {
      result.outcome = ForwardingResult::Outcome::kLoop;
      result.loop_at = current;
      return result;
    }
    const bgp::Asn next = next_hop(current, destination);
    if (next == 0) {
      result.outcome = ForwardingResult::Outcome::kBlackhole;
      return result;
    }
    if (next == current) {
      result.outcome = ForwardingResult::Outcome::kDelivered;
      return result;
    }
    current = next;
  }
  result.outcome = ForwardingResult::Outcome::kLoop;
  result.loop_at = current;
  return result;
}

}  // namespace zombiescope::simnet

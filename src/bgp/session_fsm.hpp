// bgp/session_fsm.hpp — the BGP session finite-state machine
// (RFC 4271 §8) with the send-side extension of RFC 9687 (Send Hold
// Timer).
//
// The paper cites a concrete zombie mechanism (Cartwright-Cox 2021;
// Snijders et al., RFC 9687): a peer whose TCP receive window stays at
// zero. The wedged box keeps *sending* KEEPALIVEs — so the healthy
// side's hold timer never fires — but reads nothing, so the healthy
// side's withdrawals sit in the socket queue forever: every route the
// wedged box holds is now a zombie. RFC 9687's remedy is a send-side
// timer: if the session cannot make send progress for SendHoldTime,
// tear it down. This module models both endpoints faithfully enough
// to reproduce the pathology and quantify the remedy
// (bench/ablation_sendhold).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "bgp/update.hpp"
#include "netbase/time.hpp"

namespace zombiescope::bgp {

/// FSM states (RFC 4271 §8.2.2). Connect/Active collapse into one
/// "connecting" state: TCP setup details are out of scope.
enum class FsmState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

std::string to_string(FsmState state);

struct FsmConfig {
  /// Our *offered* hold time; 0 disables keepalives (not recommended).
  /// The operative value once the peer's OPEN is seen is
  /// negotiated_hold_time() = min(ours, theirs) per RFC 4271 §4.2.
  netbase::Duration hold_time = 90;
  /// KEEPALIVE interval, conventionally hold_time / 3. Like the hold
  /// time this is the pre-negotiation value; once an OPEN carries the
  /// peer's offer, negotiated_keepalive_interval() governs.
  netbase::Duration keepalive_interval = 30;
  /// RFC 9687 SendHoldTimer: tear the session down if no send progress
  /// for this long. 0 = disabled (pre-RFC 9687 behaviour).
  netbase::Duration send_hold_time = 0;
  /// RFC 4271 §8.2.2 ConnectRetryTimer: while in Connect, re-attempt
  /// the transport every this many seconds. 0 = never retry (the
  /// pre-wire behaviour, where the harness always connects promptly).
  netbase::Duration connect_retry = 0;
};

/// The OPEN payload fields the FSM negotiates on (the full capability
/// set lives in wire/message.hpp; the FSM only needs these three).
struct FsmOpen {
  netbase::Duration hold_time = 90;
  std::uint32_t bgp_id = 0;
  Asn asn = 0;

  friend bool operator==(const FsmOpen&, const FsmOpen&) = default;
};

/// A message on the session, as far as the FSM cares.
struct FsmMessage {
  MessageType type = MessageType::kKeepalive;
  /// Payload for UPDATE messages.
  std::optional<UpdateMessage> update;
  /// Payload for OPEN messages; absent means "no negotiation info"
  /// (the pre-wire harness), in which case configured timers stand.
  std::optional<FsmOpen> open;
};

/// One endpoint of a BGP session. Drive it with events and `poll()`;
/// transmitted messages accumulate in the out queue until the peer
/// reads them (models the TCP send buffer + peer receive window).
class SessionFsm {
 public:
  explicit SessionFsm(FsmConfig config) : config_(config) {}

  FsmState state() const { return state_; }
  const FsmConfig& config() const { return config_; }

  /// Operator starts the session.
  void start(netbase::TimePoint now);

  /// Administrative or error stop: back to Idle, queues cleared.
  void stop(netbase::TimePoint now);

  /// The transport connected (both sides call this; each then sends
  /// OPEN).
  void connected(netbase::TimePoint now);

  /// A message from the peer arrived and was read by this endpoint.
  void receive(netbase::TimePoint now, const FsmMessage& message);

  /// Queues an UPDATE for the peer. Returns false unless Established.
  bool send_update(netbase::TimePoint now, UpdateMessage update);

  /// The peer's receive window: how many queued messages it reads now.
  /// Returns the messages handed to the wire (to be fed into the
  /// peer's receive()).
  std::vector<FsmMessage> drain(netbase::TimePoint now, std::size_t max_messages);

  /// Timer processing; call whenever time advances. May emit messages
  /// into the out queue (KEEPALIVEs) or tear the session down (hold
  /// timer, send hold timer).
  void tick(netbase::TimePoint now);

  /// Messages waiting for the peer to read (the "socket queue").
  std::size_t queued() const { return out_queue_.size(); }

  /// Why the session last left Established, if it did.
  const std::string& last_error() const { return last_error_; }

  /// Diagnostics: number of Established→down transitions.
  int session_drops() const { return session_drops_; }

  /// The peer's OPEN, once received.
  const std::optional<FsmOpen>& peer_open() const { return peer_open_; }

  /// RFC 4271 §4.2: min(our offer, the peer's offer) once the peer's
  /// OPEN is in; our configured value before that (and always, for the
  /// payload-less OPENs of the simulation harness).
  netbase::Duration negotiated_hold_time() const;

  /// hold/3 once negotiated (0 when the negotiated hold is 0);
  /// the configured interval before negotiation.
  netbase::Duration negotiated_keepalive_interval() const;

  /// Times the ConnectRetryTimer fired (tick() re-arms it while the
  /// state stays Connect; the transport layer watches this counter to
  /// know when to re-dial).
  int connect_retries() const { return connect_retries_; }

  /// RFC 4271 §6.8 connection collision resolution: with two
  /// connections to the same peer in flight, the one initiated by the
  /// side with the higher BGP Identifier survives. Returns true when
  /// the *local* connection (ours, initiated-by-us iff local_initiated)
  /// is the one to close.
  static bool collision_close_local(std::uint32_t local_id,
                                    std::uint32_t remote_id,
                                    bool local_initiated);

 private:
  void enqueue(netbase::TimePoint now, FsmMessage message);
  void drop_session(netbase::TimePoint now, const std::string& reason);

  FsmConfig config_;
  FsmState state_ = FsmState::kIdle;
  std::deque<FsmMessage> out_queue_;
  std::optional<FsmOpen> peer_open_;
  netbase::TimePoint hold_expires_ = 0;       // no message received by then => drop
  netbase::TimePoint keepalive_due_ = 0;
  netbase::TimePoint connect_retry_at_ = 0;   // next ConnectRetry firing
  int connect_retries_ = 0;
  /// Set while the out queue is non-empty; no progress past this
  /// instant trips the RFC 9687 send hold timer.
  std::optional<netbase::TimePoint> send_hold_expires_;
  std::string last_error_;
  int session_drops_ = 0;
};

}  // namespace zombiescope::bgp

// zstop — a top(1)-style live console for a zombiescope daemon.
//
//   zstop --port N [--host 127.0.0.1] [--interval-ms 1000]
//         [--range SECONDS] [--once] [--no-color] [--version]
//
// Polls the daemon's embedded HTTP port (zslived --http-port, or a
// zssim/zsdetect run with one) and renders a fixed set of panels from
// the /tsdb time-series store and the /alerts rule engine:
//
//   throughput   live.records_total as a rate, with a sparkline
//   stage p99    every latency:*:p99 series the store knows about
//   queue        live.queue_depth + the live.ingest_dropped_total rate
//   zombies      live.active_zombies
//   peers        /peers feed-quality counts, noisy-count series, and the
//                worst stuck-probability offenders (when the daemon
//                serves the zspeerq table)
//   alerts       every rule with state / value / threshold, firing first
//
// Capability detection goes through GET / (the endpoint index): when
// the server was built with ZS_TSDB=OFF or started with
// --tsdb-cadence-ms 0 there is no /tsdb/query to poll, and zstop says
// so instead of rendering empty panels. Individual series that do not
// exist (yet) render as "n/a" — a daemon that has not published its
// first snapshot is not an error.
//
// --once renders a single frame without ANSI positioning and exits 0
// (CI-friendly: the soak in run_tier1.sh asserts it); the interactive
// mode redraws every --interval-ms until Ctrl-C. Exits non-zero only
// when the server cannot be reached at all. No dependencies beyond
// POSIX sockets — the JSON parser below is a ~100-line recursive
// descent over exactly the subset the zsobs endpoints emit.

#include <arpa/inet.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/build_info.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

// ---------------------------------------------------------------- JSON

// Just enough JSON for the zsobs endpoints: objects, arrays, numbers,
// strings (escapes decoded, \uXXXX collapsed to '?'), bools, null.
struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* get(std::string_view key) const {
    if (kind != kObj) return nullptr;
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  double number_or(double fallback) const { return kind == kNum ? num : fallback; }
  std::string string_or(std::string fallback) const {
    return kind == kStr ? str : std::move(fallback);
  }
};

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) { ++pos; return true; }
    return false;
  }
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < text.size()) {
        char e = text[pos++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': out += '?'; pos = pos + 4 <= text.size() ? pos + 4 : text.size(); break;
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
    return false;
  }
  bool parse_value(Json& out, int depth = 0) {
    if (depth > 32) return false;
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Json::kObj;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!eat(':')) return false;
        Json val;
        if (!parse_value(val, depth + 1)) return false;
        out.obj.emplace_back(std::move(key), std::move(val));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Json::kArr;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        Json val;
        if (!parse_value(val, depth + 1)) return false;
        out.arr.push_back(std::move(val));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.kind = Json::kStr;
      return parse_string(out.str);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = Json::kBool; out.b = true; pos += 4; return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = Json::kBool; out.b = false; pos += 5; return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out.kind = Json::kNull; pos += 4; return true;
    }
    char* end = nullptr;
    const std::string num_text(text.substr(pos, 64));
    out.num = std::strtod(num_text.c_str(), &end);
    if (end == num_text.c_str()) return false;
    out.kind = Json::kNum;
    pos += static_cast<std::size_t>(end - num_text.c_str());
    return true;
  }
};

bool parse_json(std::string_view text, Json& out) {
  JsonParser p{text};
  return p.parse_value(out);
}

// ---------------------------------------------------------------- HTTP

// One blocking GET with Connection: close; returns false on any
// network failure, true with the status and body otherwise.
bool http_get(const std::string& host, int port, const std::string& path,
              int& status, std::string& body) {
  status = 0;
  body.clear();
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0) return false;
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    struct timeval tv = {5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return false;

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) { ::close(fd); return false; }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) { ::close(fd); return false; }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > 8 * 1024 * 1024) break;  // runaway guard
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (std::sscanf(raw.c_str(), "HTTP/1.%*d %d", &status) != 1) return false;
  body = raw.substr(header_end + 4);
  return true;
}

// ------------------------------------------------------------- display

const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};

// Maps the last `width` values onto 8 block heights; the scale floor
// is 0 so a flat-but-nonzero series still shows a bar.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  std::string out;
  if (values.empty()) return out;
  const std::size_t first = values.size() > width ? values.size() - width : 0;
  double max = 0.0;
  for (std::size_t i = first; i < values.size(); ++i)
    if (values[i] > max) max = values[i];
  for (std::size_t i = first; i < values.size(); ++i) {
    if (max <= 0.0) { out += kBlocks[0]; continue; }
    int level = static_cast<int>((values[i] / max) * 7.0 + 0.5);
    if (level < 0) level = 0;
    if (level > 7) level = 7;
    out += kBlocks[level];
  }
  return out;
}

// "12.4k", "3.02M", "870" — compact SI rendering for counters/rates.
std::string fmt_si(double v) {
  char buf[32];
  const double a = v < 0 ? -v : v;
  if (a >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  else if (a >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  else if (a >= 1e3) std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  else if (a >= 10) std::snprintf(buf, sizeof(buf), "%.0f", v);
  else std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt_ms(double seconds) {
  char buf[32];
  const double ms = seconds * 1e3;
  if (ms >= 1000) std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  else if (ms >= 1) std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  else std::snprintf(buf, sizeof(buf), "%.0fus", ms * 1e3);
  return buf;
}

struct Style {
  bool color = false;
  std::string red(const std::string& s) const { return color ? "\x1b[31m" + s + "\x1b[0m" : s; }
  std::string yellow(const std::string& s) const { return color ? "\x1b[33m" + s + "\x1b[0m" : s; }
  std::string green(const std::string& s) const { return color ? "\x1b[32m" + s + "\x1b[0m" : s; }
  std::string bold(const std::string& s) const { return color ? "\x1b[1m" + s + "\x1b[0m" : s; }
};

struct Series {
  bool ok = false;
  std::vector<double> values;
  double last = 0.0;
};

constexpr std::size_t kSparkWidth = 48;

// ------------------------------------------------------------- client

struct Client {
  std::string host;
  int port = 0;
  int range_seconds = 120;

  bool get_json(const std::string& path, Json& out, int& status) const {
    std::string body;
    if (!http_get(host, port, path, status, body)) return false;
    if (status != 200) return true;  // reached the server; no JSON expected
    return parse_json(body, out);
  }

  Series query(const std::string& metric, const char* agg) const {
    Series s;
    std::string path = "/tsdb/query?metric=" + metric +
                       "&range=" + std::to_string(range_seconds) + "s&step=1s";
    if (agg != nullptr) path += std::string("&agg=") + agg;
    Json doc;
    int status = 0;
    if (!get_json(path, doc, status) || status != 200) return s;
    const Json* points = doc.get("points");
    if (points == nullptr || points->kind != Json::kArr) return s;
    for (const Json& p : points->arr) {
      if (p.kind != Json::kArr || p.arr.size() != 2) continue;
      s.values.push_back(p.arr[1].number_or(0.0));
    }
    if (!s.values.empty()) {
      s.ok = true;
      s.last = s.values.back();
    }
    return s;
  }
};

void render_series_row(std::string& out, const char* label, const std::string& name,
                       const Series& s, const std::string& value_text) {
  char head[128];
  std::snprintf(head, sizeof(head), "%-10s %-28s %10s  ", label, name.c_str(),
                s.ok ? value_text.c_str() : "n/a");
  out += head;
  out += sparkline(s.values, kSparkWidth);
  out += '\n';
}

// One full frame of panels. Returns false only when the server is
// unreachable (connection-level failure on the endpoint index).
bool render_frame(const Client& client, const Style& style, std::string& out) {
  out.clear();

  Json index;
  int status = 0;
  if (!client.get_json("/", index, status)) return false;
  bool has_tsdb = false;
  bool has_alerts = false;
  bool has_peers = false;
  bool has_sessions = false;
  if (const Json* endpoints = index.get("endpoints");
      endpoints != nullptr && endpoints->kind == Json::kArr) {
    for (const Json& e : endpoints->arr) {
      const Json* path = e.get("path");
      if (path == nullptr) continue;
      if (path->str == "/tsdb/query") has_tsdb = true;
      if (path->str == "/alerts") has_alerts = true;
      if (path->str == "/peers") has_peers = true;
      if (path->str == "/sessions") has_sessions = true;
    }
  }

  char now_text[64];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc = {};
  gmtime_r(&now, &tm_utc);
  std::strftime(now_text, sizeof(now_text), "%Y-%m-%d %H:%M:%S UTC", &tm_utc);
  out += style.bold("zstop") + " — " + client.host + ":" + std::to_string(client.port) +
         " — " + now_text + "\n\n";

  if (!has_tsdb) {
    out += "no /tsdb endpoints on this server — built with ZS_TSDB=OFF,\n"
           "or started with --tsdb-cadence-ms 0. Nothing to render.\n";
    return true;
  }

  const Series throughput = client.query("live.records_total", "rate");
  render_series_row(out, "throughput", "live.records_total /s", throughput,
                    fmt_si(throughput.last) + "/s");

  // Every latency:<stage>:p99 series the store has — the set depends on
  // which pipeline stages have run, so discover instead of hard-coding.
  Json metrics_doc;
  std::vector<std::string> p99_names;
  if (client.get_json("/tsdb/metrics", metrics_doc, status) && status == 200) {
    if (const Json* metrics = metrics_doc.get("metrics");
        metrics != nullptr && metrics->kind == Json::kArr) {
      for (const Json& m : metrics->arr) {
        const Json* name = m.get("name");
        if (name == nullptr || name->kind != Json::kStr) continue;
        const std::string& n = name->str;
        if (n.rfind("latency:", 0) == 0 && n.size() > 4 &&
            n.compare(n.size() - 4, 4, ":p99") == 0)
          p99_names.push_back(n);
      }
    }
  }
  if (p99_names.empty()) {
    Series none;
    render_series_row(out, "stage p99", "(no latency series yet)", none, "");
  } else {
    const char* label = "stage p99";
    for (const std::string& name : p99_names) {
      const Series s = client.query(name, nullptr);
      const std::string stage = name.substr(8, name.size() - 8 - 4);
      render_series_row(out, label, stage, s, fmt_ms(s.last));
      label = "";
    }
  }

  const Series depth = client.query("live.queue_depth", nullptr);
  render_series_row(out, "queue", "depth", depth, fmt_si(depth.last));
  const Series drops = client.query("live.ingest_dropped_total", "rate");
  {
    const std::string text = fmt_si(drops.last) + "/s";
    char head[128];
    std::snprintf(head, sizeof(head), "%-10s %-28s %10s  ", "", "drops /s",
                  drops.ok ? (drops.last > 0 ? style.red(text).c_str() : text.c_str())
                           : "n/a");
    out += head;
    out += sparkline(drops.values, kSparkWidth);
    out += '\n';
  }

  const Series zombies = client.query("live.active_zombies", nullptr);
  render_series_row(out, "zombies", "active", zombies, fmt_si(zombies.last));

  // PEERS: the zspeerq feed-quality table — who is feeding, who is
  // statistically noisy, who went silent, worst offenders first.
  if (has_peers) {
    out += '\n';
    Json peers;
    if (client.get_json("/peers", peers, status) && status == 200) {
      const auto count_of = [&peers](const char* key) {
        const Json* v = peers.get(key);
        return v != nullptr ? static_cast<int>(v->number_or(0)) : 0;
      };
      const int feeding = count_of("feeding_count");
      const int noisy = count_of("noisy_count");
      const int silent = count_of("silent_count");
      const std::string noisy_text = std::to_string(noisy) + " noisy";
      const std::string silent_text = std::to_string(silent) + " silent";
      out += "peers      " + std::to_string(feeding) + " feeding, " +
             (noisy > 0 ? style.red(style.bold(noisy_text)) : style.green(noisy_text)) +
             ", " + (silent > 0 ? style.yellow(silent_text) : silent_text) + "\n";
      const Series noisy_series = client.query("peer.noisy_count", nullptr);
      render_series_row(out, "", "noisy count", noisy_series,
                        fmt_si(noisy_series.last));
      // Worst stuck probabilities, noisy and silent rows always shown.
      if (const Json* rows = peers.get("peers");
          rows != nullptr && rows->kind == Json::kArr) {
        std::vector<const Json*> ranked;
        for (const Json& r : rows->arr) ranked.push_back(&r);
        std::sort(ranked.begin(), ranked.end(), [](const Json* a, const Json* b) {
          const double pa = a->get("probability") != nullptr
                                ? a->get("probability")->number_or(0) : 0;
          const double pb = b->get("probability") != nullptr
                                ? b->get("probability")->number_or(0) : 0;
          return pa > pb;
        });
        int shown = 0;
        for (const Json* r : ranked) {
          const bool is_noisy = r->get("noisy") != nullptr && r->get("noisy")->b;
          const bool is_silent = r->get("silent") != nullptr && r->get("silent")->b;
          if (shown >= 3 && !is_noisy && !is_silent) break;
          const double p = r->get("probability") != nullptr
                               ? r->get("probability")->number_or(0) : 0;
          const double lo = r->get("wilson_low") != nullptr
                                ? r->get("wilson_low")->number_or(0) : 0;
          const double hi = r->get("wilson_high") != nullptr
                                ? r->get("wilson_high")->number_or(0) : 0;
          char row[192];
          std::snprintf(row, sizeof(row),
                        "  AS%-8d %-24s p=%.3f [%.3f,%.3f] stuck %-6d%s%s\n",
                        r->get("asn") != nullptr
                            ? static_cast<int>(r->get("asn")->number_or(0)) : 0,
                        r->get("address") != nullptr
                            ? r->get("address")->string_or("?").c_str() : "?",
                        p, lo, hi,
                        r->get("stuck") != nullptr
                            ? static_cast<int>(r->get("stuck")->number_or(0)) : 0,
                        is_noisy ? " NOISY" : "", is_silent ? " SILENT" : "");
          const std::string text(row);
          out += is_noisy ? style.red(text) : is_silent ? style.yellow(text) : text;
          ++shown;
        }
      }
    } else {
      out += "peers      n/a\n";
    }
  }

  // SESSIONS: the zswire BGP speaker — who is peered over a real
  // socket, what was negotiated, and which ghosts are retaining stale
  // routes (the zombie-manufacturing state, so stale > 0 is loud).
  if (has_sessions) {
    out += '\n';
    Json sessions;
    if (client.get_json("/sessions", sessions, status) && status == 200) {
      const auto count_of = [&sessions](const char* key) {
        const Json* v = sessions.get(key);
        return v != nullptr ? static_cast<int>(v->number_or(0)) : 0;
      };
      const int established = count_of("established");
      const int stale = count_of("stale_routes");
      const std::string stale_text = std::to_string(stale) + " stale";
      out += "sessions   AS" + std::to_string(count_of("local_asn")) + ", " +
             std::to_string(established) + " established, " +
             (stale > 0 ? style.red(style.bold(stale_text)) : style.green(stale_text)) +
             "\n";
      if (const Json* rows = sessions.get("sessions");
          rows != nullptr && rows->kind == Json::kArr) {
        int shown = 0;
        for (const Json& r : rows->arr) {
          const std::string state =
              r.get("state") != nullptr ? r.get("state")->string_or("?") : "?";
          const bool ghost = state == "GrStale";
          if (shown >= 6 && !ghost) continue;  // ghosts always shown
          const bool gr = r.get("gr") != nullptr && r.get("gr")->b;
          const bool llgr = r.get("llgr") != nullptr && r.get("llgr")->b;
          char row[192];
          std::snprintf(row, sizeof(row),
                        "  AS%-8d %-24s %-12s hold %-5d routes %-6d%s%s%s\n",
                        r.get("asn") != nullptr
                            ? static_cast<int>(r.get("asn")->number_or(0)) : 0,
                        r.get("address") != nullptr
                            ? r.get("address")->string_or("?").c_str() : "?",
                        state.c_str(),
                        r.get("hold") != nullptr
                            ? static_cast<int>(r.get("hold")->number_or(0)) : 0,
                        r.get("routes") != nullptr
                            ? static_cast<int>(r.get("routes")->number_or(0)) : 0,
                        llgr ? " LLGR" : gr ? " GR" : "",
                        r.get("bridged") != nullptr && r.get("bridged")->b
                            ? " bridge" : "",
                        ghost ? " GHOST" : "");
          const std::string text(row);
          out += ghost ? style.yellow(text) : text;
          ++shown;
        }
      }
    } else {
      out += "sessions   n/a\n";
    }
  }

  out += '\n';
  if (!has_alerts) {
    out += "alerts     (no /alerts endpoint)\n";
    return true;
  }
  Json alerts;
  if (!client.get_json("/alerts", alerts, status) || status != 200) {
    out += "alerts     n/a\n";
    return true;
  }
  const int firing = static_cast<int>(
      alerts.get("firing") != nullptr ? alerts.get("firing")->number_or(0) : 0);
  const std::string firing_text = std::to_string(firing) + " firing";
  out += "alerts     " + (firing > 0 ? style.red(style.bold(firing_text)) : style.green(firing_text)) + "\n";
  if (const Json* rules = alerts.get("rules");
      rules != nullptr && rules->kind == Json::kArr) {
    // Firing first, then pending, then ok — the interesting rows on top.
    auto rank = [](const std::string& state) {
      return state == "firing" ? 0 : state == "pending" ? 1 : 2;
    };
    std::vector<const Json*> sorted;
    for (const Json& r : rules->arr) sorted.push_back(&r);
    for (int pass = 0; pass < 3; ++pass) {
      for (const Json* r : sorted) {
        const std::string state =
            r->get("state") != nullptr ? r->get("state")->string_or("?") : "?";
        if (rank(state) != pass) continue;
        const std::string name =
            r->get("name") != nullptr ? r->get("name")->string_or("?") : "?";
        const double value = r->get("value") != nullptr ? r->get("value")->number_or(0) : 0;
        const double threshold =
            r->get("threshold") != nullptr ? r->get("threshold")->number_or(0) : 0;
        char row[192];
        std::snprintf(row, sizeof(row), "  %-8s %-28s value %-10s threshold %s\n",
                      state.c_str(), name.c_str(), fmt_si(value).c_str(),
                      fmt_si(threshold).c_str());
        const std::string text(row);
        out += state == "firing" ? style.red(text)
               : state == "pending" ? style.yellow(text)
                                    : text;
      }
    }
  }
  return true;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host HOST] [--interval-ms N]\n"
               "          [--range SECONDS] [--once] [--no-color] [--version]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Client client;
  client.host = "127.0.0.1";
  int interval_ms = 1000;
  bool once = false;
  bool no_color = false;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::puts(zombiescope::obs::identity_line("zstop").c_str());
      return 0;
    } else if (arg == "--port") client.port = std::stoi(need_value(i));
    else if (arg == "--host") client.host = need_value(i);
    else if (arg == "--interval-ms") interval_ms = std::stoi(need_value(i));
    else if (arg == "--range") client.range_seconds = std::stoi(need_value(i));
    else if (arg == "--once") once = true;
    else if (arg == "--no-color") no_color = true;
    else usage(argv[0]);
  }
  if (client.port <= 0 || client.port > 65535) usage(argv[0]);
  if (interval_ms < 100) interval_ms = 100;
  if (client.range_seconds < 2) client.range_seconds = 2;

  Style style;
  style.color = !no_color && ::isatty(STDOUT_FILENO) != 0;
  const bool ansi = !once && ::isatty(STDOUT_FILENO) != 0;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (ansi) std::fputs("\x1b[?25l", stdout);  // hide cursor
  int rc = 0;
  std::string frame;
  while (true) {
    if (!render_frame(client, style, frame)) {
      if (ansi) std::fputs("\x1b[?25h", stdout);
      std::fprintf(stderr, "zstop: cannot reach http://%s:%d/\n", client.host.c_str(),
                   client.port);
      return 1;
    }
    if (ansi) std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    std::fputs(frame.c_str(), stdout);
    std::fflush(stdout);
    if (once || g_stop) break;
    // Sleep in small slices so Ctrl-C exits promptly.
    for (int waited = 0; waited < interval_ms && !g_stop; waited += 50)
      ::poll(nullptr, 0, 50);
    if (g_stop) break;
  }
  if (ansi) std::fputs("\x1b[?25h\n", stdout);  // restore cursor
  return rc;
}

# Empty compiler generated dependencies file for zs_scenarios.
# This may be replaced when dependencies are built.

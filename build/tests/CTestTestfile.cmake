# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netbase_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_test[1]_include.cmake")
include("/root/repo/build/tests/mrt_test[1]_include.cmake")
include("/root/repo/build/tests/rpki_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/beacon_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/collector_test[1]_include.cmake")
include("/root/repo/build/tests/zombie_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/realtime_test[1]_include.cmake")
include("/root/repo/build/tests/collector_faults_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_codec_test[1]_include.cmake")
include("/root/repo/build/tests/session_fsm_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/rost_test[1]_include.cmake")
include("/root/repo/build/tests/scenarios_test[1]_include.cmake")

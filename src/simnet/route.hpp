// simnet/route.hpp — per-router route state and RIB-change records.

#pragma once

#include <optional>

#include "bgp/attributes.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "topology/topology.hpp"

namespace zombiescope::simnet {

/// A route as held in a router's Adj-RIB-In or Loc-RIB. The AS path
/// is as received (the sender has already prepended itself).
struct RouteEntry {
  bgp::AsPath path;
  bgp::PathAttributes attributes;  // aggregator/communities travel here
  netbase::TimePoint learned = 0;

  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// LOCAL_PREF assigned by relationship (standard Gao–Rexford values).
std::uint32_t local_pref_for(topology::Relationship rel);

/// A change of a router's best route for one prefix.
struct RibChange {
  netbase::Prefix prefix;
  std::optional<RouteEntry> old_best;
  std::optional<RouteEntry> new_best;
  /// Relationship of the neighbor the new best was learned from
  /// (kCustomer for self-originated routes, which export everywhere).
  topology::Relationship new_best_source = topology::Relationship::kCustomer;
  /// ASN of the neighbor the new best was learned from (0 = self);
  /// used for split-horizon on export.
  bgp::Asn new_best_neighbor = 0;

  bool is_withdrawal() const { return old_best.has_value() && !new_best.has_value(); }
  bool is_announcement() const { return new_best.has_value(); }
};

}  // namespace zombiescope::simnet

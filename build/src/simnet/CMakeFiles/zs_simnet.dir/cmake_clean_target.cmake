file(REMOVE_RECURSE
  "libzs_simnet.a"
)

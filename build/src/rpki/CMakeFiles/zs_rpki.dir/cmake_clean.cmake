file(REMOVE_RECURSE
  "CMakeFiles/zs_rpki.dir/rov.cpp.o"
  "CMakeFiles/zs_rpki.dir/rov.cpp.o.d"
  "libzs_rpki.a"
  "libzs_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// live/feed.hpp — where the zslive service's records come from.
//
// Three FeedSource implementations cover the three ways an operator
// runs the daemon:
//
//   ReplayFeedSource     an archived MRT update stream (file or
//                        in-memory), replayed at `speed` simulated
//                        seconds per wall second — or flat out at
//                        speed <= 0. Replay at any speed must yield
//                        the same zombie set as batch detection over
//                        the same file (tests/live_e2e_test.cpp).
//   SimTapFeedSource     a live tap on a running simnet simulation: a
//                        small topology with a beacon origin and a
//                        collector whose noisiest session loses every
//                        withdrawal, so zombies emerge and die while
//                        you watch. This is the --tap-demo mode the
//                        sanitizer soak drives.
//   TcpNdjsonFeedSource  a TCP listener accepting RIS-Live-style
//                        NDJSON messages (one JSON object per line,
//                        the https://ris-live.ripe.net schema), so a
//                        real firehose subscriber — or `nc` in a test
//                        — can push updates into the detector.
//
// A feed is a producer: run() pumps records into LiveService::submit
// on the caller's thread until the feed is exhausted or stop() is
// called from elsewhere. Backpressure policy lives in the service
// (LiveConfig::block_on_full), not the feed.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "beacon/schedule.hpp"
#include "live/service.hpp"
#include "mrt/record.hpp"

namespace zombiescope::live {

class FeedSource {
 public:
  struct RunStats {
    std::uint64_t records = 0;       // records handed to submit()
    std::uint64_t parse_errors = 0;  // NDJSON lines that failed to parse
  };

  virtual ~FeedSource() = default;

  /// Pumps the feed into `service` (which must be started) until the
  /// feed ends or stop() is called. Blocking; run on a thread of the
  /// caller's choosing.
  virtual RunStats run(LiveService& service) = 0;

  /// Asks a running run() to return promptly. Callable from any thread.
  virtual void stop() = 0;
};

/// Parses one RIS-Live NDJSON line into an MRT record. Accepts both
/// the wrapped form {"type":"ris_message","data":{...}} and the bare
/// data object. UPDATE messages become Bgp4mpMessage (announcements'
/// prefixes + withdrawals + AS path), RIS_PEER_STATE / STATE messages
/// become Bgp4mpStateChange. Returns nullopt on malformed input or
/// message types the detector has no use for.
std::optional<mrt::MrtRecord> parse_ris_live_line(std::string_view line);

class ReplayFeedSource : public FeedSource {
 public:
  /// speed: simulated seconds replayed per wall-clock second, paced
  /// off the records' own timestamps; <= 0 replays at maximum speed.
  ReplayFeedSource(std::vector<mrt::MrtRecord> records, double speed);

  /// Loads `path` via the mrt codec. Throws std::runtime_error on an
  /// unreadable file. (A pointer because the atomic stop flag makes
  /// the type immovable.)
  static std::unique_ptr<ReplayFeedSource> from_file(const std::string& path,
                                                     double speed);

  RunStats run(LiveService& service) override;
  void stop() override { stop_.store(true, std::memory_order_relaxed); }

  std::size_t record_count() const { return records_.size(); }

 private:
  std::vector<mrt::MrtRecord> records_;
  double speed_;
  std::atomic<bool> stop_{false};
};

/// Configuration of the self-contained demo simulation the tap drives.
/// The defaults are sized so that at speed 60 (one simulated minute
/// per wall second) a 30-second soak sees several full beacon cycles:
/// zombies emerge on the lossy session, die at the next announcement,
/// and emerge again.
struct SimTapConfig {
  double speed = 60.0;  // simulated seconds per wall second
  netbase::Duration duration = 2 * netbase::kHour;  // simulated run length
  netbase::Duration beacon_period = 20 * netbase::kMinute;
  netbase::Duration beacon_uptime = 10 * netbase::kMinute;
  std::size_t beacon_prefixes = 4;
  std::uint64_t seed = 7;
};

class SimTapFeedSource : public FeedSource {
 public:
  explicit SimTapFeedSource(SimTapConfig config) : config_(config) {}

  /// The beacon events the tap will originate; the daemon registers
  /// them with the service (expect) before run().
  std::vector<beacon::BeaconEvent> schedule() const;

  RunStats run(LiveService& service) override;
  void stop() override { stop_.store(true, std::memory_order_relaxed); }

 private:
  SimTapConfig config_;
  std::atomic<bool> stop_{false};
};

class TcpNdjsonFeedSource : public FeedSource {
 public:
  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port) immediately, so
  /// port() is valid before run(). Throws std::runtime_error if the
  /// socket cannot be bound.
  explicit TcpNdjsonFeedSource(std::uint16_t port);
  ~TcpNdjsonFeedSource() override;

  std::uint16_t port() const { return port_; }

  /// Serves until stop(): accepts any number of clients, parses each
  /// complete line, submits what parses, counts what does not.
  RunStats run(LiveService& service) override;
  void stop() override { stop_.store(true, std::memory_order_relaxed); }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace zombiescope::live

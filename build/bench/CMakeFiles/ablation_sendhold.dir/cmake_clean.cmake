file(REMOVE_RECURSE
  "CMakeFiles/ablation_sendhold.dir/ablation_sendhold.cpp.o"
  "CMakeFiles/ablation_sendhold.dir/ablation_sendhold.cpp.o.d"
  "ablation_sendhold"
  "ablation_sendhold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sendhold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

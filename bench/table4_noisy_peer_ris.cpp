// table4_noisy_peer_ris — reproduces Table 4 (and the §3.2 noisy-peer
// analysis): the mean and median likelihood of the ⟨RIPE RIS beacon,
// AS16347⟩ pair to have a zombie route, per family, with and without
// the double-counting filter — against the ~1.6 % background of the
// remaining peers. Also demonstrates that the NoisyPeerFilter flags
// AS16347 statistically.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/stats.hpp"
#include "bench/bench_common.hpp"
#include "zombie/analyzer.hpp"
#include "zombie/interval_detector.hpp"
#include "zombie/noisy.hpp"

using namespace zombiescope;

namespace {

scenarios::ScenarioOutput g_out;
zombie::IntervalDetectionResult g_result;

double mean_of(const std::vector<zombie::EmergenceRate>& rates, bgp::Asn asn, bool only) {
  double sum = 0;
  int n = 0;
  for (const auto& r : rates) {
    if ((r.peer_asn == asn) != only) continue;
    sum += r.rate();
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v.size() % 2 == 1 ? v[v.size() / 2] : (v[v.size() / 2 - 1] + v[v.size() / 2]) / 2;
}

void print_table() {
  bench::print_header("Table 4 — the noisy RIS peer AS16347",
                      "IMC'25 paper Table 4 + §3.2 (noisy-peer exclusion)");
  g_out = bench::load_ris_period(0);  // 2018 period hosts the analysis

  zombie::IntervalZombieDetector detector({});  // noisy peer included on purpose
  g_result = detector.detect(g_out.updates, g_out.events);

  std::vector<std::vector<std::string>> rows;
  for (bool dedup : {false, true}) {
    for (auto family : {netbase::AddressFamily::kIpv4, netbase::AddressFamily::kIpv6}) {
      const auto rates = zombie::emergence_rates(g_result, family, dedup);
      std::vector<double> noisy_rates, other_rates;
      for (const auto& r : rates)
        (r.peer_asn == scenarios::kNoisyRisPeerAsn ? noisy_rates : other_rates)
            .push_back(r.rate());
      rows.push_back({std::string(dedup ? "without dc" : "with dc") + " " +
                          std::string(netbase::to_string(family)),
                      analysis::fmt(mean_of(rates, scenarios::kNoisyRisPeerAsn, true), 4),
                      analysis::fmt(median_of(noisy_rates), 4),
                      analysis::fmt(mean_of(rates, scenarios::kNoisyRisPeerAsn, false), 4)});
    }
  }
  std::fputs(analysis::render_table({"Population", "AS16347 mean", "AS16347 median",
                                     "other peers mean"},
                                    rows)
                 .c_str(),
             stdout);
  std::printf("Paper Table 4: AS16347 IPv6 mean 0.4284 (with dc) / 0.426 (without);\n"
              "IPv4 mean 0.044 / 0.0018; remaining peers average ~1.58%% for IPv6.\n\n");

  // Statistical detection of the outlier, as the methodology demands.
  zombie::NoisyPeerFilter filter;
  // The outlier test runs on the deduplicated route population (the
  // paper's 1.58% background is an after-dedup figure).
  std::vector<zombie::ZombieRoute> unique_routes;
  for (const auto& route : g_result.routes)
    if (!route.duplicate) unique_routes.push_back(route);
  const auto stats =
      filter.stats(unique_routes, g_out.all_peers, static_cast<int>(g_out.events.size()));
  const auto noisy = filter.noisy_peers(stats);
  std::printf("NoisyPeerFilter verdict (%zu peers):\n", stats.size());
  for (const auto& peer : noisy)
    std::printf("  NOISY: %s stuck probability %s\n", zombie::to_string(peer.peer).c_str(),
                analysis::pct(peer.probability()).c_str());
  std::printf("  (expected: exactly the injected AS16347 session)\n");
}

void BM_EmergenceRates(benchmark::State& state) {
  for (auto _ : state) {
    auto rates = zombie::emergence_rates(g_result, netbase::AddressFamily::kIpv6, true);
    benchmark::DoNotOptimize(rates.size());
  }
}
BENCHMARK(BM_EmergenceRates)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/zs_zombie.dir/analyzer.cpp.o"
  "CMakeFiles/zs_zombie.dir/analyzer.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/interval_detector.cpp.o"
  "CMakeFiles/zs_zombie.dir/interval_detector.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/longlived.cpp.o"
  "CMakeFiles/zs_zombie.dir/longlived.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/lookingglass.cpp.o"
  "CMakeFiles/zs_zombie.dir/lookingglass.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/noisy.cpp.o"
  "CMakeFiles/zs_zombie.dir/noisy.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/realtime.cpp.o"
  "CMakeFiles/zs_zombie.dir/realtime.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/rootcause.cpp.o"
  "CMakeFiles/zs_zombie.dir/rootcause.cpp.o.d"
  "CMakeFiles/zs_zombie.dir/state.cpp.o"
  "CMakeFiles/zs_zombie.dir/state.cpp.o.d"
  "libzs_zombie.a"
  "libzs_zombie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_zombie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the obs
# subsystem's tests again under ThreadSanitizer (its hot paths — the
# metrics cells, the span ring, the journal MPSC ring, the causal
# tracer's hop ring, and the zsprof sample rings + SIGPROF handler —
# are the only code that promises
# lock-free cross-thread use) and under AddressSanitizer+UBSan (the
# journal codec and the HTTP server parse external bytes; the zsprof
# stack walk reads raw stack memory).
#
# Usage: scripts/run_tier1.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${BUILD_DIR}-tsan"
ASAN_DIR="${BUILD_DIR}-asan"

echo "== tier-1: plain build + ctest (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

OBS_TARGETS="obs_test journal_test http_test prof_test benchdiff_test prof_compileout_test \
  causal_test causal_e2e_test causal_compileout_test"

echo "== tier-1: obs tests under ThreadSanitizer (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DZS_SANITIZE=thread
# shellcheck disable=SC2086
cmake --build "${TSAN_DIR}" -j --target ${OBS_TARGETS}
ctest --test-dir "${TSAN_DIR}" --output-on-failure -R '^Obs'

echo "== tier-1: obs tests under ASan+UBSan (${ASAN_DIR})"
cmake -B "${ASAN_DIR}" -S . -DZS_SANITIZE=address,undefined
# shellcheck disable=SC2086
cmake --build "${ASAN_DIR}" -j --target ${OBS_TARGETS}
ctest --test-dir "${ASAN_DIR}" --output-on-failure -R '^Obs'

echo "== tier-1: OK"

// scenarios/wirefault.hpp — session-layer fault scenarios with exact
// ground truth, for scoring the wire subsystem's zombie mechanics.
//
// Where faultlab (faultlab.hpp) injects faults into the *propagation*
// graph, wirefault injects them into the *session* layer between one
// peer and the collector, exercising the zswire machinery end to end
// in virtual time: the real SessionFsm pair decides when a hold or
// send-hold timer fires, and the real StaleRetention decides when a
// graceful-restart window flushes. Each scenario derives its ground
// truth (which (prefix, peer) pairs become zombies, when they emerge,
// when and why they resolve) from those components, builds the MRT
// record stream a collector would archive, and is scored by running
// the RealTimeZombieDetector over that stream.
//
// The four kinds pair off into the contrasts the paper cares about:
//
//   kHoldExpiry         the peer goes silent: the hold timer kills the
//                       session well before the detection threshold,
//                       so a lost withdrawal does NOT make a zombie.
//   kSendHoldStall      the peer wedges (keeps KEEPALIVE-ing, stops
//                       reading): only the RFC 9687 send-hold timer
//                       ends it — a zombie lives from threshold until
//                       the send-hold teardown.
//   kGrStaleRetention   graceful restart retains the dropped peer's
//                       routes past the threshold; the restart-time
//                       expiry resolves the zombie.
//   kLlgrLongRetention  LLGR stretches retention to ~a day: the
//                       paper's long-lived zombie, manufactured.
//
// Detection threshold is 30 minutes here, not the paper's 90: GR
// restart times are a 12-bit field (<= 4095 s), so a pure-GR zombie
// can only outlive a threshold shorter than that.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "beacon/schedule.hpp"
#include "mrt/record.hpp"
#include "wire/retention.hpp"
#include "zombie/types.hpp"

namespace zombiescope::scenarios {

enum class WireFaultKind : std::uint8_t {
  kHoldExpiry = 0,
  kSendHoldStall = 1,
  kGrStaleRetention = 2,
  kLlgrLongRetention = 3,
};

std::string to_string(WireFaultKind kind);

struct WireScenarioSpec {
  std::uint64_t seed = 0;
  WireFaultKind kind = WireFaultKind::kHoldExpiry;

  /// Detection threshold (see header comment for why not 90 min).
  netbase::Duration threshold = 30 * netbase::kMinute;
  /// Collector's offered hold time (negotiated with the peer's).
  netbase::Duration hold_time = 180;
  /// RFC 9687 send-hold (used by kSendHoldStall).
  netbase::Duration send_hold_time = 3600;
  /// GR restart window the peer advertises (<= 4095).
  netbase::Duration restart_time = 2400;
  /// LLGR stale window (kLlgrLongRetention).
  netbase::Duration llgr_stale_time = 24 * netbase::kHour;

  std::string name() const;
};

struct WireScenarioResult {
  WireScenarioSpec spec;
  netbase::Prefix prefix;
  zombie::PeerKey peer;
  beacon::BeaconEvent beacon;

  /// The record stream the collector archives for this scenario.
  std::vector<mrt::MrtRecord> records;

  /// Ground truth, derived from the FSM / retention run.
  netbase::TimePoint fault_time = 0;        // when the peer breaks
  netbase::TimePoint session_drop_time = 0; // 0 = session never drops
  std::string drop_reason;                  // SessionFsm::last_error()
  wire::FlushReason flush_reason = wire::FlushReason::kSessionLoss;
  bool expect_zombie = false;
  netbase::TimePoint expected_emergence = 0;
  bool expect_resolution = false;
  netbase::TimePoint expected_resolution = 0;

  /// Measured by the detector over `records`.
  int alerts = 0;
  int resolutions = 0;
  netbase::TimePoint measured_emergence = 0;
  netbase::TimePoint measured_resolution = 0;

  bool passed = false;
  std::string failure;  // empty when passed
};

/// Runs one scenario in virtual time. Deterministic per spec.
WireScenarioResult run_wire_scenario(const WireScenarioSpec& spec);

/// All four kinds x `seeds` seeds.
std::vector<WireScenarioSpec> default_wire_suite(int seeds);

struct WireSuiteSummary {
  int total = 0;
  int passed = 0;
  int zombies_expected = 0;
  int zombies_detected = 0;
  int resolutions_expected = 0;
  int resolutions_detected = 0;

  double pass_rate() const {
    return total == 0 ? 0.0 : static_cast<double>(passed) / total;
  }
};

WireSuiteSummary summarize_wire(const std::vector<WireScenarioResult>& results);

}  // namespace zombiescope::scenarios

# Empty dependencies file for zs_topology.
# This may be replaced when dependencies are built.

// Unit and property tests for the bgp module: AS paths, attributes,
// and the RFC 4271/4760/6793 UPDATE wire codec.

#include <gtest/gtest.h>

#include "bgp/update.hpp"
#include "netbase/rng.hpp"

namespace zombiescope::bgp {
namespace {

using netbase::IpAddress;
using netbase::Prefix;
using netbase::Rng;

TEST(AsPath, SequenceBasics) {
  AsPath p{4637, 1299, 25091, 8298, 210312};
  EXPECT_EQ(p.length(), 5);
  EXPECT_EQ(p.asn_count(), 5);
  EXPECT_EQ(p.origin_asn(), 210312u);
  EXPECT_EQ(p.first_asn(), 4637u);
  EXPECT_TRUE(p.contains(1299));
  EXPECT_FALSE(p.contains(6939));
  EXPECT_EQ(p.to_string(), "4637 1299 25091 8298 210312");
}

TEST(AsPath, SetCountsOnceForLength) {
  AsPath p;
  p.segments().push_back({SegmentType::kAsSequence, {100, 200}});
  p.segments().push_back({SegmentType::kAsSet, {300, 400, 500}});
  EXPECT_EQ(p.length(), 3);  // 2 + 1 for the set
  EXPECT_EQ(p.asn_count(), 5);
  EXPECT_EQ(p.to_string(), "100 200 {300,400,500}");
  EXPECT_FALSE(p.origin_asn().has_value());  // path ends with a set
}

TEST(AsPath, PrependMergesIntoLeadingSequence) {
  AsPath p{200, 300};
  AsPath q = p.prepend(100);
  EXPECT_EQ(q.to_string(), "100 200 300");
  EXPECT_EQ(q.segments().size(), 1u);

  AsPath empty;
  EXPECT_EQ(empty.prepend(65000).to_string(), "65000");
}

TEST(AsPath, EndsWithSuffix) {
  AsPath p{4637, 1299, 25091, 8298, 210312};
  EXPECT_TRUE(p.ends_with({25091, 8298, 210312}));
  EXPECT_TRUE(p.ends_with({210312}));
  EXPECT_TRUE(p.ends_with({}));
  EXPECT_FALSE(p.ends_with({8298, 25091, 210312}));
  EXPECT_FALSE(p.ends_with({1, 2, 3, 4, 5, 6}));
}

TEST(AsPath, FourByteAsnsSurvive) {
  AsPath p{210312, 4200000001};
  EXPECT_TRUE(p.contains(4200000001));
}

TEST(Community, Rendering) {
  Community c{65535, 666};
  EXPECT_EQ(c.to_string(), "65535:666");
  EXPECT_EQ(Community::from_value(c.value()), c);
}

UpdateMessage make_v6_announcement() {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("2a0d:3dc1:1851::/48"));
  msg.attributes.origin = Origin::kIgp;
  msg.attributes.as_path = AsPath{61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312};
  msg.attributes.next_hop = IpAddress::parse("2001:db8:ffff::1");
  msg.attributes.local_pref = 100;
  msg.attributes.communities = {{8298, 100}, {8298, 20}};
  return msg;
}

TEST(UpdateCodec, V6AnnouncementRoundTrip) {
  UpdateMessage msg = make_v6_announcement();
  auto wire = msg.encode();
  // Header sanity: marker + declared length.
  ASSERT_GE(wire.size(), 19u);
  EXPECT_EQ(wire[0], 0xff);
  EXPECT_EQ(wire[15], 0xff);
  EXPECT_EQ((wire[16] << 8) | wire[17], static_cast<int>(wire.size()));
  EXPECT_EQ(wire[18], 2);  // UPDATE

  UpdateMessage decoded = UpdateMessage::decode(wire);
  EXPECT_EQ(decoded, msg);
}

TEST(UpdateCodec, V4AnnouncementWithAggregatorRoundTrip) {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("84.205.71.0/24"));
  msg.attributes.as_path = AsPath{12654};
  msg.attributes.next_hop = IpAddress::parse("193.0.4.28");
  msg.attributes.origin = Origin::kIgp;
  msg.attributes.aggregator = Aggregator{12654, IpAddress::parse("10.19.29.192")};
  msg.attributes.med = 17;
  msg.attributes.atomic_aggregate = true;

  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded, msg);
  ASSERT_TRUE(decoded.attributes.aggregator.has_value());
  EXPECT_EQ(decoded.attributes.aggregator->address.to_string(), "10.19.29.192");
}

TEST(UpdateCodec, V4WithdrawalOnly) {
  UpdateMessage msg;
  msg.withdrawn.push_back(Prefix::parse("84.205.71.0/24"));
  msg.withdrawn.push_back(Prefix::parse("93.175.149.0/24"));
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded, msg);
  EXPECT_TRUE(decoded.is_withdrawal_only());
}

TEST(UpdateCodec, V6WithdrawalTravelsInMpUnreach) {
  UpdateMessage msg;
  msg.withdrawn.push_back(Prefix::parse("2a0d:3dc1:163::/48"));
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded.withdrawn, msg.withdrawn);
  EXPECT_TRUE(decoded.is_withdrawal_only());
}

TEST(UpdateCodec, MixedFamilyUpdate) {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("84.205.71.0/24"));
  msg.announced.push_back(Prefix::parse("2001:7fb:fe00::/48"));
  msg.withdrawn.push_back(Prefix::parse("84.205.77.0/24"));
  msg.withdrawn.push_back(Prefix::parse("2001:7fb:fe06::/48"));
  msg.attributes.as_path = AsPath{12654};
  // Encoder requirement: a v6 next hop must be supplied when v6 NLRI is
  // present; the v4 NEXT_HOP attribute then cannot also be expressed.
  msg.attributes.next_hop = IpAddress::parse("2001:db8::1");
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  // Round trip preserves the full prefix sets (order may regroup by family).
  EXPECT_EQ(decoded.announced.size(), 2u);
  EXPECT_EQ(decoded.withdrawn.size(), 2u);
}

TEST(UpdateCodec, EmptyPathIsLegalForOriginatedRoute) {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("10.0.0.0/8"));
  msg.attributes.next_hop = IpAddress::parse("192.0.2.1");
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_TRUE(decoded.attributes.as_path.empty());
}

TEST(UpdateCodec, UnknownAttributePreserved) {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("10.0.0.0/8"));
  msg.attributes.next_hop = IpAddress::parse("192.0.2.1");
  msg.attributes.unknown.push_back(
      RawAttribute{static_cast<std::uint8_t>(kAttrFlagOptional | kAttrFlagTransitive), 32,
                   {1, 2, 3, 4}});  // LARGE_COMMUNITY blob
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded, msg);
}

TEST(UpdateCodec, RejectsGarbage) {
  std::vector<std::uint8_t> junk(19, 0x00);
  EXPECT_THROW(UpdateMessage::decode(junk), netbase::DecodeError);

  UpdateMessage msg = make_v6_announcement();
  auto wire = msg.encode();
  wire.pop_back();  // truncate
  EXPECT_THROW(UpdateMessage::decode(wire), netbase::DecodeError);

  wire = msg.encode();
  wire[18] = 4;  // claim KEEPALIVE
  EXPECT_THROW(UpdateMessage::decode(wire), netbase::DecodeError);
}

TEST(UpdateCodec, LargeCommunityListUsesExtendedLength) {
  UpdateMessage msg;
  msg.announced.push_back(Prefix::parse("10.0.0.0/8"));
  msg.attributes.next_hop = IpAddress::parse("192.0.2.1");
  for (std::uint16_t i = 0; i < 100; ++i) msg.attributes.communities.push_back({8298, i});
  UpdateMessage decoded = UpdateMessage::decode(msg.encode());
  EXPECT_EQ(decoded.attributes.communities.size(), 100u);
  EXPECT_EQ(decoded, msg);
}

// Property: encode/decode round trip over randomized updates.
class UpdateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpdateRoundTrip, RandomizedMessages) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    UpdateMessage msg;
    const bool v6 = rng.chance(0.5);
    const bool announce = rng.chance(0.7);
    const int prefix_count = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < prefix_count; ++i) {
      std::array<std::uint8_t, 16> bytes{};
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      IpAddress addr = v6 ? IpAddress::v6(bytes)
                          : IpAddress::v4({bytes[0], bytes[1], bytes[2], bytes[3]});
      Prefix p(addr, static_cast<int>(rng.uniform_int(8, addr.bit_length())));
      (announce ? msg.announced : msg.withdrawn).push_back(p);
    }
    if (announce) {
      const int hops = static_cast<int>(rng.uniform_int(1, 9));
      std::vector<Asn> asns;
      for (int i = 0; i < hops; ++i)
        asns.push_back(static_cast<Asn>(rng.uniform_int(1, 4294967295LL)));
      msg.attributes.as_path = AsPath::sequence(asns);
      msg.attributes.next_hop =
          v6 ? IpAddress::parse("2001:db8::1") : IpAddress::parse("192.0.2.1");
      if (rng.chance(0.3)) msg.attributes.med = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
      if (rng.chance(0.3))
        msg.attributes.local_pref = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      if (rng.chance(0.3))
        msg.attributes.aggregator =
            Aggregator{static_cast<Asn>(rng.uniform_int(1, 65000)),
                       IpAddress::v4(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffLL)))};
      const int ncomm = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < ncomm; ++i)
        msg.attributes.communities.push_back(
            {static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
             static_cast<std::uint16_t>(rng.uniform_int(0, 65535))});
    }
    UpdateMessage decoded = UpdateMessage::decode(msg.encode());
    EXPECT_EQ(decoded, msg) << "iter " << iter << ": " << msg.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateRoundTrip, ::testing::Values(11, 222, 3333, 44444));

TEST(Summary, ReadableOutput) {
  UpdateMessage msg = make_v6_announcement();
  const std::string s = msg.summary();
  EXPECT_NE(s.find("2a0d:3dc1:1851::/48"), std::string::npos);
  EXPECT_NE(s.find("210312"), std::string::npos);
}

}  // namespace
}  // namespace zombiescope::bgp

#include "collector/collector.hpp"

#include <algorithm>

#include "obs/journal.hpp"

namespace zombiescope::collector {

namespace {

// Collector-side noise and session lifecycle events. These are the
// ground truth zsreport cross-checks detector decisions against: a
// kWithdrawalLost here explains a later kZombieDeclared.
void journal_noise(obs::JournalEventType type, netbase::TimePoint at,
                   bgp::Asn peer_asn, const netbase::IpAddress& peer_address,
                   const netbase::Prefix* prefix = nullptr, std::int64_t a = 0) {
  obs::Journal& journal = obs::Journal::global();
  constexpr std::uint32_t kCats = obs::kCatNoise | obs::kCatCollector;
  if (!journal.enabled(kCats)) return;
  obs::JournalEvent ev;
  ev.type = type;
  ev.time = at;
  if (prefix != nullptr) {
    ev.has_prefix = true;
    ev.prefix = *prefix;
  }
  ev.has_peer = true;
  ev.peer_asn = peer_asn;
  ev.peer_address = peer_address;
  ev.a = a;
  journal.emit_runtime(obs::category_of(type), ev);
}

}  // namespace

PeerSession::PeerSession(Collector& owner, SessionConfig config, netbase::Rng rng)
    : owner_(owner), config_(std::move(config)), rng_(std::move(rng)) {}

void PeerSession::record_announce(netbase::TimePoint t, const netbase::Prefix& prefix,
                                  const ViewEntry& entry) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = config_.peer_asn;
  m.local_asn = owner_.asn();
  m.peer_address = config_.peer_address;
  m.local_address = owner_.address(config_.peer_address.family());
  m.update.announced.push_back(prefix);
  m.update.attributes = entry.attributes;
  m.update.attributes.as_path = entry.path;
  // The next hop of a collector-facing session is the peer router.
  m.update.attributes.next_hop = config_.peer_address;
  owner_.append_update(std::move(m));
}

void PeerSession::record_withdraw(netbase::TimePoint t, const netbase::Prefix& prefix) {
  mrt::Bgp4mpMessage m;
  m.timestamp = t;
  m.peer_asn = config_.peer_asn;
  m.local_asn = owner_.asn();
  m.peer_address = config_.peer_address;
  m.local_address = owner_.address(config_.peer_address.family());
  m.update.withdrawn.push_back(prefix);
  owner_.append_update(std::move(m));
}

void PeerSession::record_state(netbase::TimePoint t, bgp::SessionState from,
                               bgp::SessionState to) {
  mrt::Bgp4mpStateChange s;
  s.timestamp = t;
  s.peer_asn = config_.peer_asn;
  s.local_asn = owner_.asn();
  s.peer_address = config_.peer_address;
  s.local_address = owner_.address(config_.peer_address.family());
  s.old_state = from;
  s.new_state = to;
  owner_.append_update(std::move(s));
}

void PeerSession::on_route_change(netbase::TimePoint t, const simnet::RibChange& change) {
  owner_.m_monitor_events_.inc();
  if (!established_) return;  // messages sent while the session is down are lost

  if (change.is_announcement()) {
    ViewEntry entry;
    entry.path = change.new_best->path.prepend(config_.peer_asn);
    entry.attributes = change.new_best->attributes;
    entry.learned = t;
    view_[change.prefix] = entry;
    ++generation_[change.prefix];
    record_announce(t, change.prefix, entry);
    return;
  }

  // Deterministic forced delays take precedence (the §5.1 uptick).
  for (const auto& forced : config_.forced_delays) {
    if (forced.prefix != change.prefix || sim_ == nullptr) continue;
    const std::uint64_t generation = generation_[change.prefix];
    const netbase::Prefix prefix = change.prefix;
    sim_->schedule_callback(t + forced.delay, [this, prefix, generation] {
      if (!established_) return;
      if (generation_[prefix] != generation) return;
      if (view_.erase(prefix) > 0) record_withdraw(sim_->now(), prefix);
    });
    return;
  }

  // Withdrawal. A noisy session may lose it: the collector's view (and
  // the archive) keep the stale route — a collector-side zombie.
  const bool noise_matches = !config_.noise_prefix_filter.has_value() ||
                             config_.noise_prefix_filter->covers(change.prefix);
  const double loss = config_.loss_probability_for(change.prefix.family());
  if (noise_matches && loss > 0.0 && rng_.chance(loss)) {
    owner_.m_withdrawals_lost_.inc();
    journal_noise(obs::JournalEventType::kWithdrawalLost, t, config_.peer_asn,
                  config_.peer_address, &change.prefix);
    return;
  }

  // Slow convergence: record the withdrawal late, unless a newer
  // announcement supersedes it first.
  if (noise_matches && sim_ != nullptr && config_.withdrawal_delay_probability > 0.0 &&
      rng_.chance(config_.withdrawal_delay_probability)) {
    const netbase::Duration delay = rng_.uniform_int(config_.withdrawal_delay_min,
                                                     config_.withdrawal_delay_max);
    journal_noise(obs::JournalEventType::kWithdrawalDelayed, t, config_.peer_asn,
                  config_.peer_address, &change.prefix, delay);
    const std::uint64_t generation = generation_[change.prefix];
    const netbase::Prefix prefix = change.prefix;
    sim_->schedule_callback(t + delay, [this, prefix, generation] {
      if (!established_) return;
      if (generation_[prefix] != generation) return;  // superseded
      if (view_.erase(prefix) > 0) record_withdraw(sim_->now(), prefix);
    });
    return;
  }

  auto view_it = view_.find(change.prefix);
  if (view_it == view_.end()) return;
  const ViewEntry withdrawn_entry = view_it->second;
  view_.erase(view_it);
  record_withdraw(t, change.prefix);

  // Phantom re-announcement of the stale route, shortly after.
  if (noise_matches && sim_ != nullptr && config_.phantom_reannounce_probability > 0.0 &&
      rng_.chance(config_.phantom_reannounce_probability)) {
    const netbase::Duration delay = rng_.uniform_int(config_.phantom_reannounce_min,
                                                     config_.phantom_reannounce_max);
    journal_noise(obs::JournalEventType::kPhantomReannounce, t, config_.peer_asn,
                  config_.peer_address, &change.prefix, delay);
    const std::uint64_t generation = ++generation_[change.prefix];
    const netbase::Prefix prefix = change.prefix;
    sim_->schedule_callback(t + delay, [this, prefix, generation, withdrawn_entry] {
      if (!established_) return;
      if (generation_[prefix] != generation) return;  // a real update got there first
      ViewEntry entry = withdrawn_entry;
      entry.learned = sim_->now();
      view_[prefix] = entry;
      record_announce(sim_->now(), prefix, entry);
    });
  }
}

void PeerSession::schedule_reset(simnet::Simulation& sim, netbase::TimePoint down,
                                 netbase::TimePoint up) {
  sim_ = &sim;
  sim.schedule_callback(down, [this] {
    if (!established_) return;
    established_ = false;
    const netbase::TimePoint t = sim_->now();
    record_state(t, bgp::SessionState::kEstablished, bgp::SessionState::kIdle);
    journal_noise(obs::JournalEventType::kCollectorSessionDown, t, config_.peer_asn,
                  config_.peer_address);
    // Session flush: every route of this peer is withdrawn from the
    // collector's point of view (RIS handles STATE messages exactly
    // this way, which the detectors must honor).
    view_.clear();
    for (auto& [prefix, generation] : generation_) {
      (void)prefix;
      ++generation;  // cancel pending delayed withdrawals
    }
  });
  sim.schedule_callback(up, [this] {
    if (established_) return;
    established_ = true;
    const netbase::TimePoint t = sim_->now();
    record_state(t, bgp::SessionState::kIdle, bgp::SessionState::kEstablished);
    journal_noise(obs::JournalEventType::kCollectorSessionUp, t, config_.peer_asn,
                  config_.peer_address);
    // The peer re-advertises its current table — including any route
    // still stuck in its RIB (zombie re-learn, Fig. 4's reappearance).
    const auto& peer_router = sim_->router(config_.peer_asn);
    for (const auto& [prefix, route] : peer_router.full_table()) {
      ViewEntry entry;
      entry.path = route.path.prepend(config_.peer_asn);
      entry.attributes = route.attributes;
      entry.learned = t;
      view_[prefix] = entry;
      ++generation_[prefix];
      record_announce(t, prefix, entry);
    }
  });
}

PeerSession& Collector::add_peer(simnet::Simulation& sim, const SessionConfig& config,
                                 netbase::Rng rng) {
  sessions_.push_back(std::make_unique<PeerSession>(*this, config, std::move(rng)));
  sessions_.back()->bind(sim);
  sim.attach_monitor(config.peer_asn, sessions_.back().get());
  return *sessions_.back();
}

void Collector::dump_ribs(netbase::TimePoint t) {
  m_rib_dumps_.inc();
  const std::size_t before = rib_dumps_.size();
  mrt::PeerIndexTable table;
  table.timestamp = t;
  table.collector_bgp_id = address_v4_.v4_value();
  table.view_name = name_;
  for (const auto& session : sessions_) {
    table.peers.push_back(
        {static_cast<std::uint32_t>(table.peers.size() + 1), session->config().peer_address,
         session->config().peer_asn});
  }
  rib_dumps_.push_back(table);

  // Gather prefixes visible in any session.
  std::map<netbase::Prefix, std::vector<std::pair<std::uint16_t, const ViewEntry*>>> by_prefix;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    for (const auto& [prefix, entry] : sessions_[i]->view())
      by_prefix[prefix].emplace_back(static_cast<std::uint16_t>(i), &entry);
  }
  std::uint32_t sequence = 0;
  for (const auto& [prefix, entries] : by_prefix) {
    mrt::RibEntryRecord record;
    record.timestamp = t;
    record.sequence = sequence++;
    record.prefix = prefix;
    for (const auto& [peer_index, entry] : entries) {
      mrt::RibEntryRecord::Entry e;
      e.peer_index = peer_index;
      e.originated_time = entry->learned;
      e.attributes = entry->attributes;
      e.attributes.as_path = entry->path;
      // Dump next hops must match the prefix family (a v6-over-v4
      // session, like the paper's 176.119.234.201 peer, has a v4
      // session address but v6 routes).
      const auto& peer_addr = sessions_[peer_index]->config().peer_address;
      if (peer_addr.family() == prefix.family())
        e.attributes.next_hop = peer_addr;
      else
        e.attributes.next_hop.reset();
      record.entries.push_back(std::move(e));
    }
    rib_dumps_.push_back(std::move(record));
  }
  m_rib_records_.inc(rib_dumps_.size() - before);
}

void Collector::schedule_rib_dumps(simnet::Simulation& sim, netbase::TimePoint start,
                                   netbase::TimePoint end, netbase::Duration interval) {
  for (netbase::TimePoint t = start; t <= end; t += interval)
    sim.schedule_callback(t, [this, t] { dump_ribs(t); });
}

}  // namespace zombiescope::collector

// rpki/rov.hpp — Route Origin Authorizations and Route Origin
// Validation (RFC 6811).
//
// The paper registers a ROA for its beacon prefixes, then removes it
// on 2024-06-22 19:49 UTC and observes that zombie routes survive in
// ASes that do no ROV — or whose ROV implementation is flawed and
// never re-validates installed routes. The RoaTable is time-aware so
// both the registration and the removal are first-class events.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "netbase/trie.hpp"

namespace zombiescope::rpki {

/// A Route Origin Authorization: `asn` may originate prefixes covered
/// by `prefix` up to `max_length`.
struct Roa {
  netbase::Prefix prefix;
  int max_length = 0;
  bgp::Asn asn = 0;

  friend bool operator==(const Roa&, const Roa&) = default;
};

/// RFC 6811 validation states.
enum class RovState : std::uint8_t {
  kNotFound = 0,
  kValid = 1,
  kInvalid = 2,
};

std::string to_string(RovState state);

/// How an AS applies ROV. The paper's Fig. 3 observation — zombies
/// surviving long after the ROA deletion — implies peers that either
/// do not validate, or validate only once at import and never react
/// to ROA changes ("flawed or does not comply with RPKI standards").
enum class RovPolicy : std::uint8_t {
  kNone = 0,        // no validation at all
  kImportOnly = 1,  // drop Invalid at import; never re-validate afterwards
  kCompliant = 2,   // drop Invalid at import AND evict on ROA change
};

std::string to_string(RovPolicy policy);

/// A time-aware ROA registry. Each ROA has a validity window
/// [valid_from, valid_until); an open end is modelled as +infinity.
class RoaTable {
 public:
  /// Registers a ROA valid from `from` (until removed).
  void add(const Roa& roa, netbase::TimePoint from);

  /// Marks all ROAs matching `roa` as removed at time `at`. Emulates
  /// the registry-to-router propagation delay by accepting an optional
  /// `visibility_delay` (RPKI time-of-flight); routers see the removal
  /// only after `at + visibility_delay`. Returns number of ROAs ended.
  int remove(const Roa& roa, netbase::TimePoint at,
             netbase::Duration visibility_delay = 0);

  /// Validates an announcement of `prefix` by `origin` as seen at
  /// time `at` (RFC 6811 semantics: Invalid only if at least one ROA
  /// covers the prefix and none matches origin+length).
  RovState validate(const netbase::Prefix& prefix, bgp::Asn origin,
                    netbase::TimePoint at) const;

  /// All times at which the set of valid ROAs changes — the simulator
  /// uses these to schedule re-validation at compliant routers.
  std::vector<netbase::TimePoint> change_times() const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Roa roa;
    netbase::TimePoint valid_from;
    std::optional<netbase::TimePoint> valid_until;  // nullopt = open
  };
  std::vector<Entry> entries_;
};

}  // namespace zombiescope::rpki

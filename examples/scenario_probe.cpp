// scenario_probe — development diagnostic: runs the longlived2024
// scenario and prints the headline numbers for calibration.

#include <cstdio>

#include "analysis/stats.hpp"
#include "scenarios/longlived2024.hpp"
#include "zombie/longlived.hpp"
#include "zombie/noisy.hpp"

using namespace zombiescope;

int main() {
  const auto t0 = static_cast<double>(clock());
  scenarios::LongLived2024Spec spec;
  auto out = scenarios::run_longlived2024(spec);
  std::printf("sim events=%llu delivered=%llu suppressed=%llu stalled=%llu\n",
              (unsigned long long)out.sim_stats.events_processed,
              (unsigned long long)out.sim_stats.messages_delivered,
              (unsigned long long)out.sim_stats.messages_suppressed,
              (unsigned long long)out.sim_stats.messages_stalled);
  std::printf("updates=%zu rib_dump_records=%zu events=%zu studied=%d peers=%zu\n",
              out.updates.size(), out.rib_dumps.size(), out.events.size(),
              out.studied_announcements, out.all_peers.size());
  std::printf("run time %.1fs\n", (clock() - t0) / CLOCKS_PER_SEC);

  // Threshold sweep, noisy excluded and included.
  zombie::LongLivedConfig cfg_all;
  zombie::LongLivedConfig cfg_clean;
  for (const auto& peer : out.noisy_peers) cfg_clean.excluded_peers.insert(peer);
  zombie::LongLivedZombieDetector det_all{cfg_all};
  zombie::LongLivedZombieDetector det_clean{cfg_clean};
  std::vector<netbase::Duration> thresholds;
  for (int m = 90; m <= 180; m += 10) thresholds.push_back(m * netbase::kMinute);
  auto sweep_all = det_all.sweep(out.updates, out.events, thresholds);
  auto sweep_clean = det_clean.sweep(out.updates, out.events, thresholds);
  for (std::size_t i = 0; i < sweep_all.size(); ++i) {
    std::printf("thr=%3lldm all: outbreaks=%3d (%5.2f%%) routes=%4d | clean: outbreaks=%3d (%5.2f%%) routes=%4d\n",
                (long long)(sweep_all[i].threshold / 60), sweep_all[i].outbreaks,
                sweep_all[i].announcement_fraction * 100, sweep_all[i].routes,
                sweep_clean[i].outbreaks, sweep_clean[i].announcement_fraction * 100,
                sweep_clean[i].routes);
  }

  // Lifespans.
  zombie::LifespanAnalyzer lf_all{cfg_all};
  zombie::LifespanAnalyzer lf_clean{cfg_clean};
  for (auto* lf : {&lf_all, &lf_clean}) {
    auto spans = lf->analyze(out.rib_dumps, out.events, out.rib_dump_interval);
    int over_1d = 0;
    std::printf("%s lifespans: total=%zu durations(d):", lf == &lf_all ? "ALL" : "CLEAN",
                spans.size());
    std::vector<double> days;
    for (const auto& s : spans) {
      if (s.duration() >= netbase::kDay) {
        ++over_1d;
        days.push_back(static_cast<double>(s.duration()) / netbase::kDay);
      }
    }
    std::sort(days.begin(), days.end());
    for (double d : days) std::printf(" %.1f", d);
    std::printf("  (>=1d: %d)\n", over_1d);
    int res = 0;
    for (const auto& s : spans) res += static_cast<int>(s.resurrections.size());
    std::printf("  resurrection events: %d\n", res);
  }

  // Noisy router stats (Table 5 calibration).
  auto res90 = det_all.detect(out.updates, out.events, 90 * netbase::kMinute);
  auto res180 = det_all.detect(out.updates, out.events, 180 * netbase::kMinute);
  for (const auto& router : out.rrc25_noisy_routers) {
    int n90 = 0, n180 = 0;
    for (const auto& o : res90.outbreaks)
      for (const auto& r : o.routes)
        if (r.peer == router) ++n90;
    for (const auto& o : res180.outbreaks)
      for (const auto& r : o.routes)
        if (r.peer == router) ++n180;
    std::printf("noisy %s: 90min=%d (%.2f%%) 180min=%d (%.2f%%)\n",
                zombie::to_string(router).c_str(), n90,
                100.0 * n90 / out.studied_announcements, n180,
                100.0 * n180 / out.studied_announcements);
  }
  return 0;
}

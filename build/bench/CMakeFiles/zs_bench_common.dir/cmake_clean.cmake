file(REMOVE_RECURSE
  "CMakeFiles/zs_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/zs_bench_common.dir/bench_common.cpp.o.d"
  "libzs_bench_common.a"
  "libzs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for zs_bgp.
# This may be replaced when dependencies are built.

#include "mrt/record.hpp"

namespace zombiescope::mrt {

netbase::TimePoint record_timestamp(const MrtRecord& record) {
  return std::visit([](const auto& r) { return r.timestamp; }, record);
}

std::string record_summary(const MrtRecord& record) {
  struct Visitor {
    std::string operator()(const Bgp4mpMessage& m) const {
      return netbase::format_utc(m.timestamp) + "|BGP4MP|AS" + std::to_string(m.peer_asn) +
             "|" + m.peer_address.to_string() + "|" + m.update.summary();
    }
    std::string operator()(const Bgp4mpStateChange& s) const {
      return netbase::format_utc(s.timestamp) + "|STATE|AS" + std::to_string(s.peer_asn) +
             "|" + s.peer_address.to_string() + "|" + bgp::to_string(s.old_state) + "->" +
             bgp::to_string(s.new_state);
    }
    std::string operator()(const PeerIndexTable& t) const {
      return netbase::format_utc(t.timestamp) + "|PEER_INDEX_TABLE|" + t.view_name + "|" +
             std::to_string(t.peers.size()) + " peers";
    }
    std::string operator()(const RibEntryRecord& r) const {
      return netbase::format_utc(r.timestamp) + "|RIB|" + r.prefix.to_string() + "|" +
             std::to_string(r.entries.size()) + " entries";
    }
  };
  return std::visit(Visitor{}, record);
}

}  // namespace zombiescope::mrt

# Empty compiler generated dependencies file for fig3_duration_cdf.
# This may be replaced when dependencies are built.

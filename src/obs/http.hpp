// obs/http.hpp — live introspection over HTTP.
//
// A deliberately tiny embedded server (POSIX sockets + poll, no
// external deps, one background thread) so a long zssim/zsdetect run
// — or the zslived daemon — can be inspected while it is running
// instead of only at exit:
//
//   GET /              JSON index of every served endpoint (capability
//                      detection for clients like zstop)
//   GET /metrics       Prometheus text exposition of the global registry
//   GET /healthz       {"status":"ok",...} liveness JSON
//   GET /spans         the global tracer's span ring as zsobs-trace-v1
//   GET /journal/tail  last events of the global journal as NDJSON
//                      (?n=N, default 256, capped at the recent buffer)
//   GET /profile       sample the process with zsprof for ?seconds=N
//                      (default 5, cap 60) and return folded stacks;
//                      409 if a profiling session is already active,
//                      501 when the profiler is compiled out
//   GET /latency       the zslat stage-latency histograms as JSON
//                      (p50/p95/p99 per registered histogram) or
//                      folded per-bucket text with ?format=folded
//   GET /heap          observe allocations with zsheap for ?seconds=N
//                      (default 5, cap 60) and return per-span shares
//                      + top sampled sites; 409 if a heap session is
//                      already active, 501 when compiled out or the
//                      allocator belongs to a sanitizer
//
// Subsystems register additional endpoints before start():
// add_endpoint() for plain request/response handlers (zslive's
// /live/zombies and /live/stats), add_stream() for Server-Sent-Events
// endpoints backed by an SseChannel (zslive's /live/events).
//
// The serving loop multiplexes every connection over one poll() set
// with non-blocking sockets and per-connection output buffers, so one
// slow or dead client can never head-of-line-block a /metrics scrape
// or starve the other SSE subscribers. Two policies bound a client's
// footprint:
//   * streaming clients whose unsent backlog exceeds
//     max_client_buffer() are evicted (counted in
//     zs_http_slow_clients_evicted_total and journalled as
//     live_client_evicted);
//   * non-streaming responses get a flush deadline; a client that
//     stops reading is closed when it expires.
//
// This is an operator port for a measurement tool, not a web server:
// bodies are ignored, HEAD is answered with the GET's headers and no
// payload, and any other method gets a 405. Handlers run on the
// serving thread (an on-demand
// /profile blocks other clients for its sampling window — it is an
// operator action, not a scrape target). Enabled with --http-port.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace zombiescope::obs {

/// What a dynamic endpoint handler returns. `etag` (when non-empty) is
/// emitted as a strong ETag header so pollers can detect unchanged
/// snapshots.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::string etag;
};

/// Parses "?key=123" style query values; fallback on anything
/// malformed or absent. Exposed for endpoint handlers.
std::size_t query_uint(std::string_view target, std::string_view key,
                       std::size_t fallback);

/// Raw "?key=value" query lookup (with %xx decoding, so an encoded
/// prefix like 203.0.113.0%2F24 works). Empty if absent.
std::string query_string(std::string_view target, std::string_view key);

/// A broadcast hub for one Server-Sent-Events endpoint. Producers
/// (shard workers, any thread) publish() events; the serving thread
/// copies frames to every subscribed connection at its own pace. A
/// bounded deque of pre-framed events decouples the two: a client that
/// connects mid-stream starts at the current head (or at ?since=SEQ to
/// replay retained frames), and one that falls behind the retention
/// window gets a `: missed N` comment instead of silently skipped data.
class SseChannel {
 public:
  static constexpr std::size_t kDefaultMaxFrames = 1024;

  explicit SseChannel(std::size_t max_frames = kDefaultMaxFrames);
  SseChannel(const SseChannel&) = delete;
  SseChannel& operator=(const SseChannel&) = delete;

  /// Frames `data` (every '\n'-separated line becomes one `data:`
  /// line) under `event` with the next sequence number and retains it.
  void publish(std::string_view event, std::string_view data);

  /// The sequence number the *next* published frame will get. A new
  /// subscriber starting here sees only future events.
  std::uint64_t head() const;

  /// Appends every retained frame with seq >= cursor to `out` and
  /// returns the new cursor (head()). If `cursor` has fallen out of
  /// the retention window, a `: missed N events` comment is appended
  /// first.
  std::uint64_t collect(std::uint64_t cursor, std::string& out) const;

  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Installs a fanout-latency observer: called once per frame copied
  /// into a subscriber's buffer with (now - publish instant) in ns —
  /// the "fanout" stage of the live pipeline. Install before the
  /// server starts; pass nullptr to remove. Replayed frames
  /// (?since=SEQ) report their true, large staleness.
  void set_latency_sink(std::function<void(std::uint64_t ns)> sink);

  /// Self-pipe wakeup: publish() writes one byte to `fd` so a poll()ing
  /// server wakes immediately instead of on its next pump interval.
  /// The server installs its pipe on start() and removes it (-1) on
  /// stop(); the fd is not owned. A full pipe is fine — a wakeup is
  /// already pending.
  void set_wakeup_fd(int fd);

  /// Pure SSE wire framing of one event (exposed for tests):
  ///   event: <name>\n
  ///   data: <line>\n      (repeated per line of `data`)
  ///   id: <id>\n
  ///   \n
  static std::string frame(std::string_view event, std::string_view data,
                           std::uint64_t id);

 private:
  struct Frame {
    std::string text;
    std::chrono::steady_clock::time_point published_at;
  };

  mutable std::mutex mutex_;
  std::deque<Frame> frames_;     // frames_[i] has seq first_seq_ + i
  std::uint64_t first_seq_ = 1;  // seq of frames_.front()
  std::uint64_t next_seq_ = 1;
  std::size_t max_frames_;
  std::atomic<std::uint64_t> published_{0};
  std::function<void(std::uint64_t)> latency_sink_;
  int wake_fd_ = -1;  // guarded by mutex_
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(std::string_view target)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a GET handler for the exact path (no trailing slash
  /// magic). Must be called before start(); the handler runs on the
  /// serving thread. Registering a built-in path overrides it.
  void add_endpoint(std::string path, Handler handler);

  /// Registers an SSE endpoint streaming `channel` (not owned; must
  /// outlive the server). Must be called before start().
  void add_stream(std::string path, SseChannel* channel);

  /// Comment-frame keepalive cadence for streaming connections.
  void set_heartbeat_interval_ms(int ms) { heartbeat_ms_ = ms; }
  /// Fallback poll interval while SSE clients are connected. Frame
  /// delivery is event-driven (each publish() wakes the loop through a
  /// self-pipe), so this only bounds heartbeat/eviction latency — it
  /// is no longer the frame-delivery floor.
  void set_stream_poll_interval_ms(int ms) {
    stream_poll_ms_ = ms < 1 ? 1 : ms;
  }
  int stream_poll_interval_ms() const { return stream_poll_ms_; }
  /// Unsent-backlog bound above which a streaming client is evicted.
  void set_max_client_buffer(std::size_t bytes) { max_client_buffer_ = bytes; }
  std::size_t max_client_buffer() const { return max_client_buffer_; }

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port) and starts the
  /// serving thread. Returns false (with no thread started) if the
  /// socket cannot be bound. Calling start() twice is an error.
  bool start(std::uint16_t port);

  /// Stops the serving thread and closes the socket and every
  /// connection. Idempotent.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  /// The bound port (the real one when started with port 0).
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_clients_evicted() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct Route {
    Handler handler;        // non-streaming endpoint
    SseChannel* channel = nullptr;  // streaming endpoint
  };

  void serve_loop();
  void accept_ready();
  void read_ready(Conn& conn);
  void dispatch(Conn& conn, std::string_view method, std::string_view target);
  void pump_stream(Conn& conn);
  void flush_out(Conn& conn);
  /// {"endpoints":[{"path":...,"stream":bool},...]} — built-ins plus
  /// everything registered, served on GET /.
  std::string index_json() const;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  // self-pipe the SSE channels write to on publish
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> evictions_{0};
  int heartbeat_ms_ = 10'000;
  int stream_poll_ms_ = 100;
  std::size_t max_client_buffer_ = 256 * 1024;
  std::vector<std::pair<std::string, Route>> routes_;
  std::vector<Conn*> conns_;
  Counter m_requests_;
  Counter m_evictions_;
  Gauge m_open_conns_;
  Gauge m_sse_clients_;
};

}  // namespace zombiescope::obs

// live/bgp_feed.hpp — the BGP-4 wire feed: zslived as a collector.
//
// Wraps a wire::BgpSpeaker as a FeedSource, making the daemon a real
// BGP listener (--bgp-listen) and/or an active peer (--bgp-peer).
// Every UPDATE a session delivers becomes a Bgp4mpMessage submitted to
// the LiveService; session lifecycle becomes Bgp4mpStateChange records
// — with two deliberate exceptions that make the wire path equivalent
// to the archive path:
//
//   * Bridge sessions (OPEN capability 240) are transport tunnels for
//     replayed archives. Their UPDATEs carry wire/bridge.hpp stamp
//     attributes restoring the archive timestamp and a global sequence
//     number; the feed pops the attributes, re-orders on the sequence
//     (a min-heap releasing only consecutive numbers), and submits in
//     exact archive order — so a wire-driven replay yields the same
//     records in the same order as ReplayFeedSource, and therefore the
//     same zombie set (tests/wire_e2e_test.cpp). A bridge session's
//     own socket lifecycle is NOT a routing event and is suppressed.
//   * A real peer dropping with graceful restart negotiated is
//     reported with retained=true: the feed suppresses the state
//     change, because the collector's RIB did not flush — this is the
//     zombie-manufacturing path. The routes come back out through the
//     speaker's flush callback (End-of-RIB sweep or retention expiry)
//     as synthetic withdrawals.

#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "live/feed.hpp"
#include "obs/http.hpp"
#include "wire/speaker.hpp"

namespace zombiescope::live {

class BgpFeedSource : public FeedSource {
 public:
  /// Binds the listener immediately (port 0 picks an ephemeral port),
  /// so port() is valid before run(). Throws std::runtime_error when
  /// the socket cannot be bound.
  BgpFeedSource(wire::SpeakerConfig config, std::uint16_t port);

  std::uint16_t port() const { return speaker_.port(); }

  /// Registers an active peer, dialed once run() starts.
  void connect_to(const std::string& host, std::uint16_t port) {
    speaker_.connect_to(host, port);
  }

  /// Adds GET /sessions to the daemon's HTTP server.
  void attach_http(obs::HttpServer& http);

  wire::BgpSpeaker& speaker() { return speaker_; }

  RunStats run(LiveService& service) override;
  void stop() override { speaker_.stop(); }

 private:
  struct PendingRecord {
    std::uint64_t sequence = 0;
    mrt::MrtRecord record;
    std::chrono::steady_clock::time_point ingest{};
  };
  struct SequenceAfter {
    bool operator()(const PendingRecord& a, const PendingRecord& b) const {
      return a.sequence > b.sequence;
    }
  };

  void submit_or_queue(LiveService& service, PendingRecord&& pending,
                       bool stamped, RunStats& stats);

  wire::SpeakerConfig config_;
  wire::BgpSpeaker speaker_;
  std::priority_queue<PendingRecord, std::vector<PendingRecord>, SequenceAfter>
      reorder_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace zombiescope::live

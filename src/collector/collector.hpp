// collector/collector.hpp — RIS-style BGP collection infrastructure.
//
// A Collector maintains peering sessions with volunteer ASes. Each
// PeerSession is a MonitorSink on the simulated router: it receives
// the peer's best-route changes (a full feed), maintains the
// collector-side view of that peer's table, and appends MRT records
// (BGP4MP_MESSAGE_AS4 / BGP4MP_STATE_CHANGE_AS4) to the collector's
// update archive. RIB dumps (TABLE_DUMP_V2) snapshot all sessions'
// views every dump interval, like RIPE RIS's 8-hourly dumps.
//
// Collector-side noise is modelled here, not in the simulator: a
// session can lose withdrawals with some probability (the paper's
// noisy peers AS16347 / AS211509 / AS211380, with 7–43 % stuck-route
// probability against a ~1.6 % background) and can be reset, which
// emits STATE messages, clears the view, and re-syncs from the peer's
// actual table — the mechanism behind Fig. 4's visibility gaps.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mrt/record.hpp"
#include "netbase/rng.hpp"
#include "obs/metrics.hpp"
#include "simnet/simulation.hpp"

namespace zombiescope::collector {

/// Configuration of one collector peering session.
struct SessionConfig {
  bgp::Asn peer_asn = 0;
  netbase::IpAddress peer_address;  // identifies the peer *router*
  /// Probability that a withdrawal from the peer never reaches the
  /// archive (session-level noise). 0 = clean session.
  double withdrawal_loss_probability = 0.0;
  /// Restrict the noise to prefixes covered by this prefix (unset =
  /// all prefixes).
  std::optional<netbase::Prefix> noise_prefix_filter;
  /// Per-family overrides of withdrawal_loss_probability (< 0 = use
  /// the common value). BGP sessions carry the two address families
  /// with different machinery in practice; the paper's noisy peer
  /// AS16347 is dramatically noisier for IPv6 (42.8 %) than IPv4.
  double withdrawal_loss_probability_v4 = -1.0;
  double withdrawal_loss_probability_v6 = -1.0;
  /// Slow-convergence model: with this probability a withdrawal is
  /// recorded late by a uniform delay in [min, max] — transient
  /// zombies that clear between the 90-minute and 3-hour checks
  /// (the declining part of the paper's Fig. 2).
  double withdrawal_delay_probability = 0.0;
  netbase::Duration withdrawal_delay_min = 30 * netbase::kMinute;
  netbase::Duration withdrawal_delay_max = 200 * netbase::kMinute;
  /// Deterministic per-prefix withdrawal delays (the §5.1 Telstra-case
  /// peers that withdrew shortly before 150 minutes).
  struct ForcedWithdrawalDelay {
    netbase::Prefix prefix;
    netbase::Duration delay = 0;
  };
  std::vector<ForcedWithdrawalDelay> forced_delays;
  /// With this probability a recorded withdrawal is followed by a late
  /// re-announcement of the just-withdrawn route after a uniform delay
  /// in [min, max] — a churn remnant surfacing a stale path. These are
  /// the zombies a lagged looking-glass pipeline misses (Table 3's
  /// "Study misses" side) when they land close to the check time.
  double phantom_reannounce_probability = 0.0;
  netbase::Duration phantom_reannounce_min = 85 * netbase::kMinute;
  netbase::Duration phantom_reannounce_max = 89 * netbase::kMinute;

  double loss_probability_for(netbase::AddressFamily family) const {
    const double v = family == netbase::AddressFamily::kIpv4
                         ? withdrawal_loss_probability_v4
                         : withdrawal_loss_probability_v6;
    return v >= 0.0 ? v : withdrawal_loss_probability;
  }
};

/// A route in the collector's view of one peer.
struct ViewEntry {
  bgp::AsPath path;  // as exported by the peer (peer ASN prepended)
  bgp::PathAttributes attributes;
  netbase::TimePoint learned = 0;
};

class Collector;

/// One peer session; implements the simulator monitor interface.
class PeerSession : public simnet::MonitorSink {
 public:
  PeerSession(Collector& owner, SessionConfig config, netbase::Rng rng);

  void on_route_change(netbase::TimePoint t, const simnet::RibChange& change) override;

  /// Takes the session down at time `down` and re-establishes it at
  /// `up` (both scheduled inside the simulation). On re-establish the
  /// peer re-sends its full table, so the collector re-learns any
  /// zombie still stuck in the peer's RIB.
  void schedule_reset(simnet::Simulation& sim, netbase::TimePoint down,
                      netbase::TimePoint up);

  /// Binds the session to a simulation so delayed withdrawals can be
  /// scheduled (called by Collector::add_peer).
  void bind(simnet::Simulation& sim) { sim_ = &sim; }

  const SessionConfig& config() const { return config_; }
  const std::map<netbase::Prefix, ViewEntry>& view() const { return view_; }
  bool established() const { return established_; }

 private:
  void record_announce(netbase::TimePoint t, const netbase::Prefix& prefix,
                       const ViewEntry& entry);
  void record_withdraw(netbase::TimePoint t, const netbase::Prefix& prefix);
  void record_state(netbase::TimePoint t, bgp::SessionState from, bgp::SessionState to);

  Collector& owner_;
  SessionConfig config_;
  netbase::Rng rng_;
  std::map<netbase::Prefix, ViewEntry> view_;
  bool established_ = true;
  simnet::Simulation* sim_ = nullptr;
  /// Generation counter per prefix: a delayed withdrawal only fires if
  /// no newer announcement arrived in the meantime.
  std::map<netbase::Prefix, std::uint64_t> generation_;
};

class Collector {
 public:
  /// A collector has one transport address per family: BGP4MP records
  /// carry peer and local addresses under a single AFI, so the local
  /// address must match the session's family.
  Collector(std::string name, bgp::Asn asn, netbase::IpAddress address_v4,
            netbase::IpAddress address_v6 = netbase::IpAddress::parse("2001:7f8:fff::255"))
      : name_(std::move(name)),
        asn_(asn),
        address_v4_(address_v4),
        address_v6_(address_v6),
        m_updates_(obs::Registry::global().counter("zs_collector_updates_total")),
        m_rib_records_(obs::Registry::global().counter("zs_collector_rib_records_total")),
        m_rib_dumps_(obs::Registry::global().counter("zs_collector_rib_dumps_total")),
        m_monitor_events_(
            obs::Registry::global().counter("zs_collector_monitor_events_total")),
        m_withdrawals_lost_(
            obs::Registry::global().counter("zs_collector_withdrawals_lost_total")) {}

  /// Creates a session and attaches it to the simulated peer AS.
  PeerSession& add_peer(simnet::Simulation& sim, const SessionConfig& config,
                        netbase::Rng rng);

  /// Appends a TABLE_DUMP_V2 snapshot (PEER_INDEX_TABLE + one RIB
  /// record per visible prefix) to the RIB archive.
  void dump_ribs(netbase::TimePoint t);

  /// Schedules dump_ribs every `interval` from `start` to `end`.
  void schedule_rib_dumps(simnet::Simulation& sim, netbase::TimePoint start,
                          netbase::TimePoint end, netbase::Duration interval);

  const std::string& name() const { return name_; }
  bgp::Asn asn() const { return asn_; }
  /// The collector transport address matching `family`.
  const netbase::IpAddress& address(netbase::AddressFamily family) const {
    return family == netbase::AddressFamily::kIpv4 ? address_v4_ : address_v6_;
  }

  /// The archived update stream (BGP4MP records, in arrival order).
  const std::vector<mrt::MrtRecord>& updates() const { return updates_; }
  /// The archived RIB dumps (TABLE_DUMP_V2 records, in dump order).
  const std::vector<mrt::MrtRecord>& rib_dumps() const { return rib_dumps_; }
  const std::vector<std::unique_ptr<PeerSession>>& sessions() const { return sessions_; }

  void append_update(mrt::MrtRecord record) {
    m_updates_.inc();
    updates_.push_back(std::move(record));
  }

 private:
  friend class PeerSession;

  std::string name_;
  bgp::Asn asn_;
  netbase::IpAddress address_v4_;
  netbase::IpAddress address_v6_;
  std::vector<std::unique_ptr<PeerSession>> sessions_;
  std::vector<mrt::MrtRecord> updates_;
  std::vector<mrt::MrtRecord> rib_dumps_;

  obs::Counter m_updates_;
  obs::Counter m_rib_records_;
  obs::Counter m_rib_dumps_;
  obs::Counter m_monitor_events_;
  obs::Counter m_withdrawals_lost_;
};

}  // namespace zombiescope::collector

// wire/message.hpp — BGP-4 wire message codecs (RFC 4271 §4).
//
// Everything below the UPDATE body: the 19-byte message header
// (16-byte all-ones marker, length, type), OPEN with its optional
// capability parameters (RFC 5492), NOTIFICATION with the full
// error-code/subcode vocabulary (RFC 4271 §6 + the Cease subcodes of
// RFC 4486 and the Send Hold code of RFC 9687), and KEEPALIVE. UPDATE
// bodies delegate to the existing bgp/update codec — this layer only
// frames and validates them.
//
// Capabilities carried in OPEN:
//   1   multiprotocol (RFC 4760)        — AFI/SAFI pairs
//   2   route refresh (RFC 2918)
//   64  graceful restart (RFC 4724)     — flags, restart time, tuples
//   65  4-octet AS numbers (RFC 6793)
//   71  long-lived graceful restart     — tuples with per-AFI stale time
//       (draft-uttaro-idr-bgp-persistence / RFC 9494 family)
//   240 zombiescope peer-address bridge — experimental range (RFC 8810);
//       carries the *logical* peer address so a loopback replay session
//       can present the identity of the monitor it is re-enacting.
//       PeerKey in the detector is (ASN, address); without this every
//       bridged session would collapse into 127.0.0.1.
//
// Decode errors throw WireError carrying the NOTIFICATION code/subcode
// the receiver must send back (RFC 4271 §6.1–6.3), so the session layer
// can translate a parse failure straight into the right NOTIFICATION.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "bgp/update.hpp"
#include "netbase/bytes.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::wire {

inline constexpr std::size_t kHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;
inline constexpr std::uint8_t kBgpVersion = 4;

/// NOTIFICATION error codes (RFC 4271 §4.5; 7 = RFC 7313, 8 = RFC 9687).
enum class NotifyCode : std::uint8_t {
  kMessageHeaderError = 1,
  kOpenMessageError = 2,
  kUpdateMessageError = 3,
  kHoldTimerExpired = 4,
  kFsmError = 5,
  kCease = 6,
  kRouteRefreshError = 7,
  kSendHoldTimerExpired = 8,
};

// Message Header Error subcodes (§6.1).
inline constexpr std::uint8_t kHdrConnectionNotSynchronized = 1;
inline constexpr std::uint8_t kHdrBadMessageLength = 2;
inline constexpr std::uint8_t kHdrBadMessageType = 3;
// OPEN Message Error subcodes (§6.2; 7 = RFC 5492).
inline constexpr std::uint8_t kOpenUnsupportedVersion = 1;
inline constexpr std::uint8_t kOpenBadPeerAs = 2;
inline constexpr std::uint8_t kOpenBadBgpIdentifier = 3;
inline constexpr std::uint8_t kOpenUnsupportedOptionalParameter = 4;
inline constexpr std::uint8_t kOpenUnacceptableHoldTime = 6;
inline constexpr std::uint8_t kOpenUnsupportedCapability = 7;
// UPDATE Message Error subcodes (§6.3).
inline constexpr std::uint8_t kUpdMalformedAttributeList = 1;
inline constexpr std::uint8_t kUpdInvalidNetworkField = 10;
inline constexpr std::uint8_t kUpdMalformedAsPath = 11;
// Cease subcodes (RFC 4486).
inline constexpr std::uint8_t kCeaseAdminShutdown = 2;
inline constexpr std::uint8_t kCeasePeerDeconfigured = 3;
inline constexpr std::uint8_t kCeaseAdminReset = 4;
inline constexpr std::uint8_t kCeaseConnectionRejected = 5;
inline constexpr std::uint8_t kCeaseConnectionCollision = 7;
inline constexpr std::uint8_t kCeaseOutOfResources = 8;

std::string to_string(NotifyCode code);
/// Human name for a (code, subcode) pair; "subcode N" for unknown ones.
std::string notify_subcode_name(NotifyCode code, std::uint8_t subcode);

/// A decode failure with the NOTIFICATION the receiver owes the peer.
class WireError : public netbase::DecodeError {
 public:
  WireError(NotifyCode code, std::uint8_t subcode, const std::string& what)
      : netbase::DecodeError(what), code_(code), subcode_(subcode) {}
  NotifyCode code() const { return code_; }
  std::uint8_t subcode() const { return subcode_; }

 private:
  NotifyCode code_;
  std::uint8_t subcode_;
};

/// Parsed 19-byte header. `length` is the total message length
/// including the header itself.
struct MessageHeader {
  std::uint16_t length = 0;
  bgp::MessageType type = bgp::MessageType::kKeepalive;
};

/// Validates marker + length bounds (per-type minima, 4096 maximum).
/// Throws WireError(kMessageHeaderError, ...) on violation.
MessageHeader decode_header(std::span<const std::uint8_t> wire);

/// Writes marker + placeholder length + type; returns the offset of
/// the length field for patch_u16 once the body is in.
std::size_t begin_message(netbase::ByteWriter& w, bgp::MessageType type);

/// Graceful-restart capability tuple (RFC 4724 §3).
struct GrTuple {
  std::uint16_t afi = 1;
  std::uint8_t safi = 1;
  bool forwarding_preserved = false;

  friend bool operator==(const GrTuple&, const GrTuple&) = default;
};

/// Long-lived graceful restart tuple: AFI/SAFI plus a 24-bit stale
/// time in seconds.
struct LlgrTuple {
  std::uint16_t afi = 1;
  std::uint8_t safi = 1;
  std::uint32_t stale_time = 0;

  friend bool operator==(const LlgrTuple&, const LlgrTuple&) = default;
};

/// Graceful-restart capability (code 64).
struct GracefulRestart {
  bool restarting = false;          // R flag: restart in progress
  std::uint16_t restart_time = 120; // 12 bits on the wire
  std::vector<GrTuple> tuples;

  friend bool operator==(const GracefulRestart&, const GracefulRestart&) = default;
};

/// LLGR capability (code 71).
struct LongLivedGracefulRestart {
  std::vector<LlgrTuple> tuples;

  friend bool operator==(const LongLivedGracefulRestart&,
                         const LongLivedGracefulRestart&) = default;
};

/// A capability we carry but do not interpret.
struct RawCapability {
  std::uint8_t code = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RawCapability&, const RawCapability&) = default;
};

/// The OPEN message, with the capabilities this speaker understands
/// decoded into typed fields and the rest preserved raw.
struct OpenMessage {
  std::uint8_t version = kBgpVersion;
  bgp::Asn asn = 0;            // full 32-bit; the wire My-AS field
                               // carries AS_TRANS when it won't fit
  std::uint16_t hold_time = 90;
  std::uint32_t bgp_id = 0;

  bool cap_four_octet_asn = true;
  bool cap_route_refresh = false;
  std::vector<std::pair<std::uint16_t, std::uint8_t>> multiprotocol;  // AFI, SAFI
  std::optional<GracefulRestart> graceful_restart;
  std::optional<LongLivedGracefulRestart> llgr;
  /// Capability 240: the logical peer address a bridged session
  /// presents (1 family byte: 4 or 6, then 4 or 16 address bytes).
  std::optional<netbase::IpAddress> bridge_peer_address;
  std::vector<RawCapability> unknown_capabilities;

  std::vector<std::uint8_t> encode() const;
  /// Throws WireError(kOpenMessageError, ...) on malformed input.
  static OpenMessage decode(std::span<const std::uint8_t> wire);

  friend bool operator==(const OpenMessage&, const OpenMessage&) = default;
};

struct NotificationMessage {
  NotifyCode code = NotifyCode::kCease;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;

  std::vector<std::uint8_t> encode() const;
  static NotificationMessage decode(std::span<const std::uint8_t> wire);
  /// "Cease/administrative shutdown" style display string.
  std::string to_string() const;

  friend bool operator==(const NotificationMessage&, const NotificationMessage&) = default;
};

/// The 19-byte KEEPALIVE.
std::vector<std::uint8_t> encode_keepalive();

/// Frames an UPDATE body through the existing bgp/update codec. The
/// encoded form already carries the full header; this checks the 4096
/// cap (throws WireError(kUpdateMessageError) when the routes cannot
/// fit one message — callers split before encoding).
std::vector<std::uint8_t> encode_update(const bgp::UpdateMessage& update);

/// Decodes an UPDATE wire image, translating bgp codec DecodeErrors
/// into WireError(kUpdateMessageError, kUpdMalformedAttributeList).
bgp::UpdateMessage decode_update(std::span<const std::uint8_t> wire);

/// Accumulates raw socket bytes and yields complete BGP messages.
/// Enforces marker/length/type validity as soon as a header is
/// complete — a stream with a bad header throws WireError immediately,
/// without waiting for the (bogus) length to fill.
class FrameReader {
 public:
  void append(std::span<const std::uint8_t> bytes);
  void append(const std::uint8_t* data, std::size_t size);

  /// Next complete message (header included), or nullopt if more bytes
  /// are needed. Throws WireError on a malformed header.
  std::optional<std::vector<std::uint8_t>> next();

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace zombiescope::wire

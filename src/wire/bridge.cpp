#include "wire/bridge.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "netbase/bytes.hpp"
#include "wire/message.hpp"

namespace zombiescope::wire {

namespace {

// Optional-transitive so a conforming speaker in the middle would pass
// them through; partial bit clear (we are the originator).
constexpr std::uint8_t kBridgeAttrFlags = 0xc0;

std::vector<std::uint8_t> encode_stamp(const BridgeStamp& stamp) {
  netbase::ByteWriter writer;
  writer.u64(static_cast<std::uint64_t>(stamp.timestamp));
  writer.u64(stamp.sequence);
  return std::move(writer).take();
}

}  // namespace

void stamp_update(bgp::UpdateMessage& update, const BridgeStamp& stamp) {
  update.attributes.unknown.push_back(
      bgp::RawAttribute{kBridgeAttrFlags, kAttrBridgeStamp, encode_stamp(stamp)});
}

std::optional<BridgeStamp> extract_stamp(bgp::UpdateMessage& update) {
  auto& unknown = update.attributes.unknown;
  for (auto it = unknown.begin(); it != unknown.end(); ++it) {
    if (it->type != kAttrBridgeStamp) continue;
    if (it->payload.size() != 16) return std::nullopt;
    netbase::ByteReader reader(it->payload);
    BridgeStamp stamp;
    stamp.timestamp = static_cast<netbase::TimePoint>(reader.u64());
    stamp.sequence = reader.u64();
    unknown.erase(it);
    return stamp;
  }
  return std::nullopt;
}

bgp::UpdateMessage make_state_update(std::uint16_t old_state,
                                     std::uint16_t new_state,
                                     const BridgeStamp& stamp) {
  bgp::UpdateMessage update;
  netbase::ByteWriter writer;
  writer.u16(old_state);
  writer.u16(new_state);
  update.attributes.unknown.push_back(bgp::RawAttribute{
      kBridgeAttrFlags, kAttrBridgeState, std::move(writer).take()});
  stamp_update(update, stamp);
  return update;
}

std::optional<std::pair<std::uint16_t, std::uint16_t>> extract_state(
    bgp::UpdateMessage& update) {
  auto& unknown = update.attributes.unknown;
  for (auto it = unknown.begin(); it != unknown.end(); ++it) {
    if (it->type != kAttrBridgeState) continue;
    if (it->payload.size() != 4) return std::nullopt;
    netbase::ByteReader reader(it->payload);
    const std::uint16_t old_state = reader.u16();
    const std::uint16_t new_state = reader.u16();
    unknown.erase(it);
    return std::make_pair(old_state, new_state);
  }
  return std::nullopt;
}

std::vector<bgp::UpdateMessage> split_update(bgp::UpdateMessage update) {
  if (update.encode().size() <= kMaxMessageSize) return {std::move(update)};
  std::vector<bgp::UpdateMessage> parts;
  // Withdrawals carry no attributes: peel them into their own
  // messages first, a few hundred prefixes at a time.
  constexpr std::size_t kChunk = 128;
  for (std::size_t i = 0; i < update.withdrawn.size(); i += kChunk) {
    bgp::UpdateMessage part;
    part.withdrawn.assign(
        update.withdrawn.begin() + static_cast<std::ptrdiff_t>(i),
        update.withdrawn.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + kChunk, update.withdrawn.size())));
    parts.push_back(std::move(part));
  }
  for (std::size_t i = 0; i < update.announced.size(); i += kChunk) {
    bgp::UpdateMessage part;
    part.attributes = update.attributes;
    part.announced.assign(
        update.announced.begin() + static_cast<std::ptrdiff_t>(i),
        update.announced.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + kChunk, update.announced.size())));
    parts.push_back(std::move(part));
  }
  // A pathological attribute set could still overflow; recurse until
  // every part fits or cannot shrink further.
  std::vector<bgp::UpdateMessage> fitted;
  for (auto& part : parts) {
    if (part.encode().size() <= kMaxMessageSize ||
        part.withdrawn.size() + part.announced.size() <= 1) {
      fitted.push_back(std::move(part));
      continue;
    }
    for (auto& sub : split_update(std::move(part))) fitted.push_back(std::move(sub));
  }
  return fitted;
}

int wire_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("bridge: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bridge: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("bridge: connect to " + host + ":" +
                             std::to_string(port) + " failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

namespace {

void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("bridge: send failed");
  }
}

/// Blocking read of the next complete BGP message.
std::vector<std::uint8_t> read_message(int fd, FrameReader& reader) {
  for (;;) {
    if (auto frame = reader.next()) return std::move(*frame);
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      reader.append(reinterpret_cast<const std::uint8_t*>(buf),
                    static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("bridge: peer closed during handshake");
  }
}

}  // namespace

void wire_handshake(int fd, std::uint32_t asn, std::uint32_t bgp_id,
                    netbase::Duration hold_time,
                    const std::optional<netbase::IpAddress>& logical_address) {
  OpenMessage open;
  open.asn = asn;
  open.hold_time = static_cast<std::uint16_t>(
      std::clamp<netbase::Duration>(hold_time, 3, 0xffff));
  open.bgp_id = bgp_id;
  open.cap_four_octet_asn = true;
  open.multiprotocol = {{1, 1}, {2, 1}};
  open.bridge_peer_address = logical_address;
  const auto open_wire = open.encode();
  send_all(fd, open_wire.data(), open_wire.size());

  FrameReader reader;
  bool saw_open = false;
  bool saw_keepalive = false;
  bool keepalive_sent = false;
  while (!saw_open || !saw_keepalive) {
    const auto frame = read_message(fd, reader);
    const MessageHeader header = decode_header(frame);
    if (header.type == bgp::MessageType::kOpen) {
      OpenMessage::decode(frame);  // validate; contents are not needed
      saw_open = true;
      if (!keepalive_sent) {
        const auto ka = encode_keepalive();
        send_all(fd, ka.data(), ka.size());
        keepalive_sent = true;
      }
    } else if (header.type == bgp::MessageType::kKeepalive) {
      saw_keepalive = true;
    } else if (header.type == bgp::MessageType::kNotification) {
      throw std::runtime_error("bridge: handshake refused: " +
                               NotificationMessage::decode(frame).to_string());
    }
  }
}

BridgeStats replay_over_wire(std::span<const mrt::MrtRecord> records,
                             const std::string& host, std::uint16_t port,
                             const BridgeOptions& options) {
  BridgeStats stats;

  struct PeerSession {
    int fd = -1;
    FrameReader reader;  // inbound KEEPALIVEs etc., drained and ignored
  };
  using PeerKey = std::pair<std::uint32_t, netbase::IpAddress>;
  std::map<PeerKey, PeerSession> sessions;

  auto session_for = [&](std::uint32_t asn, const netbase::IpAddress& address)
      -> PeerSession& {
    const PeerKey key{asn, address};
    auto it = sessions.find(key);
    if (it != sessions.end()) return it->second;
    PeerSession session;
    session.fd = wire_connect(host, port);
    // BGP ID derived from the logical address so collisions resolve
    // deterministically across bridge sessions.
    std::uint32_t bgp_id = 0;
    const auto& bytes = address.bytes();
    for (int i = 0; i < address.byte_length(); ++i)
      bgp_id = bgp_id * 31 + bytes[static_cast<std::size_t>(i)];
    if (bgp_id == 0) bgp_id = 1;
    wire_handshake(session.fd, asn == 0 ? options.fallback_asn : asn, bgp_id,
                   options.hold_time, address);
    ++stats.sessions;
    ::fcntl(session.fd, F_SETFL, O_NONBLOCK);
    return sessions.emplace(key, std::move(session)).first->second;
  };

  auto drain_inbound = [](PeerSession& session) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(session.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        session.reader.append(reinterpret_cast<const std::uint8_t*>(buf),
                              static_cast<std::size_t>(n));
        continue;
      }
      break;  // EAGAIN / closed: replay keeps pushing either way
    }
    try {
      while (session.reader.next().has_value()) {
      }
    } catch (const WireError&) {
    }
  };

  auto send_blocking = [&](PeerSession& session, const std::vector<std::uint8_t>& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(session.fd, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        drain_inbound(session);  // let the collector's KEEPALIVEs through
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("bridge: send failed mid-replay");
    }
    stats.bytes_sent += wire.size();
    ++stats.messages_sent;
  };

  std::uint64_t sequence = 0;
  for (const mrt::MrtRecord& record : records) {
    if (const auto* message = std::get_if<mrt::Bgp4mpMessage>(&record)) {
      PeerSession& session = session_for(message->peer_asn, message->peer_address);
      auto parts = split_update(message->update);
      if (parts.size() > 1) ++stats.splits;
      for (bgp::UpdateMessage& part : parts) {
        if (options.stamp)
          stamp_update(part, BridgeStamp{message->timestamp, sequence});
        ++sequence;
        send_blocking(session, encode_update(part));
        ++stats.updates_sent;
      }
    } else if (const auto* change = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
      PeerSession& session = session_for(change->peer_asn, change->peer_address);
      bgp::UpdateMessage update = make_state_update(
          static_cast<std::uint16_t>(change->old_state),
          static_cast<std::uint16_t>(change->new_state),
          BridgeStamp{change->timestamp, sequence});
      ++sequence;
      send_blocking(session, encode_update(update));
      ++stats.state_changes_sent;
    }
    // PeerIndexTable / RibEntryRecord carry no per-message wire form.
  }

  NotificationMessage goodbye;
  goodbye.code = NotifyCode::kCease;
  goodbye.subcode = kCeaseAdminShutdown;
  const auto goodbye_wire = goodbye.encode();
  for (auto& [key, session] : sessions) {
    try {
      send_blocking(session, goodbye_wire);
    } catch (const std::runtime_error&) {
    }
    ::close(session.fd);
  }
  return stats;
}

}  // namespace zombiescope::wire

// zsbenchdiff — statistical diff + regression gate over BENCH_*.json.
//
// Compares a baseline group of zsobs-v1 bench snapshots against a
// candidate group (repeated runs welcome: outliers are IQR-rejected and
// the min-of-N inliers represents each group). Prints the significant
// deltas and exits non-zero when a gated metric (wall time, peak RSS,
// *_seconds histogram totals) regresses past the threshold.
//
//   zsbenchdiff BASELINE.json... --vs CANDIDATE.json... [options]
//   zsbenchdiff --history DIR [options]
//
// In --history mode, DIR holds timestamped run directories (as written
// by scripts/run_bench.sh): the newest directory is the candidate and
// all older ones are the baseline.
//
// Options:
//   --threshold PCT   regression gate threshold (default 5)
//   --noise PCT       ignore deltas below this floor (default 1)
//   --gate-counters   also gate on counter/gauge drift
//   --gate-alloc      also gate heap.total_bytes / heap.allocs (the
//                     zsheap section), for allocation-reduction work
//   --gate-latency    also gate every latency:*:p99_ns (the zslat
//                     section), so delivery-latency p99 regressions
//                     fail CI like time regressions; p99s under 1 us
//                     on both sides stay informational (clock jitter)
//   --force           compare even when build identities differ
//   --json            machine-readable output (zsbenchdiff-v1)
//
// Exit codes: 0 no regression, 1 regression (gate tripped),
//             2 usage error, 3 bad input (unreadable/incompatible).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <string>
#include <string_view>
#include <vector>

#include "obs/benchdiff.hpp"
#include "obs/build_info.hpp"

using namespace zombiescope;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json... --vs CANDIDATE.json... [options]\n"
               "       %s --history DIR [options]\n"
               "options: --threshold PCT  --noise PCT  --gate-counters\n"
               "         --gate-alloc  --gate-latency  --force  --json  --version\n",
               argv0, argv0);
  std::exit(2);
}

struct Options {
  std::vector<std::string> baseline;
  std::vector<std::string> candidate;
  std::string history_dir;
  obs::DiffConfig config;
  bool json = false;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  bool after_vs = false;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--vs") {
      after_vs = true;
    } else if (arg == "--history") {
      opt.history_dir = need_value(i);
    } else if (arg == "--threshold") {
      opt.config.threshold_pct = std::stod(need_value(i));
    } else if (arg == "--noise") {
      opt.config.noise_pct = std::stod(need_value(i));
    } else if (arg == "--gate-counters") {
      opt.config.gate_counters = true;
    } else if (arg == "--gate-alloc") {
      opt.config.gate_alloc = true;
    } else if (arg == "--gate-latency") {
      opt.config.gate_latency = true;
    } else if (arg == "--force") {
      opt.config.force = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      (after_vs ? opt.candidate : opt.baseline).push_back(arg);
    }
  }
  const bool positional = !opt.baseline.empty() || !opt.candidate.empty();
  if (opt.history_dir.empty()) {
    if (opt.baseline.empty() || opt.candidate.empty()) usage(argv[0]);
  } else if (positional || after_vs) {
    usage(argv[0]);  // --history and explicit file lists are exclusive
  }
  return opt;
}

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) return names;
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    names.emplace_back(entry->d_name);
  }
  closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

/// Collects BENCH_*.json directly inside `dir`.
std::vector<std::string> bench_files_in(const std::string& dir) {
  std::vector<std::string> files;
  for (const std::string& name : list_dir(dir)) {
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      files.push_back(dir + "/" + name);
  }
  return files;
}

/// History mode: run directories sort lexicographically by their
/// UTC-timestamp prefix, so the last one is the newest (candidate).
bool split_history(const std::string& dir, Options& opt, std::string& error) {
  std::vector<std::string> runs;
  for (const std::string& name : list_dir(dir)) {
    const std::string sub = dir + "/" + name;
    if (!bench_files_in(sub).empty()) runs.push_back(sub);
  }
  if (runs.size() < 2) {
    error = "--history needs at least 2 run directories with BENCH_*.json "
            "under " + dir + " (found " + std::to_string(runs.size()) + ")";
    return false;
  }
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    auto files = bench_files_in(runs[i]);
    opt.baseline.insert(opt.baseline.end(), files.begin(), files.end());
  }
  opt.candidate = bench_files_in(runs.back());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::puts(obs::identity_line("zsbenchdiff").c_str());
      return 0;
    }
  }
  Options opt = parse_options(argc, argv);

  if (!opt.history_dir.empty()) {
    std::string error;
    if (!split_history(opt.history_dir, opt, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 3;
    }
  }

  std::vector<obs::BenchSnapshot> baseline;
  std::vector<obs::BenchSnapshot> candidate;
  try {
    for (const std::string& path : opt.baseline)
      baseline.push_back(obs::load_bench_snapshot(path));
    for (const std::string& path : opt.candidate)
      candidate.push_back(obs::load_bench_snapshot(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }

  const obs::DiffResult result = obs::diff_benches(baseline, candidate, opt.config);

  if (opt.json)
    std::fputs(obs::render_json(result).c_str(), stdout);
  else
    std::fputs(obs::render_table(result, opt.config).c_str(), stdout);

  // Incompatible builds without --force exit 3 (bad input), a genuine
  // perf regression exits 1 — CI can tell the two apart.
  for (const obs::BenchDiff& bench : result.benches)
    if (!bench.incompatible.empty() && bench.gate_tripped) return 3;
  return result.gate_tripped ? 1 : 0;
}

// peerq_overhead — what zspeerq (per-peer feed-quality accounting)
// costs the live pipeline it instruments. Two angles:
//
//   * BM_LiveReplay{PeerQOff,PeerQOn}: the gated A/B — the full
//     longlived2024 archive replayed at max speed through 4 shards
//     with config.peerq.enabled off vs on. This is the number the
//     acceptance bound cares about: the accumulator rides the shard
//     worker hot path (one on_record per update, cycle bookkeeping on
//     advance, a throttled snapshot at publish), and the pair pins
//     its end-to-end cost under the <5% check_bench_regression.sh
//     gate alongside the other live benches.
//   * BM_PeerQOnRecord / BM_PeerQCycleClose: micro cost of the two
//     accumulator operations the worker pays per record and per
//     closed beacon cycle — stable single-thread numbers for
//     trajectory diffing when the replay A/B is too noisy.
//
// The replay prints a one-line overhead summary (on vs off wall rate)
// and asserts the invariants that make the comparison meaningful:
// zero drops and identical emerged-zombie counts on both sides.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "live/feed.hpp"
#include "live/peerq.hpp"
#include "live/service.hpp"
#include "obs/metrics.hpp"

using namespace zombiescope;

namespace {

struct RunResult {
  double wall_ups = 0.0;
  double busy_seconds = 0.0;  // summed shard-worker CPU seconds
  std::uint64_t drops = 0;
  std::uint64_t emerged = 0;
  std::size_t peers = 0;
};

RunResult replay_once(const scenarios::LongLived2024Output& data,
                      bool peerq_enabled) {
  live::LiveConfig config;
  config.shards = 4;
  config.block_on_full = true;
  config.peerq.enabled = peerq_enabled;
  live::LiveService service(config);
  service.start();
  const auto start = std::chrono::steady_clock::now();
  for (const auto& event : data.events) service.expect(event);
  live::ReplayFeedSource feed(data.updates, /*speed=*/0.0);
  feed.run(service);
  service.finalize();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.wall_ups = wall > 0 ? static_cast<double>(data.updates.size()) / wall : 0.0;
  for (const auto& st : service.stats()) r.busy_seconds += st.busy_seconds;
  r.drops = service.drops();
  r.emerged = static_cast<std::uint64_t>(service.emerged_pairs().size());
  r.peers = service.peers()->rows.size();
  service.stop();
  return r;
}

/// Best-of-N per side: on a box with fewer cores than shards the wall
/// rate time-slices and swings wildly, so the headline overhead is the
/// summed shard-worker CPU seconds (blocked waits do not accrue, and
/// summing across workers averages out scheduler-placement noise the
/// per-worker max would amplify), minimum over the repeats.
/// Interleaved paired A/B: slow load drift hits both sides of a pair
/// equally, so each pair's busy-seconds delta isolates the peerq
/// cost; alternating which side runs first cancels within-pair
/// drift, and the median over pairs rejects the outliers a
/// min-per-side estimator would pick from *different* load
/// conditions.
struct AbResult {
  RunResult off;          // best (min summed-CPU) off run
  RunResult on;           // best on run
  double median_delta = 0.0;  // median over pairs of (on - off) CPU s
};

AbResult interleaved_ab(const scenarios::LongLived2024Output& data,
                        int repeats) {
  AbResult r;
  std::vector<double> deltas;
  std::printf("  pair deltas (on-off worker cpu ms):");
  for (int i = 0; i < repeats; ++i) {
    const bool off_first = i % 2 == 0;
    const RunResult first = replay_once(data, !off_first);
    const RunResult second = replay_once(data, off_first);
    const RunResult& o = off_first ? first : second;
    const RunResult& n = off_first ? second : first;
    if (r.off.busy_seconds == 0.0 || o.busy_seconds < r.off.busy_seconds)
      r.off = o;
    if (r.on.busy_seconds == 0.0 || n.busy_seconds < r.on.busy_seconds) r.on = n;
    deltas.push_back(n.busy_seconds - o.busy_seconds);
    std::printf(" %+.1f", deltas.back() * 1e3);
  }
  std::printf("\n\n");
  std::sort(deltas.begin(), deltas.end());
  const std::size_t mid = deltas.size() / 2;
  r.median_delta = deltas.size() % 2 != 0
                       ? deltas[mid]
                       : (deltas[mid - 1] + deltas[mid]) / 2.0;
  return r;
}

void print_table() {
  bench::print_header(
      "zspeerq overhead — longlived2024 replay with peer accounting on/off",
      "per-peer feed quality on the shard-worker hot path (§3.2 noisy peers)");
  const auto data = bench::load_longlived2024();
  std::printf("  %zu update records, %zu beacon events\n\n",
              data.updates.size(), data.events.size());
  // Warm the scenario cache and page the archive in before timing.
  (void)replay_once(data, false);
  const AbResult ab = interleaved_ab(data, 7);
  const RunResult& off = ab.off;
  const RunResult& on = ab.on;
  const double overhead =
      off.busy_seconds > 0 ? ab.median_delta / off.busy_seconds * 100.0 : 0.0;
  std::printf("  %-10s %14s %16s %8s %9s %7s\n", "peerq", "wall upd/s",
              "worker cpu s", "drops", "emerged", "peers");
  std::printf("  %-10s %14.0f %16.3f %8llu %9llu %7zu\n", "off", off.wall_ups,
              off.busy_seconds, static_cast<unsigned long long>(off.drops),
              static_cast<unsigned long long>(off.emerged), off.peers);
  std::printf("  %-10s %14.0f %16.3f %8llu %9llu %7zu\n", "on", on.wall_ups,
              on.busy_seconds, static_cast<unsigned long long>(on.drops),
              static_cast<unsigned long long>(on.emerged), on.peers);
  std::printf("\n  peerq hot-path overhead: %+.2f%% of summed worker CPU"
              " (acceptance bound < 5%%)\n",
              overhead);
  if (off.emerged != on.emerged) {
    std::printf("  WARNING: emerged count changed with peerq on — the A/B is"
                " invalid\n");
  }

  auto& registry = obs::Registry::global();
  registry.gauge("zs_bench_peerq_off_busy_ms")
      .set(static_cast<std::int64_t>(off.busy_seconds * 1e3));
  registry.gauge("zs_bench_peerq_on_busy_ms")
      .set(static_cast<std::int64_t>(on.busy_seconds * 1e3));
  registry.gauge("zs_bench_peerq_overhead_pct_x100")
      .set(static_cast<std::int64_t>(overhead * 100.0));
  registry.gauge("zs_bench_peerq_peers").set(static_cast<std::int64_t>(on.peers));
}

void BM_LiveReplayPeerQOff(benchmark::State& state) {
  const auto data = bench::load_longlived2024();
  for (auto _ : state) {
    const RunResult r = replay_once(data, false);
    benchmark::DoNotOptimize(r.emerged);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.updates.size()));
}
BENCHMARK(BM_LiveReplayPeerQOff)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_LiveReplayPeerQOn(benchmark::State& state) {
  const auto data = bench::load_longlived2024();
  for (auto _ : state) {
    const RunResult r = replay_once(data, true);
    benchmark::DoNotOptimize(r.emerged);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.updates.size()));
}
BENCHMARK(BM_LiveReplayPeerQOn)->Unit(benchmark::kMillisecond)->Iterations(1);

mrt::MrtRecord synthetic_update(std::uint32_t i) {
  mrt::Bgp4mpMessage m;
  m.timestamp = 1'700'000'000 + i;
  m.peer_asn = 64500 + i % 64;  // 64 distinct peers
  m.peer_address = netbase::IpAddress::v4(0xC0000200u + i % 64);
  m.update.announced.push_back(
      netbase::Prefix::parse("93.175.147.0/24"));
  return mrt::MrtRecord{std::move(m)};
}

void BM_PeerQOnRecord(benchmark::State& state) {
  // Steady-state per-record cost: cells exist, one open cycle matches
  // the announced prefix (the common case during a beacon window).
  std::vector<mrt::MrtRecord> records;
  records.reserve(4096);
  for (std::uint32_t i = 0; i < 4096; ++i) records.push_back(synthetic_update(i));
  live::PeerQAccumulator acc;
  beacon::BeaconEvent event;
  event.prefix = netbase::Prefix::parse("93.175.147.0/24");
  event.announce_time = 1'700'000'000;
  event.withdraw_time = 1'700'000'000 + 7200;
  acc.on_expect(event, 90 * netbase::kMinute);
  std::size_t i = 0;
  for (auto _ : state) {
    acc.on_record(records[i]);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  benchmark::DoNotOptimize(acc.peer_count());
}
BENCHMARK(BM_PeerQOnRecord);

void BM_PeerQArchiveReplay(benchmark::State& state) {
  // The accumulator alone over the real longlived2024 archive — the
  // exact per-record work the shard workers add with peerq on, minus
  // every other pipeline cost. items/s here bounds the wall overhead.
  const auto data = bench::load_longlived2024();
  std::vector<beacon::BeaconEvent> events = data.events;
  std::sort(events.begin(), events.end(),
            [](const beacon::BeaconEvent& a, const beacon::BeaconEvent& b) {
              return a.announce_time < b.announce_time;
            });
  for (auto _ : state) {
    live::PeerQAccumulator acc;
    std::size_t next_event = 0;
    for (const auto& record : data.updates) {
      const netbase::TimePoint t = mrt::record_timestamp(record);
      while (next_event < events.size() &&
             events[next_event].announce_time <= t) {
        acc.advance(events[next_event].announce_time);
        acc.on_expect(events[next_event], 90 * netbase::kMinute);
        ++next_event;
      }
      acc.advance(t);
      acc.on_record(record);
    }
    benchmark::DoNotOptimize(acc.cycles_closed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.updates.size()));
}
BENCHMARK(BM_PeerQArchiveReplay)->Unit(benchmark::kMillisecond);

void BM_PeerQCycleClose(benchmark::State& state) {
  // Cost of one cycle open + close with 64 resident peers — paid once
  // per beacon event, not per record.
  live::PeerQAccumulator acc;
  for (std::uint32_t i = 0; i < 64; ++i) acc.on_record(synthetic_update(i));
  beacon::BeaconEvent event;
  event.prefix = netbase::Prefix::parse("93.175.147.0/24");
  std::int64_t t = 1'700'000'000;
  for (auto _ : state) {
    event.announce_time = t;
    event.withdraw_time = t + 7200;
    acc.on_expect(event, 90 * netbase::kMinute);
    t += 14400;
    acc.advance(event.withdraw_time + 90 * netbase::kMinute + 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  benchmark::DoNotOptimize(acc.cycles_closed());
}
BENCHMARK(BM_PeerQCycleClose);

}  // namespace

// Expanded BENCHMARK_MAIN so the run ends with a telemetry snapshot
// (BENCH_peer_quality.json) for the regression gate.
int main(int argc, char** argv) {
  zombiescope::bench::begin_bench_session();
  print_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  zombiescope::bench::emit_metrics_snapshot("peer_quality");
  // print_header installed an atexit snapshot under the binary's own
  // name; the explicit one above already wrote the canonical
  // BENCH_peer_quality.json, so suppress the duplicate.
  setenv("ZS_NO_BENCH_JSON", "1", 1);
  return 0;
}

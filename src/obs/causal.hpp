// obs/causal.hpp — causal propagation tracing.
//
// The simulator knows exactly which injected fault killed a
// withdrawal, but nothing records *where along the path* each update
// died — so the zombie root-cause heuristic (zombie/rootcause.cpp)
// could never be scored against ground truth. This module gives every
// BGP update wave a distributed-tracing-style identity: a TraceContext
// (64-bit trace id + hop counter) is stamped on the message at its
// origination in simnet/simulation.cpp and carried on every derived
// delivery, and each link traversal deposits one HopRecord — who sent
// it, who received it (or was meant to), when, and what happened:
//
//   originated            trace root (beacon origination, session
//                         flush, eviction, re-validation)
//   forwarded             delivered, applied, and propagated onward
//   suppressed_by_fault   eaten by a WithdrawalSuppression at send
//   stalled               dropped by a ReceiveStall at receive
//   policy_filtered       rejected by import policy (loop / ROV)
//   implicitly_withdrawn  delivered but the wave ended here: a
//                         withdrawal absorbed by an alternate
//                         (possibly stale) route, or an announcement
//                         that lost the decision process
//
// Sampling policy: withdrawals are always traced (every withdrawal in
// our scenarios is a beacon prefix — they are the zombie-relevant
// messages); announcements are sampled probabilistically at
// `--causal-sample-rate` (the decision is a stateless hash of the
// trace id, so runs are deterministic and sampling never perturbs the
// simulation's own RNG).
//
// Records flow through a bounded lock-free MPSC ring (the Vyukov
// pattern journal.cpp uses) into a per-prefix store served by
// GET /causal?prefix=…, and are mirrored into the journal under the
// `propagation` category so tools/zsroot can rebuild propagation
// trees offline. ZS_CAUSAL_ENABLED=0 compiles every hook to an empty
// inline body (same discipline as prof.hpp, enforced by
// tests/causal_compileout_test.cpp); the record codec and tree
// renderer below stay available either way — they are pure functions
// zsroot needs to read journals written by enabled builds.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "netbase/ip.hpp"
#include "netbase/time.hpp"
#include "obs/journal.hpp"

#ifndef ZS_CAUSAL_ENABLED
#define ZS_CAUSAL_ENABLED 1
#endif

namespace zombiescope::obs {

/// True when the tracing hooks are compiled in. Call sites guard with
/// `if constexpr (kCausalCompiledIn)` so a ZS_CAUSAL_ENABLED=0 build
/// executes exactly zero tracing code.
inline constexpr bool kCausalCompiledIn = ZS_CAUSAL_ENABLED != 0;

/// What kind of update traversed the link. A withdrawal-rooted trace
/// can contain announcement hops: when a withdrawn best route is
/// replaced by an alternate, the wave continues as announcements.
enum class TraceKind : std::uint8_t {
  kAnnouncement = 0,
  kWithdrawal = 1,
};

/// The fate of one update on one link (see file header).
enum class HopDecision : std::uint8_t {
  kOriginated = 0,
  kForwarded = 1,
  kSuppressedByFault = 2,
  kStalled = 3,
  kPolicyFiltered = 4,
  kImplicitlyWithdrawn = 5,
};

std::string_view to_string(TraceKind kind);
std::string_view to_string(HopDecision decision);
std::optional<HopDecision> parse_hop_decision(std::string_view name);

/// Carried on every in-flight delivery. trace_id 0 = unsampled: every
/// hook short-circuits on it, so an unsampled wave costs one branch
/// per hop and records nothing. Packed into one word because simnet
/// stamps this on every queued event — at 2^48 trace ids and 2^16
/// hops, neither bound is reachable in practice.
struct TraceContext {
  std::uint64_t trace_id : 48 = 0;
  std::uint64_t hop : 16 = 0;

  bool sampled() const { return trace_id != 0; }
  /// The context stamped on deliveries derived from this one (one
  /// link further from the trace root).
  TraceContext child() const {
    return {trace_id, static_cast<std::uint16_t>(hop + 1)};
  }
};
static_assert(sizeof(TraceContext) == 8,
              "TraceContext rides every simnet event; keep it one word");

/// One link traversal. `hop` is the link's distance from the trace
/// root (the originated record is hop 0 with from_asn 0). Trivially
/// copyable: the ring moves raw bytes.
struct HopRecord {
  std::uint64_t trace_id = 0;
  netbase::Prefix prefix;
  std::uint32_t from_asn = 0;
  std::uint32_t to_asn = 0;
  netbase::TimePoint time = 0;
  std::uint16_t hop = 0;
  TraceKind kind = TraceKind::kAnnouncement;
  HopDecision decision = HopDecision::kForwarded;

  friend bool operator==(const HopRecord&, const HopRecord&) = default;
};
static_assert(std::is_trivially_copyable_v<HopRecord>,
              "the causal ring copies records as raw memory");

// --- journal codec ---------------------------------------------------
//
// A HopRecord rides the generic JournalEvent as kPropagationHop:
//   a = trace id
//   b = from_asn << 32 | to_asn
//   c = hop << 16 | kind << 8 | decision
// These two helpers are the only place the packing lives; zsroot and
// the HTTP endpoint go through them, never the bit layout.

JournalEvent to_journal_event(const HopRecord& record);
/// nullopt if the event is not a kPropagationHop or carries
/// out-of-range kind/decision values.
std::optional<HopRecord> hop_from_event(const JournalEvent& event);

/// ASCII rendering of the propagation trees of one prefix: one tree
/// per trace (most recent first, at most `max_traces`), children
/// indented under the AS that sent to them. Pure function — works on
/// live-drained records and journal-recovered ones alike.
std::string render_propagation_tree(const netbase::Prefix& prefix,
                                    const std::vector<HopRecord>& records,
                                    std::size_t max_traces = 8);

#if ZS_CAUSAL_ENABLED

/// The process-wide tracer. Enabled by default (tracing an unsampled
/// wave is one branch per hop; withdrawal volume is tiny next to
/// announcements); set_enabled(false) turns even that off.
class CausalTracer {
 public:
  // 4096 slots x 64 B = 256 KiB, allocated when the tracer is first
  // touched. Withdrawal waves arrive in bursts of at most a few
  // thousand hops between drains; a deeper ring only buys resident
  // memory (the bench RSS gate watches this).
  static constexpr std::size_t kRingCapacity = 1u << 12;
  static constexpr std::size_t kMaxRecordsPerPrefix = 8192;
  static constexpr std::size_t kMaxPrefixes = 1024;
  static constexpr double kDefaultAnnounceSampleRate = 0.01;

  CausalTracer();
  CausalTracer(const CausalTracer&) = delete;
  CausalTracer& operator=(const CausalTracer&) = delete;

  static CausalTracer& global();

  bool enabled() const;
  void set_enabled(bool on);
  double announce_sample_rate() const;
  /// Clamped to [0, 1]. Withdrawals ignore the rate: always sampled.
  void set_announce_sample_rate(double rate);
  /// Seed of the stateless sampling hash (default fixed, so identical
  /// runs sample identical waves).
  void set_sample_seed(std::uint64_t seed);

  /// Allocates a trace id and applies the sampling policy; returns an
  /// unsampled context when tracing is off or the wave lost the draw.
  TraceContext begin_trace(TraceKind kind);

  /// Enqueues one hop record (lock-free, drops + counts when the ring
  /// is full) and mirrors it into the journal's `propagation` category
  /// when that is enabled. Unsampled records are ignored.
  void record(const HopRecord& record);

  /// Moves ring contents into the per-prefix store (consumer side,
  /// mutex-guarded). Returns records moved.
  std::size_t drain();

  /// Stored records of one prefix, oldest first (drains first so the
  /// answer is current).
  std::vector<HopRecord> records_for(const netbase::Prefix& prefix);
  /// Prefixes with stored records (drains first).
  std::vector<netbase::Prefix> traced_prefixes();

  std::uint64_t traces_started() const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Drops buffered + stored records and zeroes counters; keeps the
  /// enabled flag, rate, and seed. Restarts trace ids at 1, so runs
  /// that reset first are reproducible record-for-record.
  void reset();

 private:
  struct Impl;
  Impl* impl_;  // leaked singleton-style: tracer outlives static dtors
};

// Free-function hooks, mirrored as inline no-ops below when compiled
// out — the simnet call sites use these, never the class directly.
TraceContext causal_begin_trace(TraceKind kind);
void causal_record(const HopRecord& record);
bool causal_enabled();
void causal_set_enabled(bool on);
void causal_set_announce_sample_rate(double rate);

#else

inline TraceContext causal_begin_trace(TraceKind) { return {}; }
inline void causal_record(const HopRecord&) {}
inline bool causal_enabled() { return false; }
inline void causal_set_enabled(bool) {}
inline void causal_set_announce_sample_rate(double) {}

#endif  // ZS_CAUSAL_ENABLED

}  // namespace zombiescope::obs

// netbase/bytes.hpp — big-endian byte buffer writer/reader.
//
// All BGP and MRT wire structures are big-endian; these two small
// classes are the only place byte order is handled. The reader throws
// DecodeError on truncation so parsers never read out of bounds.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace zombiescope::netbase {

/// Thrown when a wire message is truncated or structurally invalid.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Reserves `n` bytes at the current position and returns their
  /// offset, for later back-patching of length fields.
  std::size_t reserve(std::size_t n);

  /// Back-patches a previously reserved 16-bit length field.
  void patch_u16(std::size_t offset, std::uint16_t v);

  /// Back-patches a previously reserved 32-bit length field.
  void patch_u32(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads big-endian integers and raw bytes from a non-owning span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Returns a subspan of `n` bytes and advances past it.
  std::span<const std::uint8_t> bytes(std::size_t n);

  /// Returns a sub-reader restricted to the next `n` bytes and
  /// advances this reader past them.
  ByteReader sub(std::size_t n) { return ByteReader(bytes(n)); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

  /// Throws DecodeError unless exactly consumed.
  void expect_done(std::string_view context) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace zombiescope::netbase

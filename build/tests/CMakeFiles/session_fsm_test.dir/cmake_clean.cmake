file(REMOVE_RECURSE
  "CMakeFiles/session_fsm_test.dir/session_fsm_test.cpp.o"
  "CMakeFiles/session_fsm_test.dir/session_fsm_test.cpp.o.d"
  "session_fsm_test"
  "session_fsm_test.pdb"
  "session_fsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// tsdb_overhead — quantifies what the zstsdb sampler costs the
// process it observes. Three angles:
//
//   * BM_TsdbSampleOnce: the absolute cost of one sampler tick
//     (registry sweep + latency quantiles + probes + rule evaluation)
//     as the probe count grows — this is the work the daemon pays
//     once per cadence on the sampler thread.
//   * BM_TsdbQueryRate: one /tsdb/query-equivalent rate() over a full
//     tier-0 ring — the read path an attached zstop drives every
//     second.
//   * BM_DecodeLoop{SamplerOff,SamplerOn1s}: the gated A/B — a
//     CPU-bound BGP decode loop with no store vs with a live sampler
//     at the production 1 s cadence. check_bench_regression.sh (and
//     the <5% acceptance bound in ISSUE/EXPERIMENTS) compare exactly
//     this pair across commits.
//
// No scenario cache: everything here is synthetic and runs in
// milliseconds.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "beacon/clock.hpp"
#include "bench/bench_common.hpp"
#include "netbase/time.hpp"
#include "obs/tsdb.hpp"

using namespace zombiescope;

namespace {

bgp::UpdateMessage sample_update() {
  bgp::UpdateMessage msg;
  msg.announced.push_back(netbase::Prefix::parse("2a0d:3dc1:1851::/48"));
  msg.attributes.as_path =
      bgp::AsPath{61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312};
  msg.attributes.next_hop = netbase::IpAddress::parse("2001:db8::1");
  msg.attributes.local_pref = 100;
  msg.attributes.aggregator =
      beacon::make_beacon_aggregator(12654, netbase::utc(2018, 7, 15, 12, 0, 0));
  msg.attributes.communities = {{8298, 100}, {8298, 20}};
  return msg;
}

/// A store with `probes` synthetic gauges and one sustained-duration
/// rule, pre-warmed so every series exists before timing starts.
std::unique_ptr<obs::Tsdb> make_store(int probes) {
  obs::TsdbConfig cfg;
  cfg.max_series = 2048;
  auto tsdb = std::make_unique<obs::Tsdb>(cfg);
  for (int i = 0; i < probes; ++i) {
    tsdb->add_probe("bench.probe_" + std::to_string(i), obs::SeriesKind::kGauge,
                    [i] { return static_cast<double>(i); });
  }
  obs::AlertRule rule;
  rule.name = "bench_rule";
  rule.metric = "bench.probe_0";
  rule.threshold = 1e9;  // never fires
  rule.for_seconds = 30.0;
  tsdb->add_rule(rule);
  tsdb->sample_once(0);
  return tsdb;
}

void BM_TsdbSampleOnce(benchmark::State& state) {
  auto tsdb = make_store(static_cast<int>(state.range(0)));
  std::int64_t t = 1000;
  for (auto _ : state) {
    tsdb->sample_once(t);
    t += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TsdbSampleOnce)->Arg(16)->Arg(128)->Arg(512);

void BM_TsdbQueryRate(benchmark::State& state) {
  obs::TsdbConfig cfg;
  auto tsdb = std::make_unique<obs::Tsdb>(cfg);
  std::int64_t counter = 0;
  tsdb->add_probe("bench.records_total", obs::SeriesKind::kCounter,
                  [&counter] { return static_cast<double>(counter); });
  // Fill tier 0 (900 slots) completely, so the query walks a full ring.
  for (std::int64_t t = 0; t < 1000; ++t) {
    counter += 100;
    tsdb->sample_once(t * 1000);
  }
  for (auto _ : state) {
    const auto q = tsdb->query("bench.records_total", 900'000, 0, true);
    benchmark::DoNotOptimize(q.points.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TsdbQueryRate);

void decode_loop(benchmark::State& state) {
  const auto wire = sample_update().encode();
  for (auto _ : state) {
    auto msg = bgp::UpdateMessage::decode(wire);
    benchmark::DoNotOptimize(msg.announced.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_DecodeLoopSamplerOff(benchmark::State& state) { decode_loop(state); }
BENCHMARK(BM_DecodeLoopSamplerOff);

void BM_DecodeLoopSamplerOn1s(benchmark::State& state) {
  auto tsdb = make_store(32);
  const bool started = tsdb->start();  // production cadence: 1 s
  decode_loop(state);
  if (started) tsdb->stop();
  state.counters["sampler"] = started ? 1.0 : 0.0;  // 0 under ZS_TSDB=OFF
}
BENCHMARK(BM_DecodeLoopSamplerOn1s);

}  // namespace

// Expanded BENCHMARK_MAIN so the run ends with a telemetry snapshot
// (BENCH_tsdb_overhead.json) for trajectory diffing — the sampler-on
// vs sampler-off pair is what the regression gate watches.
int main(int argc, char** argv) {
  zombiescope::bench::begin_bench_session();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  zombiescope::bench::emit_metrics_snapshot("tsdb_overhead");
  return 0;
}

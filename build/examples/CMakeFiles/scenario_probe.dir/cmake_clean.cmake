file(REMOVE_RECURSE
  "CMakeFiles/scenario_probe.dir/scenario_probe.cpp.o"
  "CMakeFiles/scenario_probe.dir/scenario_probe.cpp.o.d"
  "scenario_probe"
  "scenario_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

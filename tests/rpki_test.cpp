// Tests for ROA/ROV semantics, including the timed ROA removal the
// paper performs on 2024-06-22 19:49 UTC.

#include <gtest/gtest.h>

#include "netbase/time.hpp"
#include "rpki/rov.hpp"

namespace zombiescope::rpki {
namespace {

using netbase::Prefix;
using netbase::utc;

Roa beacon_roa() {
  return Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 210312};
}

TEST(Rov, NotFoundWithoutAnyRoa) {
  RoaTable table;
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 10)),
            RovState::kNotFound);
}

TEST(Rov, ValidWithinMaxLengthAndOrigin) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 10)),
            RovState::kValid);
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1::/32"), 210312, utc(2024, 6, 10)),
            RovState::kValid);
}

TEST(Rov, InvalidOnWrongOrigin) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 666, utc(2024, 6, 10)),
            RovState::kInvalid);
}

TEST(Rov, InvalidBeyondMaxLength) {
  RoaTable table;
  table.add(Roa{Prefix::parse("2a0d:3dc1::/32"), 40, 210312}, utc(2024, 6, 1));
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 10)),
            RovState::kInvalid);
}

TEST(Rov, NotFoundBeforeRegistration) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 5, 31)),
            RovState::kNotFound);
}

TEST(Rov, RemovalFlipsValidToInvalidThenNotFound) {
  // After the paper removed its ROA, routes became RPKI-invalid...
  // no: with no covering ROA the state is NotFound. A different ROA on
  // the covering prefix would make them Invalid. Model both.
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  ASSERT_EQ(table.remove(beacon_roa(), utc(2024, 6, 22, 19, 49, 0)), 1);
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 10)),
            RovState::kValid);  // history preserved
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 23)),
            RovState::kNotFound);
}

TEST(Rov, RemovalVisibilityDelayModelsRpkiTimeOfFlight) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  const auto removal = utc(2024, 6, 22, 19, 49, 0);
  table.remove(beacon_roa(), removal, 2 * netbase::kHour);
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312,
                           removal + netbase::kHour),
            RovState::kValid);  // routers have not seen the deletion yet
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312,
                           removal + 3 * netbase::kHour),
            RovState::kNotFound);
}

TEST(Rov, RemoveOnlyMatchesIdenticalRoa) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  Roa other = beacon_roa();
  other.asn = 4601;
  EXPECT_EQ(table.remove(other, utc(2024, 6, 22)), 0);
}

TEST(Rov, CompetingRoasOneValidWins) {
  // RFC 6811: Invalid only if NO matching ROA validates the route.
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  table.add(Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 4601}, utc(2024, 6, 1));
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 4601, utc(2024, 6, 10)),
            RovState::kValid);
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 210312, utc(2024, 6, 10)),
            RovState::kValid);
  EXPECT_EQ(table.validate(Prefix::parse("2a0d:3dc1:1851::/48"), 666, utc(2024, 6, 10)),
            RovState::kInvalid);
}

TEST(Rov, ChangeTimesAreSortedUnique) {
  RoaTable table;
  table.add(beacon_roa(), utc(2024, 6, 1));
  table.add(Roa{Prefix::parse("2a0d:3dc1::/32"), 48, 4601}, utc(2024, 6, 1));
  table.remove(beacon_roa(), utc(2024, 6, 22, 19, 49, 0));
  const auto times = table.change_times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], utc(2024, 6, 1));
  EXPECT_EQ(times[1], utc(2024, 6, 22, 19, 49, 0));
}

TEST(Rov, StringsForDiagnostics) {
  EXPECT_EQ(to_string(RovState::kInvalid), "Invalid");
  EXPECT_EQ(to_string(RovPolicy::kImportOnly), "import-only");
}

}  // namespace
}  // namespace zombiescope::rpki

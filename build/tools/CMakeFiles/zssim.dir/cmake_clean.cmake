file(REMOVE_RECURSE
  "CMakeFiles/zssim.dir/zssim.cpp.o"
  "CMakeFiles/zssim.dir/zssim.cpp.o.d"
  "zssim"
  "zssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

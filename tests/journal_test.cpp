// Tests for the zombie flight recorder: event codec round-trips
// (NDJSON and binary), category filtering, ring overflow accounting,
// file I/O with format auto-detection, and lock-free emission under
// concurrent writers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace zombiescope::obs {
namespace {

using netbase::IpAddress;
using netbase::Prefix;

JournalEvent sample_event() {
  JournalEvent ev;
  ev.type = JournalEventType::kZombieDeclared;
  ev.time = 1718020800;
  ev.has_prefix = true;
  ev.prefix = Prefix::parse("2a0d:3dc1:1851::/48");
  ev.has_peer = true;
  ev.peer_asn = 211509;
  ev.peer_address = IpAddress::parse("2001:db8::42");
  ev.a = 5400;
  ev.b = 1718013600;
  ev.c = 1718006400;
  return ev;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "zs_journal_" + name;
}

TEST(ObsJournalCodec, EventTypeNamesRoundTrip) {
  for (auto type : {JournalEventType::kRunMeta, JournalEventType::kAnnounceSeen,
                    JournalEventType::kWithdrawSeen, JournalEventType::kSessionFlush,
                    JournalEventType::kThresholdCrossed, JournalEventType::kZombieDeclared,
                    JournalEventType::kZombieCleared, JournalEventType::kDuplicateSuppressed,
                    JournalEventType::kNoisyPeerExcluded, JournalEventType::kWithdrawalLost,
                    JournalEventType::kWithdrawalDelayed, JournalEventType::kPhantomReannounce,
                    JournalEventType::kResurrectionDetected, JournalEventType::kLifespanClosed,
                    JournalEventType::kCollectorSessionDown, JournalEventType::kCollectorSessionUp,
                    JournalEventType::kFaultWithdrawalSuppressed,
                    JournalEventType::kFaultReceiveStall, JournalEventType::kSimSessionDown,
                    JournalEventType::kSimSessionUp, JournalEventType::kPrefixEvicted,
                    JournalEventType::kLiveZombieEmerged,
                    JournalEventType::kLiveZombieResurrected, JournalEventType::kLiveZombieDied,
                    JournalEventType::kLiveIngestDropped,
                    JournalEventType::kLiveClientEvicted}) {
    const auto name = to_string(type);
    EXPECT_NE(name, "unknown");
    const auto parsed = parse_event_type(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, type);
    EXPECT_NE(category_of(type), 0u) << name;
  }
  EXPECT_FALSE(parse_event_type("no_such_event").has_value());
}

TEST(ObsJournalCodec, CategoryNamesParse) {
  EXPECT_EQ(parse_categories("all"), kCatAll);
  EXPECT_EQ(parse_categories("detector"), kCatDetector);
  EXPECT_EQ(parse_categories("detector,fault,lifespan"),
            kCatDetector | kCatFault | kCatLifespan);
  EXPECT_EQ(parse_categories(""), 0u);
  EXPECT_FALSE(parse_categories("detector,bogus").has_value());
  EXPECT_EQ(parse_categories("live"), kCatLive);
  EXPECT_EQ(category_name(kCatFault), "fault");
  EXPECT_EQ(category_name(kCatLive), "live");
  EXPECT_EQ(category_name(0x80000000u), "");
}

TEST(ObsJournalCodec, NdjsonRoundTrip) {
  const JournalEvent ev = sample_event();
  const std::string line = to_ndjson(ev);
  EXPECT_NE(line.find("\"ev\":\"zombie_declared\""), std::string::npos);
  EXPECT_NE(line.find("2a0d:3dc1:1851::/48"), std::string::npos);
  const auto parsed = parse_ndjson(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ev);
}

TEST(ObsJournalCodec, NdjsonOmitsAbsentFields) {
  JournalEvent ev;
  ev.type = JournalEventType::kRunMeta;
  ev.time = 100;
  ev.a = 96;
  const std::string line = to_ndjson(ev);
  EXPECT_EQ(line.find("prefix"), std::string::npos);
  EXPECT_EQ(line.find("peer"), std::string::npos);
  const auto parsed = parse_ndjson(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ev);
}

TEST(ObsJournalCodec, NdjsonRejectsMalformed) {
  EXPECT_FALSE(parse_ndjson("").has_value());
  EXPECT_FALSE(parse_ndjson("{}").has_value());
  EXPECT_FALSE(parse_ndjson("{\"ev\":\"bogus\",\"t\":1}").has_value());
  EXPECT_FALSE(parse_ndjson("{\"ev\":\"run_meta\"}").has_value());
  EXPECT_FALSE(
      parse_ndjson("{\"ev\":\"zombie_declared\",\"t\":1,\"prefix\":\"nope\"}").has_value());
}

TEST(ObsJournalCodec, BinaryAndNdjsonFilesRoundTripIdentically) {
  std::vector<JournalEvent> events;
  events.push_back(sample_event());
  JournalEvent v4 = sample_event();
  v4.type = JournalEventType::kWithdrawSeen;
  v4.prefix = Prefix::parse("93.175.149.0/24");
  v4.peer_address = IpAddress::parse("193.0.4.28");
  v4.peer_asn = 12654;
  events.push_back(v4);
  JournalEvent bare;
  bare.type = JournalEventType::kSimSessionDown;
  bare.time = 42;
  bare.a = 11;
  bare.b = 100;
  events.push_back(bare);

  const std::string ndjson_path = temp_path("roundtrip.ndjson");
  const std::string binary_path = temp_path("roundtrip.bin");
  {
    JournalWriter ndjson(ndjson_path, JournalFormat::kNdjson);
    JournalWriter binary(binary_path, JournalFormat::kBinary);
    for (const auto& ev : events) {
      ndjson.write(ev);
      binary.write(ev);
    }
  }
  EXPECT_EQ(read_journal_file(ndjson_path), events);
  EXPECT_EQ(read_journal_file(binary_path), events);
  std::remove(ndjson_path.c_str());
  std::remove(binary_path.c_str());
}

TEST(ObsJournalCodec, CorruptBinaryFileThrows) {
  const std::string path = temp_path("corrupt.bin");
  {
    JournalWriter writer(path, JournalFormat::kBinary);
    writer.write(sample_event());
  }
  // Truncate mid-record: keep the magic plus a dangling length prefix.
  std::string magic(kJournalBinaryMagic);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(magic.data(), 1, magic.size(), f);
  const unsigned char dangling[4] = {0, 0, 0, 74};
  std::fwrite(dangling, 1, sizeof(dangling), f);
  std::fclose(f);
  EXPECT_THROW(read_journal_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ObsJournal, DisabledByDefaultAndRuntimeMaskFilters) {
  Journal journal(16);
  JournalEvent ev = sample_event();
  journal.emit<kCatDetector>(ev);  // mask is 0: dropped silently
  EXPECT_EQ(journal.emitted(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);

  journal.set_enabled_categories(kCatDetector);
  journal.emit<kCatDetector>(ev);
  journal.emit<kCatFault>(ev);  // filtered: not the enabled category
  EXPECT_EQ(journal.emitted(), 1u);
  EXPECT_EQ(journal.tail(10).size(), 1u);
  EXPECT_TRUE(journal.enabled(kCatDetector));
  EXPECT_FALSE(journal.enabled(kCatFault));
}

TEST(ObsJournal, RingDropsWhenFullAndCounts) {
  Journal journal(4);
  journal.set_enabled_categories(kCatAll);
  EXPECT_EQ(journal.capacity(), 4u);
  JournalEvent ev = sample_event();
  for (int i = 0; i < 10; ++i) {
    ev.a = i;
    journal.emit<kCatDetector>(ev);
  }
  EXPECT_EQ(journal.emitted(), 4u);
  EXPECT_EQ(journal.dropped(), 6u);
  const auto tail = journal.tail(10);
  ASSERT_EQ(tail.size(), 4u);
  // The ring keeps the oldest events; overflow drops the newest.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tail[static_cast<std::size_t>(i)].a, i);
  // Draining frees the slots for further emission.
  ev.a = 99;
  journal.emit<kCatDetector>(ev);
  EXPECT_EQ(journal.emitted(), 5u);
}

TEST(ObsJournal, TailReturnsMostRecentOldestFirst) {
  Journal journal(64);
  journal.set_enabled_categories(kCatAll);
  JournalEvent ev = sample_event();
  for (int i = 0; i < 10; ++i) {
    ev.a = i;
    journal.emit<kCatDetector>(ev);
  }
  const auto tail = journal.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 7);
  EXPECT_EQ(tail[2].a, 9);
}

TEST(ObsJournal, PumpStreamsToAttachedWriter) {
  const std::string path = temp_path("pump.ndjson");
  Journal journal(64);
  journal.set_enabled_categories(kCatAll);
  journal.attach_writer(std::make_unique<JournalWriter>(path, JournalFormat::kNdjson));
  JournalEvent ev = sample_event();
  for (int i = 0; i < 5; ++i) {
    ev.a = i;
    journal.emit<kCatDetector>(ev);
  }
  EXPECT_EQ(journal.pump(), 5u);
  journal.close_writer();
  const auto events = read_journal_file(path);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[4].a, 4);
  std::remove(path.c_str());
}

TEST(ObsJournal, ResetClearsBufferedAndCounts) {
  Journal journal(16);
  journal.set_enabled_categories(kCatAll);
  JournalEvent ev = sample_event();
  journal.emit<kCatDetector>(ev);
  journal.reset();
  EXPECT_EQ(journal.emitted(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.tail(10).size(), 0u);
}

TEST(ObsJournalConcurrency, DrainUnderConcurrentWriters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Journal journal(1024);
  journal.set_enabled_categories(kCatAll);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> drained{0};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) || journal.approx_size() > 0)
      drained.fetch_add(journal.pump(), std::memory_order_relaxed);
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&journal, t] {
      JournalEvent ev;
      ev.type = JournalEventType::kAnnounceSeen;
      ev.a = t;
      for (int i = 0; i < kPerThread; ++i) {
        ev.b = i;
        journal.emit<kCatState>(ev);
      }
    });
  }
  for (auto& thread : producers) thread.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  drained.fetch_add(journal.pump(), std::memory_order_relaxed);

  // Every event was either drained or counted as dropped; none lost.
  EXPECT_EQ(drained.load(), journal.emitted());
  EXPECT_EQ(journal.emitted() + journal.dropped(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ObsJournalConcurrency, GlobalJournalBindsRegistryCounters) {
  Journal& journal = Journal::global();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(kCatAll);
  const auto before = Registry::global().snapshot();
  const std::uint64_t* emitted_before =
      before.counter("zs_journal_events_emitted_total");
  journal.emit<kCatDetector>(sample_event());
  const auto after = Registry::global().snapshot();
  const std::uint64_t* emitted_after =
      after.counter("zs_journal_events_emitted_total");
  ASSERT_NE(emitted_after, nullptr);
  EXPECT_EQ(*emitted_after, (emitted_before != nullptr ? *emitted_before : 0) + 1);
  journal.set_enabled_categories(saved);
  journal.pump();
}

}  // namespace
}  // namespace zombiescope::obs

file(REMOVE_RECURSE
  "CMakeFiles/zs_simnet.dir/dataplane.cpp.o"
  "CMakeFiles/zs_simnet.dir/dataplane.cpp.o.d"
  "CMakeFiles/zs_simnet.dir/router.cpp.o"
  "CMakeFiles/zs_simnet.dir/router.cpp.o.d"
  "CMakeFiles/zs_simnet.dir/simulation.cpp.o"
  "CMakeFiles/zs_simnet.dir/simulation.cpp.o.d"
  "libzs_simnet.a"
  "libzs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

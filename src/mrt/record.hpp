// mrt/record.hpp — MRT records (RFC 6396) as parsed value types.
//
// The collectors in this library archive exactly what RIPE RIS
// archives: BGP4MP_MESSAGE_AS4 records for BGP UPDATEs exchanged with
// peers, BGP4MP_STATE_CHANGE_AS4 records for session state changes,
// and TABLE_DUMP_V2 RIB snapshots. The zombie detectors consume only
// these records, mirroring the paper's "solely RIPE RIS raw data"
// methodology.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bgp/types.hpp"
#include "bgp/update.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::mrt {

/// MRT top-level types used here (RFC 6396 §4).
enum class RecordType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
};

/// BGP4MP subtypes (RFC 6396 §4.4).
enum class Bgp4mpSubtype : std::uint16_t {
  kStateChange = 0,
  kMessage = 1,
  kMessageAs4 = 4,
  kStateChangeAs4 = 5,
};

/// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
  kRibIpv6Unicast = 4,
};

/// A BGP UPDATE received by a collector from a peer.
struct Bgp4mpMessage {
  netbase::TimePoint timestamp = 0;
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;  // the collector's ASN
  netbase::IpAddress peer_address;
  netbase::IpAddress local_address;
  bgp::UpdateMessage update;

  friend bool operator==(const Bgp4mpMessage&, const Bgp4mpMessage&) = default;
};

/// A session state transition between a peer and a collector.
struct Bgp4mpStateChange {
  netbase::TimePoint timestamp = 0;
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  netbase::IpAddress peer_address;
  netbase::IpAddress local_address;
  bgp::SessionState old_state = bgp::SessionState::kIdle;
  bgp::SessionState new_state = bgp::SessionState::kIdle;

  friend bool operator==(const Bgp4mpStateChange&, const Bgp4mpStateChange&) = default;
};

/// TABLE_DUMP_V2 PEER_INDEX_TABLE: the peer directory that RIB entries
/// reference by index.
struct PeerIndexTable {
  netbase::TimePoint timestamp = 0;
  std::uint32_t collector_bgp_id = 0;
  std::string view_name;
  struct Peer {
    std::uint32_t bgp_id = 0;
    netbase::IpAddress address;
    bgp::Asn asn = 0;
    friend bool operator==(const Peer&, const Peer&) = default;
  };
  std::vector<Peer> peers;

  friend bool operator==(const PeerIndexTable&, const PeerIndexTable&) = default;
};

/// One RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: all peers' routes
/// for a single prefix at dump time.
struct RibEntryRecord {
  netbase::TimePoint timestamp = 0;  // dump time
  std::uint32_t sequence = 0;
  netbase::Prefix prefix;
  struct Entry {
    std::uint16_t peer_index = 0;
    netbase::TimePoint originated_time = 0;
    bgp::PathAttributes attributes;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<Entry> entries;

  friend bool operator==(const RibEntryRecord&, const RibEntryRecord&) = default;
};

using MrtRecord =
    std::variant<Bgp4mpMessage, Bgp4mpStateChange, PeerIndexTable, RibEntryRecord>;

/// Timestamp of any record alternative.
netbase::TimePoint record_timestamp(const MrtRecord& record);

/// One-line textual rendering (bgpdump-style) for tooling output.
std::string record_summary(const MrtRecord& record);

}  // namespace zombiescope::mrt

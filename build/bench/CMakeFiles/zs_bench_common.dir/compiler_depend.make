# Empty compiler generated dependencies file for zs_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/zs_analysis.dir/stats.cpp.o"
  "CMakeFiles/zs_analysis.dir/stats.cpp.o.d"
  "libzs_analysis.a"
  "libzs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

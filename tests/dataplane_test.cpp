// Tests for the data plane: longest-prefix-match forwarding over the
// simulated Loc-RIBs, including the paper's Fig. 1 partial-outage
// loop caused by a zombie more-specific.

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "simnet/dataplane.hpp"

namespace zombiescope::simnet {
namespace {

using netbase::IpAddress;
using netbase::kHour;
using netbase::kMinute;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;
using topology::Relationship;
using topology::Topology;

// The Fig. 1 cast: AS1 announces a /48 inside a /32 owned by AS2.
//
//   ASY -- AS3 -- ASX -- AS1     (AS3 "dominant", e.g. Tier 1)
//          |
//          AS2                   (announces the /32)
Topology fig1_topology() {
  Topology topo;
  topo.add_as({3, 1, "AS3-dominant"});
  topo.add_as({900, 2, "ASX"});
  topo.add_as({901, 2, "ASY"});
  topo.add_as({1, 3, "AS1"});
  topo.add_as({2, 3, "AS2"});
  topo.add_link(3, 900, Relationship::kCustomer);
  topo.add_link(3, 901, Relationship::kCustomer);
  topo.add_link(3, 2, Relationship::kCustomer);
  topo.add_link(900, 1, Relationship::kCustomer);
  return topo;
}

const Prefix kSlash48 = Prefix::parse("2001:db8::/48");
const Prefix kSlash32 = Prefix::parse("2001:db8::/32");
const IpAddress kVictim = IpAddress::parse("2001:db8::1");  // inside the /48

TEST(DataPlane, DeliversAlongBestPath) {
  Topology topo = fig1_topology();
  Simulation sim(topo, SimConfig{2, 8, 60}, Rng(1));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 1, kSlash48);
  sim.run_until(t0 + kHour);
  DataPlane plane(sim);
  const auto result = plane.forward(901, kVictim);
  EXPECT_EQ(result.outcome, ForwardingResult::Outcome::kDelivered);
  ASSERT_EQ(result.hops.size(), 4u);  // ASY -> AS3 -> ASX -> AS1
  EXPECT_EQ(result.hops.back(), 1u);
}

TEST(DataPlane, BlackholeWithoutAnyRoute) {
  Topology topo = fig1_topology();
  Simulation sim(topo, SimConfig{2, 8, 60}, Rng(1));
  sim.run_until(utc(2024, 6, 4, 13, 0, 0));
  DataPlane plane(sim);
  EXPECT_EQ(plane.forward(901, kVictim).outcome, ForwardingResult::Outcome::kBlackhole);
}

TEST(DataPlane, LongestPrefixMatchPrefersMoreSpecific) {
  Topology topo = fig1_topology();
  Simulation sim(topo, SimConfig{2, 8, 60}, Rng(1));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 1, kSlash48);
  sim.announce(t0, 2, kSlash32);
  sim.run_until(t0 + kHour);
  DataPlane plane(sim);
  // Traffic to the /48 goes to AS1; traffic to the rest of the /32 to AS2.
  EXPECT_EQ(plane.forward(901, kVictim).hops.back(), 1u);
  EXPECT_EQ(plane.forward(901, IpAddress::parse("2001:db8:ffff::1")).hops.back(), 2u);
}

TEST(DataPlane, Fig1ZombieCausesForwardingLoop) {
  // The paper's Fig. 1 partial outage, step by step:
  //  1. AS1 stops advertising the /48, but ASX fails to propagate the
  //     withdrawal to AS3, which keeps the zombie /48 via ASX.
  //  2. AS2 starts announcing the covering /32.
  //  3. A user in ASY sends traffic to 2001:db8::1: longest-prefix
  //     match at AS3 picks the zombie /48 toward ASX; ASX only has the
  //     /32 (via AS3) and bounces the packet back — a loop.
  Topology topo = fig1_topology();
  Simulation sim(topo, SimConfig{2, 8, 60}, Rng(1));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 1, kSlash48);
  sim.run_until(t0 + kHour);

  WithdrawalSuppression fault;  // ASX fails to tell AS3
  fault.from_asn = 900;
  fault.to_asn = 3;
  fault.prefix_filter = kSlash48;
  fault.window = {t0, std::nullopt};
  sim.add_withdrawal_suppression(fault);

  sim.withdraw(t0 + kHour + 5 * kMinute, 1, kSlash48);   // AS1 sells the /32
  sim.announce(t0 + kHour + 30 * kMinute, 2, kSlash32);  // AS2 announces it
  sim.run_until(t0 + 3 * kHour);

  // Control plane state matches the figure: AS3 keeps the zombie /48,
  // ASX does not have it.
  EXPECT_NE(sim.router(3).best(kSlash48), nullptr);
  EXPECT_EQ(sim.router(900).best(kSlash48), nullptr);

  DataPlane plane(sim);
  const auto result = plane.forward(901, kVictim);
  EXPECT_EQ(result.outcome, ForwardingResult::Outcome::kLoop);
  // The loop closes between AS3 and ASX.
  EXPECT_TRUE(result.loop_at == 3 || result.loop_at == 900) << result.to_string();
  // Traffic to the rest of the /32 is fine (partial outage).
  EXPECT_EQ(plane.forward(901, IpAddress::parse("2001:db8:ffff::1")).outcome,
            ForwardingResult::Outcome::kDelivered);
}

TEST(DataPlane, NextHopQueries) {
  Topology topo = fig1_topology();
  Simulation sim(topo, SimConfig{2, 8, 60}, Rng(1));
  const auto t0 = utc(2024, 6, 4, 12, 0, 0);
  sim.announce(t0, 1, kSlash48);
  sim.run_until(t0 + kHour);
  DataPlane plane(sim);
  EXPECT_EQ(plane.next_hop(901, kVictim), 3u);
  EXPECT_EQ(plane.next_hop(3, kVictim), 900u);
  EXPECT_EQ(plane.next_hop(900, kVictim), 1u);
  EXPECT_EQ(plane.next_hop(1, kVictim), 1u);  // delivered locally
  EXPECT_EQ(plane.next_hop(2, IpAddress::parse("10.0.0.1")), 0u);  // no route
}

TEST(DataPlane, ToStringRendersHops) {
  ForwardingResult result;
  result.hops = {901, 3, 900};
  result.outcome = ForwardingResult::Outcome::kLoop;
  result.loop_at = 3;
  EXPECT_EQ(result.to_string(), "AS901 -> AS3 -> AS900 [LOOP at AS3, packets dropped]");
}

}  // namespace
}  // namespace zombiescope::simnet

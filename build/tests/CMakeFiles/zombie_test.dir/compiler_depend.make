# Empty compiler generated dependencies file for zombie_test.
# This may be replaced when dependencies are built.

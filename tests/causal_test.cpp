// Tests for the causal propagation tracer: journal codec packing,
// sampling policy, the lock-free record ring, the per-prefix store,
// tree rendering, and the propagation-tree analysis
// (zombie/propagation.hpp) that zsroot builds on.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/causal.hpp"
#include "obs/journal.hpp"
#include "zombie/propagation.hpp"

namespace zombiescope::obs {
namespace {

static_assert(kCausalCompiledIn, "the main test build carries the tracer");

netbase::Prefix p(const std::string& text) { return netbase::Prefix::parse(text); }

HopRecord make_hop(std::uint64_t trace_id, std::uint32_t from, std::uint32_t to,
                   std::uint16_t hop, HopDecision decision,
                   TraceKind kind = TraceKind::kWithdrawal,
                   netbase::TimePoint time = 1000,
                   const std::string& prefix = "203.0.113.0/24") {
  HopRecord record;
  record.trace_id = trace_id;
  record.prefix = p(prefix);
  record.from_asn = from;
  record.to_asn = to;
  record.time = time;
  record.hop = hop;
  record.kind = kind;
  record.decision = decision;
  return record;
}

/// Fixture: every test starts from a clean global tracer and leaves a
/// clean one behind (the tracer is process-wide state).
class ObsCausalTracer : public ::testing::Test {
 protected:
  void SetUp() override {
    CausalTracer::global().reset();
    CausalTracer::global().set_enabled(true);
    CausalTracer::global().set_announce_sample_rate(
        CausalTracer::kDefaultAnnounceSampleRate);
  }
  void TearDown() override { SetUp(); }
};

// --- journal codec -----------------------------------------------------------

TEST(ObsCausalCodec, JournalEventRoundTripsEveryKindAndDecision) {
  for (const TraceKind kind : {TraceKind::kAnnouncement, TraceKind::kWithdrawal}) {
    for (const HopDecision decision :
         {HopDecision::kOriginated, HopDecision::kForwarded,
          HopDecision::kSuppressedByFault, HopDecision::kStalled,
          HopDecision::kPolicyFiltered, HopDecision::kImplicitlyWithdrawn}) {
      const HopRecord record =
          make_hop(0x0123456789abcdefull, 65001, 65002, 7, decision, kind, 22'600);
      const JournalEvent event = to_journal_event(record);
      EXPECT_EQ(event.type, JournalEventType::kPropagationHop);
      EXPECT_EQ(category_of(event.type), kCatPropagation);
      const auto back = hop_from_event(event);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, record);
    }
  }
}

TEST(ObsCausalCodec, SurvivesNdjsonSerialization) {
  const HopRecord record = make_hop(42, 65000, 65100, 3, HopDecision::kStalled);
  const auto line = to_ndjson(to_journal_event(record));
  const auto event = parse_ndjson(line);
  ASSERT_TRUE(event.has_value()) << line;
  const auto back = hop_from_event(*event);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);
}

TEST(ObsCausalCodec, RejectsForeignAndCorruptEvents) {
  JournalEvent other;
  other.type = JournalEventType::kZombieDeclared;
  EXPECT_FALSE(hop_from_event(other).has_value());

  JournalEvent hop = to_journal_event(make_hop(1, 2, 3, 0, HopDecision::kForwarded));
  hop.has_prefix = false;  // a hop without its prefix is useless
  EXPECT_FALSE(hop_from_event(hop).has_value());

  JournalEvent bad_decision = to_journal_event(make_hop(1, 2, 3, 0, HopDecision::kForwarded));
  bad_decision.c = (bad_decision.c & ~0xffll) | 0x7f;  // decision byte out of range
  EXPECT_FALSE(hop_from_event(bad_decision).has_value());

  JournalEvent bad_kind = to_journal_event(make_hop(1, 2, 3, 0, HopDecision::kForwarded));
  bad_kind.c = (bad_kind.c & ~0xff00ll) | (0x7f << 8);  // kind byte out of range
  EXPECT_FALSE(hop_from_event(bad_kind).has_value());
}

TEST(ObsCausalCodec, DecisionAndKindNamesRoundTrip) {
  for (const HopDecision decision :
       {HopDecision::kOriginated, HopDecision::kForwarded, HopDecision::kSuppressedByFault,
        HopDecision::kStalled, HopDecision::kPolicyFiltered,
        HopDecision::kImplicitlyWithdrawn}) {
    const auto parsed = parse_hop_decision(to_string(decision));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, decision);
  }
  EXPECT_FALSE(parse_hop_decision("teleported").has_value());
  EXPECT_EQ(to_string(TraceKind::kAnnouncement), "announcement");
  EXPECT_EQ(to_string(TraceKind::kWithdrawal), "withdrawal");
}

// --- sampling policy ---------------------------------------------------------

TEST_F(ObsCausalTracer, WithdrawalsAlwaysSampledAnnouncementsByRate) {
  CausalTracer& tracer = CausalTracer::global();
  tracer.set_announce_sample_rate(0.0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(tracer.begin_trace(TraceKind::kWithdrawal).sampled());
    EXPECT_FALSE(tracer.begin_trace(TraceKind::kAnnouncement).sampled());
  }
  tracer.set_announce_sample_rate(1.0);
  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(tracer.begin_trace(TraceKind::kAnnouncement).sampled());
}

TEST_F(ObsCausalTracer, AnnouncementSamplingIsDeterministicPerSeed) {
  CausalTracer& tracer = CausalTracer::global();
  tracer.set_announce_sample_rate(0.5);
  tracer.set_sample_seed(0xfeedull);

  auto draw = [&] {
    std::vector<bool> sampled;
    for (int i = 0; i < 256; ++i)
      sampled.push_back(tracer.begin_trace(TraceKind::kAnnouncement).sampled());
    return sampled;
  };
  const std::vector<bool> first = draw();
  tracer.reset();  // restarts trace ids at 1
  tracer.set_sample_seed(0xfeedull);
  EXPECT_EQ(draw(), first);

  // The rate actually bites: roughly half sampled, not all or none.
  const auto hits = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(hits, first.size() / 4);
  EXPECT_LT(hits, 3 * first.size() / 4);
}

TEST_F(ObsCausalTracer, DisabledTracerSamplesAndRecordsNothing) {
  CausalTracer& tracer = CausalTracer::global();
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.begin_trace(TraceKind::kWithdrawal).sampled());
  tracer.record(make_hop(99, 1, 2, 0, HopDecision::kForwarded));
  tracer.set_enabled(true);
  tracer.record(make_hop(0, 1, 2, 0, HopDecision::kForwarded));  // unsampled id
  EXPECT_EQ(tracer.drain(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

// --- ring + store ------------------------------------------------------------

TEST_F(ObsCausalTracer, RecordsLandInPerPrefixStoreOldestFirst) {
  CausalTracer& tracer = CausalTracer::global();
  const TraceContext root = tracer.begin_trace(TraceKind::kWithdrawal);
  ASSERT_TRUE(root.sampled());
  tracer.record(make_hop(root.trace_id, 0, 65000, 0, HopDecision::kOriginated));
  tracer.record(make_hop(root.trace_id, 65000, 65001, 1, HopDecision::kForwarded,
                         TraceKind::kWithdrawal, 1010));
  tracer.record(make_hop(root.trace_id, 65001, 65002, 2, HopDecision::kStalled,
                         TraceKind::kWithdrawal, 1020, "203.0.113.0/24"));
  tracer.record(make_hop(root.trace_id, 0, 65000, 0, HopDecision::kOriginated,
                         TraceKind::kAnnouncement, 1030, "198.51.100.0/24"));

  const auto hops = tracer.records_for(p("203.0.113.0/24"));
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].decision, HopDecision::kOriginated);
  EXPECT_EQ(hops[2].decision, HopDecision::kStalled);
  const auto prefixes = tracer.traced_prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST_F(ObsCausalTracer, RingOverflowDropsAndCountsInsteadOfBlocking) {
  CausalTracer& tracer = CausalTracer::global();
  const std::size_t n = CausalTracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    tracer.record(make_hop(7, 1, 2, 0, HopDecision::kForwarded));
  EXPECT_EQ(tracer.dropped(), 100u);
  EXPECT_EQ(tracer.drain(), CausalTracer::kRingCapacity);
  EXPECT_EQ(tracer.recorded(), CausalTracer::kRingCapacity);
}

TEST_F(ObsCausalTracer, PerPrefixStoreIsBounded) {
  CausalTracer& tracer = CausalTracer::global();
  const std::size_t n = CausalTracer::kMaxRecordsPerPrefix + 50;
  for (std::size_t i = 0; i < n; ++i) {
    tracer.record(make_hop(7, 1, 2, 0, HopDecision::kForwarded, TraceKind::kWithdrawal,
                           static_cast<netbase::TimePoint>(i)));
    if (i % 1024 == 0) tracer.drain();  // keep the ring from overflowing
  }
  const auto hops = tracer.records_for(p("203.0.113.0/24"));
  ASSERT_EQ(hops.size(), CausalTracer::kMaxRecordsPerPrefix);
  // Oldest records were evicted; the newest survive.
  EXPECT_EQ(hops.back().time, static_cast<netbase::TimePoint>(n - 1));
  EXPECT_EQ(hops.front().time, static_cast<netbase::TimePoint>(50));
}

TEST_F(ObsCausalTracer, MirrorsIntoJournalWhenPropagationCategoryEnabled) {
  Journal& journal = Journal::global();
  journal.reset();
  const std::uint32_t saved = journal.enabled_categories();
  journal.set_enabled_categories(kCatPropagation);

  const HopRecord record = make_hop(11, 65000, 65001, 1, HopDecision::kSuppressedByFault);
  CausalTracer::global().record(record);
  journal.pump();
  bool found = false;
  for (const JournalEvent& event : journal.tail(64)) {
    const auto hop = hop_from_event(event);
    if (hop.has_value() && *hop == record) found = true;
  }
  EXPECT_TRUE(found);

  // Mask off: no mirroring.
  journal.set_enabled_categories(0);
  CausalTracer::global().record(make_hop(12, 1, 2, 0, HopDecision::kForwarded));
  journal.pump();
  EXPECT_EQ(journal.tail(64).size(), 1u);

  journal.set_enabled_categories(saved);
  journal.reset();
}

TEST_F(ObsCausalTracer, ConcurrentRecordersNeverCorruptOnlyDrop) {
  CausalTracer& tracer = CausalTracer::global();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;  // > ring capacity in aggregate
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &go, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i)
        tracer.record(make_hop(static_cast<std::uint64_t>(t) + 1, 65000,
                               65001 + static_cast<std::uint32_t>(t), 1,
                               HopDecision::kForwarded));
    });
  }
  std::size_t drained = 0;
  while (go.load() < kThreads) {
  }
  for (int i = 0; i < 200; ++i) drained += tracer.drain();
  for (std::thread& thread : threads) thread.join();
  drained += tracer.drain();

  EXPECT_EQ(drained + tracer.dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Every drained record is one of the exact values some thread wrote —
  // no torn reads.
  for (const HopRecord& hop : tracer.records_for(p("203.0.113.0/24"))) {
    EXPECT_GE(hop.trace_id, 1u);
    EXPECT_LE(hop.trace_id, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(hop.to_asn, 65000u + hop.trace_id);
    EXPECT_EQ(hop.decision, HopDecision::kForwarded);
  }
}

// --- tree rendering ----------------------------------------------------------

TEST(ObsCausalTree, RendersPalmTreeWithIndentedChildren) {
  const std::uint64_t id = 5;
  std::vector<HopRecord> hops{
      make_hop(id, 0, 65000, 0, HopDecision::kOriginated),
      make_hop(id, 65000, 65001, 1, HopDecision::kForwarded, TraceKind::kWithdrawal, 1010),
      make_hop(id, 65001, 65002, 2, HopDecision::kStalled, TraceKind::kWithdrawal, 1020),
      make_hop(id, 65001, 65003, 2, HopDecision::kForwarded, TraceKind::kWithdrawal, 1021),
  };
  const std::string tree = render_propagation_tree(p("203.0.113.0/24"), hops);
  EXPECT_NE(tree.find("203.0.113.0/24"), std::string::npos);
  EXPECT_NE(tree.find("trace 5"), std::string::npos);
  EXPECT_NE(tree.find("rooted at AS65000"), std::string::npos);
  // The stalled hop renders under its sender, deeper-indented.
  const auto origin_at = tree.find("AS65000 withdrawal originated");
  const auto fwd_at = tree.find("AS65001 withdrawal forwarded");
  const auto stall_at = tree.find("AS65002 withdrawal stalled");
  ASSERT_NE(origin_at, std::string::npos);
  ASSERT_NE(fwd_at, std::string::npos);
  ASSERT_NE(stall_at, std::string::npos);
  EXPECT_LT(origin_at, fwd_at);
  EXPECT_LT(fwd_at, stall_at);
}

TEST(ObsCausalTree, CapsRenderedTraceCountMostRecentFirst) {
  std::vector<HopRecord> hops;
  for (std::uint64_t id = 1; id <= 6; ++id)
    hops.push_back(make_hop(id, 0, 65000, 0, HopDecision::kOriginated,
                            TraceKind::kWithdrawal,
                            static_cast<netbase::TimePoint>(1000 + id)));
  const std::string tree = render_propagation_tree(p("203.0.113.0/24"), hops, 2);
  EXPECT_NE(tree.find("trace 6"), std::string::npos);
  EXPECT_NE(tree.find("trace 5"), std::string::npos);
  EXPECT_EQ(tree.find("trace 4"), std::string::npos);
}

}  // namespace
}  // namespace zombiescope::obs

// --- propagation-tree analysis (zombie/propagation.hpp) ----------------------

namespace zombiescope::zombie {
namespace {

using obs::HopDecision;
using obs::HopRecord;
using obs::TraceKind;

HopRecord hop(std::uint64_t id, std::uint32_t from, std::uint32_t to, std::uint16_t depth,
              HopDecision decision, TraceKind kind = TraceKind::kWithdrawal,
              netbase::TimePoint time = 1000) {
  HopRecord record;
  record.trace_id = id;
  record.prefix = netbase::Prefix::parse("203.0.113.0/24");
  record.from_asn = from;
  record.to_asn = to;
  record.time = time;
  record.hop = depth;
  record.kind = kind;
  record.decision = decision;
  return record;
}

TEST(ObsCausalPropagation, GroupsRecordsIntoSortedTraces) {
  std::vector<HopRecord> records{
      hop(2, 65000, 65001, 1, HopDecision::kForwarded, TraceKind::kAnnouncement, 900),
      hop(1, 65001, 65002, 2, HopDecision::kStalled, TraceKind::kWithdrawal, 1020),
      hop(1, 0, 65000, 0, HopDecision::kOriginated, TraceKind::kWithdrawal, 1000),
      hop(1, 65000, 65001, 1, HopDecision::kForwarded, TraceKind::kWithdrawal, 1010),
      hop(2, 0, 65000, 0, HopDecision::kOriginated, TraceKind::kAnnouncement, 890),
  };
  const auto traces = group_traces(records);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, 1u);
  EXPECT_TRUE(traces[0].is_withdrawal_rooted());
  ASSERT_TRUE(traces[0].origin_asn.has_value());
  EXPECT_EQ(*traces[0].origin_asn, 65000u);
  ASSERT_EQ(traces[0].hops.size(), 3u);
  EXPECT_EQ(traces[0].hops[0].decision, HopDecision::kOriginated);  // sorted by hop
  EXPECT_EQ(traces[0].hops[2].decision, HopDecision::kStalled);
  EXPECT_FALSE(traces[1].is_withdrawal_rooted());
}

TEST(ObsCausalPropagation, RootlessTraceIsNotWithdrawalRooted) {
  const auto traces =
      group_traces({hop(9, 65000, 65001, 1, HopDecision::kForwarded)});
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_FALSE(traces[0].root_kind.has_value());
  EXPECT_FALSE(traces[0].is_withdrawal_rooted());
}

TEST(ObsCausalPropagation, FrontierSeparatesReachedFromCulprits) {
  const auto traces = group_traces({
      hop(1, 0, 65000, 0, HopDecision::kOriginated),
      hop(1, 65000, 65001, 1, HopDecision::kForwarded, TraceKind::kWithdrawal, 1010),
      hop(1, 65001, 65002, 2, HopDecision::kSuppressedByFault, TraceKind::kWithdrawal, 1020),
      hop(1, 65001, 65003, 2, HopDecision::kImplicitlyWithdrawn, TraceKind::kWithdrawal,
          1021),
  });
  ASSERT_EQ(traces.size(), 1u);
  const FrontierResult frontier = localize_frontier(traces[0]);
  EXPECT_EQ(frontier.reached, (std::vector<std::uint32_t>{65000, 65001, 65003}));
  ASSERT_EQ(frontier.culprits.size(), 1u);
  EXPECT_EQ(frontier.culprits[0].from_asn, 65001u);
  EXPECT_EQ(frontier.culprits[0].to_asn, 65002u);
  EXPECT_EQ(frontier.culprits[0].decision, HopDecision::kSuppressedByFault);
}

TEST(ObsCausalPropagation, LocalizeFrontiersSkipsAnnouncementRootedTraces) {
  const auto frontiers = localize_frontiers({
      hop(1, 0, 65000, 0, HopDecision::kOriginated, TraceKind::kAnnouncement),
      hop(1, 65000, 65001, 1, HopDecision::kForwarded, TraceKind::kAnnouncement, 1010),
      hop(2, 0, 65000, 0, HopDecision::kOriginated, TraceKind::kWithdrawal, 2000),
      hop(2, 65000, 65001, 1, HopDecision::kStalled, TraceKind::kWithdrawal, 2010),
  });
  ASSERT_EQ(frontiers.size(), 1u);
  EXPECT_EQ(frontiers[0].trace_id, 2u);
  ASSERT_EQ(frontiers[0].culprits.size(), 1u);
  EXPECT_EQ(frontiers[0].culprits[0].decision, HopDecision::kStalled);
}

}  // namespace
}  // namespace zombiescope::zombie

#include "beacon/driver.hpp"

namespace zombiescope::beacon {

void BeaconDriver::drive(const std::vector<BeaconEvent>& events) {
  for (const auto& event : events) {
    bgp::PathAttributes attributes;
    attributes.origin = bgp::Origin::kIgp;
    if (with_aggregator_clock_)
      attributes.aggregator = make_beacon_aggregator(origin_, event.announce_time);
    sim_.announce(event.announce_time, origin_, event.prefix, std::move(attributes));
    sim_.withdraw(event.withdraw_time, origin_, event.prefix);
    events_.push_back(event);
  }
}

}  // namespace zombiescope::beacon

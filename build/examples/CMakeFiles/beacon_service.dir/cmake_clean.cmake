file(REMOVE_RECURSE
  "CMakeFiles/beacon_service.dir/beacon_service.cpp.o"
  "CMakeFiles/beacon_service.dir/beacon_service.cpp.o.d"
  "beacon_service"
  "beacon_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beacon_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for zs_collector.
# This may be replaced when dependencies are built.

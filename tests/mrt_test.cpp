// Tests for the MRT (RFC 6396) codec: record round trips, file I/O,
// and structural error handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mrt/codec.hpp"
#include "netbase/rng.hpp"
#include "netbase/time.hpp"

namespace zombiescope::mrt {
namespace {

using bgp::AsPath;
using bgp::UpdateMessage;
using netbase::IpAddress;
using netbase::Prefix;
using netbase::Rng;
using netbase::utc;

Bgp4mpMessage make_message() {
  Bgp4mpMessage m;
  m.timestamp = utc(2024, 6, 4, 11, 45, 2);
  m.peer_asn = 211509;
  m.local_asn = 12654;
  m.peer_address = IpAddress::parse("2001:678:3f4:5::1");
  m.local_address = IpAddress::parse("2001:7f8::1");
  m.update.announced.push_back(Prefix::parse("2a0d:3dc1:1145::/48"));
  m.update.attributes.as_path = AsPath{211509, 25091, 8298, 210312};
  m.update.attributes.next_hop = IpAddress::parse("2001:678:3f4:5::1");
  return m;
}

TEST(MrtCodec, MessageRoundTrip) {
  MrtWriter w;
  w.write(make_message());
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<Bgp4mpMessage>(records[0]), make_message());
}

TEST(MrtCodec, StateChangeRoundTrip) {
  Bgp4mpStateChange s;
  s.timestamp = utc(2024, 6, 10, 0, 0, 0);
  s.peer_asn = 16347;
  s.local_asn = 12654;
  s.peer_address = IpAddress::parse("185.1.1.1");
  s.local_address = IpAddress::parse("185.1.1.2");
  s.old_state = bgp::SessionState::kEstablished;
  s.new_state = bgp::SessionState::kIdle;
  MrtWriter w;
  w.write(s);
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<Bgp4mpStateChange>(records[0]), s);
}

TEST(MrtCodec, PeerIndexTableRoundTrip) {
  PeerIndexTable t;
  t.timestamp = utc(2024, 6, 4);
  t.collector_bgp_id = 0xC0000201;
  t.view_name = "rrc25";
  t.peers.push_back({1, IpAddress::parse("2a0c:9a40:1031::504"), 211380});
  t.peers.push_back({2, IpAddress::parse("176.119.234.201"), 211509});  // v6-over-v4 peer
  t.peers.push_back({3, IpAddress::parse("2001:678:3f4:5::1"), 211509});
  MrtWriter w;
  w.write(t);
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<PeerIndexTable>(records[0]), t);
}

TEST(MrtCodec, RibRecordRoundTripV6) {
  RibEntryRecord rib;
  rib.timestamp = utc(2024, 6, 29, 8, 0, 0);
  rib.sequence = 42;
  rib.prefix = Prefix::parse("2a0d:3dc1:1851::/48");
  RibEntryRecord::Entry e;
  e.peer_index = 7;
  e.originated_time = utc(2024, 6, 21, 8, 30, 0);
  e.attributes.as_path = AsPath{61573, 28598, 10429, 12956, 3356, 34549, 8298, 210312};
  e.attributes.next_hop = IpAddress::parse("2001:db8::99");
  e.attributes.local_pref = 100;
  rib.entries.push_back(e);
  MrtWriter w;
  w.write(rib);
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<RibEntryRecord>(records[0]), rib);
}

TEST(MrtCodec, RibRecordRoundTripV4WithAggregator) {
  RibEntryRecord rib;
  rib.timestamp = utc(2018, 7, 19, 8, 0, 0);
  rib.sequence = 1;
  rib.prefix = Prefix::parse("84.205.71.0/24");
  RibEntryRecord::Entry e;
  e.peer_index = 3;
  e.originated_time = utc(2018, 7, 19, 0, 0, 2);
  e.attributes.as_path = AsPath{3333, 12654};
  e.attributes.next_hop = IpAddress::parse("193.0.4.28");
  e.attributes.aggregator = bgp::Aggregator{12654, IpAddress::parse("10.19.29.192")};
  rib.entries.push_back(e);
  MrtWriter w;
  w.write(rib);
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<RibEntryRecord>(records[0]), rib);
}

TEST(MrtCodec, StreamOfMixedRecordsPreservesOrder) {
  MrtWriter w;
  auto m = make_message();
  for (int i = 0; i < 10; ++i) {
    m.timestamp = utc(2024, 6, 4, 11, 45, i);
    w.write(m);
  }
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(record_timestamp(records[static_cast<std::size_t>(i)]),
              utc(2024, 6, 4, 11, 45, i));
}

TEST(MrtCodec, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "zombiescope_mrt_test.mrt").string();
  std::vector<MrtRecord> records;
  records.push_back(make_message());
  Bgp4mpStateChange s;
  s.timestamp = utc(2024, 6, 5);
  s.peer_asn = 1;
  s.local_asn = 2;
  s.peer_address = IpAddress::parse("10.0.0.1");
  s.local_address = IpAddress::parse("10.0.0.2");
  s.old_state = bgp::SessionState::kEstablished;
  s.new_state = bgp::SessionState::kActive;
  records.push_back(s);

  write_file(path, records);
  auto loaded = read_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(std::get<Bgp4mpMessage>(loaded[0]), std::get<Bgp4mpMessage>(records[0]));
  EXPECT_EQ(std::get<Bgp4mpStateChange>(loaded[1]), std::get<Bgp4mpStateChange>(records[1]));
  std::filesystem::remove(path);
}

TEST(MrtCodec, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/zombiescope.mrt"), std::runtime_error);
}

TEST(MrtCodec, TruncatedStreamThrows) {
  MrtWriter w;
  w.write(make_message());
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_all(bytes), netbase::DecodeError);
}

TEST(MrtCodec, UnsupportedTypeThrows) {
  netbase::ByteWriter w;
  w.u32(0);
  w.u16(99);  // unknown MRT type
  w.u16(0);
  w.u32(0);
  EXPECT_THROW(decode_all(w.data()), netbase::DecodeError);
}

TEST(MrtCodec, RecordSummariesAreReadable) {
  auto m = make_message();
  EXPECT_NE(record_summary(m).find("BGP4MP"), std::string::npos);
  EXPECT_NE(record_summary(m).find("2a0d:3dc1:1145::/48"), std::string::npos);
}

// Property: randomized update messages survive MRT wrapping.
class MrtRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrtRoundTrip, RandomizedUpdates) {
  Rng rng(GetParam());
  MrtWriter w;
  std::vector<Bgp4mpMessage> originals;
  for (int i = 0; i < 100; ++i) {
    Bgp4mpMessage m;
    m.timestamp = utc(2024, 6, 4) + rng.uniform_int(0, 86400 * 18);
    m.peer_asn = static_cast<bgp::Asn>(rng.uniform_int(1, 400000));
    m.local_asn = 12654;
    const bool v6_session = rng.chance(0.5);
    m.peer_address = v6_session ? IpAddress::parse("2001:db8::2") : IpAddress::parse("10.1.0.2");
    m.local_address = v6_session ? IpAddress::parse("2001:db8::1") : IpAddress::parse("10.1.0.1");
    const bool announce = rng.chance(0.6);
    Prefix p = Prefix::parse("2a0d:3dc1:" + std::to_string(rng.uniform_int(0, 2359)) + "::/48");
    if (announce) {
      m.update.announced.push_back(p);
      std::vector<bgp::Asn> asns;
      const int hops = static_cast<int>(rng.uniform_int(1, 8));
      for (int h = 0; h < hops; ++h)
        asns.push_back(static_cast<bgp::Asn>(rng.uniform_int(1, 400000)));
      m.update.attributes.as_path = AsPath::sequence(asns);
      m.update.attributes.next_hop = IpAddress::parse("2001:db8::2");
    } else {
      m.update.withdrawn.push_back(p);
    }
    originals.push_back(m);
    w.write(m);
  }
  auto records = decode_all(w.data());
  ASSERT_EQ(records.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i)
    EXPECT_EQ(std::get<Bgp4mpMessage>(records[i]), originals[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtRoundTrip, ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace zombiescope::mrt

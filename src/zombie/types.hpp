// zombie/types.hpp — vocabulary of the zombie detection pipeline.

#pragma once

#include <compare>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::zombie {

/// Identifies one collector peering session: peer AS + peer router
/// address. The paper counts zombie routes per peer *router* (e.g.
/// AS211509 contributes two noisy routers over different transports)
/// and outbreak spread per peer *AS*.
struct PeerKey {
  bgp::Asn asn = 0;
  netbase::IpAddress address;

  friend auto operator<=>(const PeerKey&, const PeerKey&) = default;
};

std::string to_string(const PeerKey& peer);

/// One stuck route: a ⟨beacon, interval, peer⟩ triple whose last
/// in-interval update at check time was an announcement.
struct ZombieRoute {
  PeerKey peer;
  netbase::Prefix prefix;
  /// Announcement time of the beacon interval being checked.
  netbase::TimePoint interval_start = 0;
  /// The withdrawal the route survived.
  netbase::TimePoint withdraw_time = 0;
  /// AS path of the stuck route (as archived, peer ASN first).
  bgp::AsPath path;
  /// Decoded Aggregator clock of the stuck announcement, if present.
  std::optional<netbase::TimePoint> aggregator_time;
  /// True if the Aggregator clock shows the announcement belongs to an
  /// earlier interval — a duplicate under the revised methodology.
  bool duplicate = false;
};

/// A zombie outbreak: all zombie routes of one prefix in one interval.
struct ZombieOutbreak {
  netbase::Prefix prefix;
  netbase::TimePoint interval_start = 0;
  netbase::TimePoint withdraw_time = 0;
  std::vector<ZombieRoute> routes;

  int route_count() const { return static_cast<int>(routes.size()); }
  /// Distinct peer ASes infected (the paper's "24 peer routers and 21
  /// peer ASes" distinction).
  int peer_as_count() const;
  int peer_router_count() const { return route_count(); }
};

}  // namespace zombiescope::zombie

// beacon/clock.hpp — the two "BGP clock" encodings the paper relies on.
//
// 1. The RIPE RIS beacon *Aggregator clock*: every beacon announcement
//    carries an AGGREGATOR attribute whose IP is 10.x.y.z, with x.y.z
//    the 24-bit count of seconds between midnight UTC on the 1st of
//    the month and the announcement. The revised methodology decodes
//    it to tell whether an observed stuck route belongs to the current
//    beacon interval or to an older one (double-counting elimination).
//
// 2. The paper's own *prefix clocks*: the announcement time is encoded
//    in the prefix bits, "2a0d:3dc1:(HHMM)::/48" for 24-hour recycled
//    prefixes and "2a0d:3dc1:(HH)(minute+day%15)::/48" for 15-day
//    recycled ones (including the documented collision bug of the
//    second format).

#pragma once

#include <optional>

#include "bgp/attributes.hpp"
#include "netbase/ip.hpp"
#include "netbase/time.hpp"

namespace zombiescope::beacon {

/// Encodes `announced_at` as the RIS beacon Aggregator address
/// 10.x.y.z (seconds since midnight UTC on the 1st of the month,
/// 24 bits). Seconds counts of a month always fit: < 2,678,400 < 2^24.
netbase::IpAddress encode_aggregator_clock(netbase::TimePoint announced_at);

/// Decodes an Aggregator clock address relative to `observed_at`: the
/// returned instant is the latest candidate (this month or an earlier
/// one) that is <= observed_at — the paper's "best case scenario"
/// (footnote 1: the attribute is relative to the beginning of *each*
/// month, so a stale route can be even older than the best case).
/// Returns nullopt if the address is not of the 10.x.y.z form.
std::optional<netbase::TimePoint> decode_aggregator_clock(const netbase::IpAddress& address,
                                                          netbase::TimePoint observed_at);

/// Convenience: full AGGREGATOR attribute for a beacon announcement.
bgp::Aggregator make_beacon_aggregator(bgp::Asn asn, netbase::TimePoint announced_at);

}  // namespace zombiescope::beacon

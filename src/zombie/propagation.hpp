// zombie/propagation.hpp — withdraw-propagation tree analysis over
// causal hop records.
//
// The palm-tree inference (rootcause.hpp) works backwards from the
// zombie routes' AS paths and can only name a *suspect*. This module
// works forwards from the per-hop provenance the causal tracer
// (obs/causal.hpp) recorded: it groups HopRecords into per-trace
// bundles, then localizes each withdrawal wave's frontier — the exact
// links where the withdrawal died (suppressed_by_fault / stalled),
// separating the ASes that saw the withdraw from the ones that never
// did. tools/zsroot drives this over journal files and scores the
// palm-tree heuristic against it.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/causal.hpp"

namespace zombiescope::zombie {

/// All hop records of one trace, sorted by (hop, time, to_asn).
struct PropagationTrace {
  std::uint64_t trace_id = 0;
  netbase::Prefix prefix;
  /// Kind of the root (originated) hop; nullopt when the root record
  /// is missing (ring overflow or a truncated journal).
  std::optional<obs::TraceKind> root_kind;
  /// The AS the trace is rooted at (to_asn of the originated hop).
  std::optional<std::uint32_t> origin_asn;
  std::vector<obs::HopRecord> hops;

  bool is_withdrawal_rooted() const {
    return root_kind == obs::TraceKind::kWithdrawal;
  }
};

/// Groups records into traces (ordered by trace id).
std::vector<PropagationTrace> group_traces(const std::vector<obs::HopRecord>& records);

/// A link on which a withdrawal wave died, with the fault class that
/// killed it there.
struct CulpritLink {
  std::uint32_t from_asn = 0;
  std::uint32_t to_asn = 0;
  obs::HopDecision decision = obs::HopDecision::kSuppressedByFault;
  netbase::TimePoint time = 0;

  friend bool operator==(const CulpritLink&, const CulpritLink&) = default;
};

/// The frontier of one withdrawal wave: who saw it, and where it died.
struct FrontierResult {
  std::uint64_t trace_id = 0;
  netbase::Prefix prefix;
  /// ASes the withdrawal information reached (origin + every delivered
  /// hop, whatever its effect), ascending.
  std::vector<std::uint32_t> reached;
  /// Links where withdrawal hops were suppressed or stalled — the
  /// boundary between "saw the withdraw" and "never did", and, in the
  /// simulator, exactly the injected fault's (from_asn, to_asn).
  std::vector<CulpritLink> culprits;
};

/// Localizes the frontier of one trace (meaningful for
/// withdrawal-rooted traces; other traces yield no culprits unless a
/// withdrawal hop inside them died).
FrontierResult localize_frontier(const PropagationTrace& trace);

/// Groups `records` and localizes every withdrawal-rooted trace.
std::vector<FrontierResult> localize_frontiers(const std::vector<obs::HopRecord>& records);

}  // namespace zombiescope::zombie

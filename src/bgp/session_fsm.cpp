#include "bgp/session_fsm.hpp"

#include <algorithm>

namespace zombiescope::bgp {

std::string to_string(FsmState state) {
  switch (state) {
    case FsmState::kIdle:
      return "Idle";
    case FsmState::kConnect:
      return "Connect";
    case FsmState::kOpenSent:
      return "OpenSent";
    case FsmState::kOpenConfirm:
      return "OpenConfirm";
    case FsmState::kEstablished:
      return "Established";
  }
  return "?";
}

netbase::Duration SessionFsm::negotiated_hold_time() const {
  if (!peer_open_.has_value()) return config_.hold_time;
  // min() is correct for 0 too: a zero offer from either side disables
  // the hold timer for both (RFC 4271 §4.2).
  return std::min(config_.hold_time, peer_open_->hold_time);
}

netbase::Duration SessionFsm::negotiated_keepalive_interval() const {
  if (!peer_open_.has_value()) return config_.keepalive_interval;
  return negotiated_hold_time() / 3;
}

bool SessionFsm::collision_close_local(std::uint32_t local_id,
                                       std::uint32_t remote_id,
                                       bool local_initiated) {
  // §6.8: the connection initiated by the higher BGP Identifier wins.
  // (Equal identifiers cannot happen between distinct speakers; treat
  // the tie like a remote win so exactly one side closes.)
  const bool local_side_wins = local_id > remote_id;
  return local_initiated ? !local_side_wins : local_side_wins;
}

void SessionFsm::start(netbase::TimePoint now) {
  if (state_ != FsmState::kIdle) return;
  state_ = FsmState::kConnect;
  peer_open_.reset();
  connect_retries_ = 0;
  if (config_.connect_retry > 0) connect_retry_at_ = now + config_.connect_retry;
}

void SessionFsm::stop(netbase::TimePoint now) {
  if (state_ == FsmState::kEstablished) drop_session(now, "administrative stop");
  state_ = FsmState::kIdle;
  out_queue_.clear();
  peer_open_.reset();
  send_hold_expires_.reset();
}

void SessionFsm::connected(netbase::TimePoint now) {
  if (state_ != FsmState::kConnect) return;
  state_ = FsmState::kOpenSent;
  enqueue(now, FsmMessage{MessageType::kOpen, std::nullopt, std::nullopt});
  // §8.2.2: a large hold time (4 minutes) guards the OpenSent wait
  // when no hold time is configured; negotiation replaces it.
  hold_expires_ = now + (config_.hold_time > 0 ? config_.hold_time : 240);
}

void SessionFsm::receive(netbase::TimePoint now, const FsmMessage& message) {
  if (message.type == MessageType::kOpen && message.open.has_value())
    peer_open_ = message.open;

  // Any message from the peer proves liveness. Negotiated hold: once
  // both OPENs are on the table the session runs at min(ours, theirs),
  // not at our configured offer.
  if (negotiated_hold_time() > 0) hold_expires_ = now + negotiated_hold_time();

  switch (state_) {
    case FsmState::kIdle:
    case FsmState::kConnect:
      return;  // stray packet; transport not up from our perspective
    case FsmState::kOpenSent:
      if (message.type == MessageType::kOpen) {
        state_ = FsmState::kOpenConfirm;
        enqueue(now, FsmMessage{MessageType::kKeepalive, std::nullopt, std::nullopt});
      } else if (message.type == MessageType::kNotification) {
        stop(now);
      }
      return;
    case FsmState::kOpenConfirm:
      if (message.type == MessageType::kKeepalive) {
        state_ = FsmState::kEstablished;
        keepalive_due_ = now + negotiated_keepalive_interval();
      } else if (message.type == MessageType::kNotification) {
        stop(now);
      }
      return;
    case FsmState::kEstablished:
      if (message.type == MessageType::kNotification) {
        drop_session(now, "NOTIFICATION from peer");
        state_ = FsmState::kIdle;
      }
      return;
  }
}

bool SessionFsm::send_update(netbase::TimePoint now, UpdateMessage update) {
  if (state_ != FsmState::kEstablished) return false;
  enqueue(now, FsmMessage{MessageType::kUpdate, std::move(update), std::nullopt});
  return true;
}

std::vector<FsmMessage> SessionFsm::drain(netbase::TimePoint now, std::size_t max_messages) {
  std::vector<FsmMessage> out;
  while (!out_queue_.empty() && out.size() < max_messages) {
    out.push_back(std::move(out_queue_.front()));
    out_queue_.pop_front();
  }
  // Send progress: the RFC 9687 timer restarts (or clears) whenever
  // the queue drains.
  if (!out.empty()) {
    if (out_queue_.empty())
      send_hold_expires_.reset();
    else if (config_.send_hold_time > 0)
      send_hold_expires_ = now + config_.send_hold_time;
  }
  return out;
}

void SessionFsm::tick(netbase::TimePoint now) {
  // ConnectRetryTimer (§8.2.2): fires while the transport never comes
  // up; the owner of the socket watches connect_retries() to re-dial.
  if (state_ == FsmState::kConnect) {
    if (config_.connect_retry > 0 && now >= connect_retry_at_) {
      ++connect_retries_;
      connect_retry_at_ = now + config_.connect_retry;
    }
    return;
  }
  if (state_ != FsmState::kEstablished && state_ != FsmState::kOpenSent &&
      state_ != FsmState::kOpenConfirm)
    return;

  // Hold timer (RFC 4271 §8.2.2): nothing received in time. Runs at
  // the negotiated value once the peer's OPEN has been seen.
  if (negotiated_hold_time() > 0 && now >= hold_expires_) {
    drop_session(now, "hold timer expired");
    state_ = FsmState::kIdle;
    return;
  }

  if (state_ != FsmState::kEstablished) return;

  // Send hold timer (RFC 9687): the peer has not read anything we
  // queued for send_hold_time.
  if (send_hold_expires_.has_value() && now >= *send_hold_expires_) {
    drop_session(now, "send hold timer expired (RFC 9687)");
    state_ = FsmState::kIdle;
    return;
  }

  // KEEPALIVE schedule, at the negotiated cadence.
  const netbase::Duration keepalive = negotiated_keepalive_interval();
  if (keepalive > 0 && now >= keepalive_due_) {
    enqueue(now, FsmMessage{MessageType::kKeepalive, std::nullopt, std::nullopt});
    keepalive_due_ = now + keepalive;
  }
}

void SessionFsm::enqueue(netbase::TimePoint now, FsmMessage message) {
  out_queue_.push_back(std::move(message));
  if (config_.send_hold_time > 0 && !send_hold_expires_.has_value())
    send_hold_expires_ = now + config_.send_hold_time;
}

void SessionFsm::drop_session(netbase::TimePoint now, const std::string& reason) {
  (void)now;
  last_error_ = reason;
  ++session_drops_;
  out_queue_.clear();
  send_hold_expires_.reset();
}

}  // namespace zombiescope::bgp

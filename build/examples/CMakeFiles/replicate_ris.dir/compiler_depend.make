# Empty compiler generated dependencies file for replicate_ris.
# This may be replaced when dependencies are built.

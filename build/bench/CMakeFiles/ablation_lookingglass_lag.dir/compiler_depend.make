# Empty compiler generated dependencies file for ablation_lookingglass_lag.
# This may be replaced when dependencies are built.

// Tests for the wire subsystem below the socket layer: BGP-4 message
// codecs (OPEN with the full capability set, NOTIFICATION vocabulary,
// UPDATE framing), the header fuzz table (every malformed input must
// map to the exact NOTIFICATION code/subcode RFC 4271 §6 prescribes),
// FrameReader segmentation, graceful-restart stale retention, §6.8
// collision resolution, and the bridge sideband attributes.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/session_fsm.hpp"
#include "bgp/update.hpp"
#include "netbase/ip.hpp"
#include "wire/bridge.hpp"
#include "wire/message.hpp"
#include "wire/retention.hpp"

namespace zombiescope::wire {
namespace {

using netbase::IpAddress;
using netbase::Prefix;

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

// ---------------------------------------------------------------- codec

TEST(WireCodec, KeepaliveIsNineteenHeaderBytes) {
  const auto wire = encode_keepalive();
  ASSERT_EQ(wire.size(), kHeaderSize);
  const auto header = decode_header(as_span(wire));
  EXPECT_EQ(header.length, kHeaderSize);
  EXPECT_EQ(header.type, bgp::MessageType::kKeepalive);
}

TEST(WireCodec, OpenRoundTripsEveryCapability) {
  OpenMessage open;
  open.asn = 4200000001;  // exceeds 16 bits: wire My-AS must be AS_TRANS
  open.hold_time = 180;
  open.bgp_id = 0xc0000201;
  open.cap_four_octet_asn = true;
  open.cap_route_refresh = true;
  open.multiprotocol = {{1, 1}, {2, 1}};
  open.graceful_restart = GracefulRestart{true, 2400, {{1, 1, true}, {2, 1, false}}};
  open.llgr = LongLivedGracefulRestart{{{1, 1, 86400}}};
  open.bridge_peer_address = IpAddress::parse("2001:7f8:4::8447:1");
  open.unknown_capabilities = {{73, {0x01, 0x02}}};

  const auto wire = open.encode();
  const auto header = decode_header(as_span(wire));
  EXPECT_EQ(header.type, bgp::MessageType::kOpen);
  EXPECT_EQ(header.length, wire.size());
  const auto decoded = OpenMessage::decode(as_span(wire));
  EXPECT_EQ(decoded, open);
}

TEST(WireCodec, OpenSmallAsnRoundTrips) {
  OpenMessage open;
  open.asn = 64999;
  open.hold_time = 90;
  open.bgp_id = 0xc0000263;
  const auto decoded = OpenMessage::decode(as_span(open.encode()));
  EXPECT_EQ(decoded.asn, 64999u);
  EXPECT_EQ(decoded.hold_time, 90);
  EXPECT_EQ(decoded.bgp_id, 0xc0000263u);
}

TEST(WireCodec, OpenBridgeAddressV4RoundTrips) {
  OpenMessage open;
  open.asn = 65010;
  open.bgp_id = 1;
  open.bridge_peer_address = IpAddress::parse("192.0.2.41");
  const auto decoded = OpenMessage::decode(as_span(open.encode()));
  ASSERT_TRUE(decoded.bridge_peer_address.has_value());
  EXPECT_EQ(decoded.bridge_peer_address->to_string(), "192.0.2.41");
}

TEST(WireCodec, GrRestartTimeIsTwelveBitsOnTheWire) {
  OpenMessage open;
  open.asn = 65020;
  open.bgp_id = 2;
  open.graceful_restart = GracefulRestart{false, 4095, {{1, 1, false}}};
  const auto decoded = OpenMessage::decode(as_span(open.encode()));
  ASSERT_TRUE(decoded.graceful_restart.has_value());
  EXPECT_EQ(decoded.graceful_restart->restart_time, 4095);
}

TEST(WireCodec, NotificationRoundTripsWithData) {
  NotificationMessage n;
  n.code = NotifyCode::kOpenMessageError;
  n.subcode = kOpenUnacceptableHoldTime;
  n.data = {0x00, 0x01};
  const auto decoded = NotificationMessage::decode(as_span(n.encode()));
  EXPECT_EQ(decoded, n);
}

TEST(WireCodec, NotificationNamesCoverTheVocabulary) {
  EXPECT_EQ(to_string(NotifyCode::kHoldTimerExpired), "Hold Timer Expired");
  EXPECT_EQ(to_string(NotifyCode::kSendHoldTimerExpired),
            "Send Hold Timer Expired");
  NotificationMessage n;
  n.code = NotifyCode::kCease;
  n.subcode = kCeaseAdminShutdown;
  EXPECT_NE(n.to_string().find("Cease"), std::string::npos);
  EXPECT_NE(notify_subcode_name(NotifyCode::kCease, kCeaseConnectionCollision)
                .find("ollision"),
            std::string::npos);
  // Unknown subcodes degrade to a numeric display, never throw.
  EXPECT_NE(notify_subcode_name(NotifyCode::kCease, 99).find("99"),
            std::string::npos);
}

TEST(WireCodec, UpdateFramingRoundTripsThroughBgpCodec) {
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("198.51.100.0/24"));
  update.announced.push_back(Prefix::parse("203.0.113.0/24"));
  update.attributes.as_path = bgp::AsPath{65001, 64511, 64496};
  update.attributes.next_hop = IpAddress::parse("192.0.2.1");

  const auto wire = encode_update(update);
  const auto header = decode_header(as_span(wire));
  EXPECT_EQ(header.type, bgp::MessageType::kUpdate);
  const auto decoded = decode_update(as_span(wire));
  EXPECT_EQ(decoded.withdrawn, update.withdrawn);
  EXPECT_EQ(decoded.announced, update.announced);
  EXPECT_EQ(decoded.attributes.as_path, update.attributes.as_path);
}

TEST(WireCodec, UpdateOverFourKiloByteCeilingThrows) {
  // 1200 v4 /24s at 4 NLRI bytes each is ~4800 bytes: past 4096.
  bgp::UpdateMessage update;
  update.attributes.as_path = bgp::AsPath{65001};
  update.attributes.next_hop = IpAddress::parse("192.0.2.1");
  for (int i = 0; i < 1200; ++i) {
    update.announced.push_back(
        Prefix(IpAddress::v4((10u << 24) | (static_cast<std::uint32_t>(i) << 8)),
               24));
  }
  try {
    encode_update(update);
    FAIL() << "expected WireError for an oversized UPDATE";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), NotifyCode::kUpdateMessageError);
  }
}

TEST(WireCodec, SplitUpdateKeepsEveryRouteAndFitsTheWire) {
  bgp::UpdateMessage update;
  update.attributes.as_path = bgp::AsPath{65001, 64511};
  update.attributes.next_hop = IpAddress::parse("192.0.2.1");
  for (int i = 0; i < 1000; ++i) {
    update.announced.push_back(
        Prefix(IpAddress::v4((10u << 24) | (static_cast<std::uint32_t>(i) << 8)),
               24));
    if (i < 500) {
      update.withdrawn.push_back(
          Prefix(IpAddress::v4((172u << 24) | (16u << 16) |
                               (static_cast<std::uint32_t>(i) << 8)),
                 24));
    }
  }
  const auto parts = split_update(update);
  ASSERT_GT(parts.size(), 1u);
  std::size_t announced = 0, withdrawn = 0;
  for (const auto& part : parts) {
    const auto wire = encode_update(part);  // must not throw
    EXPECT_LE(wire.size(), kMaxMessageSize);
    announced += part.announced.size();
    withdrawn += part.withdrawn.size();
    if (!part.announced.empty())
      EXPECT_EQ(part.attributes.as_path, update.attributes.as_path);
  }
  EXPECT_EQ(announced, update.announced.size());
  EXPECT_EQ(withdrawn, update.withdrawn.size());
}

TEST(WireCodec, SplitUpdateLeavesSmallMessagesAlone) {
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("198.51.100.0/24"));
  const auto parts = split_update(update);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].withdrawn, update.withdrawn);
}

// ------------------------------------------------------- header fuzzing

struct FuzzCase {
  const char* name;
  std::vector<std::uint8_t> wire;
  NotifyCode code;
  std::uint8_t subcode;
};

std::vector<std::uint8_t> header_bytes(std::uint16_t length, std::uint8_t type,
                                       std::uint8_t marker_byte = 0xff) {
  std::vector<std::uint8_t> wire(kHeaderSize, marker_byte);
  for (std::size_t i = 16; i < kHeaderSize; ++i) wire[i] = 0;
  wire[16] = static_cast<std::uint8_t>(length >> 8);
  wire[17] = static_cast<std::uint8_t>(length & 0xff);
  wire[18] = type;
  return wire;
}

TEST(WireHeaderFuzz, MalformedHeadersMapToExactNotifications) {
  const std::vector<FuzzCase> cases = {
      {"bad marker", header_bytes(19, 4, 0x00),
       NotifyCode::kMessageHeaderError, kHdrConnectionNotSynchronized},
      {"length below minimum", header_bytes(18, 4),
       NotifyCode::kMessageHeaderError, kHdrBadMessageLength},
      {"length above 4096", header_bytes(4097, 2),
       NotifyCode::kMessageHeaderError, kHdrBadMessageLength},
      {"open shorter than minimum", header_bytes(19 + 5, 1),
       NotifyCode::kMessageHeaderError, kHdrBadMessageLength},
      {"keepalive with body", header_bytes(20, 4),
       NotifyCode::kMessageHeaderError, kHdrBadMessageLength},
      {"notification shorter than minimum", header_bytes(20, 3),
       NotifyCode::kMessageHeaderError, kHdrBadMessageLength},
      {"unknown message type", header_bytes(19, 9),
       NotifyCode::kMessageHeaderError, kHdrBadMessageType},
  };
  for (const auto& c : cases) {
    try {
      decode_header(as_span(c.wire));
      FAIL() << c.name << ": expected WireError";
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), c.code) << c.name;
      EXPECT_EQ(e.subcode(), c.subcode) << c.name;
    }
  }
}

TEST(WireHeaderFuzz, TruncatedOpenBodiesThrowOpenErrors) {
  OpenMessage open;
  open.asn = 65001;
  open.bgp_id = 7;
  open.cap_route_refresh = true;
  open.graceful_restart = GracefulRestart{false, 120, {{1, 1, false}}};
  const auto full = open.encode();
  // Chop the body at every length from just-past-header to full-1; each
  // must throw (WireError for the codec layers, never anything else),
  // and never crash — the fuzz contract.
  for (std::size_t cut = kHeaderSize; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> truncated(full.begin(),
                                        full.begin() + static_cast<long>(cut));
    // Patch the header length so only the *body* truncation is tested.
    truncated[16] = static_cast<std::uint8_t>(cut >> 8);
    truncated[17] = static_cast<std::uint8_t>(cut & 0xff);
    if (cut < kHeaderSize + 10) {
      // Shorter than the minimum OPEN: the header check rejects it.
      EXPECT_THROW(decode_header(as_span(truncated)), WireError) << cut;
      continue;
    }
    EXPECT_THROW(OpenMessage::decode(as_span(truncated)), WireError) << cut;
  }
}

TEST(WireHeaderFuzz, OpenWithWrongVersionReportsUnsupportedVersion) {
  OpenMessage open;
  open.asn = 65001;
  open.bgp_id = 7;
  auto wire = open.encode();
  wire[kHeaderSize] = 3;  // BGP-3
  try {
    OpenMessage::decode(as_span(wire));
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), NotifyCode::kOpenMessageError);
    EXPECT_EQ(e.subcode(), kOpenUnsupportedVersion);
  }
}

TEST(WireHeaderFuzz, OpenWithHoldTimeOneOrTwoIsUnacceptable) {
  for (std::uint16_t hold : {1, 2}) {
    OpenMessage open;
    open.asn = 65001;
    open.bgp_id = 7;
    open.hold_time = hold;
    try {
      OpenMessage::decode(as_span(open.encode()));
      FAIL() << "hold=" << hold;
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), NotifyCode::kOpenMessageError);
      EXPECT_EQ(e.subcode(), kOpenUnacceptableHoldTime);
    }
  }
}

TEST(WireHeaderFuzz, TruncatedUpdateBodiesThrowWireErrors) {
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("198.51.100.0/24"));
  update.announced.push_back(Prefix::parse("203.0.113.0/24"));
  update.attributes.as_path = bgp::AsPath{65001};
  update.attributes.next_hop = IpAddress::parse("192.0.2.1");
  const auto full = encode_update(update);
  // A truncation that lands exactly on an NLRI boundary yields a
  // shorter-but-valid UPDATE, so the contract is: every cut either
  // decodes cleanly or throws WireError — never any other exception,
  // never a crash — and most cuts must throw.
  int threw = 0;
  for (std::size_t cut = kHeaderSize + 4; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> truncated(full.begin(),
                                        full.begin() + static_cast<long>(cut));
    truncated[16] = static_cast<std::uint8_t>(cut >> 8);
    truncated[17] = static_cast<std::uint8_t>(cut & 0xff);
    try {
      (void)decode_update(as_span(truncated));
    } catch (const WireError&) {
      ++threw;
    } catch (const std::exception& e) {
      ADD_FAILURE() << "cut " << cut << ": non-WireError escape: " << e.what();
    }
  }
  EXPECT_GT(threw, 0);
}

// ---------------------------------------------------------- FrameReader

TEST(WireFrameReader, ReassemblesAcrossArbitrarySegmentation) {
  OpenMessage open;
  open.asn = 65001;
  open.bgp_id = 9;
  std::vector<std::uint8_t> stream;
  const auto open_wire = open.encode();
  const auto keepalive_wire = encode_keepalive();
  stream.insert(stream.end(), open_wire.begin(), open_wire.end());
  stream.insert(stream.end(), keepalive_wire.begin(), keepalive_wire.end());
  stream.insert(stream.end(), keepalive_wire.begin(), keepalive_wire.end());

  // Feed the stream in every chunk size from 1 to 23 bytes; the frames
  // coming out must be identical regardless.
  for (std::size_t chunk = 1; chunk <= 23; ++chunk) {
    FrameReader reader;
    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      reader.append(stream.data() + off, n);
      while (auto frame = reader.next()) frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0], open_wire) << "chunk=" << chunk;
    EXPECT_EQ(frames[1], keepalive_wire) << "chunk=" << chunk;
    EXPECT_EQ(frames[2], keepalive_wire) << "chunk=" << chunk;
    EXPECT_EQ(reader.buffered(), 0u) << "chunk=" << chunk;
  }
}

TEST(WireFrameReader, ThrowsAsSoonAsABadHeaderCompletes) {
  FrameReader reader;
  const auto bad = header_bytes(19, 4, 0x00);  // bad marker
  reader.append(bad.data(), 10);
  EXPECT_EQ(reader.next(), std::nullopt);  // header incomplete: no verdict yet
  reader.append(bad.data() + 10, bad.size() - 10);
  EXPECT_THROW(reader.next(), WireError);
}

TEST(WireFrameReader, PartialFrameYieldsNothing) {
  FrameReader reader;
  const auto keepalive_wire = encode_keepalive();
  reader.append(keepalive_wire.data(), keepalive_wire.size() - 1);
  EXPECT_EQ(reader.next(), std::nullopt);
  reader.append(keepalive_wire.data() + keepalive_wire.size() - 1, 1);
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, keepalive_wire);
}

// ------------------------------------------------------ stale retention

RetentionConfig gr_config() {
  RetentionConfig config;
  config.gr_enabled = true;
  return config;
}

TEST(WireRetention, NoGrMeansImmediateFlush) {
  StaleRetention retention(RetentionConfig{});  // gr_enabled = false
  retention.set_peer_times(2400, 0);
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  EXPECT_FALSE(retention.session_down(1000));
  EXPECT_EQ(retention.last_flush_reason(), FlushReason::kSessionLoss);
  EXPECT_EQ(retention.routes(), 0u);
}

TEST(WireRetention, GrRetainsUntilRestartExpiry) {
  StaleRetention retention(gr_config());
  retention.set_peer_times(2400, 0);
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  retention.route_announced(Prefix::parse("203.0.113.0/24"));
  ASSERT_TRUE(retention.session_down(1000));
  EXPECT_EQ(retention.stale_count(), 2u);
  EXPECT_EQ(retention.deadline(), 1000 + 2400);
  EXPECT_TRUE(retention.tick(1000 + 2399).empty());
  const auto flushed = retention.tick(1000 + 2400);
  EXPECT_EQ(flushed.size(), 2u);
  EXPECT_EQ(retention.last_flush_reason(), FlushReason::kRestartExpired);
  EXPECT_EQ(retention.routes(), 0u);
  EXPECT_FALSE(retention.retaining());
}

TEST(WireRetention, ReconnectAndEndOfRibSweepsOnlyStillStaleRoutes) {
  StaleRetention retention(gr_config());
  retention.set_peer_times(2400, 0);
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  retention.route_announced(Prefix::parse("203.0.113.0/24"));
  ASSERT_TRUE(retention.session_down(1000));
  retention.session_up(1500);
  EXPECT_EQ(retention.deadline(), 0) << "reconnect stops the restart clock";
  // The peer re-announces one of the two before End-of-RIB.
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  const auto swept = retention.end_of_rib();
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], Prefix::parse("203.0.113.0/24"));
  EXPECT_EQ(retention.last_flush_reason(), FlushReason::kEndOfRib);
  EXPECT_EQ(retention.routes(), 1u);
  EXPECT_EQ(retention.stale_count(), 0u);
}

TEST(WireRetention, LlgrExtendsRetentionPastRestartWindow) {
  RetentionConfig config;
  config.gr_enabled = true;
  config.llgr_enabled = true;
  StaleRetention retention(config);
  retention.set_peer_times(600, 86400);
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  ASSERT_TRUE(retention.session_down(1000));
  EXPECT_EQ(retention.deadline(), 1000 + 600);
  // Restart window ends: routes survive into the LLGR phase.
  EXPECT_TRUE(retention.tick(1000 + 600).empty());
  EXPECT_TRUE(retention.retaining());
  EXPECT_EQ(retention.deadline(), 1000 + 600 + 86400);
  const auto flushed = retention.tick(1000 + 600 + 86400);
  EXPECT_EQ(flushed.size(), 1u);
  EXPECT_EQ(retention.last_flush_reason(), FlushReason::kLlgrExpired);
}

TEST(WireRetention, ConfigCapsClampPeerAdvertisedTimes) {
  RetentionConfig config;
  config.gr_enabled = true;
  config.max_restart_time = 300;
  config.llgr_enabled = true;
  config.max_llgr_stale_time = 3600;
  StaleRetention retention(config);
  retention.set_peer_times(4095, 86400);
  EXPECT_EQ(retention.effective_restart_time(), 300);
  EXPECT_EQ(retention.effective_llgr_stale_time(), 3600);
}

TEST(WireRetention, WithdrawnRoutesAreNotRetained) {
  StaleRetention retention(gr_config());
  retention.set_peer_times(2400, 0);
  retention.route_announced(Prefix::parse("198.51.100.0/24"));
  retention.route_withdrawn(Prefix::parse("198.51.100.0/24"));
  EXPECT_TRUE(retention.session_down(1000)) << "GR still arms the window";
  EXPECT_EQ(retention.routes(), 0u) << "but nothing is retained";
  EXPECT_EQ(retention.stale_count(), 0u);
}

TEST(WireRetention, FlushReasonNames) {
  EXPECT_EQ(to_string(FlushReason::kSessionLoss), "session-loss");
  EXPECT_EQ(to_string(FlushReason::kEndOfRib), "end-of-rib");
  EXPECT_EQ(to_string(FlushReason::kRestartExpired), "restart-expired");
  EXPECT_EQ(to_string(FlushReason::kLlgrExpired), "llgr-expired");
}

// ----------------------------------------------- collision resolution

TEST(WireCollision, HigherBgpIdInitiatedConnectionSurvives) {
  using bgp::SessionFsm;
  // RFC 4271 §6.8: the connection initiated by the speaker with the
  // higher BGP Identifier is preserved.
  // Local id higher, local initiated: keep ours.
  EXPECT_FALSE(SessionFsm::collision_close_local(20, 10, true));
  // Local id higher, remote initiated: close the remote's (keep none of
  // ours to close -> close_local is false only for OUR initiated one).
  EXPECT_TRUE(SessionFsm::collision_close_local(20, 10, false));
  // Remote id higher, local initiated: our connection loses.
  EXPECT_TRUE(SessionFsm::collision_close_local(10, 20, true));
  // Remote id higher, remote initiated: their connection wins, keep it.
  EXPECT_FALSE(SessionFsm::collision_close_local(10, 20, false));
}

// ------------------------------------------------------ bridge sideband

TEST(WireBridge, StampRoundTripsAndRestoresTheUpdate) {
  bgp::UpdateMessage update;
  update.announced.push_back(Prefix::parse("203.0.113.0/24"));
  update.attributes.as_path = bgp::AsPath{65001};
  update.attributes.next_hop = IpAddress::parse("192.0.2.1");
  const bgp::UpdateMessage original = update;

  stamp_update(update, BridgeStamp{1717171717, 42});
  EXPECT_NE(update, original) << "stamp must actually attach";
  const auto stamp = extract_stamp(update);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->timestamp, 1717171717);
  EXPECT_EQ(stamp->sequence, 42u);
  EXPECT_EQ(update, original) << "extract must restore the archive image";
  EXPECT_EQ(extract_stamp(update), std::nullopt);
}

TEST(WireBridge, StampSurvivesTheWireOnWithdrawalOnlyUpdates) {
  // The update codec must write unknown attributes even when there is
  // no reachability — otherwise withdrawal ordering dies on the wire.
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("198.51.100.0/24"));
  stamp_update(update, BridgeStamp{1700000000, 7});
  auto decoded = decode_update(as_span(encode_update(update)));
  const auto stamp = extract_stamp(decoded);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->timestamp, 1700000000);
  EXPECT_EQ(stamp->sequence, 7u);
}

TEST(WireBridge, StateUpdateCarriesTheTransition) {
  auto update = make_state_update(6, 1, BridgeStamp{1700000100, 9});
  auto decoded = decode_update(as_span(encode_update(update)));
  const auto stamp = extract_stamp(decoded);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->sequence, 9u);
  const auto state = extract_state(decoded);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->first, 6);
  EXPECT_EQ(state->second, 1);
  EXPECT_TRUE(decoded.withdrawn.empty());
  EXPECT_TRUE(decoded.announced.empty());
}

TEST(WireBridge, ExtractStateOnPlainUpdateIsNullopt) {
  bgp::UpdateMessage update;
  update.announced.push_back(Prefix::parse("203.0.113.0/24"));
  EXPECT_EQ(extract_state(update), std::nullopt);
}

}  // namespace
}  // namespace zombiescope::wire

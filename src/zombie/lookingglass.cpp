#include "zombie/lookingglass.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace zombiescope::zombie {

namespace {

using netbase::TimePoint;

struct Snapshot {
  bool announced = false;
  bgp::AsPath path;
};

}  // namespace

LookingGlassResult LookingGlassDetector::detect(
    std::span<const mrt::MrtRecord> records,
    std::span<const beacon::BeaconEvent> events) const {
  LookingGlassResult result;
  netbase::Rng rng(config_.seed);

  std::vector<beacon::BeaconEvent> sorted(events.begin(), events.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.announce_time < b.announce_time; });

  // For each event, the looking glass is polled at withdraw+threshold;
  // the state it serves reflects messages up to poll - peer_lag, where
  // peer_lag is the ordinary lag or (with small probability) a stale
  // snapshot. Per-interval processing from scratch, like the original.
  std::size_t cursor = 0;
  std::vector<std::size_t> group_start;  // indices where announce time changes
  for (std::size_t i = 0; i < sorted.size(); ++i)
    if (i == 0 || sorted[i].announce_time != sorted[i - 1].announce_time)
      group_start.push_back(i);

  for (std::size_t g = 0; g < group_start.size(); ++g) {
    const std::size_t begin = group_start[g];
    const std::size_t end = g + 1 < group_start.size() ? group_start[g + 1] : sorted.size();
    const TimePoint interval_start = sorted[begin].announce_time;

    std::map<netbase::Prefix, const beacon::BeaconEvent*> beacon_of;
    TimePoint max_poll = 0;
    for (std::size_t i = begin; i < end; ++i) {
      beacon_of[sorted[i].prefix] = &sorted[i];
      max_poll = std::max(max_poll, sorted[i].withdraw_time + config_.threshold);
    }

    while (cursor < records.size() &&
           mrt::record_timestamp(records[cursor]) < interval_start)
      ++cursor;

    // Per (prefix, peer): the message history inside the interval, so
    // the lagged state can be evaluated per peer glitch draw.
    struct History {
      std::vector<std::tuple<TimePoint, bool, bgp::AsPath>> msgs;  // (t, announced, path)
    };
    std::map<netbase::Prefix, std::map<PeerKey, History>> table;

    std::size_t scan = cursor;
    while (scan < records.size()) {
      const auto& record = records[scan];
      const TimePoint t = mrt::record_timestamp(record);
      if (t > max_poll) break;
      ++scan;
      if (const auto* msg = std::get_if<mrt::Bgp4mpMessage>(&record)) {
        const PeerKey peer{msg->peer_asn, msg->peer_address};
        for (const auto& prefix : msg->update.withdrawn) {
          if (beacon_of.contains(prefix))
            table[prefix][peer].msgs.emplace_back(t, false, bgp::AsPath{});
        }
        for (const auto& prefix : msg->update.announced) {
          if (beacon_of.contains(prefix))
            table[prefix][peer].msgs.emplace_back(t, true, msg->update.attributes.as_path);
        }
      } else if (const auto* state = std::get_if<mrt::Bgp4mpStateChange>(&record)) {
        if (state->old_state == bgp::SessionState::kEstablished &&
            state->new_state != bgp::SessionState::kEstablished) {
          const PeerKey peer{state->peer_asn, state->peer_address};
          for (auto& [prefix, peers] : table) {
            (void)prefix;
            auto it = peers.find(peer);
            if (it != peers.end()) it->second.msgs.emplace_back(t, false, bgp::AsPath{});
          }
        }
      }
    }
    cursor = scan;

    for (std::size_t i = begin; i < end; ++i) {
      const auto& event = sorted[i];
      auto table_it = table.find(event.prefix);
      if (table_it == table.end()) continue;
      const TimePoint poll = event.withdraw_time + config_.threshold;

      ZombieOutbreak outbreak;
      outbreak.prefix = event.prefix;
      outbreak.interval_start = interval_start;
      outbreak.withdraw_time = event.withdraw_time;

      for (const auto& [peer, history] : table_it->second) {
        const netbase::Duration lag = rng.chance(config_.stale_snapshot_probability)
                                          ? config_.stale_lag
                                          : config_.lag;
        const TimePoint visible_until = poll - lag;
        Snapshot snapshot;
        for (const auto& [t, announced, path] : history.msgs) {
          if (t > visible_until) break;
          snapshot.announced = announced;
          snapshot.path = path;
        }
        if (!snapshot.announced) continue;
        ZombieRoute route;
        route.peer = peer;
        route.prefix = event.prefix;
        route.interval_start = interval_start;
        route.withdraw_time = event.withdraw_time;
        route.path = snapshot.path;
        outbreak.routes.push_back(route);
        result.routes.push_back(std::move(route));
      }
      if (!outbreak.routes.empty()) result.outbreaks.push_back(std::move(outbreak));
    }
  }
  return result;
}

MissingCounts count_missing(std::span<const ZombieRoute> ours,
                            std::span<const ZombieOutbreak> our_outbreaks,
                            std::span<const ZombieRoute> theirs,
                            std::span<const ZombieOutbreak> their_outbreaks) {
  using RouteKey = std::tuple<netbase::Prefix, TimePoint, PeerKey>;
  using OutbreakKey = std::pair<netbase::Prefix, TimePoint>;
  std::set<RouteKey> their_routes;
  for (const auto& r : theirs) their_routes.insert({r.prefix, r.interval_start, r.peer});
  std::set<OutbreakKey> their_breaks;
  for (const auto& o : their_outbreaks) their_breaks.insert({o.prefix, o.interval_start});

  MissingCounts out;
  std::set<RouteKey> seen_routes;
  for (const auto& r : ours) {
    const RouteKey key{r.prefix, r.interval_start, r.peer};
    if (!seen_routes.insert(key).second) continue;
    if (their_routes.contains(key)) continue;
    (r.prefix.is_v4() ? out.routes_v4 : out.routes_v6)++;
  }
  std::set<OutbreakKey> seen_breaks;
  for (const auto& o : our_outbreaks) {
    const OutbreakKey key{o.prefix, o.interval_start};
    if (!seen_breaks.insert(key).second) continue;
    if (their_breaks.contains(key)) continue;
    (o.prefix.is_v4() ? out.outbreaks_v4 : out.outbreaks_v6)++;
  }
  return out;
}

}  // namespace zombiescope::zombie

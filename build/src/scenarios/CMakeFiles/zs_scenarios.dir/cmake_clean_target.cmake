file(REMOVE_RECURSE
  "libzs_scenarios.a"
)

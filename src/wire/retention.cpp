#include "wire/retention.hpp"

#include <algorithm>

namespace zombiescope::wire {

std::string to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kSessionLoss:
      return "session-loss";
    case FlushReason::kEndOfRib:
      return "end-of-rib";
    case FlushReason::kRestartExpired:
      return "restart-expired";
    case FlushReason::kLlgrExpired:
      return "llgr-expired";
  }
  return "?";
}

void StaleRetention::set_peer_times(netbase::Duration restart_time,
                                    netbase::Duration llgr_stale_time) {
  restart_time_ = restart_time;
  if (config_.max_restart_time > 0)
    restart_time_ = std::min(restart_time_, config_.max_restart_time);
  llgr_stale_time_ = config_.llgr_enabled ? llgr_stale_time : 0;
  if (config_.max_llgr_stale_time > 0)
    llgr_stale_time_ = std::min(llgr_stale_time_, config_.max_llgr_stale_time);
}

void StaleRetention::route_announced(const netbase::Prefix& prefix) {
  auto [it, inserted] = routes_.try_emplace(prefix, false);
  if (!inserted && it->second) {
    // A re-announcement refreshes a stale route (RFC 4724 §4.1).
    it->second = false;
    --stale_count_;
  }
}

void StaleRetention::route_withdrawn(const netbase::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return;
  if (it->second) --stale_count_;
  routes_.erase(it);
}

bool StaleRetention::session_down(netbase::TimePoint now) {
  if (!config_.gr_enabled || restart_time_ <= 0) {
    routes_.clear();
    stale_count_ = 0;
    retaining_ = false;
    last_flush_reason_ = FlushReason::kSessionLoss;
    return false;
  }
  for (auto& [prefix, stale] : routes_) stale = true;
  stale_count_ = routes_.size();
  retaining_ = true;
  in_llgr_phase_ = false;
  deadline_ = now + restart_time_;
  return true;
}

void StaleRetention::session_up(netbase::TimePoint now) {
  (void)now;
  // Stale marks survive; the deadlines stop. RFC 4724 bounds the
  // re-sync by End-of-RIB (plus an optional selection-deferral timer
  // we do not model): routes not refreshed by then are swept there.
  retaining_ = false;
  in_llgr_phase_ = false;
}

std::vector<netbase::Prefix> StaleRetention::take_stale() {
  std::vector<netbase::Prefix> flushed;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second) {
      flushed.push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  stale_count_ = 0;
  return flushed;
}

std::vector<netbase::Prefix> StaleRetention::end_of_rib() {
  auto flushed = take_stale();
  if (!flushed.empty()) last_flush_reason_ = FlushReason::kEndOfRib;
  retaining_ = false;
  in_llgr_phase_ = false;
  return flushed;
}

std::vector<netbase::Prefix> StaleRetention::tick(netbase::TimePoint now) {
  if (!retaining_ || now < deadline_) return {};
  if (!in_llgr_phase_ && llgr_stale_time_ > 0) {
    // Restart window over; the long-lived window begins (RFC 9494
    // semantics: routes stay, depreferenced — the control plane still
    // carries them, which is all the zombie detector sees).
    in_llgr_phase_ = true;
    deadline_ += llgr_stale_time_;
    if (now < deadline_) return {};
  }
  last_flush_reason_ =
      in_llgr_phase_ ? FlushReason::kLlgrExpired : FlushReason::kRestartExpired;
  retaining_ = false;
  in_llgr_phase_ = false;
  return take_stale();
}

}  // namespace zombiescope::wire
